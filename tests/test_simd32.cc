/**
 * @file
 * SIMD32 end-to-end tests (Section 7: NVIDIA warps are 32 wide, AMD
 * wavefronts 64 — the paper expects larger gains there). Verifies
 * that 32-channel kernels run correctly through both the functional
 * and timing paths and that compaction scales to the wider masks.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "isa/builder.hh"
#include "trace/analyzer.hh"

namespace
{

using iwc::compaction::Mode;
using iwc::gpu::Arg;
using iwc::gpu::Device;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

Kernel
simd32DivergentKernel()
{
    KernelBuilder b("w32", 32);
    auto out = b.argBuffer("out");
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    b.and_(lane, b.localId(), b.ud(31));
    b.mov(x, b.f(1.0f));
    auto bit = b.tmp(DataType::UD);
    b.and_(bit, lane, b.ud(3));
    b.cmp(CondMod::Eq, 0, bit, b.ud(0)); // pattern 0x11111111
    b.if_(0);
    for (int i = 0; i < 16; ++i)
        b.mad(x, x, b.f(1.002f), b.f(0.01f));
    b.endif_();
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    return b.build();
}

std::vector<float>
reference(std::uint64_t n)
{
    std::vector<float> expected(n);
    for (std::uint64_t wi = 0; wi < n; ++wi) {
        double x = 1.0;
        if ((wi % 32) % 4 == 0)
            for (int i = 0; i < 16; ++i)
                x = static_cast<float>(
                    x * double(1.002f) + double(0.01f));
        expected[wi] = static_cast<float>(x);
    }
    return expected;
}

TEST(Simd32, FunctionalCorrectness)
{
    const std::uint64_t n = 1024;
    Device dev;
    const iwc::Addr out = dev.allocBuffer(n * 4);
    const Kernel k = simd32DivergentKernel();
    dev.launchFunctional(k, n, 64, {Arg::buffer(out)});
    const auto result = dev.downloadVector<float>(out, n);
    const auto expected = reference(n);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(result[i], expected[i]) << i;
}

TEST(Simd32, TimingCorrectnessAndCompaction)
{
    const std::uint64_t n = 2048;
    const Kernel k = simd32DivergentKernel();

    auto run = [&](Mode mode) {
        Device dev(iwc::gpu::ivbConfig(mode));
        const iwc::Addr out = dev.allocBuffer(n * 4);
        const auto stats = dev.launch(k, n, 64, {Arg::buffer(out)});
        const auto result = dev.downloadVector<float>(out, n);
        const auto expected = reference(n);
        for (std::uint64_t i = 0; i < n; ++i)
            EXPECT_FLOAT_EQ(result[i], expected[i]) << i;
        return stats;
    };

    const auto ivb = run(Mode::IvbOpt);
    const auto scc = run(Mode::Scc);
    // 0x11111111: BCC and IvbOpt useless, SCC compresses 8 -> 2.
    EXPECT_LT(scc.totalCycles, ivb.totalCycles);
    EXPECT_DOUBLE_EQ(ivb.euCycleReduction(Mode::Bcc), 0.0);
    EXPECT_GT(ivb.euCycleReduction(Mode::Scc), 0.3);
}

TEST(Simd32, WiderWarpsDivergeMore)
{
    // The Section 7 claim on the same per-lane-loop-trip kernel at
    // widths 8/16/32: SIMD efficiency falls with width.
    double efficiency[3];
    unsigned idx = 0;
    for (const unsigned width : {8u, 16u, 32u}) {
        KernelBuilder b("trip" + std::to_string(width), width);
        auto lane = b.tmp(DataType::D);
        auto x = b.tmp(DataType::F);
        auto i = b.tmp(DataType::D);
        b.and_(lane, b.localId(),
               b.d(static_cast<std::int32_t>(width - 1)));
        b.mov(x, b.f(0.0f));
        b.mov(i, b.d(0));
        b.loop_();
        b.mad(x, x, b.f(1.1f), b.f(1.0f));
        b.add(i, i, b.d(1));
        b.cmp(CondMod::Le, 1, i, lane);
        b.endLoop(1);
        const Kernel k = b.build();

        Device dev;
        iwc::trace::TraceAnalyzer analyzer;
        dev.launchFunctional(
            k, 256, 64, {},
            [&](const iwc::isa::Instruction &in, iwc::LaneMask mask) {
                analyzer.add(iwc::trace::recordOf(in, mask));
            });
        efficiency[idx++] = analyzer.result().simdEfficiency();
    }
    EXPECT_GT(efficiency[0], efficiency[1]);
    EXPECT_GT(efficiency[1], efficiency[2]);
}

} // namespace
