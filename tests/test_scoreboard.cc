/** @file Unit tests for the per-thread dependence scoreboard. */

#include <gtest/gtest.h>

#include "eu/scoreboard.hh"

namespace
{

using namespace iwc::isa;
using iwc::eu::Scoreboard;

Instruction
add16(unsigned dst, unsigned a, unsigned b)
{
    Instruction in;
    in.op = Opcode::Add;
    in.simdWidth = 16;
    in.dst = grfOperand(dst, DataType::F);
    in.src0 = grfOperand(a, DataType::F);
    in.src1 = grfOperand(b, DataType::F);
    return in;
}

TEST(ScoreboardTest, FreshBoardIsReady)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.ready(add16(10, 20, 30), 0));
}

TEST(ScoreboardTest, RawHazardStallsConsumer)
{
    Scoreboard sb;
    const Instruction producer = add16(10, 20, 30);
    sb.claimDst(producer, 15);
    // Consumer reads r10 -> waits for cycle 15.
    const Instruction consumer = add16(40, 10, 30);
    EXPECT_FALSE(sb.ready(consumer, 14));
    EXPECT_TRUE(sb.ready(consumer, 15));
    EXPECT_EQ(sb.readyCycle(consumer), 15u);
}

TEST(ScoreboardTest, Simd16OperandSpansTwoRegisters)
{
    Scoreboard sb;
    sb.claimDst(add16(10, 20, 30), 15); // r10 and r11 busy
    const Instruction consumer = add16(40, 11, 30);
    EXPECT_FALSE(sb.ready(consumer, 0));
    // r12 is untouched.
    const Instruction other = add16(40, 12, 30);
    EXPECT_TRUE(sb.ready(other, 0));
}

TEST(ScoreboardTest, WawHazardStallsOverwrite)
{
    Scoreboard sb;
    sb.claimDst(add16(10, 20, 30), 15);
    const Instruction waw = add16(10, 20, 30);
    EXPECT_FALSE(sb.ready(waw, 5));
    EXPECT_TRUE(sb.ready(waw, 15));
}

TEST(ScoreboardTest, ScalarOperandTouchesOneRegister)
{
    Scoreboard sb;
    Instruction in = add16(10, 20, 30);
    in.src0 = grfScalar(20, DataType::F);
    sb.claimDst(add16(21, 40, 41), 15); // r21-22 busy
    // Scalar read of r20 element 0 does not touch r21.
    EXPECT_TRUE(sb.ready(in, 0));
}

TEST(ScoreboardTest, FlagDependencies)
{
    Scoreboard sb;
    Instruction cmp;
    cmp.op = Opcode::Cmp;
    cmp.simdWidth = 16;
    cmp.condMod = CondMod::Lt;
    cmp.condFlag = 0;
    cmp.src0 = grfOperand(20, DataType::F);
    cmp.src1 = immF(0.0f);
    sb.claimDst(cmp, 9);

    Instruction predicated = add16(10, 20, 30);
    predicated.predCtrl = PredCtrl::Normal;
    predicated.predFlag = 0;
    EXPECT_FALSE(sb.ready(predicated, 8));
    EXPECT_TRUE(sb.ready(predicated, 9));

    // The other flag is independent.
    predicated.predFlag = 1;
    EXPECT_TRUE(sb.ready(predicated, 0));

    // Sel reads its selector flag.
    Instruction sel;
    sel.op = Opcode::Sel;
    sel.simdWidth = 16;
    sel.dst = grfOperand(10, DataType::F);
    sel.src0 = grfOperand(20, DataType::F);
    sel.src1 = grfOperand(30, DataType::F);
    sel.condFlag = 0;
    EXPECT_FALSE(sb.ready(sel, 8));
}

TEST(ScoreboardTest, BlockMessagesSpanNumRegs)
{
    Scoreboard sb;
    Instruction load;
    load.op = Opcode::Send;
    load.simdWidth = 16;
    load.send = {SendOp::BlockLoad, DataType::UD, 4};
    load.dst = grfOperand(20, DataType::UD);
    load.src0 = grfScalar(10, DataType::UD);
    sb.claimDst(load, 99); // r20-23 busy

    EXPECT_FALSE(sb.ready(add16(40, 23, 30), 50));
    EXPECT_TRUE(sb.ready(add16(40, 24, 30), 50));

    // Block stores read their source register range.
    Instruction store;
    store.op = Opcode::Send;
    store.simdWidth = 16;
    store.send = {SendOp::BlockStore, DataType::UD, 4};
    store.src0 = grfScalar(10, DataType::UD);
    store.src1 = grfOperand(22, DataType::UD);
    EXPECT_FALSE(sb.ready(store, 50));
    EXPECT_TRUE(sb.ready(store, 99));
}

TEST(ScoreboardTest, ResetClearsEverything)
{
    Scoreboard sb;
    sb.claimDst(add16(10, 20, 30), 1000);
    sb.reset();
    EXPECT_TRUE(sb.ready(add16(40, 10, 30), 0));
}

} // namespace
