/** @file Tests for the assembled memory hierarchy timing model. */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace
{

using iwc::Addr;
using iwc::Cycle;
using iwc::kCacheLineBytes;
using iwc::mem::MemConfig;
using iwc::mem::MemResult;
using iwc::mem::MemSystem;

MemConfig
smallConfig()
{
    MemConfig config;
    config.dramLatency = 100;
    return config;
}

TEST(MemSystemTest, ColdMissGoesToDram)
{
    MemSystem mem(smallConfig());
    const MemResult r = mem.accessGlobal({0x1000}, false, 0);
    // DC (cycle 0) + L3 lookup (7) + LLC (10) + DRAM (100) at minimum.
    EXPECT_GE(r.completion, 100u);
    EXPECT_EQ(r.l3Misses, 1u);
    EXPECT_EQ(r.llcMisses, 1u);
}

TEST(MemSystemTest, HitIsFast)
{
    MemSystem mem(smallConfig());
    const MemResult miss = mem.accessGlobal({0x1000}, false, 0);
    const Cycle warm = miss.completion + 10;
    const MemResult hit = mem.accessGlobal({0x1000}, false, warm);
    EXPECT_EQ(hit.l3Misses, 0u);
    EXPECT_EQ(hit.completion, warm + smallConfig().l3Latency);
}

TEST(MemSystemTest, MergedMissCompletesWithOriginalFill)
{
    MemSystem mem(smallConfig());
    const MemResult first = mem.accessGlobal({0x1000}, false, 0);
    const MemResult second = mem.accessGlobal({0x1000}, false, 2);
    EXPECT_EQ(second.l3Misses, 0u);
    EXPECT_LE(second.completion,
              std::max<Cycle>(first.completion,
                              2 + smallConfig().l3Latency));
    EXPECT_GE(second.completion, 2 + smallConfig().l3Latency);
}

TEST(MemSystemTest, DataClusterBandwidthSerializesLines)
{
    // 8 lines through DC1 need 8 transfer slots.
    MemConfig config = smallConfig();
    config.dcLinesPerCycle = 1;
    MemSystem dc1(config);
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 8; ++i)
        lines.push_back(i * kCacheLineBytes);
    // Warm the caches so only DC bandwidth matters.
    dc1.accessGlobal(lines, false, 0);
    const Cycle warm = 10000;
    const MemResult r1 = dc1.accessGlobal(lines, false, warm);

    config.dcLinesPerCycle = 2;
    MemSystem dc2(config);
    dc2.accessGlobal(lines, false, 0);
    const MemResult r2 = dc2.accessGlobal(lines, false, warm);

    // DC2 halves the serialization delay.
    EXPECT_EQ(r1.completion - warm,
              7 + config.l3Latency); // last line enters at +7
    EXPECT_EQ(r2.completion - warm, 3 + config.l3Latency);
}

TEST(MemSystemTest, PerfectL3NeverMisses)
{
    MemConfig config = smallConfig();
    config.perfectL3 = true;
    MemSystem mem(config);
    const MemResult r = mem.accessGlobal({0x123400}, false, 0);
    EXPECT_EQ(r.l3Misses, 0u);
    EXPECT_EQ(r.completion, config.l3Latency);
}

TEST(MemSystemTest, BankConflictsSerializeLookups)
{
    MemConfig config = smallConfig();
    config.perfectL3 = true;   // isolate bank contention
    config.dcLinesPerCycle = 2; // both lines arrive the same cycle

    // Same bank: the second lookup waits one cycle.
    MemSystem same(config);
    const Addr stride = config.l3Banks * kCacheLineBytes;
    const MemResult conflict = same.accessGlobal({0, stride}, false, 0);
    EXPECT_EQ(conflict.completion, config.l3Latency + 1);

    // Different banks: both lookups proceed in parallel.
    MemSystem diff(config);
    const MemResult parallel =
        diff.accessGlobal({0, kCacheLineBytes}, false, 0);
    EXPECT_EQ(parallel.completion, config.l3Latency);
}

TEST(MemSystemTest, SlmLatencyAndConflicts)
{
    MemSystem mem(smallConfig());
    iwc::func::MemAccess acc;
    acc.op = iwc::isa::SendOp::SlmGatherLoad;
    acc.elemBytes = 4;
    acc.mask = 0xffff;
    for (unsigned ch = 0; ch < 16; ++ch)
        acc.addrs[ch] = ch * 4;
    EXPECT_EQ(mem.accessSlm(acc, 100), 100 + smallConfig().slmLatency);

    for (unsigned ch = 0; ch < 16; ++ch)
        acc.addrs[ch] = ch * 64; // all bank 0
    EXPECT_EQ(mem.accessSlm(acc, 100),
              100 + smallConfig().slmLatency + 15);
}

TEST(MemSystemTest, DivergenceStatistic)
{
    MemSystem mem(smallConfig());
    mem.accessGlobal({0x0}, false, 0);
    std::vector<Addr> divergent;
    for (unsigned i = 0; i < 15; ++i)
        divergent.push_back(0x10000 + i * kCacheLineBytes);
    mem.accessGlobal(divergent, false, 0);
    EXPECT_EQ(mem.messages(), 2u);
    EXPECT_EQ(mem.totalLines(), 16u);
    EXPECT_DOUBLE_EQ(mem.avgLinesPerMessage(), 8.0);
}

} // namespace
