/** @file Tests for synthetic trace generation and the paper profiles. */

#include <gtest/gtest.h>

#include "compaction/cycle_plan.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace iwc::trace;
using iwc::compaction::Mode;

TEST(SyntheticTest, DeterministicPerSeed)
{
    SyntheticProfile p;
    p.name = "t";
    p.instructions = 5000;
    p.seed = 9;
    const MaskTrace a = synthesize(p);
    const MaskTrace b = synthesize(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        ASSERT_EQ(a.records[i].execMask, b.records[i].execMask);
    p.seed = 10;
    const MaskTrace c = synthesize(p);
    bool differs = false;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        differs |= a.records[i].execMask != c.records[i].execMask;
    EXPECT_TRUE(differs);
}

TEST(SyntheticTest, RespectsInstructionCountAndWidth)
{
    SyntheticProfile p;
    p.name = "t";
    p.simdWidth = 8;
    p.instructions = 1234;
    const MaskTrace t = synthesize(p);
    EXPECT_EQ(t.size(), 1234u);
    for (const auto &r : t.records)
        EXPECT_EQ(r.simdWidth, 8);
}

TEST(SyntheticTest, CoherentProfileHasHighEfficiency)
{
    SyntheticProfile p;
    p.name = "t";
    p.divergentFraction = 0.02;
    p.instructions = 50000;
    const TraceAnalysis a = analyzeTrace(synthesize(p));
    EXPECT_GT(a.simdEfficiency(), 0.95);
}

TEST(SyntheticTest, DivergentProfileHasLowEfficiency)
{
    SyntheticProfile p;
    p.name = "t";
    p.divergentFraction = 0.8;
    p.meanActive = 0.35;
    p.instructions = 50000;
    const TraceAnalysis a = analyzeTrace(synthesize(p));
    EXPECT_LT(a.simdEfficiency(), 0.8);
}

TEST(SyntheticTest, ClusteringControlsBccSccSplit)
{
    SyntheticProfile clustered;
    clustered.name = "c";
    clustered.divergentFraction = 0.8;
    clustered.meanActive = 0.3;
    clustered.clustering = 0.95;
    clustered.instructions = 50000;

    SyntheticProfile scattered = clustered;
    scattered.name = "s";
    scattered.clustering = 0.05;
    scattered.seed = 2;

    const TraceAnalysis ca = analyzeTrace(synthesize(clustered));
    const TraceAnalysis sa = analyzeTrace(synthesize(scattered));

    // Clustered masks give BCC most of the win; scattered masks leave
    // BCC little and SCC much.
    const double c_bcc = ca.reduction(Mode::Bcc);
    const double c_scc_extra =
        ca.reduction(Mode::Scc) - ca.reduction(Mode::Bcc);
    const double s_bcc = sa.reduction(Mode::Bcc);
    const double s_scc_extra =
        sa.reduction(Mode::Scc) - sa.reduction(Mode::Bcc);
    EXPECT_GT(c_bcc, s_bcc);
    EXPECT_GT(s_scc_extra, c_scc_extra);
}

TEST(PaperProfiles, AllPresentAndLookupWorks)
{
    const auto &profiles = paperTraceProfiles();
    EXPECT_GE(profiles.size(), 15u);
    EXPECT_EQ(profileByName("luxmark_sky").simdWidth, 8u);
    EXPECT_EXIT(profileByName("no_such_trace"),
                ::testing::ExitedWithCode(1), "unknown synthetic");
}

TEST(PaperProfiles, DivergentTracesLandInPaperRanges)
{
    // Figure 10's trace workloads: BCC+SCC benefits roughly 10%-45%,
    // with SCC always at least matching BCC.
    for (const auto &p : paperTraceProfiles()) {
        if (p.divergentFraction < 0.3)
            continue; // coherent fillers
        const TraceAnalysis a = analyzeTrace(synthesize(p));
        const double bcc = a.reduction(Mode::Bcc);
        const double scc = a.reduction(Mode::Scc);
        EXPECT_GE(scc, bcc) << p.name;
        EXPECT_GT(scc, 0.05) << p.name;
        EXPECT_LT(scc, 0.50) << p.name;
        EXPECT_TRUE(a.isDivergent()) << p.name;
    }
}

TEST(PaperProfiles, CoherentTracesStayCoherent)
{
    for (const auto &p : paperTraceProfiles()) {
        if (p.divergentFraction >= 0.3)
            continue;
        const TraceAnalysis a = analyzeTrace(synthesize(p));
        EXPECT_FALSE(a.isDivergent()) << p.name;
    }
}

} // namespace
