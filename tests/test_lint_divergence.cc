/**
 * @file
 * Tests for the static divergence analyzer: branch classification from
 * thread-id provenance, divergent-context propagation, and — the load
 * bearing property — soundness of the static compressible-cycle upper
 * bound against the simulator: on every registered workload, the
 * measured BCC/SCC cycle savings over IvbOpt must never exceed the
 * bound the analyzer derives without executing anything.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "compaction/cycle_plan.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "lint/divergence.hh"
#include "lint/verifier.hh"
#include "trace/analyzer.hh"
#include "trace/trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using compaction::Mode;
using isa::CondMod;
using isa::DataType;
using isa::Kernel;
using isa::KernelBuilder;
using lint::DivergenceReport;
using lint::LaunchShape;

// --- Branch classification --------------------------------------------

TEST(DivergenceClass, BranchOnScalarGroupIdIsUniform)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, b.groupId(), b.ud(0));
    b.if_(0);
    b.mov(x, b.d(1));
    b.endif_();
    const Kernel k = b.build();
    ASSERT_TRUE(lint::verify(k).clean());

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    ASSERT_EQ(report.branches.size(), 1u);
    EXPECT_FALSE(report.branches[0].divergent);
    EXPECT_EQ(report.divergentBranchCount(), 0u);
}

TEST(DivergenceClass, BranchOnGlobalIdIsDivergent)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(7));
    b.if_(0);
    b.mov(x, b.d(1));
    b.endif_();
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    ASSERT_EQ(report.branches.size(), 1u);
    EXPECT_TRUE(report.branches[0].divergent);
}

TEST(DivergenceClass, LoadedValuesAreVarying)
{
    KernelBuilder b("t", 16);
    auto buf = b.argBuffer("buf");
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::D);
    b.mov(addr, buf); // scalar arg broadcast: still uniform
    b.gatherLoad(v, addr, DataType::UD); // loaded data: varying
    b.cmp(CondMod::Gt, 0, v, b.ud(0));
    b.if_(0);
    b.mov(x, b.d(1));
    b.endif_();
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    ASSERT_EQ(report.branches.size(), 1u);
    EXPECT_TRUE(report.branches[0].divergent);
}

TEST(DivergenceClass, UniformLoopStaysUniform)
{
    KernelBuilder b("t", 16);
    auto n = b.argU("n");
    auto i = b.tmp(DataType::UD);
    auto acc = b.tmp(DataType::UD);
    b.mov(i, b.ud(0));
    b.mov(acc, b.ud(0));
    b.loop_();
    b.add(acc, acc, i);
    b.add(i, i, b.ud(1));
    b.cmp(CondMod::Lt, 0, i, n); // trip count from a scalar argument
    b.endLoop(0);
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    ASSERT_EQ(report.branches.size(), 1u);
    EXPECT_FALSE(report.branches[0].divergent);
}

TEST(DivergenceCtx, DivergentIfTaintsItsBodyOnly)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.mov(y, b.d(0));                             // @0: top level
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4)); // @1
    b.if_(0);                                     // @2
    b.mov(x, b.d(1));                             // @3: divergent ctx
    b.endif_();                                   // @4
    b.add(y, y, b.d(1));                          // @5: top level again
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    EXPECT_FALSE(report.divergentCtx[0]);
    EXPECT_TRUE(report.divergentCtx[3]);
    EXPECT_FALSE(report.divergentCtx[5]);
}

TEST(DivergenceCtx, ValueWrittenUnderDivergentFlowTurnsVarying)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.mov(x, b.d(0)); // uniform here
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4));
    b.if_(0);
    b.mov(x, b.d(1)); // partial per-channel update: x now varying
    b.endif_();
    b.cmp(CondMod::Gt, 1, x, b.d(0));
    b.if_(1); // must classify as divergent
    b.mov(y, b.d(2));
    b.endif_();
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    ASSERT_EQ(report.branches.size(), 2u);
    EXPECT_TRUE(report.branches[0].divergent);
    EXPECT_TRUE(report.branches[1].divergent);
}

// --- Static cycle bound ------------------------------------------------

TEST(DivergenceBound, UniformStraightLineWithoutTailsSavesNothing)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::F);
    b.mov(x, b.f(1.0f));
    b.add(x, x, b.f(2.0f));
    b.mul(x, x, x);
    const Kernel k = b.build();

    // 64 work items in groups of 16: every dispatch mask is full.
    const DivergenceReport report =
        lint::analyzeDivergence(k, LaunchShape{64, 16});
    ASSERT_TRUE(report.valid);
    for (std::uint32_t ip = 0; ip < k.size(); ++ip) {
        EXPECT_EQ(report.maxSaveBcc[ip], 0u) << "ip " << ip;
        EXPECT_EQ(report.maxSaveScc[ip], 0u) << "ip " << ip;
    }
}

TEST(DivergenceBound, DivergentBodyAdmitsPositiveSavings)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::F);
    b.mov(x, b.f(0.0f));
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(3));
    b.if_(0);
    b.add(x, x, b.f(1.0f)); // 4 dword groups; sparse masks reachable
    b.endif_();
    const Kernel k = b.build();

    const DivergenceReport report = lint::analyzeDivergence(k);
    ASSERT_TRUE(report.valid);
    unsigned long long bcc = 0, scc = 0;
    for (std::uint32_t ip = 0; ip < k.size(); ++ip) {
        bcc += report.maxSaveBcc[ip];
        scc += report.maxSaveScc[ip];
    }
    EXPECT_GT(bcc, 0u);
    EXPECT_GE(scc, bcc); // SCC can always compact at least as hard
}

TEST(DivergenceRender, ReportsBranchTable)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(7));
    b.if_(0);
    b.mov(x, b.d(1));
    b.endif_();
    const Kernel k = b.build();

    const std::string text =
        lint::renderDivergence(lint::analyzeDivergence(k), &k);
    EXPECT_NE(text.find("divergent"), std::string::npos);
    EXPECT_NE(text.find("bcc="), std::string::npos);
}

// --- Soundness against the simulator ----------------------------------

/**
 * For one workload: replay the functional execution, measure the
 * per-mode EU cycles the trace analyzer reports, and compare the
 * realized BCC/SCC savings against the static per-instruction bound
 * weighted by how often each instruction actually executed. The
 * static bound must dominate on every workload, else the analyzer's
 * uniformity or mask reasoning is unsound somewhere.
 */
void
checkBoundAgainstSimulator(const std::string &name)
{
    gpu::Device dev;
    const workloads::Workload w = workloads::make(name, dev, 1);

    const DivergenceReport bound = lint::analyzeDivergence(
        w.kernel, LaunchShape{w.globalSize, w.localSize});
    ASSERT_TRUE(bound.valid) << name;

    trace::TraceAnalyzer analyzer;
    std::vector<std::uint64_t> exec_count(w.kernel.size(), 0);
    std::vector<trace::TraceRecord> tmpl;
    for (const isa::Instruction &in : w.kernel.instructions())
        tmpl.push_back(trace::recordOf(in, 0));
    dev.launchFunctionalDetailed(
        w.kernel, w.globalSize, w.localSize, w.args,
        [&](const gpu::DetailedStep &step) {
            trace::TraceRecord r = tmpl[step.ip];
            r.execMask = step.result->execMask &
                w.kernel.instr(step.ip).widthMask();
            analyzer.add(r);
            ++exec_count[step.ip];
        });
    const trace::TraceAnalysis measured = analyzer.result();

    unsigned long long bound_bcc = 0, bound_scc = 0;
    for (std::uint32_t ip = 0; ip < w.kernel.size(); ++ip) {
        bound_bcc += bound.maxSaveBcc[ip] * exec_count[ip];
        bound_scc += bound.maxSaveScc[ip] * exec_count[ip];
    }

    const std::uint64_t ivb = measured.cycles(Mode::IvbOpt);
    EXPECT_LE(ivb - measured.cycles(Mode::Bcc), bound_bcc) << name;
    EXPECT_LE(ivb - measured.cycles(Mode::Scc), bound_scc) << name;
}

TEST(DivergenceSoundness, StaticBoundDominatesMeasuredSavings)
{
    for (const std::string &name : workloads::allNames())
        checkBoundAgainstSimulator(name);
}

} // namespace
