/**
 * @file
 * The run/ experiment harness: parallel sweeps must be bit-identical
 * to the legacy serial path (every job owns its simulation state), the
 * per-sweep trace cache must collapse the per-mode requests of one
 * workload onto a single functional execution, and the parallel-for
 * primitive must visit every index exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "run/experiment.hh"
#include "run/sweep_runner.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using compaction::Mode;

const std::vector<std::string> kWorkloads = {"mandelbrot", "bfs",
                                             "bsort"};
const Mode kModes[] = {Mode::Baseline, Mode::IvbOpt, Mode::Bcc,
                       Mode::Scc};

std::vector<run::RunRequest>
mixedSweep()
{
    // workloads x modes, timing and functional legs, plus synthetic
    // trace profiles: the shape of a full bench-driver sweep.
    std::vector<run::RunRequest> requests;
    for (const auto &name : kWorkloads) {
        for (const Mode mode : kModes) {
            requests.push_back(run::RunRequest::timing(
                name, gpu::ivbConfig(mode)));
            run::RunRequest trace_request =
                run::RunRequest::functionalTrace(name);
            trace_request.config = gpu::ivbConfig(mode);
            requests.push_back(std::move(trace_request));
        }
    }
    requests.push_back(run::RunRequest::syntheticTrace("luxmark_sky"));
    requests.push_back(run::RunRequest::syntheticTrace("glbench_egypt"));
    return requests;
}

void
expectIdentical(const run::RunResult &a, const run::RunResult &b)
{
    ASSERT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.label, b.label);
    // LaunchStats leg: every counter that feeds a table.
    EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
    EXPECT_EQ(a.stats.eu.instructions, b.stats.eu.instructions);
    EXPECT_EQ(a.stats.eu.sumActiveLanes, b.stats.eu.sumActiveLanes);
    EXPECT_EQ(a.stats.eu.euCyclesByMode, b.stats.eu.euCyclesByMode);
    EXPECT_EQ(a.stats.eu.utilBins, b.stats.eu.utilBins);
    EXPECT_EQ(a.stats.l3Hits, b.stats.l3Hits);
    EXPECT_EQ(a.stats.l3Misses, b.stats.l3Misses);
    EXPECT_EQ(a.stats.dramLines, b.stats.dramLines);
    EXPECT_EQ(a.stats.dcLines, b.stats.dcLines);
    // TraceAnalysis leg.
    EXPECT_EQ(a.analysis.records, b.analysis.records);
    EXPECT_EQ(a.analysis.sumActiveLanes, b.analysis.sumActiveLanes);
    EXPECT_EQ(a.analysis.sumSimdWidth, b.analysis.sumSimdWidth);
    EXPECT_EQ(a.analysis.euCycles, b.analysis.euCycles);
    EXPECT_EQ(a.analysis.utilBins, b.analysis.utilBins);
    EXPECT_EQ(a.analysis.sccSwizzledLanes, b.analysis.sccSwizzledLanes);
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly)
{
    const auto requests = mixedSweep();

    run::SweepRunner serial({.jobs = 1});
    const auto serial_results = serial.run(requests);
    ASSERT_EQ(serial_results.size(), requests.size());

    run::SweepRunner parallel({.jobs = 4});
    EXPECT_EQ(parallel.jobs(), 4u);
    const auto parallel_results = parallel.run(requests);
    ASSERT_EQ(parallel_results.size(), requests.size());

    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i) + " (" +
                     serial_results[i].label + ")");
        expectIdentical(serial_results[i], parallel_results[i]);
    }
}

TEST(SweepRunner, RepeatedParallelRunsAreDeterministic)
{
    const auto requests = mixedSweep();
    run::SweepRunner runner({.jobs = 4});
    const auto first = runner.run(requests);
    const auto second = runner.run(requests);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        expectIdentical(first[i], second[i]);
    }
}

TEST(SweepRunner, TraceCacheRunsFunctionalExecutionOncePerWorkload)
{
    // Four modes of each workload ask for the same functional
    // analysis; only the mode differs, which the analysis covers in
    // one pass. Expect one execution per workload, the rest hits.
    std::vector<run::RunRequest> requests;
    for (const auto &name : kWorkloads) {
        for (const Mode mode : kModes) {
            run::RunRequest request =
                run::RunRequest::functionalTrace(name);
            request.config = gpu::ivbConfig(mode);
            requests.push_back(std::move(request));
        }
    }

    for (const unsigned jobs : {1u, 4u}) {
        run::SweepRunner runner({.jobs = jobs});
        const auto results = runner.run(requests);
        EXPECT_EQ(runner.lastStats().traceExecutions,
                  kWorkloads.size())
            << "jobs=" << jobs;
        EXPECT_EQ(runner.lastStats().traceCacheHits,
                  requests.size() - kWorkloads.size())
            << "jobs=" << jobs;
        // All four modes of one workload see the same analysis.
        for (std::size_t w = 0; w < kWorkloads.size(); ++w)
            for (unsigned m = 1; m < 4; ++m)
                EXPECT_EQ(results[w * 4].analysis.euCycles,
                          results[w * 4 + m].analysis.euCycles);
    }
}

TEST(SweepRunner, SyntheticTraceRequestsShareOneSynthesis)
{
    std::vector<run::RunRequest> requests = {
        run::RunRequest::syntheticTrace("luxmark_sky"),
        run::RunRequest::syntheticTrace("luxmark_sky"),
        run::RunRequest::syntheticTrace("luxmark_sky"),
    };
    run::SweepRunner runner({.jobs = 2});
    const auto results = runner.run(requests);
    EXPECT_EQ(runner.lastStats().traceExecutions, 1u);
    EXPECT_EQ(runner.lastStats().traceCacheHits, 2u);
    EXPECT_EQ(results[0].analysis.records, results[1].analysis.records);
    EXPECT_EQ(results[0].analysis.euCycles, results[2].analysis.euCycles);
}

TEST(SweepRunner, FactoryRequestsBypassTheCache)
{
    std::vector<run::RunRequest> requests;
    for (unsigned i = 0; i < 3; ++i) {
        run::RunRequest request = run::RunRequest::functionalTrace("va");
        request.factory = [](gpu::Device &dev, unsigned scale) {
            return workloads::make("va", dev, scale);
        };
        requests.push_back(std::move(request));
    }
    run::SweepRunner runner({.jobs = 2});
    const auto results = runner.run(requests);
    // Opaque builders are never shared; the cache stays cold.
    EXPECT_EQ(runner.lastStats().traceExecutions, 0u);
    EXPECT_EQ(runner.lastStats().traceCacheHits, 0u);
    EXPECT_EQ(results[0].analysis.records, results[1].analysis.records);
}

TEST(SweepRunner, ForEachVisitsEveryIndexOnce)
{
    for (const unsigned jobs : {1u, 3u, 8u}) {
        run::SweepRunner runner({.jobs = jobs});
        std::vector<std::atomic<unsigned>> visits(257);
        runner.forEach(visits.size(), [&](std::size_t i) {
            visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i].load(), 1u)
                << "jobs=" << jobs << " index " << i;
    }
}

TEST(SweepRunner, ProgressReportsEveryCompletionInOrderOfCount)
{
    std::vector<std::size_t> seen;
    run::SweepOptions options;
    options.jobs = 4;
    options.progress = [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 16u);
        seen.push_back(done); // serialized by the runner
    };
    run::SweepRunner runner(options);
    runner.forEach(16, [](std::size_t) {});
    ASSERT_EQ(seen.size(), 16u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
}

TEST(SweepRunner, TimingCheckOutputRunsReferenceCheck)
{
    run::RunRequest request =
        run::RunRequest::timing("va", gpu::ivbConfig());
    request.checkOutput = true;
    const run::RunResult result = run::executeRun(request);
    EXPECT_TRUE(result.checked);
    EXPECT_TRUE(result.checkOk);
}

TEST(SweepOptions, ParsedFromDriverOptions)
{
    const char *argv[] = {"driver", "jobs=7"};
    const OptionMap opts(2, const_cast<char **>(argv));
    const run::SweepOptions options = run::sweepOptions(opts);
    EXPECT_EQ(options.jobs, 7u);
    EXPECT_FALSE(options.progress);
    run::SweepRunner runner(options);
    EXPECT_EQ(runner.jobs(), 7u);
}

} // namespace
