/**
 * @file
 * Suite-wide smoke and consistency tests: every registered kernel
 * validates structurally, disassembles, reports a sane layout, and
 * produces identical EU-cycle accounting from the trace and timing
 * paths; LaunchStats exports cleanly to a stats group.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/disasm.hh"
#include "run/sweep_runner.hh"
#include "stats/stats.hh"
#include "trace/analyzer.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::gpu::Device;
using iwc::workloads::Entry;
using iwc::workloads::registry;
using iwc::workloads::Workload;

class KernelSmoke : public ::testing::TestWithParam<Entry>
{
};

TEST_P(KernelSmoke, BuildsValidatesAndDisassembles)
{
    Device dev;
    const Workload w = GetParam().factory(dev, 1);
    // validate() is fatal on violation; reaching here means it passed
    // at build time. Re-run it explicitly for clarity.
    w.kernel.validate();
    EXPECT_GT(w.kernel.size(), 1u);
    EXPECT_LE(w.kernel.regsUsed(), iwc::kGrfRegCount);
    EXPECT_GE(w.kernel.firstTempReg(), 1u + w.kernel.numArgs());
    EXPECT_EQ(w.args.size(), w.kernel.numArgs());
    EXPECT_GT(w.globalSize, 0u);
    EXPECT_GT(w.localSize, 0u);
    EXPECT_EQ(w.globalSize % w.localSize, 0u)
        << "suite workloads use whole workgroups";

    const std::string text = iwc::isa::kernelToString(w.kernel);
    EXPECT_NE(text.find("kernel " + w.kernel.name()),
              std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

std::string
entryName(const ::testing::TestParamInfo<Entry> &info)
{
    std::string name = info.param.name;
    for (char &c : name)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, KernelSmoke,
                         ::testing::ValuesIn(registry()), entryName);

// The cross-methodology invariant, suite-wide: trace-based analysis of
// the functional run must agree exactly with the timing EU's
// accounting for a representative mix (cheap workloads only; the
// heavier ones are covered in test_analyzer / test_integration).
class CrossMethod : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CrossMethod, TraceEqualsTimingAccounting)
{
    // Both methodology legs declared as one two-job sweep through the
    // experiment harness (the same path the bench drivers use).
    iwc::run::SweepRunner runner;
    const auto results = runner.run(
        {iwc::run::RunRequest::functionalTrace(GetParam()),
         iwc::run::RunRequest::timing(GetParam(),
                                      iwc::gpu::ivbConfig())});
    const auto &a = results[0].analysis;
    const auto &stats = results[1].stats;
    ASSERT_EQ(a.records, stats.eu.instructions);
    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m)
        EXPECT_EQ(a.euCycles[m], stats.eu.euCyclesByMode[m])
            << GetParam() << " mode " << m;
    EXPECT_EQ(a.sumActiveLanes, stats.eu.sumActiveLanes);
}

INSTANTIATE_TEST_SUITE_P(Mix, CrossMethod,
                         ::testing::Values("va", "bsort", "fwht",
                                           "gauss", "scnv", "kmeans",
                                           "path", "srad", "bop",
                                           "urng", "fw", "dwthaar"));

TEST(LaunchStatsExport, GroupContainsHeadlineScalars)
{
    Device dev;
    Workload w = iwc::workloads::make("va", dev, 1);
    const auto stats =
        dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
    iwc::stats::Group group("va");
    stats.writeTo(group);
    EXPECT_TRUE(group.hasScalar("total_cycles"));
    EXPECT_TRUE(group.hasScalar("simd_efficiency"));
    EXPECT_TRUE(group.hasScalar("eu_cycles_scc"));
    EXPECT_TRUE(group.hasScalar("dc_throughput"));
    EXPECT_DOUBLE_EQ(group.getScalar("total_cycles"),
                     static_cast<double>(stats.totalCycles));
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("va.total_cycles"), std::string::npos);
}

} // namespace
