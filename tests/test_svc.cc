/**
 * @file
 * Tests for the simulation service: canonical config encoding and
 * digests, cache keys, the wire protocol, the LRU result cache, the
 * execution engine (dedup, validation, drain), and the socket daemon
 * (golden cross-check against direct library calls, lifecycle).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "gpu/device.hh"
#include "gpu/gpu_config.hh"
#include "run/run.hh"
#include "svc/cache.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/engine.hh"
#include "svc/wire.hh"
#include "trace/analyzer.hh"
#include "tracestream/analyze.hh"
#include "tracestream/writer.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

// --- Canonical config encoding / digest ---------------------------------

/** One mutation per encoded field (keep in step with fieldTable()). */
const std::vector<std::function<void(gpu::GpuConfig &)>> &
fieldMutations()
{
    using C = gpu::GpuConfig;
    static const std::vector<std::function<void(C &)>> muts = {
        [](C &c) { c.numEus += 1; },
        [](C &c) { c.dispatchLatency += 1; },
        [](C &c) { c.maxCycles += 1; },
        [](C &c) { c.eu.numThreads += 1; },
        [](C &c) { c.eu.mode = compaction::Mode::Baseline; },
        [](C &c) { c.eu.backend = func::BackendKind::Scalar; },
        [](C &c) { c.eu.issueWidth += 1; },
        [](C &c) { c.eu.arbitrationPeriod += 1; },
        [](C &c) { c.eu.fpuLatency += 1; },
        [](C &c) { c.eu.emLatency += 1; },
        [](C &c) { c.eu.sendIssueLatency += 1; },
        [](C &c) { c.eu.writebackLatency += 1; },
        [](C &c) { c.eu.ctrlCycles += 1; },
        [](C &c) { c.eu.sendCycles += 1; },
        [](C &c) { c.mem.l3Bytes *= 2; },
        [](C &c) { c.mem.l3Ways *= 2; },
        [](C &c) { c.mem.l3Banks *= 2; },
        [](C &c) { c.mem.l3Latency += 1; },
        [](C &c) { c.mem.llcBytes *= 2; },
        [](C &c) { c.mem.llcWays *= 2; },
        [](C &c) { c.mem.llcBanks *= 2; },
        [](C &c) { c.mem.llcLatency += 1; },
        [](C &c) { c.mem.dcLinesPerCycle += 1; },
        [](C &c) { c.mem.dramLatency += 1; },
        [](C &c) { c.mem.dramCyclesPerLine += 1; },
        [](C &c) { c.mem.slmLatency += 1; },
        [](C &c) { c.mem.slmBanks *= 2; },
        [](C &c) { c.mem.slmBankBytes *= 2; },
        [](C &c) { c.mem.perfectL3 = !c.mem.perfectL3; },
    };
    return muts;
}

TEST(ConfigDigest, ValueNotAssignmentOrderDeterminesDigest)
{
    // Build the same config twice with fields assigned in opposite
    // orders; the digest depends only on the resulting values.
    gpu::GpuConfig a = gpu::ivbConfig();
    a.numEus = 8;
    a.eu.fpuLatency = 9;
    a.mem.dramLatency = 200;

    gpu::GpuConfig b = gpu::ivbConfig();
    b.mem.dramLatency = 200;
    b.eu.fpuLatency = 9;
    b.numEus = 8;

    EXPECT_EQ(gpu::encodeCanonical(a), gpu::encodeCanonical(b));
    EXPECT_EQ(gpu::configDigest(a), gpu::configDigest(b));
}

TEST(ConfigDigest, EveryFieldChangesTheDigest)
{
    const gpu::GpuConfig base = gpu::ivbConfig();
    const std::uint64_t base_digest = gpu::configDigest(base);

    std::set<std::uint64_t> digests{base_digest};
    for (std::size_t i = 0; i < fieldMutations().size(); ++i) {
        gpu::GpuConfig mutated = base;
        fieldMutations()[i](mutated);
        const std::uint64_t d = gpu::configDigest(mutated);
        EXPECT_NE(d, base_digest) << "field mutation " << i
                                  << " did not change the digest";
        digests.insert(d);
    }
    // All mutations are distinct configs; their digests must be too.
    EXPECT_EQ(digests.size(), fieldMutations().size() + 1);
}

TEST(ConfigDigest, SinkPointerIsExcluded)
{
    gpu::GpuConfig with_sink = gpu::ivbConfig();
    with_sink.sink = reinterpret_cast<obs::EventSink *>(0x1234);
    EXPECT_EQ(gpu::configDigest(with_sink),
              gpu::configDigest(gpu::ivbConfig()));
}

TEST(ConfigDigest, CanonicalRoundTrip)
{
    for (std::size_t i = 0; i < fieldMutations().size(); ++i) {
        gpu::GpuConfig config = gpu::ivbConfig();
        fieldMutations()[i](config);
        gpu::GpuConfig decoded;
        ASSERT_TRUE(gpu::decodeCanonical(gpu::encodeCanonical(config),
                                         decoded))
            << "mutation " << i;
        EXPECT_EQ(gpu::encodeCanonical(decoded),
                  gpu::encodeCanonical(config))
            << "mutation " << i;
    }
}

TEST(ConfigDigest, DecodeRejectsMalformedText)
{
    gpu::GpuConfig out;
    EXPECT_FALSE(gpu::decodeCanonical("", out));
    EXPECT_FALSE(gpu::decodeCanonical("iwc_config=2\n", out));
    EXPECT_FALSE(gpu::decodeCanonical("iwc_config=1\nbogus_key=3\n", out));

    std::string good = gpu::encodeCanonical(gpu::ivbConfig());
    EXPECT_TRUE(gpu::decodeCanonical(good, out));
    EXPECT_FALSE(gpu::decodeCanonical(good + "extra=1\n", out));

    // Malformed value on a known key.
    const std::size_t pos = good.find("num_eus=");
    ASSERT_NE(pos, std::string::npos);
    std::string bad = good;
    bad.replace(pos, std::string("num_eus=6").size(), "num_eus=abc");
    EXPECT_FALSE(gpu::decodeCanonical(bad, out));
}

// --- Kernel digest ------------------------------------------------------

TEST(KernelDigest, StableAcrossRunsAndDistinctAcrossWorkloads)
{
    const auto req = run::RunRequest::functionalTrace("micro_ifelse", 1);
    const run::RunResult first = run::executeRun(req);
    const run::RunResult second = run::executeRun(req);
    EXPECT_NE(first.kernelDigest, 0u);
    EXPECT_EQ(first.kernelDigest, second.kernelDigest);

    const run::RunResult other =
        run::executeRun(run::RunRequest::functionalTrace("va", 1));
    EXPECT_NE(other.kernelDigest, first.kernelDigest);
}

// --- Cache keys ---------------------------------------------------------

TEST(CacheKey, IdentityAndSensitivity)
{
    const auto req =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    const auto key = run::cacheKeyFor(req);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key, run::cacheKeyFor(req));

    auto scaled = req;
    scaled.scale = 2;
    EXPECT_NE(key, run::cacheKeyFor(scaled));

    auto checked = req;
    checked.checkOutput = true;
    EXPECT_NE(key, run::cacheKeyFor(checked));

    auto reconfigured = req;
    reconfigured.config.eu.mode = compaction::Mode::Baseline;
    EXPECT_NE(key, run::cacheKeyFor(reconfigured));

    auto functional = run::RunRequest::functionalTrace("micro_ifelse", 1);
    EXPECT_NE(key, run::cacheKeyFor(functional));
}

TEST(CacheKey, UncacheableRequests)
{
    auto traced =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    traced.trace = true;
    EXPECT_FALSE(run::cacheKeyFor(traced).has_value());

    run::RunRequest untagged;
    untagged.factory = [](gpu::Device &dev, unsigned scale) {
        return workloads::make("micro_ifelse", dev, scale);
    };
    untagged.workload = "custom";
    EXPECT_FALSE(run::cacheKeyFor(untagged).has_value());

    auto tagged = untagged;
    tagged.cacheTag = "custom-v1";
    ASSERT_TRUE(run::cacheKeyFor(tagged).has_value());

    // Trace capture is a filesystem side effect, and file-trace
    // replay depends on bytes outside the request: neither is
    // cacheable.
    auto capturing = run::RunRequest::functionalTrace("micro_ifelse", 1);
    ASSERT_TRUE(run::cacheKeyFor(capturing).has_value());
    capturing.captureTo = "/tmp/capture.iwct";
    EXPECT_FALSE(run::cacheKeyFor(capturing).has_value());
    EXPECT_FALSE(
        run::cacheKeyFor(run::RunRequest::fileTrace("/tmp/t.iwct"))
            .has_value());

    // A factory tag and a registry name never collide, even when the
    // strings are equal: the digests are origin-tagged.
    auto registry_req = run::RunRequest::functionalTrace("custom-v1", 1);
    registry_req.config = tagged.config;
    EXPECT_NE(run::cacheKeyFor(tagged)->workloadDigest,
              run::cacheKeyFor(registry_req)->workloadDigest);
}

// --- Wire protocol ------------------------------------------------------

TEST(Wire, SubmitRoundTrip)
{
    svc::SubmitMsg msg;
    msg.reqId = 0xfeedfacecafeull;
    msg.request =
        run::RunRequest::timing("micro_nested", gpu::ivbConfig(), 3);
    msg.request.config.eu.mode = compaction::Mode::Scc;
    msg.request.backend = func::BackendKind::Scalar;
    msg.request.checkOutput = true;
    msg.request.lint = true;
    msg.request.meld = true;
    msg.request.cacheTag = "tag";
    msg.request.tracePath = "/tmp/some.iwct";
    msg.request.traceJobs = 5;
    msg.request.captureTo = "/tmp/captured.iwct";

    svc::SubmitMsg out;
    ASSERT_TRUE(svc::decodeSubmit(svc::encodeSubmit(msg), out));
    EXPECT_EQ(out.reqId, msg.reqId);
    EXPECT_EQ(out.request.kind, msg.request.kind);
    EXPECT_EQ(out.request.workload, msg.request.workload);
    EXPECT_EQ(out.request.scale, msg.request.scale);
    EXPECT_EQ(out.request.backend, msg.request.backend);
    EXPECT_EQ(out.request.checkOutput, msg.request.checkOutput);
    EXPECT_EQ(out.request.lint, msg.request.lint);
    EXPECT_EQ(out.request.meld, msg.request.meld);
    EXPECT_EQ(out.request.cacheTag, msg.request.cacheTag);
    EXPECT_EQ(gpu::configDigest(out.request.config),
              gpu::configDigest(msg.request.config));
    EXPECT_EQ(out.request.tracePath, msg.request.tracePath);
    EXPECT_EQ(out.request.traceJobs, msg.request.traceJobs);
    EXPECT_EQ(out.request.captureTo, msg.request.captureTo);
    // The decoded request has the same cache identity.
    EXPECT_EQ(run::cacheKeyFor(out.request),
              run::cacheKeyFor(msg.request));
}

TEST(Wire, RunResultReEncodesBitIdentically)
{
    const run::RunResult result = run::executeRun(
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1));
    const std::string bytes = svc::encodeRunResult(result);

    run::RunResult decoded;
    ASSERT_TRUE(svc::decodeRunResult(bytes, decoded));
    EXPECT_EQ(svc::encodeRunResult(decoded), bytes);
    EXPECT_EQ(decoded.kind, result.kind);
    EXPECT_EQ(decoded.label, result.label);
    EXPECT_EQ(decoded.kernelDigest, result.kernelDigest);
    EXPECT_EQ(decoded.stats.totalCycles, result.stats.totalCycles);

    // Truncations never decode.
    for (std::size_t cut = 0; cut < bytes.size();
         cut += 1 + bytes.size() / 37)
        EXPECT_FALSE(svc::decodeRunResult(bytes.substr(0, cut), decoded));
}

TEST(Wire, ErrorAndStatsRoundTrip)
{
    svc::ErrorMsg err{7, svc::Status::UntaggedFactory, "no tag"};
    svc::ErrorMsg err_out;
    ASSERT_TRUE(svc::decodeError(svc::encodeError(err), err_out));
    EXPECT_EQ(err_out.reqId, 7u);
    EXPECT_EQ(err_out.status, svc::Status::UntaggedFactory);
    EXPECT_EQ(err_out.message, "no tag");

    svc::StatsSnapshot stats{};
    stats.submitted = 1;
    stats.cacheHits = 2;
    stats.coalesced = 3;
    stats.cacheEvictions = 4;
    svc::StatsSnapshot stats_out{};
    ASSERT_TRUE(svc::decodeStats(svc::encodeStats(stats), stats_out));
    EXPECT_EQ(stats_out.submitted, 1u);
    EXPECT_EQ(stats_out.cacheHits, 2u);
    EXPECT_EQ(stats_out.coalesced, 3u);
    EXPECT_EQ(stats_out.cacheEvictions, 4u);
}

TEST(Wire, FramesOverAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(svc::writeFrame(fds[1], svc::MsgType::Ping, "abc"));
    svc::MsgType type;
    std::string payload;
    ASSERT_TRUE(svc::readFrame(fds[0], type, payload));
    EXPECT_EQ(type, svc::MsgType::Ping);
    EXPECT_EQ(payload, "abc");

    // Oversized frames are refused without reading the payload.
    ASSERT_TRUE(svc::writeFrame(fds[1], svc::MsgType::Ping, "abcdef"));
    EXPECT_FALSE(svc::readFrame(fds[0], type, payload, 3));
    ::close(fds[0]);
    ::close(fds[1]);
}

// --- Result cache (LRU) -------------------------------------------------

run::CacheKey
keyNo(std::uint64_t n)
{
    run::CacheKey key;
    key.workloadDigest = n;
    key.configDigest = ~n;
    return key;
}

svc::ResultBytes
bytesOf(const std::string &s)
{
    return std::make_shared<const std::string>(s);
}

TEST(ResultCache, BoundedLruEviction)
{
    svc::ResultCache cache(2);
    cache.put(keyNo(1), bytesOf("one"));
    cache.put(keyNo(2), bytesOf("two"));

    // Touch 1 so 2 is the LRU entry when 3 arrives.
    EXPECT_NE(cache.get(keyNo(1)), nullptr);
    cache.put(keyNo(3), bytesOf("three"));

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_NE(cache.get(keyNo(1)), nullptr);
    EXPECT_EQ(cache.get(keyNo(2)), nullptr);
    EXPECT_NE(cache.get(keyNo(3)), nullptr);
    EXPECT_EQ(*cache.get(keyNo(3)), "three");
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

TEST(ResultCache, ZeroCapacityDisables)
{
    svc::ResultCache cache(0);
    cache.put(keyNo(1), bytesOf("one"));
    EXPECT_EQ(cache.get(keyNo(1)), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

// --- Engine -------------------------------------------------------------

svc::EngineOptions
smallEngine(unsigned workers = 1)
{
    svc::EngineOptions options;
    options.workers = workers;
    options.queues = 2;
    options.maxQueueDepth = 64;
    options.cacheEntries = 64;
    options.maxScale = 8;
    return options;
}

/** Collects replies across threads and waits for a target count. */
class ReplyCollector
{
  public:
    svc::ReplyFn
    fn()
    {
        return [this](const svc::Reply &reply) {
            const std::lock_guard<std::mutex> lock(mutex_);
            replies_.push_back(reply);
            cv_.notify_all();
        };
    }

    void
    waitFor(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return replies_.size() >= n; });
    }

    std::vector<svc::Reply>
    replies()
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return replies_;
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<svc::Reply> replies_;
};

TEST(Engine, IdenticalInFlightRequestsCoalesceOntoOneSimulation)
{
    constexpr std::size_t kClients = 8;
    const auto req =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);

    svc::Engine engine(smallEngine(2));
    ReplyCollector collector;
    // Submit before start(): all requests are queued, so dedup is
    // deterministic — exactly one is a miss, the rest coalesce.
    for (std::size_t i = 0; i < kClients; ++i)
        engine.submit(req, i, collector.fn());
    engine.start();
    collector.waitFor(kClients);
    engine.stop();

    const obs::ServiceStats stats = engine.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.coalesced, kClients - 1);
    EXPECT_EQ(stats.completed, kClients);

    const std::vector<svc::Reply> replies = collector.replies();
    ASSERT_EQ(replies.size(), kClients);
    for (const svc::Reply &reply : replies) {
        ASSERT_EQ(reply.status, svc::Status::Ok);
        ASSERT_NE(reply.result, nullptr);
        // Bit-identical: the same bytes object, not merely equal.
        EXPECT_EQ(reply.result, replies.front().result);
    }
}

TEST(Engine, ConcurrentSubmittersRunOneSimulation)
{
    constexpr std::size_t kThreads = 8;
    const auto req =
        run::RunRequest::timing("micro_nested", gpu::ivbConfig(), 1);

    svc::Engine engine(smallEngine(2));
    engine.start();

    std::vector<std::string> bytes(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kThreads; ++i)
        threads.emplace_back([&, i] {
            const svc::Reply reply = engine.call(req, i);
            ASSERT_EQ(reply.status, svc::Status::Ok);
            bytes[i] = *reply.result;
        });
    for (std::thread &t : threads)
        t.join();
    engine.stop();

    // However the submissions interleaved (one miss + coalesces
    // and/or cache hits), exactly one simulation ran...
    EXPECT_EQ(engine.stats().executed, 1u);
    // ...and every thread got bit-identical result bytes.
    for (const std::string &b : bytes)
        EXPECT_EQ(b, bytes.front());
}

TEST(Engine, RepeatRequestHitsTheCache)
{
    const auto req =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    svc::Engine engine(smallEngine());
    engine.start();
    const svc::Reply first = engine.call(req);
    const svc::Reply second = engine.call(req);
    engine.stop();

    ASSERT_EQ(first.status, svc::Status::Ok);
    ASSERT_EQ(second.status, svc::Status::Ok);
    EXPECT_EQ(second.result, first.result); // same bytes object
    EXPECT_EQ(engine.stats().executed, 1u);
    EXPECT_EQ(engine.stats().cacheHits, 1u);
}

TEST(Engine, ValidationRejectsBeforeExecution)
{
    svc::Engine engine(smallEngine());
    engine.start();

    auto unknown =
        run::RunRequest::timing("no_such_workload", gpu::ivbConfig(), 1);
    EXPECT_EQ(engine.call(unknown).status, svc::Status::BadRequest);

    auto traced =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    traced.trace = true;
    EXPECT_EQ(engine.call(traced).status, svc::Status::Unsupported);

    auto oversized =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 99);
    EXPECT_EQ(engine.call(oversized).status, svc::Status::BadRequest);

    auto degenerate =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    degenerate.config.numEus = 0;
    EXPECT_EQ(engine.call(degenerate).status, svc::Status::BadRequest);

    // Server-side filesystem access on a client's behalf is refused:
    // replaying arbitrary paths and writing client-chosen paths both.
    EXPECT_EQ(engine.call(run::RunRequest::fileTrace("/etc/passwd"))
                  .status,
              svc::Status::Unsupported);
    auto capturing =
        run::RunRequest::functionalTrace("micro_ifelse", 1);
    capturing.captureTo = "/tmp/evil.iwct";
    EXPECT_EQ(engine.call(capturing).status, svc::Status::Unsupported);

    engine.stop();
    EXPECT_EQ(engine.stats().executed, 0u);
}

TEST(Engine, CaptureDirPersistsExecutedTraces)
{
    const std::string dir =
        ::testing::TempDir() + "/iwc_capture_dir_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    svc::EngineOptions options = smallEngine();
    options.captureDir = dir;
    svc::Engine engine(options);
    engine.start();

    const auto req =
        run::RunRequest::functionalTrace("micro_ifelse", 1);
    ASSERT_EQ(engine.call(req).status, svc::Status::Ok);
    // Identical request: served from cache, no second capture file.
    ASSERT_EQ(engine.call(req).status, svc::Status::Ok);
    engine.stop();
    EXPECT_EQ(engine.stats().executed, 1u);

    std::vector<std::filesystem::path> captures;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        captures.push_back(e.path());
    ASSERT_EQ(captures.size(), 1u);
    EXPECT_TRUE(
        tracestream::isContainerFile(captures[0].string()));

    // The persisted container replays to the same analysis the
    // in-process run would produce.
    gpu::Device dev;
    const auto w = workloads::make("micro_ifelse", dev, 1);
    trace::MaskTrace t;
    dev.launchFunctional(w.kernel, w.globalSize, w.localSize, w.args,
                         trace::captureObserver(t));
    const trace::TraceAnalysis direct = trace::analyzeTrace(t);
    const trace::TraceAnalysis replayed =
        tracestream::analyzeTraceStream(captures[0].string());
    EXPECT_EQ(direct.records, replayed.records);
    EXPECT_EQ(direct.euCycles, replayed.euCycles);
    std::filesystem::remove_all(dir);
}

TEST(Engine, UntaggedFactoryIsRejectedExplicitly)
{
    svc::Engine engine(smallEngine());
    engine.start();

    run::RunRequest req;
    req.kind = run::JobKind::FunctionalTrace;
    req.workload = "custom";
    req.factory = [](gpu::Device &dev, unsigned scale) {
        return workloads::make("micro_ifelse", dev, scale);
    };
    const svc::Reply rejected = engine.call(req);
    EXPECT_EQ(rejected.status, svc::Status::UntaggedFactory);
    EXPECT_FALSE(rejected.message.empty());

    // The same request with an asserted identity runs and caches.
    req.cacheTag = "custom-micro-v1";
    const svc::Reply first = engine.call(req);
    const svc::Reply second = engine.call(req);
    engine.stop();

    ASSERT_EQ(first.status, svc::Status::Ok);
    ASSERT_EQ(second.status, svc::Status::Ok);
    EXPECT_EQ(engine.stats().executed, 1u);
    EXPECT_EQ(engine.stats().rejectedUntagged, 1u);
}

TEST(Engine, DrainCompletesQueuedJobsAndRefusesNewOnes)
{
    const auto req =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    svc::Engine engine(smallEngine());
    ReplyCollector collector;
    engine.submit(req, 0, collector.fn()); // queued; workers not started
    engine.start();
    engine.stop(); // must deliver the queued reply, not drop it
    collector.waitFor(1);
    EXPECT_EQ(collector.replies().front().status, svc::Status::Ok);

    const svc::Reply late = engine.call(req);
    EXPECT_EQ(late.status, svc::Status::ShuttingDown);
}

TEST(Engine, FullQueueRepliesBusy)
{
    svc::EngineOptions options = smallEngine();
    options.maxQueueDepth = 1;
    svc::Engine engine(options); // never started: jobs stay queued
    ReplyCollector collector;

    const auto a =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    auto b = a;
    b.scale = 2; // distinct key: cannot coalesce with a
    engine.submit(a, 0, collector.fn());

    std::atomic<bool> got_busy{false};
    engine.submit(b, 0, [&](const svc::Reply &reply) {
        if (reply.status == svc::Status::Busy)
            got_busy = true;
    });
    EXPECT_TRUE(got_busy);
    EXPECT_EQ(engine.stats().rejectedBusy, 1u);

    engine.start();
    engine.stop();
    collector.waitFor(1);
}

// --- Daemon over a real socket ------------------------------------------

std::string
testSocketPath(const char *tag)
{
    return "/tmp/iwc_test_" + std::string(tag) + "." +
           std::to_string(::getpid()) + ".sock";
}

svc::DaemonOptions
daemonOptions(const std::string &socket_path)
{
    svc::DaemonOptions options;
    options.socketPath = socket_path;
    options.engine = smallEngine(2);
    return options;
}

TEST(Daemon, ServesBitIdenticalResultsToDirectLibraryCalls)
{
    const std::string path = testSocketPath("golden");
    svc::Daemon daemon(daemonOptions(path));
    daemon.start();

    const std::vector<run::RunRequest> requests = {
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1),
        run::RunRequest::timing(
            "va", gpu::ivbConfig(compaction::Mode::Scc), 1),
        run::RunRequest::functionalTrace("micro_nested", 1),
        run::RunRequest::syntheticTrace("tree_search"),
    };

    svc::Client client;
    ASSERT_TRUE(client.connect(path, 5000));
    ASSERT_TRUE(client.ping());
    for (const run::RunRequest &req : requests) {
        svc::ClientReply reply;
        ASSERT_TRUE(client.call(req, reply));
        ASSERT_EQ(reply.status, svc::Status::Ok) << reply.message;
        // The golden cross-check: daemon bytes == a direct local
        // executeRun, serialized the same way.
        EXPECT_EQ(reply.raw, svc::encodeRunResult(run::executeRun(req)));

        // And a repeat is served from cache with the same bytes.
        svc::ClientReply repeat;
        ASSERT_TRUE(client.call(req, repeat));
        EXPECT_EQ(repeat.raw, reply.raw);
    }

    svc::StatsSnapshot stats{};
    ASSERT_TRUE(client.stats(stats));
    EXPECT_EQ(stats.executed, requests.size());
    EXPECT_GE(stats.cacheHits, requests.size());

    client.close();
    daemon.requestStop();
    daemon.serveUntilStopped();
    daemon.stop();
}

TEST(Daemon, ShutdownFrameDrainsAndStops)
{
    const std::string path = testSocketPath("shutdown");
    svc::Daemon daemon(daemonOptions(path));
    daemon.start();

    svc::Client client;
    ASSERT_TRUE(client.connect(path, 5000));
    svc::ClientReply reply;
    ASSERT_TRUE(client.call(
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1),
        reply));
    ASSERT_EQ(reply.status, svc::Status::Ok);
    ASSERT_TRUE(client.shutdownDaemon());

    daemon.serveUntilStopped(); // returns because of the frame
    daemon.stop();

    // The socket is gone and new submissions are refused.
    svc::Client late;
    EXPECT_FALSE(late.connect(path));
    EXPECT_EQ(daemon.engine().call(run::RunRequest::timing(
                                       "micro_ifelse", gpu::ivbConfig(), 1))
                  .status,
              svc::Status::ShuttingDown);
}

TEST(Daemon, CleansStaleSocketOnStartup)
{
    const std::string path = testSocketPath("stale");
    // Fake a crashed daemon: a bound socket file nobody listens on.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd); // closed but never unlinked: stale

    svc::Daemon daemon(daemonOptions(path));
    daemon.start(); // must replace the stale socket, not fail
    svc::Client client;
    ASSERT_TRUE(client.connect(path, 5000));
    EXPECT_TRUE(client.ping());
    client.close();
    daemon.requestStop();
    daemon.serveUntilStopped();
    daemon.stop();
}

} // namespace
