/** @file Unit tests for memory coalescing and SLM conflict analysis. */

#include <gtest/gtest.h>

#include "mem/coalescer.hh"

namespace
{

using iwc::Addr;
using iwc::func::MemAccess;
using iwc::isa::SendOp;
using iwc::mem::coalesceLines;
using iwc::mem::slmConflictDegree;

MemAccess
gather16(Addr base, Addr stride, unsigned elem_bytes = 4)
{
    MemAccess acc;
    acc.op = SendOp::GatherLoad;
    acc.elemBytes = elem_bytes;
    acc.mask = 0xffff;
    for (unsigned ch = 0; ch < 16; ++ch)
        acc.addrs[ch] = base + ch * stride;
    return acc;
}

TEST(Coalescer, UnitStrideIsOneLine)
{
    const auto lines = coalesceLines(gather16(0x1000, 4));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, UnalignedUnitStrideSpansTwoLines)
{
    const auto lines = coalesceLines(gather16(0x1020, 4));
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Coalescer, LineStrideIsFullyDivergent)
{
    const auto lines = coalesceLines(gather16(0x1000, 64));
    EXPECT_EQ(lines.size(), 16u);
}

TEST(Coalescer, DuplicateAddressesCollapse)
{
    MemAccess acc = gather16(0x1000, 0); // broadcast
    const auto lines = coalesceLines(acc);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(Coalescer, MaskedChannelsIgnored)
{
    MemAccess acc = gather16(0x1000, 64);
    acc.mask = 0x0003;
    EXPECT_EQ(coalesceLines(acc).size(), 2u);
    acc.mask = 0;
    EXPECT_TRUE(coalesceLines(acc).empty());
}

TEST(Coalescer, StraddlingElementCountsBothLines)
{
    MemAccess acc;
    acc.op = SendOp::GatherLoad;
    acc.elemBytes = 8;
    acc.mask = 0x1;
    acc.addrs[0] = 60; // 8B element crossing line 0 into line 1
    const auto lines = coalesceLines(acc);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 64u);
}

TEST(Coalescer, BlockAccessCoversItsRange)
{
    MemAccess acc;
    acc.op = SendOp::BlockLoad;
    acc.isBlock = true;
    acc.blockAddr = 0x1010;
    acc.blockBytes = 128;
    const auto lines = coalesceLines(acc);
    ASSERT_EQ(lines.size(), 3u); // 0x1000, 0x1040, 0x1080
    EXPECT_EQ(lines.front(), 0x1000u);
    EXPECT_EQ(lines.back(), 0x1080u);
}

TEST(SlmConflicts, UnitStrideConflictFree)
{
    const auto acc = gather16(0, 4);
    EXPECT_EQ(slmConflictDegree(acc, 16, 4), 1u);
}

TEST(SlmConflicts, PowerOfTwoStrideSerializes)
{
    // Stride of 16 words over 16 banks: all channels hit bank 0.
    const auto acc = gather16(0, 64);
    EXPECT_EQ(slmConflictDegree(acc, 16, 4), 16u);
}

TEST(SlmConflicts, BroadcastDoesNotConflict)
{
    const auto acc = gather16(0x40, 0);
    EXPECT_EQ(slmConflictDegree(acc, 16, 4), 1u);
}

TEST(SlmConflicts, TwoWayConflict)
{
    // Stride of 2 words over 16 banks: 16 channels land on 8 banks,
    // two distinct words each.
    const auto acc = gather16(0, 8);
    EXPECT_EQ(slmConflictDegree(acc, 16, 4), 2u);
}

TEST(SlmConflicts, EightWayConflict)
{
    // Stride of 8 words: channels alternate between banks 0 and 8.
    const auto acc = gather16(0, 32);
    EXPECT_EQ(slmConflictDegree(acc, 16, 4), 8u);
}

} // namespace
