/**
 * @file
 * Cycle-exactness gate for the event-driven simulation engine: the
 * next-event calendar must reproduce the reference per-cycle polling
 * loop bit for bit — every LaunchStats field, every workload, every
 * compaction mode, both functional backends. "Bit-identical" is
 * checked as byte-equal wire encodings (svc::encodeRunResult), the
 * same canonical representation the result cache stores.
 *
 * Also gates SweepRunner determinism: a jobs=4 run returns results
 * byte-identical to jobs=1 and to serial executeRun calls, including
 * points routed through shared multi-mode compare jobs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compaction/mask_info.hh"
#include "gpu/gpu_config.hh"
#include "run/run.hh"
#include "run/sweep_runner.hh"
#include "svc/wire.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::compaction::kNumModes;
using iwc::compaction::Mode;
using iwc::func::BackendKind;
using iwc::gpu::ivbConfig;
using iwc::gpu::SimEngine;
using iwc::run::executeRun;
using iwc::run::RunRequest;
using iwc::run::RunResult;
using iwc::run::SweepOptions;
using iwc::run::SweepRunner;
using iwc::svc::encodeRunResult;

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const iwc::workloads::Entry &e : iwc::workloads::registry())
        names.emplace_back(e.name);
    return names;
}

class SimEngines : public ::testing::TestWithParam<std::string>
{
};

// The event engine is an optimization of the reference loop, not an
// approximation: for every workload, compaction mode, and functional
// backend the two engines must agree on every statistic, including
// total cycles, per-mode EU cycles, cache hit counts, and the idle
// bookkeeping only the event engine meaningfully exercises.
TEST_P(SimEngines, EventMatchesReferenceEveryModeAndBackend)
{
    const std::string &name = GetParam();
    for (const BackendKind backend :
         {BackendKind::Scalar, BackendKind::Vector}) {
        for (unsigned m = 0; m < kNumModes; ++m) {
            RunRequest req = RunRequest::timing(
                name, ivbConfig(static_cast<Mode>(m)));
            req.backend = backend;

            req.config.engine = SimEngine::Reference;
            const std::string ref = encodeRunResult(executeRun(req));
            req.config.engine = SimEngine::Event;
            const std::string event = encodeRunResult(executeRun(req));

            EXPECT_EQ(ref, event)
                << name << " mode " << m << " backend "
                << iwc::func::backendKindName(backend);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SimEngines, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// A parallel sweep must be indistinguishable from a serial one — and
// both must match individual executeRun calls even when the runner
// routes mode-only-differing points through one shared compare job.
TEST(SweepDeterminism, ParallelRunBitIdenticalToSerialAndDirect)
{
    std::vector<RunRequest> requests;
    for (const char *name : {"va", "bfs", "micro_ifelse"})
        for (unsigned m = 0; m < kNumModes; ++m)
            requests.push_back(RunRequest::timing(
                name, ivbConfig(static_cast<Mode>(m))));
    requests.push_back(RunRequest::functionalTrace("dp"));
    requests.push_back(RunRequest::syntheticTrace("cp"));

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    SweepRunner serial(serial_opts);
    const std::vector<RunResult> a = serial.run(requests);

    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    SweepRunner parallel(parallel_opts);
    const std::vector<RunResult> b = parallel.run(requests);

    ASSERT_EQ(a.size(), requests.size());
    ASSERT_EQ(b.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::string direct =
            encodeRunResult(executeRun(requests[i]));
        EXPECT_EQ(encodeRunResult(a[i]), direct) << "request " << i;
        EXPECT_EQ(encodeRunResult(b[i]), direct) << "request " << i;
    }

    // The three mode-quads each ran as ONE compare job per runner.
    EXPECT_EQ(serial.lastStats().compareExecutions, 3u);
    EXPECT_EQ(serial.lastStats().comparePoints, 12u);
    EXPECT_EQ(parallel.lastStats().compareExecutions, 3u);
    EXPECT_EQ(parallel.lastStats().comparePoints, 12u);
}

} // namespace
