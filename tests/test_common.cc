/** @file Unit tests for the common substrate (bits, rng, options). */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace
{

using namespace iwc;

TEST(BitUtil, LaneMaskForWidth)
{
    EXPECT_EQ(laneMaskForWidth(0), 0u);
    EXPECT_EQ(laneMaskForWidth(1), 0x1u);
    EXPECT_EQ(laneMaskForWidth(8), 0xffu);
    EXPECT_EQ(laneMaskForWidth(16), 0xffffu);
    EXPECT_EQ(laneMaskForWidth(32), 0xffffffffu);
}

TEST(BitUtil, ExtractGroup)
{
    EXPECT_EQ(extractGroup(0xf0f0, 0, 4), 0x0u);
    EXPECT_EQ(extractGroup(0xf0f0, 1, 4), 0xfu);
    EXPECT_EQ(extractGroup(0xabcd, 2, 4), 0xbu);
    EXPECT_EQ(extractGroup(0xabcd, 0, 8), 0xcdu);
}

TEST(BitUtil, CeilDivAndLog2)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(48));
    EXPECT_FALSE(isPow2(0));
}

TEST(BitUtil, Align)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, RangesRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng rng(11);
    unsigned buckets[10] = {};
    for (int i = 0; i < 10000; ++i)
        ++buckets[rng.below(10)];
    for (const unsigned count : buckets) {
        EXPECT_GT(count, 800u);
        EXPECT_LT(count, 1200u);
    }
}

TEST(OptionMap, ParsesKeyValueArgs)
{
    const char *argv[] = {"prog", "mode=scc", "eus=12", "ratio=0.5",
                          "flag=true", "not-an-option"};
    OptionMap opts(6, const_cast<char **>(argv));
    EXPECT_EQ(opts.getString("mode", "x"), "scc");
    EXPECT_EQ(opts.getInt("eus", 0), 12);
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio", 0), 0.5);
    EXPECT_TRUE(opts.getBool("flag", false));
    EXPECT_FALSE(opts.has("not-an-option"));
    EXPECT_EQ(opts.getInt("missing", 7), 7);
}

TEST(OptionMap, SetOverrides)
{
    OptionMap opts;
    opts.set("k", "1");
    EXPECT_EQ(opts.getInt("k", 0), 1);
    opts.set("k", "2");
    EXPECT_EQ(opts.getInt("k", 0), 2);
}

} // namespace
