/** @file Tests for the register-file area model (Section 4.3). */

#include <gtest/gtest.h>

#include "compaction/rf_area.hh"

namespace
{

using namespace iwc::compaction;

TEST(RfArea, BaselineNormalizesToOne)
{
    EXPECT_DOUBLE_EQ(rfAreaRelative(baselineRf()), 1.0);
}

TEST(RfArea, PaperOrderingHolds)
{
    const double bcc = rfAreaRelative(bccRf());
    const double scc = rfAreaRelative(sccRf());
    const double per_lane = rfAreaRelative(perLaneRf());

    // Section 4.3: BCC RF ~ +10% over baseline.
    EXPECT_GT(bcc, 1.05);
    EXPECT_LT(bcc, 1.15);
    // Inter-warp per-lane banking costs more than +40%.
    EXPECT_GT(per_lane, 1.40);
    // "the register file for SCC is wider but shorter than the
    // baseline" -> no area increase.
    EXPECT_LT(scc, 1.0);
    EXPECT_GT(scc, 0.9);
}

TEST(RfArea, AreaGrowsWithCapacity)
{
    RfOrganization big = baselineRf();
    big.rows *= 2;
    EXPECT_GT(rfArea(big), rfArea(baselineRf()) * 1.9);
}

TEST(RfArea, PortsArePricey)
{
    RfOrganization dual = baselineRf();
    dual.ports = 2;
    EXPECT_GT(rfArea(dual), rfArea(baselineRf()) * 1.5);
}

TEST(RfArea, BankingAddsPeriphery)
{
    // Same bits, split into 4 banks: strictly more area.
    RfOrganization banked = baselineRf();
    banked.banks = 4;
    banked.rows /= 4;
    EXPECT_GT(rfArea(banked), rfArea(baselineRf()));
}

TEST(RfArea, RejectsDegenerateOrganizations)
{
    RfOrganization bad;
    bad.rows = 0;
    EXPECT_DEATH(rfArea(bad), "degenerate");
}

} // namespace
