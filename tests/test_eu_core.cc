/** @file Tests for the EU timing core: issue, pipes, compaction. */

#include <gtest/gtest.h>

#include "eu/eu_core.hh"
#include "isa/builder.hh"

namespace
{

using iwc::Cycle;
using iwc::compaction::Mode;
using iwc::eu::DispatchInfo;
using iwc::eu::EuConfig;
using iwc::eu::EuCore;
using iwc::eu::GpuHooks;
using iwc::func::GlobalMemory;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

struct TestHooks : GpuHooks
{
    int barriers = 0;
    int done = 0;
    int lastBarrierWg = -1;

    void
    onBarrierArrive(int wg_id) override
    {
        ++barriers;
        lastBarrierWg = wg_id;
    }

    void onThreadDone(int) override { ++done; }
};

/** One-EU harness with a bound kernel and manual clocking. */
class EuHarness
{
  public:
    EuHarness(Kernel kernel, Mode mode,
              std::vector<std::uint32_t> args = {})
        : kernel_(std::move(kernel)), args_(std::move(args))
    {
        config_.mode = mode;
        mem_ = std::make_unique<iwc::mem::MemSystem>(memConfig_);
        eu_ = std::make_unique<EuCore>(0, config_, *mem_, hooks_);
        eu_->bindKernel(kernel_, gmem_);
    }

    void
    dispatchThread(unsigned subgroup = 0)
    {
        DispatchInfo info;
        info.wgId = 0;
        info.subgroupIndex = subgroup;
        info.globalIdBase = subgroup * kernel_.simdWidth();
        info.localIdBase = subgroup * kernel_.simdWidth();
        info.dispatchMask =
            iwc::laneMaskForWidth(kernel_.simdWidth());
        info.argWords = &args_;
        info.localSize = 64;
        info.globalSize = 64;
        info.numGroups = 1;
        info.subgroupsPerGroup = 4;
        eu_->dispatch(info);
    }

    /** Ticks until idle; returns elapsed cycles. */
    Cycle
    runToIdle(Cycle limit = 1000000)
    {
        Cycle c = 0;
        while (!eu_->idle()) {
            eu_->tick(c);
            ++c;
            EXPECT_LT(c, limit) << "EU did not drain";
            if (c >= limit)
                break;
        }
        return c;
    }

    GlobalMemory gmem_;
    Kernel kernel_;
    std::vector<std::uint32_t> args_;
    EuConfig config_;
    iwc::mem::MemConfig memConfig_;
    std::unique_ptr<iwc::mem::MemSystem> mem_;
    TestHooks hooks_;
    std::unique_ptr<EuCore> eu_;
};

Kernel
aluKernel(unsigned adds)
{
    KernelBuilder b("alu", 16);
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    b.mov(x, b.f(1.0f));
    b.mov(y, b.f(2.0f));
    for (unsigned i = 0; i < adds; ++i)
        b.add(i % 2 ? x : y, x, y);
    return b.build();
}

/** If/else kernel whose lane pattern is known statically. */
Kernel
divergentKernel(unsigned flops)
{
    KernelBuilder b("div", 16);
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(x, b.f(1.0f));
    // Pattern 0x1111: one active lane per quad.
    auto bit = b.tmp(DataType::UD);
    b.and_(bit, lane, b.ud(3));
    b.cmp(CondMod::Eq, 0, bit, b.ud(0));
    b.if_(0);
    for (unsigned i = 0; i < flops; ++i)
        b.mad(x, x, b.f(1.01f), b.f(0.1f));
    b.endif_();
    return b.build();
}

TEST(EuCoreTest, RunsKernelAndRetiresThread)
{
    EuHarness h(aluKernel(10), Mode::IvbOpt);
    h.dispatchThread();
    h.runToIdle();
    EXPECT_EQ(h.hooks_.done, 1);
    EXPECT_EQ(h.eu_->stats().threadsRetired, 1u);
    // 12 ALU movs/adds + halt.
    EXPECT_EQ(h.eu_->stats().instructions, 13u);
    EXPECT_EQ(h.eu_->stats().aluInstructions, 12u);
    EXPECT_EQ(h.eu_->stats().ctrlInstructions, 1u);
}

TEST(EuCoreTest, EuCycleStatsOrderedAcrossModes)
{
    EuHarness h(divergentKernel(16), Mode::IvbOpt);
    h.dispatchThread();
    h.runToIdle();
    const auto &s = h.eu_->stats();
    EXPECT_GE(s.euCycles(Mode::Baseline), s.euCycles(Mode::IvbOpt));
    EXPECT_GE(s.euCycles(Mode::IvbOpt), s.euCycles(Mode::Bcc));
    EXPECT_GT(s.euCycles(Mode::Bcc), s.euCycles(Mode::Scc));
}

TEST(EuCoreTest, SccShortensFpuOccupancy)
{
    // The 0x1111 pattern needs SCC: BCC cannot skip any quad.
    EuHarness base(divergentKernel(32), Mode::Bcc);
    base.dispatchThread();
    base.runToIdle();

    EuHarness scc(divergentKernel(32), Mode::Scc);
    scc.dispatchThread();
    scc.runToIdle();

    EXPECT_LT(scc.eu_->fpu().busyCycles(),
              base.eu_->fpu().busyCycles());
    EXPECT_GT(scc.eu_->stats().sccSwizzledLanes, 0u);
}

TEST(EuCoreTest, DualThreadsOverlapExecution)
{
    EuHarness h(aluKernel(40), Mode::IvbOpt);
    h.dispatchThread(0);
    const Cycle together_start = 0;
    (void)together_start;
    h.dispatchThread(1);
    const Cycle both = h.runToIdle();

    EuHarness single(aluKernel(40), Mode::IvbOpt);
    single.dispatchThread(0);
    const Cycle one = single.runToIdle();

    // Two threads on one EU take far less than twice one thread
    // (different threads hide each other's dependency stalls).
    EXPECT_LT(both, 2 * one);
    EXPECT_EQ(h.hooks_.done, 2);
}

TEST(EuCoreTest, BarrierParksThreadUntilRelease)
{
    KernelBuilder b("bar", 16);
    auto x = b.tmp(DataType::F);
    b.mov(x, b.f(1.0f));
    b.barrier();
    b.add(x, x, b.f(1.0f));
    EuHarness h(b.build(), Mode::IvbOpt);
    h.dispatchThread();

    Cycle c = 0;
    while (h.hooks_.barriers == 0 && c < 1000) {
        h.eu_->tick(c);
        ++c;
    }
    ASSERT_EQ(h.hooks_.barriers, 1);
    EXPECT_FALSE(h.eu_->idle());

    // Without a release the thread stays parked.
    for (Cycle i = 0; i < 100; ++i)
        h.eu_->tick(c + i);
    EXPECT_EQ(h.hooks_.done, 0);

    h.eu_->releaseBarrier(0, c + 100);
    for (Cycle i = 0; i < 200 && !h.eu_->idle(); ++i)
        h.eu_->tick(c + 101 + i);
    EXPECT_EQ(h.hooks_.done, 1);
}

TEST(EuCoreTest, LoadLatencyStallsDependentInstruction)
{
    KernelBuilder b("ld", 16);
    auto buf = b.argBuffer("buf");
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::F);
    b.mad(addr, b.localId(), b.ud(4), buf);
    b.gatherLoad(v, addr, DataType::F);
    b.add(v, v, b.f(1.0f)); // depends on the load
    Kernel k = b.build();

    GlobalMemory probe;
    EuHarness h(std::move(k), Mode::IvbOpt, {0});
    const iwc::Addr base = h.gmem_.allocate(64);
    h.args_[0] = static_cast<std::uint32_t>(base);
    h.dispatchThread();
    const Cycle total = h.runToIdle();
    // A cold DRAM miss dominates: far beyond pure ALU time.
    EXPECT_GT(total, h.memConfig_.dramLatency);
    EXPECT_EQ(h.eu_->stats().memMessages, 1u);
}

TEST(EuCoreTest, IssueBandwidthLimitsIndependentStream)
{
    // Fully compressed (0-cycle) work cannot beat the issue rate.
    EuConfig narrow;
    narrow.issueWidth = 1;
    narrow.arbitrationPeriod = 2; // 1 instruction per 2 cycles
    EuHarness h(aluKernel(32), Mode::IvbOpt);
    h.config_ = narrow;
    h.eu_ = std::make_unique<EuCore>(0, narrow, *h.mem_, h.hooks_);
    h.eu_->bindKernel(h.kernel_, h.gmem_);
    h.dispatchThread();
    const Cycle total = h.runToIdle();
    // 33+ instructions at 1 per 2 cycles.
    EXPECT_GE(total, 2 * 33u);
}

TEST(EuCoreTest, FreeSlotAccounting)
{
    EuHarness h(aluKernel(4), Mode::IvbOpt);
    EXPECT_EQ(h.eu_->numFreeSlots(), h.config_.numThreads);
    h.dispatchThread(0);
    h.dispatchThread(1);
    EXPECT_EQ(h.eu_->numFreeSlots(), h.config_.numThreads - 2);
    h.runToIdle();
    EXPECT_EQ(h.eu_->numFreeSlots(), h.config_.numThreads);
}

} // namespace
