/** @file Tests for the dynamic-energy model (Section 4.3 claims). */

#include <gtest/gtest.h>

#include "compaction/energy.hh"

namespace
{

using namespace iwc::compaction;

ExecShape
shape16(iwc::LaneMask mask)
{
    return ExecShape{16, 4, mask};
}

TEST(EnergyModel, CoherentMaskCostsEqualAcrossModes)
{
    EnergyModel model;
    model.addAlu(shape16(0xffff), 2);
    EXPECT_DOUBLE_EQ(model.relative(Mode::IvbOpt), 1.0);
    EXPECT_DOUBLE_EQ(model.relative(Mode::Bcc), 1.0);
    EXPECT_DOUBLE_EQ(model.relative(Mode::Scc), 1.0);
}

TEST(EnergyModel, BccSavesCyclesAndFetches)
{
    EnergyModel model;
    model.addAlu(shape16(0x000f), 2); // one live quad
    const auto &base = model.breakdown(Mode::Baseline);
    const auto &bcc = model.breakdown(Mode::Bcc);
    // 4 cycles -> 1 cycle of overhead and of fetch.
    EXPECT_DOUBLE_EQ(bcc.cycleOverhead, base.cycleOverhead / 4);
    EXPECT_DOUBLE_EQ(bcc.rfFetch, base.rfFetch / 4);
    // Same useful lane work.
    EXPECT_DOUBLE_EQ(bcc.laneActive, base.laneActive);
    EXPECT_LT(model.relative(Mode::Bcc), 0.5);
}

TEST(EnergyModel, SccSavesCyclesButNotFetches)
{
    // 0x1111 needs SCC: cycles 4 -> 1, but operand fetches stay at
    // the uncompressed width (Section 4.2) and swizzles cost extra.
    EnergyModel model;
    model.addAlu(shape16(0x1111), 2);
    const auto &ivb = model.breakdown(Mode::IvbOpt);
    const auto &scc = model.breakdown(Mode::Scc);
    EXPECT_DOUBLE_EQ(scc.cycleOverhead, ivb.cycleOverhead / 4);
    EXPECT_DOUBLE_EQ(scc.rfFetch, ivb.rfFetch); // no fetch savings
    EXPECT_GT(scc.swizzle, 0.0);
    EXPECT_LT(model.relative(Mode::Scc), model.relative(Mode::IvbOpt));
}

TEST(EnergyModel, SccPaysSwizzleOnlyWhenSwizzling)
{
    // A BCC-friendly mask compresses without any crossbar activity.
    EnergyModel model;
    model.addAlu(shape16(0xf0f0), 2);
    EXPECT_DOUBLE_EQ(model.breakdown(Mode::Scc).swizzle, 0.0);
}

TEST(EnergyModel, ModeOrderingOnMixedStream)
{
    EnergyModel model;
    const iwc::LaneMask masks[] = {0xffff, 0x00ff, 0xf0f0, 0x1111,
                                   0xaaaa, 0x8001, 0x0f0f};
    for (const auto mask : masks)
        model.addAlu(shape16(mask), 3);
    // Both techniques save energy over the IvbOpt baseline.
    EXPECT_LE(model.relative(Mode::IvbOpt),
              model.relative(Mode::Baseline));
    EXPECT_LE(model.relative(Mode::Bcc), model.relative(Mode::IvbOpt));
    EXPECT_LT(model.relative(Mode::Scc), model.relative(Mode::IvbOpt));
}

TEST(EnergyModel, BccBeatsSccOnEnergyForClusteredMasks)
{
    // The paper's performance/energy trade-off: SCC compresses at
    // least as many cycles, but on BCC-friendly (group-aligned)
    // masks BCC additionally suppresses operand fetches, so its
    // energy can be LOWER than SCC's even though its cycle count is
    // never lower.
    EnergyModel model;
    for (int i = 0; i < 16; ++i)
        model.addAlu(shape16(0x00f0), 3);
    EXPECT_LT(model.relative(Mode::Bcc), model.relative(Mode::Scc));
}

TEST(EnergyModel, OperandCountScalesFetchEnergy)
{
    EnergyModel one, three;
    one.addAlu(shape16(0xffff), 1);
    three.addAlu(shape16(0xffff), 3);
    EXPECT_DOUBLE_EQ(three.breakdown(Mode::Baseline).rfFetch,
                     3 * one.breakdown(Mode::Baseline).rfFetch);
}

} // namespace
