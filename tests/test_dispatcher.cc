/** @file Tests for NDRange splitting, placement, and barriers. */

#include <gtest/gtest.h>

#include "gpu/dispatcher.hh"
#include "isa/builder.hh"

namespace
{

using iwc::eu::EuConfig;
using iwc::eu::EuCore;
using iwc::eu::GpuHooks;
using iwc::gpu::Dispatcher;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

struct NullHooks : GpuHooks
{
    void onBarrierArrive(int) override {}
    void onThreadDone(int) override {}
};

Kernel
trivialKernel(unsigned simd_width = 16)
{
    KernelBuilder b("t", simd_width);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(1));
    return b.build();
}

class DispatcherTest : public ::testing::Test
{
  protected:
    void
    makeEus(unsigned count, unsigned threads = 6)
    {
        EuConfig config;
        config.numThreads = threads;
        mem_ = std::make_unique<iwc::mem::MemSystem>(
            iwc::mem::MemConfig{});
        for (unsigned i = 0; i < count; ++i) {
            eus_.push_back(
                std::make_unique<EuCore>(i, config, *mem_, hooks_));
            eus_.back()->bindKernel(kernel_, gmem_);
        }
    }

    unsigned
    totalFreeSlots() const
    {
        unsigned total = 0;
        for (const auto &eu : eus_)
            total += eu->numFreeSlots();
        return total;
    }

    iwc::func::GlobalMemory gmem_;
    Kernel kernel_ = trivialKernel();
    NullHooks hooks_;
    std::unique_ptr<iwc::mem::MemSystem> mem_;
    std::vector<std::unique_ptr<EuCore>> eus_;
    std::vector<std::uint32_t> args_;
};

TEST_F(DispatcherTest, SplitsNdRangeIntoSubgroups)
{
    Dispatcher d(kernel_, 256, 64, args_);
    EXPECT_EQ(d.numWorkgroups(), 4u);
    EXPECT_EQ(d.totalThreads(), 16u); // 4 WGs x 4 SIMD16 subgroups
}

TEST_F(DispatcherTest, PartialTailWorkgroup)
{
    // 150 items, local 64: WGs of 64, 64, 22 -> 4+4+2 subgroups.
    Dispatcher d(kernel_, 150, 64, args_);
    EXPECT_EQ(d.numWorkgroups(), 3u);
    EXPECT_EQ(d.totalThreads(), 10u);
}

TEST_F(DispatcherTest, DispatchFillsFreeSlots)
{
    makeEus(2, 6); // 12 slots, each WG needs 4
    Dispatcher d(kernel_, 64 * 10, 64, args_);
    d.tryDispatch(eus_, 0, 0);
    // 3 whole WGs fit (12 slots), the 4th must wait.
    EXPECT_EQ(totalFreeSlots(), 0u);
}

TEST_F(DispatcherTest, WholeWorkgroupsOnly)
{
    makeEus(1, 6); // 6 slots; a WG needs 4
    Dispatcher d(kernel_, 64 * 2, 64, args_);
    d.tryDispatch(eus_, 0, 0);
    // Only one WG placed: the second needs 4 slots but only 2 remain.
    EXPECT_EQ(totalFreeSlots(), 2u);
}

TEST_F(DispatcherTest, BarrierReleasesWhenAllArrive)
{
    Dispatcher d(kernel_, 64, 64, args_); // 1 WG, 4 threads
    makeEus(1);
    d.tryDispatch(eus_, 0, 0);
    d.barrierArrive(0);
    d.barrierArrive(0);
    d.barrierArrive(0);
    EXPECT_TRUE(d.takeBarrierReleases().empty());
    d.barrierArrive(0);
    const auto releases = d.takeBarrierReleases();
    ASSERT_EQ(releases.size(), 1u);
    EXPECT_EQ(releases[0], 0);
    // The release list drains.
    EXPECT_TRUE(d.takeBarrierReleases().empty());
}

TEST_F(DispatcherTest, BarrierAccountsForFinishedThreads)
{
    Dispatcher d(kernel_, 64, 64, args_);
    makeEus(1);
    d.tryDispatch(eus_, 0, 0);
    d.threadDone(0);
    d.barrierArrive(0);
    d.barrierArrive(0);
    d.barrierArrive(0);
    EXPECT_EQ(d.takeBarrierReleases().size(), 1u);
}

TEST_F(DispatcherTest, CompletionTracking)
{
    Dispatcher d(kernel_, 128, 64, args_); // 2 WGs x 4 threads
    makeEus(2);
    d.tryDispatch(eus_, 0, 0);
    EXPECT_FALSE(d.allWorkDone());
    for (int t = 0; t < 4; ++t)
        d.threadDone(0);
    EXPECT_FALSE(d.allWorkDone());
    for (int t = 0; t < 4; ++t)
        d.threadDone(1);
    EXPECT_TRUE(d.allWorkDone());
}

} // namespace
