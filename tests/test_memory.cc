/** @file Unit tests for functional global memory and SLM. */

#include <gtest/gtest.h>

#include "func/memory.hh"

namespace
{

using iwc::Addr;
using iwc::func::GlobalMemory;
using iwc::func::SlmMemory;

TEST(GlobalMemoryTest, AllocatorNeverReturnsZeroAndAligns)
{
    GlobalMemory mem;
    const Addr a = mem.allocate(100);
    EXPECT_NE(a, 0u);
    EXPECT_EQ(a % 64, 0u);
    const Addr b = mem.allocate(1, 128);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(GlobalMemoryTest, ReadWriteRoundTrip)
{
    GlobalMemory mem;
    const Addr base = mem.allocate(64);
    mem.store<std::uint64_t>(base, 0x1122334455667788ull);
    EXPECT_EQ(mem.load<std::uint64_t>(base), 0x1122334455667788ull);
    EXPECT_EQ(mem.load<std::uint32_t>(base + 4), 0x11223344u);
}

TEST(GlobalMemoryTest, UntouchedMemoryReadsZero)
{
    GlobalMemory mem;
    EXPECT_EQ(mem.load<std::uint32_t>(0x100000), 0u);
}

TEST(GlobalMemoryTest, CrossPageAccess)
{
    GlobalMemory mem;
    const Addr base = GlobalMemory::kPageBytes - 4;
    const std::uint64_t value = 0xa1b2c3d4e5f60718ull;
    mem.store(base, value);
    EXPECT_EQ(mem.load<std::uint64_t>(base), value);
    // Parts land on both pages.
    EXPECT_EQ(mem.load<std::uint32_t>(base),
              static_cast<std::uint32_t>(value));
    EXPECT_EQ(mem.load<std::uint32_t>(base + 4),
              static_cast<std::uint32_t>(value >> 32));
}

TEST(GlobalMemoryTest, BulkTransfer)
{
    GlobalMemory mem;
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr base = mem.allocate(data.size());
    mem.write(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    mem.read(base, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(SlmMemoryTest, RoundTripAndBounds)
{
    SlmMemory slm(256);
    EXPECT_EQ(slm.size(), 256u);
    slm.store<float>(16, 2.5f);
    EXPECT_FLOAT_EQ(slm.load<float>(16), 2.5f);
    EXPECT_DEATH(slm.store<std::uint32_t>(256, 1), "out of range");
}

} // namespace
