/** @file Whole-GPU simulator tests: launches, stats, mode effects. */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "isa/builder.hh"

namespace
{

using iwc::compaction::Mode;
using iwc::func::GlobalMemory;
using iwc::gpu::GpuConfig;
using iwc::gpu::ivbConfig;
using iwc::gpu::LaunchStats;
using iwc::gpu::Simulator;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

Kernel
storeGidKernel()
{
    KernelBuilder b("gid", 16);
    auto out = b.argBuffer("out");
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, b.globalId(), DataType::UD);
    return b.build();
}

Kernel
divergentComputeKernel()
{
    KernelBuilder b("div", 16);
    auto out = b.argBuffer("out");
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(x, b.f(1.0f));
    auto bit = b.tmp(DataType::UD);
    b.and_(bit, lane, b.ud(3));
    b.cmp(CondMod::Eq, 0, bit, b.ud(0)); // pattern 0x1111
    b.if_(0);
    for (int i = 0; i < 24; ++i)
        b.mad(x, x, b.f(1.001f), b.f(0.01f));
    b.endif_();
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    return b.build();
}

TEST(SimulatorTest, EveryWorkItemRunsExactlyOnce)
{
    GlobalMemory gmem;
    const Kernel k = storeGidKernel();
    const iwc::Addr out = gmem.allocate(1000 * 4);
    Simulator sim(ivbConfig(), gmem);
    // 1000 items, local 64: exercises partial WG and partial subgroup.
    const LaunchStats stats =
        sim.run(k, 1000, 64, {static_cast<std::uint32_t>(out)});
    for (unsigned i = 0; i < 1000; ++i)
        EXPECT_EQ(gmem.load<std::uint32_t>(out + i * 4), i)
            << "work item " << i;
    // Untouched tail stays zero (no overrun from partial masks).
    EXPECT_EQ(gmem.load<std::uint32_t>(out + 1000 * 4), 0u)
        << "partial subgroup wrote past the NDRange";
    EXPECT_EQ(stats.workgroups, 16u);
    EXPECT_EQ(stats.threads, 63u); // 15 full WGs x 4 + ceil(40/16)=3
    EXPECT_GT(stats.totalCycles, 0u);
}

TEST(SimulatorTest, SimdEfficiencyReflectsDivergence)
{
    GlobalMemory gmem;
    const Kernel k = divergentComputeKernel();
    const iwc::Addr out = gmem.allocate(4096 * 4);
    Simulator sim(ivbConfig(), gmem);
    const LaunchStats stats =
        sim.run(k, 4096, 64, {static_cast<std::uint32_t>(out)});
    EXPECT_LT(stats.simdEfficiency(), 0.7);
    EXPECT_GT(stats.simdEfficiency(), 0.2);
}

TEST(SimulatorTest, CompactionModeShortensDivergentKernel)
{
    const Kernel k = divergentComputeKernel();

    auto run_mode = [&](Mode mode) {
        GlobalMemory gmem;
        const iwc::Addr out = gmem.allocate(4096 * 4);
        Simulator sim(ivbConfig(mode), gmem);
        return sim.run(k, 4096, 64,
                       {static_cast<std::uint32_t>(out)});
    };

    const LaunchStats base = run_mode(Mode::Baseline);
    const LaunchStats bcc = run_mode(Mode::Bcc);
    const LaunchStats scc = run_mode(Mode::Scc);

    // The 0x1111 pattern is exactly where SCC beats BCC.
    EXPECT_LE(bcc.totalCycles, base.totalCycles);
    EXPECT_LT(scc.totalCycles, bcc.totalCycles);

    // EU-cycle accounting is identical regardless of the run mode.
    EXPECT_EQ(base.eu.euCycles(Mode::Scc), scc.eu.euCycles(Mode::Scc));
    EXPECT_EQ(base.eu.euCycles(Mode::Bcc), bcc.eu.euCycles(Mode::Bcc));
}

TEST(SimulatorTest, CoherentKernelUnaffectedByCompaction)
{
    const Kernel k = storeGidKernel();
    auto run_mode = [&](Mode mode) {
        GlobalMemory gmem;
        const iwc::Addr out = gmem.allocate(4096 * 4);
        Simulator sim(ivbConfig(mode), gmem);
        return sim.run(k, 4096, 64,
                       {static_cast<std::uint32_t>(out)});
    };
    const LaunchStats base = run_mode(Mode::IvbOpt);
    const LaunchStats scc = run_mode(Mode::Scc);
    EXPECT_EQ(base.totalCycles, scc.totalCycles);
    EXPECT_DOUBLE_EQ(scc.euCycleReduction(Mode::Scc), 0.0);
}

TEST(SimulatorTest, BarrierKernelCompletes)
{
    KernelBuilder b("bar", 16);
    auto out = b.argBuffer("out");
    b.requireSlm(64 * 4);
    auto slm_addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    auto lid_rev = b.tmp(DataType::UD);
    // Write lid to SLM, barrier, read the mirrored slot.
    b.mul(slm_addr, b.localId(), b.ud(4));
    b.mov(v, b.localId());
    b.slmStore(slm_addr, v, DataType::D);
    b.barrier();
    b.sub(lid_rev, b.ud(63), b.localId());
    b.mul(slm_addr, lid_rev, b.ud(4));
    auto got = b.tmp(DataType::D);
    b.slmLoad(got, slm_addr, DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, got, DataType::D);
    const Kernel k = b.build();

    GlobalMemory gmem;
    const iwc::Addr out_buf = gmem.allocate(256 * 4);
    Simulator sim(ivbConfig(), gmem);
    sim.run(k, 256, 64, {static_cast<std::uint32_t>(out_buf)});
    for (unsigned i = 0; i < 256; ++i) {
        const unsigned lid = i % 64;
        EXPECT_EQ(gmem.load<std::int32_t>(out_buf + i * 4),
                  static_cast<std::int32_t>(63 - lid))
            << "work item " << i;
    }
}

TEST(SimulatorTest, MemoryStatsPopulated)
{
    GlobalMemory gmem;
    const Kernel k = storeGidKernel();
    const iwc::Addr out = gmem.allocate(4096 * 4);
    Simulator sim(ivbConfig(), gmem);
    const LaunchStats stats =
        sim.run(k, 4096, 64, {static_cast<std::uint32_t>(out)});
    EXPECT_GT(stats.dcLines, 0u);
    EXPECT_GT(stats.l3Misses, 0u);
    EXPECT_GT(stats.eu.memMessages, 0u);
    // Unit-stride stores coalesce to one line per SIMD16 message.
    EXPECT_DOUBLE_EQ(stats.avgLinesPerMessage, 1.0);
    EXPECT_GT(stats.dcThroughput(), 0.0);
}

} // namespace
