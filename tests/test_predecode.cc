/**
 * @file
 * Differential tests for the hot-path optimizations: the predecoded
 * interpreter, scoreboard dependence lists, cycle-plan memoization,
 * and idle-cycle skipping must leave every observable result
 * bit-identical to the pre-optimization model. The golden digests
 * below were captured from the interpreter and simulator as they
 * existed before those changes (see tests/step_digest.hh); the tests
 * replay every registry workload and demand an exact match.
 */

#include <random>

#include <gtest/gtest.h>

#include "eu/scoreboard.hh"
#include "func/interp.hh"
#include "func/predecode.hh"
#include "gpu/gpu_config.hh"
#include "step_digest.hh"
#include "workloads/registry.hh"

namespace iwc
{
namespace
{

/** One registry workload's pre-optimization digests at scale=1. */
struct GoldenRow
{
    const char *name;
    std::uint64_t funcDigest;
    /** Timing digests under Mode::IvbOpt, Mode::Bcc, Mode::Scc. */
    std::uint64_t timing[3];
};

// Captured from the pre-predecode interpreter/simulator (commit
// "Extract a src/run experiment harness...") by hashing the full
// StepResult stream and every LaunchStats counter per workload.
const GoldenRow kGoldens[] = {
    {"micro_ifelse", 0x1d16438d006e5425ull,
     {0xc4f4978ac4a9885bull, 0x84050bad749def49ull, 0x84050bad749def49ull}},
    {"micro_nested", 0xc6fccb8e4825b0a5ull,
     {0x8ba02b6c62ec7deeull, 0x8ba02b6c62ec7deeull, 0x4100a25a81a84591ull}},
    {"micro_looptrip", 0x01b33074eff04965ull,
     {0x1ec6b35e58fac75aull, 0x787e9d540043b55dull, 0x787e9d540043b55dull}},
    {"va", 0xa6b82f30054973a5ull,
     {0xe3a6c9d02dbbcd94ull, 0xe3a6c9d02dbbcd94ull, 0xe3a6c9d02dbbcd94ull}},
    {"dp", 0x4ee1bbd0c0aaf225ull,
     {0x0395f1f18f9c641full, 0xecb27cceedf8425full, 0xecb27cceedf8425full}},
    {"mvm", 0x9608cd97e10283a5ull,
     {0x45b63e78c62a00b5ull, 0x45b63e78c62a00b5ull, 0x45b63e78c62a00b5ull}},
    {"mm", 0xeea9009158abce65ull,
     {0x5743239623df88abull, 0x5743239623df88abull, 0x5743239623df88abull}},
    {"trans", 0xf10e4481b47551a5ull,
     {0xeaaafc5a643f6760ull, 0xeaaafc5a643f6760ull, 0xeaaafc5a643f6760ull}},
    {"dct8", 0x6a5cf1be64ddc265ull,
     {0xc67b060a3d81238aull, 0xc67b060a3d81238aull, 0xc67b060a3d81238aull}},
    // scla re-captured after its kernel gained an up-front definition
    // of the carry temporary (the lint def-before-use pass flagged the
    // original stream); same capture procedure as the rest.
    {"scla", 0x6d003dd486494025ull,
     {0xaf2d96a945d4f974ull, 0x4bad9ec5ed41c6a6ull, 0x4bad9ec5ed41c6a6ull}},
    {"bscholes", 0x0b54a8d80556cb25ull,
     {0xa2d105315d1d84d9ull, 0xa2d105315d1d84d9ull, 0xa2d105315d1d84d9ull}},
    {"bop", 0x970a4f13db394c25ull,
     {0x9ac498412f941289ull, 0x9ac498412f941289ull, 0x9ac498412f941289ull}},
    {"mca", 0x3b9d7ebc9cc9fbccull,
     {0x0c4140260140c7d7ull, 0x0c4140260140c7d7ull, 0x0c4140260140c7d7ull}},
    {"urng", 0x683f7edd1ed41da5ull,
     {0xf57231860d590fcdull, 0xf57231860d590fcdull, 0xf57231860d590fcdull}},
    {"bfs", 0x1e0afbc9b0f126ecull,
     {0x707eb51a19fe4663ull, 0xd62f3aeec4ad9958ull, 0x5bf5b33defc8783dull}},
    {"hotspot", 0x4484ba22494b0283ull,
     {0x72f1e8b8fe24e6ecull, 0x87a2dc6b515f51bbull, 0x23b88444e04154e6ull}},
    {"lavamd", 0x2a1af5927f7affaaull,
     {0xdc44f649ff7625fdull, 0xb648e178faf1f95full, 0xca22d671a8867db8ull}},
    {"nw", 0x3e4ac6f7c76e9db7ull,
     {0x677743f6e9ca3277ull, 0xb56dbb3dff408ec9ull, 0xfb70e2a79aee6db4ull}},
    {"partfilt", 0xbdb92545d91cb95cull,
     {0x1988427ea6727a6cull, 0x41b5be08c95dfbe2ull, 0x44cb5bec63a8d016ull}},
    {"path", 0xa5c6d2c6ab373a0aull,
     {0xc2a7b4f8a8a29987ull, 0xe0b9cfb008ce7aadull, 0x3191a51b233d13f9ull}},
    {"kmeans", 0x94d85e6fb1feaf55ull,
     {0x701c47cf87704947ull, 0x9d56ab35d6cd56c9ull, 0xdc471bc7090021d6ull}},
    {"srad", 0xa5fbb0d5bbd80004ull,
     {0x612d1cac891b8c88ull, 0x29d71c67c6a7cdd5ull, 0x12414bc78f34a3c8ull}},
    {"fw", 0x094c75356b62a8a5ull,
     {0xf0a80d6ebd766fa7ull, 0xf0a80d6ebd766fa7ull, 0xf0a80d6ebd766fa7ull}},
    {"bsearch", 0xaf1817e0ba264219ull,
     {0xa544cb60b887bb46ull, 0xe426cbb4aca07c2aull, 0x6096dbda07cdec5bull}},
    {"treesearch", 0x231f0835674f390aull,
     {0x9bc5feea68698576ull, 0xd79471d4e23900c3ull, 0xfe207e304011465dull}},
    {"sobel", 0x71167433e61cc2efull,
     {0xbbdb167329b43dccull, 0xc7a583f3530c4104ull, 0xd56c1db0c43fea43ull}},
    {"boxfilter", 0xa8965ffd843670edull,
     {0x187a4d4167bf4c2aull, 0x187a4d4167bf4c2aull, 0x187a4d4167bf4c2aull}},
    {"dwthaar", 0x85ba883b026ad6e5ull,
     {0x3b6e6c60253bc589ull, 0x3b6e6c60253bc589ull, 0x3b6e6c60253bc589ull}},
    {"mandelbrot", 0x420b435fe128fd79ull,
     {0x3cdbf43d5e0bb9edull, 0x6a6945182cd3babfull, 0x3e42e4720b494156ull}},
    {"bsort", 0xb90903c168164105ull,
     {0x6bcd05bd2c333924ull, 0x302df1dc9da86011ull, 0x6719b84b4434f7f3ull}},
    {"fwht", 0x00213e346ee646a5ull,
     {0x8ac2a4c6435d154bull, 0xaff3a870d15fed02ull, 0xfa2c8b64575bb3c8ull}},
    {"gauss", 0xc47a851327358752ull,
     {0x59f19e6335ad597eull, 0xc403821874d16a14ull, 0xc403821874d16a14ull}},
    {"scnv", 0x89acc3135a0b2e0dull,
     {0x34aefb764a63769dull, 0x34aefb764a63769dull, 0x34aefb764a63769dull}},
    {"rt_pr_alien", 0xf886ac40786d7e5aull,
     {0x205542350fdcadc7ull, 0xbfd15b92ddb3ed16ull, 0x6108a3218b50a517ull}},
    {"rt_pr_bulldozer", 0x2261042e25714e80ull,
     {0x80cfa3620ae278c7ull, 0x4778ab1eec706d4cull, 0x3f0cdaed5a19f8feull}},
    {"rt_pr_windmill", 0x6ec32ee53b5cf523ull,
     {0x3fe6698c36ef6de9ull, 0x7d5b4184a4f9aa82ull, 0xa4c95cfba6ec69c1ull}},
    {"rt_ao_alien8", 0xf4cbee4ebc99a9e2ull,
     {0x45f3ef91b8f54368ull, 0x73ef214dcb8e77f3ull, 0x026ceb9595a5f4f2ull}},
    {"rt_ao_bulldozer8", 0x0682838988576061ull,
     {0x192983d7af92afb1ull, 0x237bde1db762f0deull, 0x295400820c565a59ull}},
    {"rt_ao_windmill8", 0x83d976414ed74653ull,
     {0x9df43dc5d91bd46eull, 0x1c510959d51bdc30ull, 0x8d0f477b142476d7ull}},
    {"rt_ao_alien16", 0x0616ef5fc4f0d9acull,
     {0x60e0c32a24f3bb75ull, 0x5e094dc75eddd580ull, 0xdd138d3d2eb731bcull}},
    {"rt_ao_bulldozer16", 0x476e4a03250dfb21ull,
     {0xf6f6b3c9919bb3cbull, 0x269090d0196d0af2ull, 0x16872983c08eeafcull}},
    {"rt_ao_windmill16", 0xf2694b06f9118ad9ull,
     {0x2c160183cf88d9aeull, 0xc1daeba22381c139ull, 0xc8c364b94f55179cull}},
};

const GoldenRow *
goldenFor(const std::string &name)
{
    for (const GoldenRow &row : kGoldens)
        if (name == row.name)
            return &row;
    return nullptr;
}

TEST(PredecodeDifferentialTest, GoldenTableCoversTheWholeRegistry)
{
    const auto &reg = workloads::registry();
    EXPECT_EQ(reg.size(), std::size(kGoldens));
    for (const auto &entry : reg)
        EXPECT_NE(goldenFor(entry.name), nullptr)
            << "no golden digest for workload " << entry.name
            << " — regenerate the table (see tests/step_digest.hh)";
}

TEST(PredecodeDifferentialTest, FunctionalStreamMatchesPreOptimization)
{
    for (const auto &entry : workloads::registry()) {
        const GoldenRow *row = goldenFor(entry.name);
        if (row == nullptr)
            continue; // reported by the coverage test
        gpu::Device dev;
        const auto w = workloads::make(entry.name, dev, 1);
        std::vector<std::uint32_t> words;
        for (const auto &arg : w.args)
            words.push_back(arg.raw);
        const std::uint64_t digest = testsupport::digestFunctionalRun(
            w.kernel, dev.memory(), w.globalSize, w.localSize, words);
        EXPECT_EQ(digest, row->funcDigest)
            << "functional StepResult stream diverged for "
            << entry.name;
    }
}

TEST(PredecodeDifferentialTest, TimingStatsMatchPreOptimization)
{
    using compaction::Mode;
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};
    for (const auto &entry : workloads::registry()) {
        const GoldenRow *row = goldenFor(entry.name);
        if (row == nullptr)
            continue;
        for (unsigned m = 0; m < 3; ++m) {
            gpu::Device dev(gpu::ivbConfig(modes[m]));
            const auto w = workloads::make(entry.name, dev, 1);
            const auto stats =
                dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
            EXPECT_EQ(testsupport::digestLaunchStats(stats),
                      row->timing[m])
                << "timing stats diverged for " << entry.name
                << " mode " << m;
        }
    }
}

// The scoreboard fast paths consume register lists flattened at decode
// time; they must agree with the instruction-walking originals on
// every static instruction of every registry kernel.
TEST(PredecodeDifferentialTest, DependenceListsMatchInstructionWalk)
{
    std::mt19937 rng(0xdec0de);
    for (const auto &entry : workloads::registry()) {
        gpu::Device dev;
        const auto w = workloads::make(entry.name, dev, 1);
        func::Interpreter interp(w.kernel, dev.memory());
        const func::DecodedKernel &dk = interp.decoded();
        const std::uint8_t *pool = dk.depPool();

        eu::Scoreboard legacy;
        eu::Scoreboard fast;
        for (std::uint32_t ip = 0; ip < w.kernel.size(); ++ip) {
            const isa::Instruction &in = w.kernel.instr(ip);
            const func::DecodedInstr &d = dk.at(ip);

            EXPECT_EQ(d.execBytes, isa::execElemBytes(in));
            // Same dependence answer on identically-claimed boards.
            EXPECT_EQ(legacy.readyCycle(in),
                      fast.readyCycle(pool + d.depOff, d.depCount,
                                      d.flagDepMask))
                << entry.name << " ip " << ip;

            // Claim through the two paths in lockstep; any drift shows
            // up in a later readyCycle comparison.
            const Cycle t = 1 + rng() % 997;
            legacy.claimDst(in, t);
            fast.claimDst(pool + d.claimOff, d.claimCount, d.claimFlag,
                          t);
        }

        // Probe every register and flag of the final boards.
        for (unsigned reg = 0; reg < kGrfRegCount; ++reg) {
            const std::uint8_t one[1] = {
                static_cast<std::uint8_t>(reg)};
            EXPECT_EQ(legacy.readyCycle(one, 1, 0),
                      fast.readyCycle(one, 1, 0))
                << entry.name << " reg " << reg;
        }
        for (unsigned f = 1; f <= 3; ++f)
            EXPECT_EQ(legacy.readyCycle(nullptr, 0, f),
                      fast.readyCycle(nullptr, 0, f))
                << entry.name << " flag mask " << f;
    }
}

} // namespace
} // namespace iwc
