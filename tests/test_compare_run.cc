/**
 * @file
 * Gates the issue-trace capture/replay layer and the single-build
 * multi-mode compare runs built on it: a replayed launch must produce
 * LaunchStats bit-identical to a full simulation of the same mode,
 * and executeCompareRun must match per-mode individual runs while
 * doing the expensive work (workload build, predecode, plan
 * construction, functional execution) only once.
 */

#include <gtest/gtest.h>

#include "compaction/mask_info.hh"
#include "compaction/shared_plan_table.hh"
#include "eu/issue_trace.hh"
#include "func/predecode_cache.hh"
#include "gpu/device.hh"
#include "gpu/gpu_config.hh"
#include "run/run.hh"
#include "svc/engine.hh"
#include "svc/wire.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::compaction::Mode;
using iwc::eu::IssueTrace;
using iwc::gpu::Device;
using iwc::gpu::GpuConfig;
using iwc::gpu::ivbConfig;
using iwc::gpu::LaunchStats;
using iwc::workloads::make;
using iwc::workloads::Workload;

/** Field-by-field LaunchStats equality (bit-identity gate). */
void
expectStatsEqual(const LaunchStats &a, const LaunchStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.eu.instructions, b.eu.instructions) << what;
    EXPECT_EQ(a.eu.aluInstructions, b.eu.aluInstructions) << what;
    EXPECT_EQ(a.eu.sendInstructions, b.eu.sendInstructions) << what;
    EXPECT_EQ(a.eu.ctrlInstructions, b.eu.ctrlInstructions) << what;
    EXPECT_EQ(a.eu.sumActiveLanes, b.eu.sumActiveLanes) << what;
    EXPECT_EQ(a.eu.sumSimdWidth, b.eu.sumSimdWidth) << what;
    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m)
        EXPECT_EQ(a.eu.euCyclesByMode[m], b.eu.euCyclesByMode[m])
            << what << " mode " << m;
    for (unsigned u = 0; u < iwc::compaction::kNumUtilBins; ++u)
        EXPECT_EQ(a.eu.utilBins[u], b.eu.utilBins[u])
            << what << " bin " << u;
    EXPECT_EQ(a.eu.memMessages, b.eu.memMessages) << what;
    EXPECT_EQ(a.eu.memLines, b.eu.memLines) << what;
    EXPECT_EQ(a.eu.slmMessages, b.eu.slmMessages) << what;
    EXPECT_EQ(a.eu.sccSwizzledLanes, b.eu.sccSwizzledLanes) << what;
    EXPECT_EQ(a.eu.issueSlotsUsed, b.eu.issueSlotsUsed) << what;
    EXPECT_EQ(a.eu.threadsRetired, b.eu.threadsRetired) << what;
    EXPECT_EQ(a.fpuBusyCycles, b.fpuBusyCycles) << what;
    EXPECT_EQ(a.emBusyCycles, b.emBusyCycles) << what;
    EXPECT_EQ(a.l3Hits, b.l3Hits) << what;
    EXPECT_EQ(a.l3Misses, b.l3Misses) << what;
    EXPECT_EQ(a.llcHits, b.llcHits) << what;
    EXPECT_EQ(a.llcMisses, b.llcMisses) << what;
    EXPECT_EQ(a.dramLines, b.dramLines) << what;
    EXPECT_EQ(a.dcLines, b.dcLines) << what;
    EXPECT_EQ(a.slmAccesses, b.slmAccesses) << what;
    EXPECT_DOUBLE_EQ(a.avgLinesPerMessage, b.avgLinesPerMessage)
        << what;
    EXPECT_EQ(a.planCacheHits, b.planCacheHits) << what;
    EXPECT_EQ(a.planCacheMisses, b.planCacheMisses) << what;
    EXPECT_EQ(a.idleCyclesSkipped, b.idleCyclesSkipped) << what;
    EXPECT_EQ(a.idleSkips, b.idleSkips) << what;
    EXPECT_EQ(a.workgroups, b.workgroups) << what;
    EXPECT_EQ(a.threads, b.threads) << what;
}

constexpr Mode kModes[] = {Mode::Baseline, Mode::IvbOpt, Mode::Bcc,
                           Mode::Scc};

class CaptureReplay : public ::testing::TestWithParam<const char *>
{
};

// The core invariant of compare runs: replaying a trace captured
// under one mode reproduces, bit for bit, the LaunchStats of a full
// simulation under any mode — including the mode-sensitive dispatch
// placement, cache interleaving, and plan-cache counters.
TEST_P(CaptureReplay, ReplayMatchesFullRunUnderEveryMode)
{
    const char *name = GetParam();

    // Full per-mode runs: the reference results.
    LaunchStats ref[4];
    for (unsigned m = 0; m < 4; ++m) {
        Device dev(ivbConfig(kModes[m]));
        Workload w = make(name, dev, 1);
        ref[m] = dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
    }

    // One captured run (lead mode Baseline) + three replays.
    IssueTrace trace;
    {
        Device dev(ivbConfig(Mode::Baseline));
        Workload w = make(name, dev, 1);
        const LaunchStats lead = dev.launchCapture(
            w.kernel, w.globalSize, w.localSize, w.args, trace);
        expectStatsEqual(lead, ref[0],
                         std::string(name) + " capture/baseline");
        EXPECT_TRUE(w.check(dev)) << name;
    }
    for (unsigned m = 1; m < 4; ++m) {
        Device dev(ivbConfig(kModes[m]));
        Workload w = make(name, dev, 1);
        const LaunchStats rep = dev.launchReplay(
            w.kernel, w.globalSize, w.localSize, w.args, trace);
        expectStatsEqual(rep, ref[m],
                         std::string(name) + " replay mode " +
                             std::to_string(m));
    }
}

// Coverage spans ALU-only, divergent branches, loops, SLM + barriers,
// global scatter/gather, and partial last workgroups.
INSTANTIATE_TEST_SUITE_P(
    RepresentativeWorkloads, CaptureReplay,
    ::testing::Values("va", "dp", "scla", "bfs", "hotspot", "bsearch",
                      "mandelbrot", "micro_ifelse", "micro_looptrip",
                      "kmeans", "rt_ao_alien8"));

using iwc::run::executeRun;
using iwc::run::RunRequest;
using iwc::run::RunResult;

// A compare job's per-mode stats are the same bits an individual
// Timing run of each mode produces; checkOutput runs exactly once
// (on the lead mode) and stands for all modes.
TEST(CompareRun, MatchesIndividualTimingRuns)
{
    RunRequest compare = RunRequest::timingCompare("bfs", ivbConfig());
    compare.checkOutput = true;
    const RunResult all = executeRun(compare);
    ASSERT_EQ(all.compare.size(), iwc::compaction::kNumModes);
    EXPECT_TRUE(all.checked);
    EXPECT_TRUE(all.checkOk);

    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m) {
        EXPECT_EQ(all.compare[m].mode, kModes[m]);
        const RunResult solo = executeRun(RunRequest::timing(
            "bfs", ivbConfig(kModes[m])));
        expectStatsEqual(all.compare[m].stats, solo.stats,
                         "bfs compare mode " + std::to_string(m));
        EXPECT_EQ(all.kernelDigest, solo.kernelDigest);
    }
}

// A subset mask times only the requested modes, led by the lowest.
TEST(CompareRun, SubsetMaskSelectsModes)
{
    const std::uint8_t mask = (1u << 1) | (1u << 3); // IvbOpt + Scc
    const RunResult out = executeRun(
        RunRequest::timingCompare("dp", ivbConfig(), 1, mask));
    ASSERT_EQ(out.compare.size(), 2u);
    EXPECT_EQ(out.compare[0].mode, Mode::IvbOpt);
    EXPECT_EQ(out.compare[1].mode, Mode::Scc);
    for (const auto &entry : out.compare) {
        const RunResult solo = executeRun(RunRequest::timing(
            "dp", ivbConfig(entry.mode)));
        expectStatsEqual(entry.stats, solo.stats, "dp subset");
    }
}

// The single-build claim, verified through the process-wide shared
// caches: one 4-mode compare predecodes its kernel at most once (one
// digest), and a repeat of the same point misses neither the
// predecode cache nor the shared plan table — every plan any mode
// needs is already resident device-wide.
TEST(CompareRun, SharesBuildAcrossModesAndRepeats)
{
    const auto &plans = iwc::compaction::SharedPlanTable::instance();
    const auto &predecode = iwc::func::PredecodeCache::instance();
    const RunRequest compare =
        RunRequest::timingCompare("hotspot", ivbConfig());

    const std::uint64_t pre0 = predecode.misses();
    executeRun(compare);
    EXPECT_LE(predecode.misses() - pre0, 1u);

    const std::uint64_t pre1 = predecode.misses();
    const std::uint64_t plan1 = plans.misses();
    executeRun(compare);
    EXPECT_EQ(predecode.misses() - pre1, 0u);
    EXPECT_EQ(plans.misses() - plan1, 0u);
}

// Compare requests round-trip through the service daemon: the wire
// encoding survives decode, a repeat submission is served from the
// result cache with byte-identical bytes, and both equal a local
// execution of the same request.
TEST(CompareRun, DaemonRoundTripBitIdentical)
{
    iwc::svc::EngineOptions options;
    options.workers = 1;
    iwc::svc::Engine engine(options);
    engine.start();

    const RunRequest request =
        RunRequest::timingCompare("dp", ivbConfig());
    const iwc::svc::Reply first = engine.call(request);
    ASSERT_EQ(first.status, iwc::svc::Status::Ok) << first.message;
    ASSERT_TRUE(first.result);

    const iwc::svc::Reply cached = engine.call(request);
    ASSERT_EQ(cached.status, iwc::svc::Status::Ok);
    ASSERT_TRUE(cached.result);
    EXPECT_EQ(*first.result, *cached.result);
    EXPECT_GE(engine.stats().cacheHits, 1u);

    EXPECT_EQ(*first.result,
              iwc::svc::encodeRunResult(executeRun(request)));

    RunResult decoded;
    ASSERT_TRUE(iwc::svc::decodeRunResult(*first.result, decoded));
    ASSERT_EQ(decoded.compare.size(), iwc::compaction::kNumModes);
    const RunResult local = executeRun(request);
    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m)
        expectStatsEqual(decoded.compare[m].stats,
                         local.compare[m].stats,
                         "decoded mode " + std::to_string(m));
    engine.stop();
}

} // namespace
