/** @file Tests for the public Device API and the functional runner. */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "isa/builder.hh"

namespace
{

using iwc::gpu::Arg;
using iwc::gpu::Device;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

Kernel
saxpyKernel()
{
    KernelBuilder b("saxpy", 16);
    auto xs = b.argBuffer("x");
    auto ys = b.argBuffer("y");
    auto a = b.argF("a");
    auto addr = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), xs);
    b.gatherLoad(x, addr, DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), ys);
    b.gatherLoad(y, addr, DataType::F);
    b.mad(y, x, a, y);
    b.scatterStore(addr, y, DataType::F);
    return b.build();
}

TEST(DeviceTest, BufferRoundTrip)
{
    Device dev;
    const std::vector<float> host = {1.f, 2.f, 3.f, 4.f};
    const iwc::Addr buf = dev.uploadVector(host);
    const auto back = dev.downloadVector<float>(buf, host.size());
    EXPECT_EQ(host, back);
}

TEST(DeviceTest, ArgEncodings)
{
    EXPECT_EQ(Arg::u32(7).raw, 7u);
    EXPECT_EQ(Arg::i32(-1).raw, 0xffffffffu);
    EXPECT_EQ(Arg::f32(1.0f).raw, 0x3f800000u);
    EXPECT_EQ(Arg::buffer(0x1000).raw, 0x1000u);
}

TEST(DeviceTest, TimingLaunchComputesSaxpy)
{
    Device dev;
    const unsigned n = 512;
    std::vector<float> xs(n), ys(n);
    for (unsigned i = 0; i < n; ++i) {
        xs[i] = static_cast<float>(i);
        ys[i] = 1.0f;
    }
    const iwc::Addr dx = dev.uploadVector(xs);
    const iwc::Addr dy = dev.uploadVector(ys);
    const Kernel k = saxpyKernel();
    const auto stats = dev.launch(k, n, 64,
                                  {Arg::buffer(dx), Arg::buffer(dy),
                                   Arg::f32(2.0f)});
    EXPECT_GT(stats.totalCycles, 0u);
    const auto out = dev.downloadVector<float>(dy, n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(out[i], 2.0f * i + 1.0f);
}

TEST(DeviceTest, FunctionalLaunchMatchesTimingResults)
{
    const Kernel k = saxpyKernel();
    const unsigned n = 256;
    std::vector<float> xs(n, 3.0f), ys(n, 0.5f);

    Device timing_dev;
    const iwc::Addr tx = timing_dev.uploadVector(xs);
    const iwc::Addr ty = timing_dev.uploadVector(ys);
    timing_dev.launch(k, n, 64,
                      {Arg::buffer(tx), Arg::buffer(ty),
                       Arg::f32(-1.5f)});

    Device func_dev;
    const iwc::Addr fx = func_dev.uploadVector(xs);
    const iwc::Addr fy = func_dev.uploadVector(ys);
    func_dev.launchFunctional(k, n, 64,
                              {Arg::buffer(fx), Arg::buffer(fy),
                               Arg::f32(-1.5f)});

    EXPECT_EQ(timing_dev.downloadVector<float>(ty, n),
              func_dev.downloadVector<float>(fy, n));
}

TEST(DeviceTest, FunctionalObserverSeesEveryInstruction)
{
    Device dev;
    const Kernel k = saxpyKernel();
    const unsigned n = 64;
    const iwc::Addr dx = dev.allocBuffer(n * 4);
    const iwc::Addr dy = dev.allocBuffer(n * 4);
    std::uint64_t observed = 0;
    const std::uint64_t total = dev.launchFunctional(
        k, n, 64, {Arg::buffer(dx), Arg::buffer(dy), Arg::f32(1.0f)},
        [&](const iwc::isa::Instruction &, iwc::LaneMask) {
            ++observed;
        });
    // 6 instructions + halt per subgroup, 4 subgroups.
    EXPECT_EQ(total, 7u * 4);
    EXPECT_EQ(observed, total);
}

TEST(DeviceTest, FunctionalRunnerHandlesBarriers)
{
    KernelBuilder b("bar", 16);
    auto out = b.argBuffer("out");
    b.requireSlm(256);
    auto slm_addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    b.mul(slm_addr, b.localId(), b.ud(4));
    b.mov(v, b.localId());
    b.slmStore(slm_addr, v, DataType::D);
    b.barrier();
    auto other = b.tmp(DataType::UD);
    b.xor_(other, b.localId(), b.ud(1)); // partner lane
    b.mul(slm_addr, other, b.ud(4));
    auto got = b.tmp(DataType::D);
    b.slmLoad(got, slm_addr, DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, got, DataType::D);
    const Kernel k = b.build();

    Device dev;
    const unsigned n = 128;
    const iwc::Addr out_buf = dev.allocBuffer(n * 4);
    dev.launchFunctional(k, n, 64, {Arg::buffer(out_buf)});
    const auto result = dev.downloadVector<std::int32_t>(out_buf, n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(result[i], static_cast<std::int32_t>((i % 64) ^ 1));
}

} // namespace
