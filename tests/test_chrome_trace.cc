/**
 * @file
 * Chrome Trace exporter tests: the JSON must actually parse, every
 * trace event must carry the fields Perfetto requires, slices must be
 * well-formed, and the output must be deterministic for a fixed
 * workload.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/event.hh"
#include "run/run.hh"

namespace
{

using namespace iwc;
using namespace iwc::obs;

// --- A minimal JSON parser: just enough to validate the exporter. ----

struct JsonValue
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;                          ///< Array
    std::vector<std::pair<std::string, JsonValue>> fields; ///< Object

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why + " at offset " + std::to_string(pos_);
        }
        pos_ = text_.size(); // stop making progress
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end");
            return {};
        }
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            JsonValue v;
            v.type = JsonValue::Bool;
            v.number = 1;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            JsonValue v;
            v.type = JsonValue::Bool;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return {};
        }
        fail("unexpected character");
        return {};
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.type = JsonValue::Object;
        consume('{');
        if (consume('}'))
            return v;
        do {
            const JsonValue key = string();
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            v.fields.emplace_back(key.str, value());
        } while (consume(','));
        if (!consume('}'))
            fail("expected '}'");
        return v;
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.type = JsonValue::Array;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.items.push_back(value());
        } while (consume(','));
        if (!consume(']'))
            fail("expected ']'");
        return v;
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.type = JsonValue::String;
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            fail("expected string");
            return v;
        }
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
            }
            v.str += text_[pos_++];
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return v;
        }
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.type = JsonValue::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            fail("expected number");
            return v;
        }
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

std::string
traceFor(const std::string &workload)
{
    run::RunRequest request =
        run::RunRequest::timing(workload, gpu::ivbConfig(), 1);
    request.trace = true;
    const run::RunResult result = run::executeRun(request);
    std::stringstream ss;
    writeChromeTrace(ss, result.events->collect());
    return ss.str();
}

TEST(ChromeTrace, WorkloadTraceParsesAsJson)
{
    const std::string json = traceFor("micro_ifelse");
    JsonParser parser(json);
    const JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << parser.error();
    ASSERT_EQ(root.type, JsonValue::Object);
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Array);
    EXPECT_GT(events->items.size(), 10u);
    EXPECT_NE(root.find("displayTimeUnit"), nullptr);
}

TEST(ChromeTrace, EveryEventCarriesRequiredFields)
{
    const std::string json = traceFor("micro_ifelse");
    JsonParser parser(json);
    const JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << parser.error();
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::size_t slices = 0, instants = 0, meta = 0;
    for (const JsonValue &e : events->items) {
        ASSERT_EQ(e.type, JsonValue::Object);
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_EQ(ph->type, JsonValue::String);
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        if (ph->str == "M") {
            ++meta;
            continue; // metadata carries no timestamp
        }
        ASSERT_NE(e.find("tid"), nullptr);
        const JsonValue *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        ASSERT_EQ(ts->type, JsonValue::Number);
        EXPECT_GE(ts->number, 0);
        if (ph->str == "X") {
            ++slices;
            const JsonValue *dur = e.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->number, 0); // complete slices: no dangling B/E
        } else if (ph->str == "i") {
            ++instants;
            ASSERT_NE(e.find("s"), nullptr);
        } else {
            FAIL() << "unexpected phase '" << ph->str << "'";
        }
    }
    EXPECT_GT(slices, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_GT(meta, 0u);
}

TEST(ChromeTrace, DeterministicForFixedWorkload)
{
    EXPECT_EQ(traceFor("micro_ifelse"), traceFor("micro_ifelse"));
}

TEST(ChromeTrace, GoldenSingleIssueSlice)
{
    Event e;
    e.cycle = 10;
    e.ip = 3;
    e.kind = EventKind::InstrIssue;
    e.eu = 1;
    e.slot = 2;
    e.issue.execMask = 0x00f0;
    e.issue.modeCycles[0] = 4;
    e.issue.modeCycles[1] = 4;
    e.issue.modeCycles[2] = 2;
    e.issue.modeCycles[3] = 1;
    e.issue.occCycles = 2;
    e.issue.waitTotal = 0;
    e.issue.waitSb = 0;
    e.issue.blockReg = kBlockNone;
    e.issue.pipe = 0;
    e.issue.simdWidth = 16;

    std::stringstream ss;
    ChromeTraceOptions options;
    options.instants = false;
    options.stalls = false;
    options.mem = false;
    writeChromeTrace(ss, {e}, options);
    const std::string json = ss.str();

    JsonParser parser(json);
    const JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << parser.error();
    // The exact slice the event must map to, stable across runs.
    EXPECT_NE(json.find("{\"name\":\"ip 3 (fpu)\",\"ph\":\"X\","
                        "\"ts\":10,\"dur\":2,\"pid\":1,\"tid\":2,"
                        "\"args\":{\"ip\":3,\"mask\":\"0xf0\","
                        "\"lanes\":4,\"saved_bcc\":2,\"saved_scc\":3}}"),
              std::string::npos)
        << json;
}

TEST(ChromeTrace, StallSlicePrecedesIssue)
{
    Event e;
    e.cycle = 20;
    e.ip = 1;
    e.kind = EventKind::InstrIssue;
    e.eu = 0;
    e.slot = 0;
    e.issue.execMask = 0xffff;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        e.issue.modeCycles[m] = 4;
    e.issue.occCycles = 4;
    e.issue.waitTotal = 6;
    e.issue.waitSb = 5;
    e.issue.blockReg = 42;
    e.issue.pipe = 0;
    e.issue.simdWidth = 16;

    std::stringstream ss;
    writeChromeTrace(ss, {e});
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"wait:sb(r42)\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ts\":14,\"dur\":6"), std::string::npos)
        << json;
}

} // namespace
