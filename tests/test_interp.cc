/**
 * @file
 * Functional interpreter tests: arithmetic semantics per datatype,
 * flags and predication, structured control flow (if/else, loops,
 * break/cont, nesting), and memory messages.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "func/interp.hh"
#include "isa/builder.hh"

namespace
{

using iwc::LaneMask;
using iwc::func::GlobalMemory;
using iwc::func::Interpreter;
using iwc::func::SlmMemory;
using iwc::func::StepResult;
using iwc::func::ThreadState;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

/** Runs a kernel to completion on one SIMD16 thread; returns state. */
class InterpRunner
{
  public:
    explicit InterpRunner(Kernel kernel, unsigned slm_bytes = 0)
        : kernel_(std::move(kernel)), interp_(kernel_, gmem_)
    {
        if (slm_bytes) {
            slm_ = std::make_unique<SlmMemory>(slm_bytes);
            interp_.setSlm(slm_.get());
        }
        state_.reset(iwc::laneMaskForWidth(kernel_.simdWidth()));
        // Populate the id vectors the dispatcher would write.
        for (unsigned ch = 0; ch < kernel_.simdWidth(); ++ch) {
            state_.writeGrf<std::uint32_t>(
                kernel_.globalIdReg() * iwc::kGrfRegBytes + ch * 4, ch);
            state_.writeGrf<std::uint32_t>(
                kernel_.localIdReg() * iwc::kGrfRegBytes + ch * 4, ch);
        }
    }

    void
    run(unsigned max_steps = 100000)
    {
        unsigned steps = 0;
        while (!state_.halted()) {
            interp_.step(state_);
            ASSERT_LT(++steps, max_steps) << "kernel did not halt";
        }
    }

    float
    readF(unsigned reg, unsigned ch)
    {
        return state_.readGrf<float>(reg * iwc::kGrfRegBytes + ch * 4);
    }

    std::int32_t
    readD(unsigned reg, unsigned ch)
    {
        return state_.readGrf<std::int32_t>(reg * iwc::kGrfRegBytes +
                                            ch * 4);
    }

    GlobalMemory gmem_;
    Kernel kernel_;
    std::unique_ptr<SlmMemory> slm_;
    Interpreter interp_;
    ThreadState state_;
};

TEST(InterpAlu, FloatArithmetic)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    b.mov(x, b.f(3.0f));
    b.mad(x, x, b.f(2.0f), b.f(1.0f)); // 7
    b.sub(x, x, b.f(2.5f));            // 4.5
    b.mul(y, x, x);                    // 20.25
    b.div(y, y, b.f(4.5f));            // 4.5
    b.sqrt(y, y);                      // ~2.1213
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch)
        EXPECT_NEAR(r.readF(r.kernel_.firstTempReg() + 2, ch),
                    std::sqrt(4.5f), 1e-5f);
}

TEST(InterpAlu, IntArithmeticAndShifts)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(-20));
    b.asr(x, x, b.d(2));     // -5
    b.mul(x, x, b.d(-6));    // 30
    b.and_(x, x, b.d(0x1f)); // 30
    b.shl(x, x, b.d(1));     // 60
    b.or_(x, x, b.d(3));     // 63
    b.xor_(x, x, b.d(0x21)); // 63 ^ 33 = 30
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg(), 5), 30);
}

TEST(InterpAlu, ShrIsLogicalOver32Bits)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::UD);
    b.mov(x, b.ud(0x80000000u));
    b.shr(x, x, b.ud(4));
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(static_cast<std::uint32_t>(
                  r.readD(r.kernel_.firstTempReg(), 0)),
              0x08000000u);
}

TEST(InterpAlu, MovConvertsBetweenDomains)
{
    KernelBuilder b("t", 16);
    auto f = b.tmp(DataType::F);
    auto d = b.tmp(DataType::D);
    b.mov(f, b.f(-2.75f));
    b.mov(d, f); // trunc toward zero -> -2
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, 3), -2);
}

TEST(InterpAlu, WordTypeWrapsAt16Bits)
{
    KernelBuilder b("t", 16);
    auto w = b.tmp(DataType::W);
    b.mov(w, b.d(32767));
    b.add(w, w, b.d(1)); // wraps to -32768
    auto d = b.tmp(DataType::D);
    b.mov(d, w);
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 1, 0), -32768);
}

TEST(InterpAlu, SourceModifiers)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    b.mov(x, b.f(-3.0f));
    iwc::isa::Operand abs_x = x;
    abs_x.absolute = true;
    b.mov(y, abs_x); // 3
    iwc::isa::Operand neg_y = y;
    neg_y.negate = true;
    b.add(y, neg_y, b.f(1.0f)); // -2
    InterpRunner r(b.build());
    r.run();
    EXPECT_FLOAT_EQ(r.readF(r.kernel_.firstTempReg() + 2, 7), -2.0f);
}

TEST(InterpCmp, FlagsOnlyUpdateForEnabledChannels)
{
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::UD);
    b.and_(lane, b.localId(), b.ud(15));
    // f0 = lanes >= 8.
    b.cmp(CondMod::Ge, 0, lane, b.ud(8));
    // Under ~f0 (lanes 0-7), set f1 = true; f1 starts 0.
    b.cmp(CondMod::Eq, 1, lane, lane).pred(0, true);
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(r.state_.flag(0) & 0xffff, 0xff00u);
    EXPECT_EQ(r.state_.flag(1) & 0xffff, 0x00ffu);
}

TEST(InterpSel, SelectsPerChannel)
{
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.ud(15));
    b.cmp(CondMod::Lt, 0, lane, b.ud(4));
    b.sel(0, x, b.d(100), b.d(200));
    InterpRunner r(b.build());
    r.run();
    // lane (UD vector) occupies two registers; x starts at +2.
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, 2), 100);
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, 9), 200);
}

TEST(InterpCf, IfElseSplitsChannels)
{
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(x, b.d(0));
    b.cmp(CondMod::Lt, 0, lane, b.ud(6));
    b.if_(0);
    b.mov(x, b.d(1));
    b.else_();
    b.mov(x, b.d(2));
    b.endif_();
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch)
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, ch),
                  ch < 6 ? 1 : 2);
}

TEST(InterpCf, UniformlyFalseIfJumpsOverBody)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(7));
    b.cmp(CondMod::Lt, 0, x, b.d(0)); // false everywhere
    b.if_(0);
    b.mov(x, b.d(1));
    b.else_();
    b.mov(x, b.d(2));
    b.endif_();
    InterpRunner r(b.build());

    // Count executed instructions: the if body must be skipped.
    unsigned steps = 0;
    while (!r.state_.halted()) {
        const StepResult res = r.interp_.step(r.state_);
        if (res.instr->op == iwc::isa::Opcode::Mov &&
            res.ip > 2) {
            // Only the else-mov executes among the branch bodies.
            EXPECT_EQ(res.ip, 5u);
        }
        ++steps;
    }
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg(), 0), 2);
    // mov, cmp, if (jump), else, mov, endif, halt = 7 steps.
    EXPECT_EQ(steps, 7u);
}

TEST(InterpCf, NestedIfRestoresMasks)
{
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(x, b.d(0));
    b.cmp(CondMod::Lt, 0, lane, b.ud(8));
    b.if_(0);
    {
        b.cmp(CondMod::Lt, 0, lane, b.ud(4));
        b.if_(0);
        b.mov(x, b.d(11));
        b.else_();
        b.mov(x, b.d(12));
        b.endif_();
    }
    b.else_();
    b.mov(x, b.d(20));
    b.endif_();
    b.add(x, x, b.d(100)); // all channels rejoin
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch) {
        const int inner = ch < 4 ? 11 : (ch < 8 ? 12 : 20);
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, ch),
                  inner + 100);
    }
}

TEST(InterpCf, LoopWithUniformTripCount)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto i = b.tmp(DataType::D);
    b.mov(x, b.d(0));
    b.mov(i, b.d(0));
    b.loop_();
    b.add(x, x, b.d(5));
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(10));
    b.endLoop(1);
    InterpRunner r(b.build());
    r.run();
    EXPECT_EQ(r.readD(r.kernel_.firstTempReg(), 15), 50);
}

TEST(InterpCf, PerLaneLoopExit)
{
    // Lane k iterates k+1 times.
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::D);
    auto count = b.tmp(DataType::D);
    auto i = b.tmp(DataType::D);
    b.mov(lane, b.localId());
    b.mov(count, b.d(0));
    b.mov(i, b.d(0));
    b.loop_();
    b.add(count, count, b.d(1));
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Le, 1, i, lane);
    b.endLoop(1);
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch)
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, ch),
                  static_cast<int>(ch) + 1);
}

TEST(InterpCf, BreakInsideIfKeepsChannelsParked)
{
    // Channels < 8 break out of the loop from inside an if; the
    // others keep iterating. After the loop, everyone reconverges.
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::D);
    auto iters = b.tmp(DataType::D);
    auto i = b.tmp(DataType::D);
    b.mov(lane, b.localId());
    b.mov(iters, b.d(0));
    b.mov(i, b.d(0));
    b.loop_();
    {
        b.add(iters, iters, b.d(1));
        b.cmp(CondMod::Lt, 0, lane, b.d(8));
        b.if_(0);
        b.cmp(CondMod::Ge, 1, i, b.d(2));
        b.breakIf(1); // low lanes leave after 3 iterations
        b.endif_();
        b.add(i, i, b.d(1));
        b.cmp(CondMod::Lt, 1, i, b.d(6));
    }
    b.endLoop(1);
    b.add(iters, iters, b.d(100));
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch) {
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 2, ch),
                  (ch < 8 ? 3 : 6) + 100)
            << "lane " << ch;
    }
}

TEST(InterpCf, ContSkipsRestOfIteration)
{
    // Even lanes skip the accumulate on iterations 0 and 1.
    KernelBuilder b("t", 16);
    auto lane = b.tmp(DataType::D);
    auto even = b.tmp(DataType::D);
    auto acc = b.tmp(DataType::D);
    auto i = b.tmp(DataType::D);
    b.mov(lane, b.localId());
    b.and_(even, lane, b.d(1));
    b.mov(acc, b.d(0));
    b.mov(i, b.d(0));
    b.loop_();
    {
        b.add(i, i, b.d(1));
        b.cmp(CondMod::Eq, 0, even, b.d(0));
        b.if_(0);
        b.cmp(CondMod::Le, 1, i, b.d(2));
        b.contIf(1);
        b.endif_();
        b.add(acc, acc, b.d(10));
        b.cmp(CondMod::Lt, 1, i, b.d(4));
    }
    b.endLoop(1);
    InterpRunner r(b.build());
    r.run();
    for (unsigned ch = 0; ch < 16; ++ch) {
        const bool is_even = (ch & 1) == 0;
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 4, ch),
                  is_even ? 20 : 40)
            << "lane " << ch;
    }
}

TEST(InterpMem, GatherScatterRoundTrip)
{
    KernelBuilder b("t", 16);
    auto src = b.argBuffer("src");
    auto dst = b.argBuffer("dst");
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::F);
    b.mad(addr, b.localId(), b.ud(4), src);
    b.gatherLoad(v, addr, DataType::F);
    b.mul(v, v, b.f(2.0f));
    b.mad(addr, b.localId(), b.ud(4), dst);
    b.scatterStore(addr, v, DataType::F);

    InterpRunner r(b.build());
    const iwc::Addr src_base = r.gmem_.allocate(64);
    const iwc::Addr dst_base = r.gmem_.allocate(64);
    for (unsigned i = 0; i < 16; ++i)
        r.gmem_.store<float>(src_base + i * 4,
                             static_cast<float>(i) + 0.5f);
    // Bind args and local ids directly.
    const auto &args = r.kernel_.args();
    r.state_.writeGrf<std::uint32_t>(args[0].reg * 32,
                                     static_cast<std::uint32_t>(
                                         src_base));
    r.state_.writeGrf<std::uint32_t>(args[1].reg * 32,
                                     static_cast<std::uint32_t>(
                                         dst_base));
    for (unsigned ch = 0; ch < 16; ++ch)
        r.state_.writeGrf<std::uint32_t>(
            r.kernel_.localIdReg() * 32 + ch * 4, ch);
    r.run();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(r.gmem_.load<float>(dst_base + i * 4),
                        (static_cast<float>(i) + 0.5f) * 2.0f);
}

TEST(InterpMem, DisabledChannelsDoNotAccessMemory)
{
    KernelBuilder b("t", 16);
    auto dst = b.argBuffer("dst");
    auto lane = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(v, b.d(42));
    b.mad(addr, lane, b.ud(4), dst);
    b.cmp(CondMod::Lt, 0, lane, b.ud(4));
    b.scatterStore(addr, v, DataType::D).pred(0);

    InterpRunner r(b.build());
    const iwc::Addr dst_base = r.gmem_.allocate(64);
    r.state_.writeGrf<std::uint32_t>(r.kernel_.args()[0].reg * 32,
                                     static_cast<std::uint32_t>(
                                         dst_base));
    for (unsigned ch = 0; ch < 16; ++ch)
        r.state_.writeGrf<std::uint32_t>(
            r.kernel_.localIdReg() * 32 + ch * 4, ch);
    r.run();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.gmem_.load<std::int32_t>(dst_base + i * 4),
                  i < 4 ? 42 : 0);
}

TEST(InterpMem, BlockLoadStoreMovesWholeRegisters)
{
    KernelBuilder b("t", 16);
    auto src = b.argBuffer("src");
    auto dst = b.argBuffer("dst");
    const unsigned raw = b.allocRaw(2);
    b.blockLoad(raw, src, 2);
    b.blockStore(dst, raw, 2);

    InterpRunner r(b.build());
    const iwc::Addr src_base = r.gmem_.allocate(64);
    const iwc::Addr dst_base = r.gmem_.allocate(64);
    for (unsigned i = 0; i < 16; ++i)
        r.gmem_.store<std::uint32_t>(src_base + i * 4, i * 3 + 1);
    r.state_.writeGrf<std::uint32_t>(r.kernel_.args()[0].reg * 32,
                                     static_cast<std::uint32_t>(
                                         src_base));
    r.state_.writeGrf<std::uint32_t>(r.kernel_.args()[1].reg * 32,
                                     static_cast<std::uint32_t>(
                                         dst_base));
    r.run();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.gmem_.load<std::uint32_t>(dst_base + i * 4),
                  i * 3 + 1);
}

TEST(InterpMem, SlmAtomicAddReturnsOldValue)
{
    KernelBuilder b("t", 16);
    b.requireSlm(64);
    auto addr = b.tmp(DataType::UD);
    auto one = b.tmp(DataType::D);
    auto old = b.tmp(DataType::D);
    b.mov(addr, b.ud(0)); // all channels hit the same word
    b.mov(one, b.d(1));
    b.slmAtomicAdd(old, addr, one);

    InterpRunner r(b.build(), 64);
    r.run();
    // Channels serialize in ascending order: old values are 0..15.
    for (unsigned ch = 0; ch < 16; ++ch)
        EXPECT_EQ(r.readD(r.kernel_.firstTempReg() + 4, ch),
                  static_cast<int>(ch));
    EXPECT_EQ(r.slm_->load<std::int32_t>(0), 16);
}

TEST(InterpMem, BarrierReportedToCaller)
{
    KernelBuilder b("t", 16);
    b.barrier();
    InterpRunner r(b.build());
    const StepResult res = r.interp_.step(r.state_);
    EXPECT_TRUE(res.isBarrier);
    EXPECT_FALSE(r.state_.halted());
}

TEST(InterpMem, StepResultCarriesChannelAddresses)
{
    KernelBuilder b("t", 16);
    auto dst = b.argBuffer("dst");
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    b.mov(v, b.d(1));
    b.mad(addr, b.localId(), b.ud(64), dst); // one line per channel
    b.scatterStore(addr, v, DataType::D);

    InterpRunner r(b.build());
    const iwc::Addr dst_base = r.gmem_.allocate(64 * 16);
    r.state_.writeGrf<std::uint32_t>(r.kernel_.args()[0].reg * 32,
                                     static_cast<std::uint32_t>(
                                         dst_base));
    for (unsigned ch = 0; ch < 16; ++ch)
        r.state_.writeGrf<std::uint32_t>(
            r.kernel_.localIdReg() * 32 + ch * 4, ch);
    // Step to the send.
    StepResult res;
    do {
        res = r.interp_.step(r.state_);
    } while (!res.hasMem);
    EXPECT_EQ(res.mem.mask, 0xffffu);
    for (unsigned ch = 0; ch < 16; ++ch)
        EXPECT_EQ(res.mem.addrs[ch], dst_base + ch * 64);
}

} // namespace
