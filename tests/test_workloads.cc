/**
 * @file
 * Workload-suite tests: every registered workload validates against
 * its CPU reference under the functional runner, and the
 * divergent/coherent classification matches measured SIMD efficiency.
 */

#include <gtest/gtest.h>

#include "trace/analyzer.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::gpu::Device;
using iwc::workloads::Entry;
using iwc::workloads::make;
using iwc::workloads::registry;
using iwc::workloads::Workload;

class WorkloadCorrectness : public ::testing::TestWithParam<Entry>
{
};

TEST_P(WorkloadCorrectness, FunctionalRunMatchesReference)
{
    Device dev;
    Workload w = GetParam().factory(dev, 1);
    dev.launchFunctional(w.kernel, w.globalSize, w.localSize, w.args);
    EXPECT_TRUE(w.check(dev)) << w.name;
}

TEST_P(WorkloadCorrectness, DivergenceClassMatchesMeasurement)
{
    Device dev;
    Workload w = GetParam().factory(dev, 1);
    iwc::trace::TraceAnalyzer analyzer;
    dev.launchFunctional(
        w.kernel, w.globalSize, w.localSize, w.args,
        [&](const iwc::isa::Instruction &in, iwc::LaneMask mask) {
            analyzer.add(iwc::trace::recordOf(in, mask));
        });
    const auto &a = analyzer.result();
    if (w.expectDivergent) {
        EXPECT_LT(a.simdEfficiency(), 0.95)
            << w.name << " declared divergent but ran coherent";
    } else {
        EXPECT_GT(a.simdEfficiency(), 0.80)
            << w.name << " declared coherent but ran very divergent";
    }
}

std::string
entryName(const ::testing::TestParamInfo<Entry> &info)
{
    std::string name = info.param.name;
    for (char &c : name)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCorrectness,
                         ::testing::ValuesIn(registry()), entryName);

TEST(Registry, LookupAndNameLists)
{
    EXPECT_GE(registry().size(), 30u);
    EXPECT_EQ(std::string(
                  iwc::workloads::entryByName("bfs").name), "bfs");
    EXPECT_EXIT(iwc::workloads::entryByName("nope"),
                ::testing::ExitedWithCode(1), "unknown workload");
    const auto divergent = iwc::workloads::divergentNames();
    const auto coherent = iwc::workloads::coherentNames();
    EXPECT_EQ(divergent.size() + coherent.size(),
              iwc::workloads::allNames().size());
    EXPECT_GE(divergent.size(), 14u);
}

TEST(Registry, MakeInstantiatesByName)
{
    Device dev;
    const Workload w = make("va", dev, 1);
    EXPECT_EQ(w.name, "va");
    EXPECT_GT(w.globalSize, 0u);
    EXPECT_EQ(w.kernel.numArgs(), w.args.size());
}

} // namespace
