/**
 * @file
 * Malformed-input tests for the trace readers: every corruption a
 * truncated download or a hand-edited text trace can produce must die
 * with a clear fatal message, never crash or silently misparse.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace iwc::trace;

MaskTrace
smallTrace()
{
    MaskTrace trace;
    trace.name = "err";
    trace.records = {
        {16, 4, InstrKind::Alu, 0x00ff},
        {8, 2, InstrKind::Send, 0x0f},
    };
    return trace;
}

std::string
serialized()
{
    std::stringstream ss;
    writeBinary(ss, smallTrace());
    return ss.str();
}

/** Binary header layout: magic(4) version(4) name_len(4) name(n). */
constexpr std::size_t kVersionOff = 4;
constexpr std::size_t kNameLenOff = 8;

TEST(TraceIoErrors, BinaryRoundTripStillWorks)
{
    std::stringstream ss(serialized());
    const MaskTrace back = readBinary(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.records[0].execMask, 0x00ffu);
    EXPECT_EQ(back.records[1].simdWidth, 8);
}

TEST(TraceIoErrors, BinaryBadMagic)
{
    std::string blob = serialized();
    blob[0] = 'X';
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "not an IWC trace");
}

TEST(TraceIoErrors, BinaryEmptyStream)
{
    std::stringstream ss("");
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "not an IWC trace");
}

TEST(TraceIoErrors, BinaryBadVersion)
{
    std::string blob = serialized();
    blob[kVersionOff] = 99;
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "unsupported trace version");
}

TEST(TraceIoErrors, BinaryHostileNameLength)
{
    std::string blob = serialized();
    const std::uint32_t huge = 0x7fffffff;
    std::memcpy(&blob[kNameLenOff], &huge, sizeof(huge));
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "name length .* exceeds");
}

TEST(TraceIoErrors, BinaryTruncatedMidRecords)
{
    const std::string blob = serialized();
    // Drop the last few bytes: the record count still promises two
    // records, so the reader must hit the truncation check.
    std::stringstream ss(blob.substr(0, blob.size() - 3));
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "truncated trace stream");
}

TEST(TraceIoErrors, BinaryLyingRecordCount)
{
    std::string blob = serialized();
    // The count field sits right after the header + 3-byte name.
    const std::size_t count_off = kNameLenOff + 4 + 3;
    const std::uint64_t lie = ~std::uint64_t{0};
    std::memcpy(&blob[count_off], &lie, sizeof(lie));
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "truncated trace stream");
}

TEST(TraceIoErrors, BinaryBadKindByte)
{
    std::string blob = serialized();
    // First record starts after header + name + count; kind is its
    // third byte.
    const std::size_t kind_off = kNameLenOff + 4 + 3 + 8 + 2;
    blob[kind_off] = 0x7f;
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bad instruction kind");
}

TEST(TraceIoErrors, BinaryBadSimdWidth)
{
    std::string blob = serialized();
    const std::size_t width_off = kNameLenOff + 4 + 3 + 8;
    blob[width_off] = 77; // > kMaxSimdWidth
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bad SIMD width 77");
}

TEST(TraceIoErrors, BinaryBadElemBytes)
{
    std::string blob = serialized();
    const std::size_t elem_off = kNameLenOff + 4 + 3 + 8 + 1;
    blob[elem_off] = 3; // not a power of two
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bad element size 3");
}

TEST(TraceIoErrors, BinarySubWordElemBytes)
{
    std::string blob = serialized();
    const std::size_t elem_off = kNameLenOff + 4 + 3 + 8 + 1;
    blob[elem_off] = 1; // below the 2-byte ISA minimum
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bad element size 1");
}

TEST(TraceIoErrors, BinaryMaskBeyondWidth)
{
    std::string blob = serialized();
    // Second record is SIMD8; give it a 16-bit mask.
    const std::size_t mask_off = kNameLenOff + 4 + 3 + 8 + 7 + 3;
    const std::uint32_t wide = 0xff00;
    std::memcpy(&blob[mask_off], &wide, sizeof(wide));
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bits beyond SIMD width 8");
}

TEST(TraceIoErrors, TextRoundTripStillWorks)
{
    std::stringstream out;
    writeText(out, smallTrace());
    std::stringstream in(out.str());
    const MaskTrace back = readText(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.records[0].execMask, 0x00ffu);
}

TEST(TraceIoErrors, TextGarbageHexMask)
{
    std::stringstream ss("16 4 alu zz34\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad execution mask 'zz34'");
}

TEST(TraceIoErrors, TextTrailingGarbageInMask)
{
    std::stringstream ss("16 4 alu 00ffq\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad execution mask '00ffq'");
}

TEST(TraceIoErrors, TextMissingFields)
{
    std::stringstream ss("16 4 alu\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad trace line");
}

TEST(TraceIoErrors, TextUnknownKind)
{
    std::stringstream ss("16 4 frobnicate 00ff\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad instruction kind 'frobnicate'");
}

TEST(TraceIoErrors, TextFieldOutOfRange)
{
    std::stringstream ss("70000 4 alu 00ff\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "field out of range");
}

TEST(TraceIoErrors, TextZeroSimdWidth)
{
    std::stringstream ss("0 4 alu 0\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad SIMD width 0");
}

TEST(TraceIoErrors, TextMaskBeyondWidth)
{
    std::stringstream ss("8 4 alu ffff\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bits beyond SIMD width 8");
}

TEST(TraceIoErrors, TextNonPowerOfTwoWidth)
{
    // 7 <= kMaxSimdWidth and 0x7f fits in 7 lanes, so only the
    // power-of-two check can reject this line.
    std::stringstream ss("7 4 alu 7f\n");
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad SIMD width 7");
}

TEST(TraceIoErrors, BinaryNonPowerOfTwoWidth)
{
    std::string blob = serialized();
    // First record starts after magic+version+name_len+name+count.
    const std::size_t rec0 = 4 + 4 + 4 + 3 + 8;
    blob[rec0] = 12;
    std::stringstream ss(blob);
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "bad SIMD width 12");
}

} // namespace
