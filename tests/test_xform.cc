/**
 * @file
 * Tests for the control-flow melder (src/xform): the alignment cost
 * model, per-diamond legality verdicts over builder-authored kernels,
 * functional exactness of the transform (builder kernels and registry
 * workloads under both execution backends), the verifier's
 * complementary-predication refinement the melded code relies on, and
 * the run-harness / cache-key wiring of RunRequest::meld.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "func/memory.hh"
#include "isa/builder.hh"
#include "lint/verifier.hh"
#include "run/run.hh"
#include "step_digest.hh"
#include "workloads/registry.hh"
#include "xform/align.hh"
#include "xform/diff.hh"
#include "xform/meld.hh"

namespace
{

using namespace iwc;
using isa::CondMod;
using isa::DataType;
using isa::Instruction;
using isa::Kernel;
using isa::KernelBuilder;
using isa::Opcode;
using isa::PredCtrl;
using xform::AlignKind;
using xform::Alignment;
using xform::MeldOptions;
using xform::MeldReport;
using xform::MeldResult;
using xform::MeldVerdict;

Instruction
addF16(unsigned dst, unsigned src, float imm)
{
    Instruction in;
    in.op = Opcode::Add;
    in.simdWidth = 16;
    in.dst = isa::grfOperand(static_cast<std::uint8_t>(dst), DataType::F);
    in.src0 = isa::grfOperand(static_cast<std::uint8_t>(src), DataType::F);
    in.src1 = isa::immF(imm);
    return in;
}

// --- Alignment cost model ---------------------------------------------

TEST(XformAlign, InstrCyclesScaleWithWidthAndElementSize)
{
    // simd16 x 4B = 64 B over the 16 B/cycle datapath.
    EXPECT_EQ(xform::instrCycles(addF16(20, 20, 1.0f)), 4u);
    Instruction narrow = addF16(20, 20, 1.0f);
    narrow.simdWidth = 8;
    EXPECT_EQ(xform::instrCycles(narrow), 2u);
    narrow.simdWidth = 1;
    EXPECT_EQ(xform::instrCycles(narrow), 1u);
}

TEST(XformAlign, IdenticalArmsFullyMatch)
{
    std::vector<Instruction> instrs;
    for (unsigned arm = 0; arm < 2; ++arm) {
        instrs.push_back(addF16(20, 20, 1.0f));
        instrs.push_back(addF16(22, 22, 2.0f));
        instrs.push_back(addF16(24, 24, 3.0f));
    }
    const Alignment a = xform::alignArms(instrs.data(), 0, 3, 3, 6);
    EXPECT_EQ(a.matches, 3u);
    EXPECT_EQ(a.score, 12u); // three simd16 float ops, 4 cycles each
    ASSERT_EQ(a.ops.size(), 3u);
    for (const xform::AlignOp &op : a.ops)
        EXPECT_EQ(op.kind, AlignKind::Match);
}

TEST(XformAlign, DisjointArmsNeverMatch)
{
    std::vector<Instruction> instrs{addF16(20, 20, 1.0f),
                                    addF16(22, 22, 2.0f)};
    const Alignment a = xform::alignArms(instrs.data(), 0, 1, 1, 2);
    EXPECT_EQ(a.matches, 0u);
    EXPECT_EQ(a.score, 0u);
    EXPECT_EQ(a.ops.size(), 2u); // one ThenOnly + one ElseOnly
}

TEST(XformAlign, CycleWeightPrefersWiderMatch)
{
    // then = [A16, B1], else = [B1, A16]: the monotone alignment can
    // keep only one of the two common instructions, and the cycle
    // weight must pick the simd16 one (4 cycles) over simd1 (1).
    Instruction a16 = addF16(20, 20, 1.0f);
    Instruction b1 = addF16(22, 22, 2.0f);
    b1.simdWidth = 1;
    const std::vector<Instruction> instrs{a16, b1, b1, a16};
    const Alignment a = xform::alignArms(instrs.data(), 0, 2, 2, 4);
    EXPECT_EQ(a.matches, 1u);
    EXPECT_EQ(a.score, 4u);
    bool matched_a16 = false;
    for (const xform::AlignOp &op : a.ops)
        if (op.kind == AlignKind::Match)
            matched_a16 = op.thenIp == 0 && op.elseIp == 3;
    EXPECT_TRUE(matched_a16);
}

TEST(XformAlign, MatchRequiresSemanticEquality)
{
    Instruction a = addF16(20, 20, 1.0f);
    Instruction b = addF16(20, 20, 1.0f);
    EXPECT_TRUE(xform::sameInstruction(a, b));
    b.src1 = isa::immF(1.5f);
    EXPECT_FALSE(xform::sameInstruction(a, b));
    b = a;
    b.src0.negate = true;
    EXPECT_FALSE(xform::sameInstruction(a, b));
    b = a;
    b.simdWidth = 8;
    EXPECT_FALSE(xform::sameInstruction(a, b));
}

// --- Builder-authored diamonds ----------------------------------------

/**
 * A divergent if/else diamond over a per-channel float accumulator.
 * The arm bodies come from @p then_body / @p else_body so each test
 * shapes its own legality scenario; the epilogue stores the
 * accumulator so arm effects stay observable.
 */
template <typename ThenFn, typename ElseFn>
Kernel
diamond(ThenFn &&then_body, ElseFn &&else_body, bool uniform = false)
{
    KernelBuilder b("diamond", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto bit = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    b.mov(x, b.f(1.0f));
    if (uniform)
        b.and_(bit, b.groupId(), b.ud(1));
    else
        b.and_(bit, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.if_(0);
    then_body(b, x);
    b.else_();
    else_body(b, x);
    b.endif_();
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    return b.build();
}

/** The single meld candidate of a one-diamond kernel. */
const xform::MeldCandidate &
soleCandidate(const MeldReport &report)
{
    EXPECT_EQ(report.candidates.size(), 1u);
    return report.candidates.front();
}

TEST(XformMeld, DivergentDiamondMeldsAndMerges)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            b.mad(x, x, b.f(2.0f), b.f(1.0f)); // identical in both arms
            b.add(x, x, b.f(3.0f));
        },
        [](KernelBuilder &b, isa::Reg x) {
            b.mad(x, x, b.f(2.0f), b.f(1.0f));
            b.add(x, x, b.f(5.0f));
        });
    const MeldResult result = xform::meldKernel(k);
    ASSERT_TRUE(result.report.valid);
    EXPECT_TRUE(result.changed);
    EXPECT_FALSE(result.report.reverted);
    EXPECT_FALSE(result.report.postVerify.hasErrors());

    const xform::MeldCandidate &c = soleCandidate(result.report);
    EXPECT_EQ(c.verdict, MeldVerdict::Melded);
    EXPECT_TRUE(c.divergent);
    EXPECT_EQ(c.matched, 1u);
    EXPECT_EQ(c.merged, 1u);
    // One merged copy + each arm's distinct add under a predicate.
    EXPECT_EQ(c.emitted, 3u);
    // Diamond of 3 control instructions + 4 body vanished into 3.
    EXPECT_EQ(result.kernel.size(), k.size() - 4);
    EXPECT_GT(c.savedCycles, 0u);

    // The merged instruction must be unpredicated; the arm-only ones
    // must carry complementary senses of the branch flag.
    unsigned plain = 0, normal = 0, inverted = 0;
    for (const Instruction &in : result.kernel.instructions()) {
        if (in.op != Opcode::Mad && in.op != Opcode::Add)
            continue;
        if (in.op == Opcode::Mad && in.dst.type == DataType::F &&
            in.predCtrl == PredCtrl::None)
            ++plain;
        if (in.predCtrl == PredCtrl::Normal)
            ++normal;
        if (in.predCtrl == PredCtrl::Inverted)
            ++inverted;
    }
    EXPECT_GE(plain, 1u);
    EXPECT_EQ(normal, 1u);
    EXPECT_EQ(inverted, 1u);
}

TEST(XformMeld, UniformBranchSkippedUnlessAsked)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(3.0f)); },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); },
        /*uniform=*/true);

    const MeldResult skipped = xform::meldKernel(k);
    EXPECT_FALSE(skipped.changed);
    EXPECT_EQ(soleCandidate(skipped.report).verdict,
              MeldVerdict::UniformBranch);
    EXPECT_FALSE(soleCandidate(skipped.report).divergent);

    MeldOptions options;
    options.meldUniform = true;
    const MeldResult melded = xform::meldKernel(k, options);
    EXPECT_TRUE(melded.changed);
    EXPECT_EQ(soleCandidate(melded.report).verdict, MeldVerdict::Melded);
}

TEST(XformMeld, ArmSendBlocksMelding)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            auto addr = b.tmp(DataType::UD);
            b.mad(addr, b.globalId(), b.ud(4), b.ud(0x10000));
            b.gatherLoad(x, addr, DataType::F);
        },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    const MeldResult result = xform::meldKernel(k);
    EXPECT_FALSE(result.changed);
    EXPECT_EQ(soleCandidate(result.report).verdict, MeldVerdict::ArmSend);
}

TEST(XformMeld, NestedControlFlowBlocksTheOuterDiamondOnly)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            auto bit = b.tmp(DataType::UD);
            b.and_(bit, b.globalId(), b.ud(2));
            b.cmp(CondMod::Ne, 1, bit, b.ud(0));
            b.if_(1);
            b.add(x, x, b.f(3.0f));
            b.endif_();
        },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    const MeldResult result = xform::meldKernel(k);
    // The inner diamond (divergent, straight-line arm) melds on its
    // own; the outer one must be rejected for nested control flow.
    ASSERT_EQ(result.report.candidates.size(), 2u);
    const xform::MeldCandidate &outer = result.report.candidates[0];
    const xform::MeldCandidate &inner = result.report.candidates[1];
    EXPECT_LT(outer.headIp, inner.headIp);
    EXPECT_EQ(outer.verdict, MeldVerdict::ArmControlFlow);
    EXPECT_EQ(inner.verdict, MeldVerdict::Melded);
    EXPECT_TRUE(result.changed);
    EXPECT_FALSE(result.report.postVerify.hasErrors());
}

TEST(XformMeld, PredicatedArmInstructionBlocksMelding)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            auto bit = b.tmp(DataType::UD);
            b.and_(bit, b.globalId(), b.ud(2));
            b.cmp(CondMod::Ne, 1, bit, b.ud(0));
            b.add(x, x, b.f(3.0f)).pred(1);
        },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    const MeldResult result = xform::meldKernel(k);
    EXPECT_FALSE(result.changed);
    EXPECT_EQ(soleCandidate(result.report).verdict,
              MeldVerdict::ArmPredicated);
}

TEST(XformMeld, BranchFlagClobberBlocksMelding)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            auto bit = b.tmp(DataType::UD);
            b.and_(bit, b.globalId(), b.ud(2));
            b.cmp(CondMod::Ne, 0, bit, b.ud(0)); // rewrites branch flag
            b.add(x, x, b.f(3.0f));
        },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    const MeldResult result = xform::meldKernel(k);
    EXPECT_FALSE(result.changed);
    EXPECT_EQ(soleCandidate(result.report).verdict,
              MeldVerdict::PredFlagClobber);
}

TEST(XformMeld, ArmLengthCeilingBlocksMelding)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            b.add(x, x, b.f(3.0f));
            b.add(x, x, b.f(4.0f));
        },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    MeldOptions options;
    options.maxArmLen = 1;
    const MeldResult result = xform::meldKernel(k, options);
    EXPECT_FALSE(result.changed);
    EXPECT_EQ(soleCandidate(result.report).verdict,
              MeldVerdict::ArmTooLong);
}

TEST(XformMeld, NarrowIfBlocksMelding)
{
    // Rebuild the diamond kernel with the If narrowed below the kernel
    // width: the arm-mask partition argument no longer holds, so the
    // melder must refuse.
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(3.0f)); },
        [](KernelBuilder &b, isa::Reg x) { b.add(x, x, b.f(5.0f)); });
    std::vector<Instruction> instrs = k.instructions();
    for (Instruction &in : instrs)
        if (in.op == Opcode::If)
            in.simdWidth = 8;
    const Kernel narrow(k.name(), k.simdWidth(), std::move(instrs),
                        k.args(), k.firstTempReg(), k.regsUsed(),
                        k.slmBytes());
    const MeldResult result = xform::meldKernel(narrow);
    EXPECT_FALSE(result.changed);
    EXPECT_EQ(soleCandidate(result.report).verdict,
              MeldVerdict::WidthMismatch);
}

TEST(XformMeld, StraightLineKernelUnchanged)
{
    KernelBuilder b("straight", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto addr = b.tmp(DataType::UD);
    b.mov(x, b.f(2.5f));
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    const Kernel k = b.build();
    const MeldResult result = xform::meldKernel(k);
    EXPECT_TRUE(result.report.valid);
    EXPECT_FALSE(result.changed);
    EXPECT_TRUE(result.report.candidates.empty());
    EXPECT_EQ(result.kernel.digest(), k.digest());
}

// --- Functional exactness ---------------------------------------------

/**
 * Executes @p kernel over 32 work items into a fresh buffer and
 * returns (effect-stream digest, final-memory digest).
 */
std::pair<std::uint64_t, std::uint64_t>
executeDiamond(const Kernel &kernel, func::BackendKind backend)
{
    func::GlobalMemory gmem;
    const Addr out = gmem.allocate(32 * 4);
    const std::vector<std::uint32_t> args{
        static_cast<std::uint32_t>(out)};
    const std::uint64_t stream = testsupport::digestEffectStream(
        kernel, gmem, 32, 16, args, backend);
    return {stream, gmem.digest()};
}

TEST(XformExact, MeldedDiamondIsBitIdentical)
{
    const Kernel k = diamond(
        [](KernelBuilder &b, isa::Reg x) {
            b.mad(x, x, b.f(2.0f), b.f(1.0f));
            b.add(x, x, b.f(3.0f));
        },
        [](KernelBuilder &b, isa::Reg x) {
            b.mad(x, x, b.f(2.0f), b.f(1.0f));
            b.add(x, x, b.f(5.0f));
        });
    const MeldResult melded = xform::meldKernel(k);
    ASSERT_TRUE(melded.changed);
    for (const func::BackendKind backend :
         {func::BackendKind::Scalar, func::BackendKind::Vector}) {
        const auto original = executeDiamond(k, backend);
        const auto transformed = executeDiamond(melded.kernel, backend);
        EXPECT_EQ(original.first, transformed.first);
        EXPECT_EQ(original.second, transformed.second);
    }
}

TEST(XformExact, RegistryWorkloadDifferentials)
{
    // Spot-check meldable registry workloads under both backends; the
    // meld-diff-gate ctest covers the full corpus the same way.
    const char *names[] = {"micro_ifelse", "micro_nested", "nw",
                           "bsearch", "treesearch"};
    for (const char *name : names) {
        for (const func::BackendKind backend :
             {func::BackendKind::Scalar, func::BackendKind::Vector}) {
            const xform::MeldDiff diff =
                xform::runMeldDiff(name, 1, backend);
            EXPECT_TRUE(diff.identical())
                << name << " under "
                << func::backendKindName(backend);
            EXPECT_GE(diff.meldedBranches, 1u) << name;
            EXPECT_FALSE(diff.report.postVerify.hasErrors()) << name;
        }
    }
}

TEST(XformExact, WholeCorpusMeldsWithoutFailures)
{
    // Static half of the corpus gate: every registered kernel melds
    // (or declines) without an input-verify failure or a post-verify
    // revert. The dynamic half lives in the meld-diff-gate ctest.
    for (const std::string &name : workloads::allNames()) {
        gpu::Device dev;
        const workloads::Workload w = workloads::make(name, dev, 1);
        const MeldResult result = xform::meldKernel(w.kernel);
        EXPECT_TRUE(result.report.valid) << name;
        EXPECT_FALSE(result.report.reverted) << name;
        EXPECT_FALSE(result.report.postVerify.hasErrors()) << name;
    }
}

// --- Verifier complementary-predication refinement --------------------

TEST(XformVerifier, ComplementaryPredicatedPairCountsAsFullDef)
{
    // The exact shape the melder emits: (+f0) write and (-f0) write of
    // the same register, then an unpredicated read. Without the
    // refinement this read would warn about a partial definition.
    KernelBuilder b("meld_shape", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    auto bit = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    b.and_(bit, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.mov(x, b.f(3.0f)).pred(0);
    b.mov(x, b.f(5.0f)).pred(0, /*inverted=*/true);
    b.add(y, x, x); // full-def read: must not warn
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, y, DataType::F);
    const lint::Report report = lint::verify(b.build());
    EXPECT_TRUE(report.clean()) << lint::renderText(report, nullptr);
}

TEST(XformVerifier, LonePredicatedWriteStaysPartial)
{
    KernelBuilder b("half_pair", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    auto bit = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    b.and_(bit, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.mov(x, b.f(3.0f)).pred(0);
    b.add(y, x, x); // reads channels the predicate left undefined
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, y, DataType::F);
    const lint::Report report = lint::verify(b.build());
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.hasErrors()); // partial reads warn, not error
}

TEST(XformVerifier, PredicateRewriteBreaksThePair)
{
    // cmp rewrites f0 between the two halves, so they no longer cover
    // complementary channel sets — the read must still warn.
    KernelBuilder b("broken_pair", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    auto bit = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    b.and_(bit, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.mov(x, b.f(3.0f)).pred(0);
    b.and_(bit, b.globalId(), b.ud(2));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.mov(x, b.f(5.0f)).pred(0, /*inverted=*/true);
    b.add(y, x, x);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, y, DataType::F);
    const lint::Report report = lint::verify(b.build());
    EXPECT_FALSE(report.clean());
}

TEST(XformVerifier, MismatchedWidthDoesNotCompleteThePair)
{
    KernelBuilder b("width_pair", 16);
    auto out = b.argBuffer("out");
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    auto bit = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    b.and_(bit, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));
    b.mov(x, b.f(3.0f)).pred(0);
    b.mov(x, b.f(5.0f)).pred(0, /*inverted=*/true).width(8);
    b.add(y, x, x);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, y, DataType::F);
    const lint::Report report = lint::verify(b.build());
    EXPECT_FALSE(report.clean());
}

// --- Run-harness wiring -----------------------------------------------

TEST(XformRun, MeldFlagIsPartOfTheCacheKey)
{
    run::RunRequest plain =
        run::RunRequest::functionalTrace("micro_ifelse", 1);
    run::RunRequest melded = plain;
    melded.meld = true;
    const auto key_plain = run::cacheKeyFor(plain);
    const auto key_melded = run::cacheKeyFor(melded);
    ASSERT_TRUE(key_plain.has_value());
    ASSERT_TRUE(key_melded.has_value());
    EXPECT_FALSE(*key_plain == *key_melded);
    EXPECT_NE(key_plain->hash(), key_melded->hash());
}

TEST(XformRun, TimingRunWithMeldStaysCorrect)
{
    run::RunRequest request =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    request.checkOutput = true;
    const run::RunResult plain = run::executeRun(request);
    request.meld = true;
    const run::RunResult melded = run::executeRun(request);

    ASSERT_TRUE(plain.checked && melded.checked);
    EXPECT_TRUE(plain.checkOk);
    EXPECT_TRUE(melded.checkOk);
    // The melder rewrote the kernel (digest differs) and the melded
    // kernel retires fewer instructions.
    EXPECT_NE(plain.kernelDigest, melded.kernelDigest);
    EXPECT_LT(melded.stats.eu.instructions, plain.stats.eu.instructions);
}

TEST(XformRun, FunctionalTraceWithMeldShrinksTheTrace)
{
    run::RunRequest request =
        run::RunRequest::functionalTrace("micro_ifelse", 1);
    const run::RunResult plain = run::executeRun(request);
    request.meld = true;
    const run::RunResult melded = run::executeRun(request);
    EXPECT_LT(melded.analysis.records, plain.analysis.records);
}

} // namespace
