/** @file Tests for trace records, capture, and serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/device.hh"
#include "isa/builder.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace iwc::trace;
using iwc::gpu::Arg;
using iwc::gpu::Device;
using iwc::isa::DataType;
using iwc::isa::KernelBuilder;

TEST(TraceRecordTest, KindClassification)
{
    iwc::isa::Instruction in;
    in.op = iwc::isa::Opcode::Mad;
    EXPECT_EQ(kindOf(in), InstrKind::Alu);
    in.op = iwc::isa::Opcode::Sqrt;
    EXPECT_EQ(kindOf(in), InstrKind::Em);
    in.op = iwc::isa::Opcode::Send;
    EXPECT_EQ(kindOf(in), InstrKind::Send);
    in.op = iwc::isa::Opcode::EndIf;
    EXPECT_EQ(kindOf(in), InstrKind::Ctrl);
}

TEST(TraceRecordTest, RecordCapturesShape)
{
    iwc::isa::Instruction in;
    in.op = iwc::isa::Opcode::Add;
    in.simdWidth = 16;
    in.dst = iwc::isa::grfOperand(10, DataType::DF);
    in.src0 = iwc::isa::grfOperand(12, DataType::DF);
    const TraceRecord r = recordOf(in, 0xdead5555);
    EXPECT_EQ(r.simdWidth, 16);
    EXPECT_EQ(r.elemBytes, 8);
    EXPECT_EQ(r.execMask, 0x5555u); // clipped to the width
    EXPECT_EQ(r.kind, InstrKind::Alu);
}

TEST(TraceCapture, ObserverBuildsTrace)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::F);
    b.mov(x, b.f(1.0f));
    b.mul(x, x, b.f(2.0f));
    const auto kernel = b.build();

    Device dev;
    MaskTrace trace;
    trace.name = "t";
    dev.launchFunctional(kernel, 16, 16, {}, captureObserver(trace));
    ASSERT_EQ(trace.size(), 3u); // mov, mul, halt
    EXPECT_EQ(trace.records[0].execMask, 0xffffu);
    EXPECT_EQ(trace.records[2].kind, InstrKind::Ctrl);
}

MaskTrace
sampleTrace()
{
    MaskTrace trace;
    trace.name = "sample";
    trace.records = {
        {16, 4, InstrKind::Alu, 0xffff},
        {16, 4, InstrKind::Alu, 0x00f0},
        {8, 4, InstrKind::Em, 0x0f},
        {16, 2, InstrKind::Send, 0xffff},
        {16, 4, InstrKind::Ctrl, 0x1111},
    };
    return trace;
}

TEST(TraceIo, BinaryRoundTrip)
{
    const MaskTrace trace = sampleTrace();
    std::stringstream ss;
    writeBinary(ss, trace);
    const MaskTrace back = readBinary(ss);
    EXPECT_EQ(back.name, trace.name);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_EQ(back.records[i].simdWidth, trace.records[i].simdWidth);
        EXPECT_EQ(back.records[i].elemBytes, trace.records[i].elemBytes);
        EXPECT_EQ(back.records[i].kind, trace.records[i].kind);
        EXPECT_EQ(back.records[i].execMask, trace.records[i].execMask);
    }
}

TEST(TraceIo, TextRoundTrip)
{
    const MaskTrace trace = sampleTrace();
    std::stringstream ss;
    writeText(ss, trace);
    const MaskTrace back = readText(ss);
    EXPECT_EQ(back.name, trace.name);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_EQ(back.records[i].execMask, trace.records[i].execMask);
        EXPECT_EQ(back.records[i].kind, trace.records[i].kind);
    }
}

TEST(TraceIo, FileRoundTrip)
{
    const MaskTrace trace = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "/iwc_trace_test.bin";
    writeBinaryFile(path, trace);
    const MaskTrace back = readBinaryFile(path);
    EXPECT_EQ(back.size(), trace.size());
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream ss("not a trace at all");
    EXPECT_EXIT(readBinary(ss), ::testing::ExitedWithCode(1),
                "not an IWC trace");
}

TEST(MaskTraceAppend, GrowsGeometrically)
{
    // append() pre-reserves in doubling steps so long captures do not
    // pay per-record reallocation; the capacity trail must be a small
    // set of distinct values, not one per append.
    MaskTrace t;
    std::size_t capacity_changes = 0;
    std::size_t last_capacity = t.records.capacity();
    for (int i = 0; i < 200000; ++i) {
        t.append({16, 4, InstrKind::Alu, 0xffff});
        if (t.records.capacity() != last_capacity) {
            ++capacity_changes;
            last_capacity = t.records.capacity();
        }
    }
    EXPECT_EQ(t.size(), 200000u);
    EXPECT_LE(capacity_changes, 8u); // 4096 * 2^6 > 200000
}

} // namespace
