/** @file Tests for the idealized inter-warp compaction analyzer. */

#include <gtest/gtest.h>

#include "compaction/interwarp.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"

namespace
{

using iwc::LaneMask;
using iwc::compaction::InterWarpAnalyzer;
using iwc::compaction::InterWarpStats;
using iwc::func::StepResult;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Instruction;
using iwc::isa::KernelBuilder;

/** Hand-feeds ALU records for one (ip, occurrence) merge group. */
class FeedHelper
{
  public:
    FeedHelper()
    {
        instr_.op = iwc::isa::Opcode::Add;
        instr_.simdWidth = 16;
        instr_.dst = iwc::isa::grfOperand(10, DataType::F);
        instr_.src0 = iwc::isa::grfOperand(12, DataType::F);
        instr_.src1 = iwc::isa::grfOperand(14, DataType::F);
    }

    void
    feedAlu(InterWarpAnalyzer &a, unsigned sg, LaneMask mask,
            std::uint32_t ip = 0, std::uint64_t occ = 0)
    {
        StepResult r;
        r.instr = &instr_;
        r.ip = ip;
        r.execMask = mask;
        a.add(0, sg, ip, occ, r);
    }

    Instruction instr_;
};

TEST(InterWarp, ComplementaryWarpsMergeToOne)
{
    // Two warps with complementary halves: TBC packs them into one
    // compacted warp (no lane conflicts).
    InterWarpAnalyzer a;
    FeedHelper f;
    f.feedAlu(a, 0, 0x00ff);
    f.feedAlu(a, 1, 0xff00);
    const InterWarpStats &s = a.finalize();
    EXPECT_EQ(s.intraBaselineCycles, 8u); // 2 warps x 4 cycles
    EXPECT_EQ(s.interWarpCycles, 4u);     // 1 compacted warp
    EXPECT_EQ(s.intraIvbCycles, 4u);      // both are half-masked
    EXPECT_EQ(s.intraSccCycles, 4u);
}

TEST(InterWarp, LaneConflictsLimitTheMerge)
{
    // Four warps all active in lane 0 only: home-lane preservation
    // means TBC still needs four compacted warps; SCC handles each in
    // one cycle.
    InterWarpAnalyzer a;
    FeedHelper f;
    for (unsigned sg = 0; sg < 4; ++sg)
        f.feedAlu(a, sg, 0x0001);
    const InterWarpStats &s = a.finalize();
    EXPECT_EQ(s.interWarpCycles, 16u); // 4 compacted x 4 cycles
    EXPECT_EQ(s.intraSccCycles, 4u);   // 4 warps x 1 cycle
    EXPECT_EQ(s.intraBccCycles, 4u);   // single quad active
}

TEST(InterWarp, ScatteredLanesFavorInterPlusScc)
{
    // Four warps each with one lane per quad (0x1111).
    InterWarpAnalyzer a;
    FeedHelper f;
    for (unsigned sg = 0; sg < 4; ++sg)
        f.feedAlu(a, sg, 0x1111);
    const InterWarpStats &s = a.finalize();
    // Home lanes collide (all four warps use lanes 0/4/8/12), so
    // plain TBC still needs four compacted warps; only adding intra
    // compression on top recovers the cycles - and plain intra SCC
    // already matches that bound.
    EXPECT_EQ(s.interWarpCycles, 16u);
    EXPECT_EQ(s.intraSccCycles, 4u);
    EXPECT_EQ(s.interWarpSccCycles, 4u);
    EXPECT_EQ(s.intraBccCycles, 16u); // BCC cannot help 0x1111
}

TEST(InterWarp, DifferentOccurrencesDoNotMerge)
{
    InterWarpAnalyzer a;
    FeedHelper f;
    f.feedAlu(a, 0, 0x00ff, 5, 0);
    f.feedAlu(a, 1, 0xff00, 5, 1); // different loop iteration
    const InterWarpStats &s = a.finalize();
    // No merge possible: each group has one member.
    EXPECT_EQ(s.interWarpCycles, 8u);
}

TEST(InterWarp, MemoryDivergenceGrowsUnderMerging)
{
    // Two warps, complementary halves, each touching ONE line; the
    // merged warp touches both lines in a single message.
    Instruction send;
    send.op = iwc::isa::Opcode::Send;
    send.simdWidth = 16;
    send.send = {iwc::isa::SendOp::GatherLoad, DataType::F, 1};
    send.dst = iwc::isa::grfOperand(20, DataType::F);
    send.src0 = iwc::isa::grfOperand(22, DataType::UD);

    InterWarpAnalyzer a;
    for (unsigned sg = 0; sg < 2; ++sg) {
        StepResult r;
        r.instr = &send;
        r.ip = 3;
        r.execMask = sg == 0 ? 0x00ff : 0xff00;
        r.hasMem = true;
        r.mem.elemBytes = 4;
        r.mem.mask = r.execMask;
        for (unsigned ch = 0; ch < 16; ++ch)
            r.mem.addrs[ch] = 0x10000ull * (sg + 1) + ch * 4;
        a.add(0, sg, 3, 0, r);
    }
    const InterWarpStats &s = a.finalize();
    EXPECT_EQ(s.intraMessages, 2u);
    EXPECT_EQ(s.intraLines, 2u); // one line each
    EXPECT_EQ(s.interMessages, 1u);
    EXPECT_EQ(s.interLines, 2u); // the merged message needs both
    EXPECT_GT(s.interLinesPerMessage(), s.intraLinesPerMessage());
}

TEST(InterWarp, EndToEndOnDivergentKernel)
{
    // A per-lane-trip-count loop kernel: inter-warp merging helps,
    // but intra SCC captures a solid share of the bound, and memory
    // divergence per message never shrinks under merging.
    KernelBuilder b("iw", 16);
    auto out = b.argBuffer("out");
    auto lane = b.tmp(DataType::D);
    auto x = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.d(15));
    b.mov(x, b.f(0.0f));
    b.mov(i, b.d(0));
    b.loop_();
    b.mad(x, x, b.f(1.1f), b.f(1.0f));
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Le, 1, i, lane);
    b.endLoop(1);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    const auto kernel = b.build();

    iwc::gpu::Device dev;
    const iwc::Addr buf = dev.allocBuffer(512 * 4);
    InterWarpAnalyzer analyzer;
    iwc::gpu::runKernelFunctionalDetailed(
        kernel, dev.memory(), 512, 64,
        {static_cast<std::uint32_t>(buf)},
        [&](const iwc::gpu::DetailedStep &step) {
            analyzer.add(step.workgroup, step.subgroup, step.ip,
                         step.occurrence, *step.result);
        });
    const InterWarpStats &s = analyzer.finalize();

    EXPECT_GT(s.intraBaselineCycles, 0u);
    // Orderings that must always hold.
    EXPECT_LE(s.intraSccCycles, s.intraBccCycles);
    EXPECT_LE(s.intraBccCycles, s.intraIvbCycles);
    EXPECT_LE(s.interWarpSccCycles, s.interWarpCycles);
    // Unit-stride stores: merging cannot reduce lines per message.
    EXPECT_GE(s.interLinesPerMessage(),
              s.intraLinesPerMessage() - 1e-9);
}

} // namespace
