/**
 * @file
 * FNV-1a digests of a functional StepResult stream and of timing
 * LaunchStats, shared by the predecode/tick-skip differential tests.
 * The golden values in test_predecode.cc were captured from the
 * interpreter and simulator as they existed before the hot-path
 * optimizations (predecode, cycle-plan memoization, idle-cycle
 * skipping, allocation pooling), so a digest match proves the
 * optimized model is bit-identical to the original.
 */

#ifndef IWC_TESTS_STEP_DIGEST_HH
#define IWC_TESTS_STEP_DIGEST_HH

#include <cstdint>

#include "gpu/device.hh"
#include "gpu/simulator.hh"

namespace iwc::testsupport
{

/** Incremental 64-bit FNV-1a over 64-bit words. */
class Fnv64
{
  public:
    void
    add(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (v >> (i * 8)) & 0xff;
            hash_ *= 1099511628211ull;
        }
    }

    void
    addDouble(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ull;
};

/** Folds one observed functional step into @p fnv. */
inline void
addStep(Fnv64 &fnv, const gpu::DetailedStep &step)
{
    const func::StepResult &r = *step.result;
    fnv.add(step.workgroup);
    fnv.add(step.subgroup);
    fnv.add(step.occurrence);
    fnv.add(r.ip);
    fnv.add(r.execMask);
    fnv.add((std::uint64_t{r.isBarrier} << 2) |
            (std::uint64_t{r.isHalt} << 1) | std::uint64_t{r.hasMem});
    if (!r.hasMem)
        return;
    const func::MemAccess &mem = r.mem;
    fnv.add(static_cast<std::uint64_t>(mem.op));
    fnv.add(mem.elemBytes);
    fnv.add(mem.mask);
    if (mem.isBlock) {
        fnv.add(mem.blockAddr);
        fnv.add(mem.blockBytes);
        return;
    }
    // Only lanes named by the mask carry defined addresses; inactive
    // lanes may hold stale data once the access buffers are pooled.
    for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch)
        if (mem.mask & (LaneMask{1} << ch))
            fnv.add(mem.addrs[ch]);
}

/** Digest of the full per-instruction StepResult stream of a launch. */
inline std::uint64_t
digestFunctionalRun(const isa::Kernel &kernel, func::GlobalMemory &gmem,
                    std::uint64_t global_size, unsigned local_size,
                    const std::vector<std::uint32_t> &arg_words,
                    func::BackendKind backend = func::BackendKind::Auto)
{
    Fnv64 fnv;
    gpu::runKernelFunctionalDetailed(
        kernel, gmem, global_size, local_size, arg_words,
        [&fnv](const gpu::DetailedStep &step) { addStep(fnv, step); },
        backend);
    return fnv.value();
}

/**
 * Digest of only the externally visible effect substream of a launch:
 * memory accesses, barriers, and halts, tagged with the issuing
 * thread — no ips, occurrence indices, or execMasks. Invariant under
 * transforms that rewrite the instruction stream without changing
 * what the kernel does (the melder differential gate compares this
 * across the original and transformed kernels; see xform/diff.hh).
 */
inline std::uint64_t
digestEffectStream(const isa::Kernel &kernel, func::GlobalMemory &gmem,
                   std::uint64_t global_size, unsigned local_size,
                   const std::vector<std::uint32_t> &arg_words,
                   func::BackendKind backend = func::BackendKind::Auto)
{
    Fnv64 fnv;
    gpu::runKernelFunctionalDetailed(
        kernel, gmem, global_size, local_size, arg_words,
        [&fnv](const gpu::DetailedStep &step) {
            const func::StepResult &r = *step.result;
            if (!r.hasMem && !r.isBarrier && !r.isHalt)
                return;
            fnv.add(step.workgroup);
            fnv.add(step.subgroup);
            fnv.add((std::uint64_t{r.isBarrier} << 1) |
                    std::uint64_t{r.isHalt});
            if (!r.hasMem)
                return;
            const func::MemAccess &mem = r.mem;
            fnv.add(static_cast<std::uint64_t>(mem.op));
            fnv.add(mem.elemBytes);
            fnv.add(mem.mask);
            if (mem.isBlock) {
                fnv.add(mem.blockAddr);
                fnv.add(mem.blockBytes);
                return;
            }
            for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch)
                if (mem.mask & (LaneMask{1} << ch))
                    fnv.add(mem.addrs[ch]);
        },
        backend);
    return fnv.value();
}

/** Digest of every counter a timing launch produces. */
inline std::uint64_t
digestLaunchStats(const gpu::LaunchStats &stats)
{
    Fnv64 fnv;
    fnv.add(stats.totalCycles);
    fnv.add(stats.eu.instructions);
    fnv.add(stats.eu.aluInstructions);
    fnv.add(stats.eu.sendInstructions);
    fnv.add(stats.eu.ctrlInstructions);
    fnv.add(stats.eu.sumActiveLanes);
    fnv.add(stats.eu.sumSimdWidth);
    for (const std::uint64_t c : stats.eu.euCyclesByMode)
        fnv.add(c);
    for (const std::uint64_t b : stats.eu.utilBins)
        fnv.add(b);
    fnv.add(stats.eu.memMessages);
    fnv.add(stats.eu.memLines);
    fnv.add(stats.eu.slmMessages);
    fnv.add(stats.eu.sccSwizzledLanes);
    fnv.add(stats.eu.issueSlotsUsed);
    fnv.add(stats.eu.threadsRetired);
    fnv.add(stats.fpuBusyCycles);
    fnv.add(stats.emBusyCycles);
    fnv.add(stats.l3Hits);
    fnv.add(stats.l3Misses);
    fnv.add(stats.llcHits);
    fnv.add(stats.llcMisses);
    fnv.add(stats.dramLines);
    fnv.add(stats.dcLines);
    fnv.add(stats.slmAccesses);
    fnv.addDouble(stats.avgLinesPerMessage);
    fnv.add(static_cast<std::uint64_t>(stats.workgroups));
    fnv.add(stats.threads);
    return fnv.value();
}

} // namespace iwc::testsupport

#endif // IWC_TESTS_STEP_DIGEST_HH
