/** @file Unit tests for the kernel builder: layout, patching, checks. */

#include <gtest/gtest.h>

#include "isa/builder.hh"

namespace
{

using namespace iwc::isa;

TEST(BuilderLayout, ArgAndTempRegisters)
{
    KernelBuilder b("t", 16);
    const Operand arg0 = b.argBuffer("buf");
    const Operand arg1 = b.argF("x");
    // SIMD16: r0 header, r1-2 gid, r3-4 lid -> args at r5.
    EXPECT_EQ(arg0.reg, 5);
    EXPECT_EQ(arg1.reg, 6);
    const Reg t0 = b.tmp(DataType::F);
    const Reg t1 = b.tmp(DataType::W);
    const Reg t2 = b.tmp(DataType::DF);
    EXPECT_EQ(t0.base, 7);  // 16 floats = 2 regs
    EXPECT_EQ(t1.base, 9);  // 16 words = 1 reg
    EXPECT_EQ(t2.base, 10); // 16 doubles = 4 regs
    b.mov(t0, b.f(0.0f));
    const Kernel k = b.build();
    EXPECT_EQ(k.firstTempReg(), 7u);
    EXPECT_EQ(k.regsUsed(), 14u);
    EXPECT_EQ(k.numArgs(), 2u);
}

TEST(BuilderLayout, Simd8UsesFewerIdRegs)
{
    KernelBuilder b("t", 8);
    const Operand arg = b.argU("n");
    // SIMD8: r0 header, r1 gid, r2 lid -> args at r3.
    EXPECT_EQ(arg.reg, 3);
    EXPECT_EQ(b.localId().reg, 2);
}

TEST(BuilderCf, IfElseTargetsPatched)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, x, b.d(0));
    b.if_(0);
    b.mov(x, b.d(1));
    b.else_();
    b.mov(x, b.d(2));
    b.endif_();
    const Kernel k = b.build();

    // Layout: 0 cmp, 1 if, 2 mov, 3 else, 4 mov, 5 endif, 6 halt.
    EXPECT_EQ(k.instr(1).op, Opcode::If);
    EXPECT_EQ(k.instr(1).target0, 3); // else
    EXPECT_EQ(k.instr(1).target1, 5); // endif
    EXPECT_EQ(k.instr(3).target0, 5);
}

TEST(BuilderCf, IfWithoutElseTargetsEndif)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, x, b.d(0));
    b.if_(0);
    b.mov(x, b.d(1));
    b.endif_();
    const Kernel k = b.build();
    EXPECT_EQ(k.instr(1).target0, 3);
    EXPECT_EQ(k.instr(1).target1, 3);
}

TEST(BuilderCf, LoopBackEdgeSkipsLoopBegin)
{
    KernelBuilder b("t", 16);
    auto i = b.tmp(DataType::D);
    b.mov(i, b.d(0));
    b.loop_();
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(4));
    b.endLoop(1);
    const Kernel k = b.build();
    // 0 mov, 1 loop, 2 add, 3 cmp, 4 while, 5 halt.
    EXPECT_EQ(k.instr(4).op, Opcode::LoopEnd);
    EXPECT_EQ(k.instr(4).target0, 2);
}

TEST(BuilderCf, BreakPatchedToLoopEnd)
{
    KernelBuilder b("t", 16);
    auto i = b.tmp(DataType::D);
    b.mov(i, b.d(0));
    b.loop_();
    b.cmp(CondMod::Gt, 0, i, b.d(2));
    b.breakIf(0);
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(9));
    b.endLoop(1);
    const Kernel k = b.build();
    // 0 mov, 1 loop, 2 cmp, 3 break, 4 add, 5 cmp, 6 while, 7 halt.
    EXPECT_EQ(k.instr(3).op, Opcode::Break);
    EXPECT_EQ(k.instr(3).target0, 6);
}

TEST(BuilderCf, BreakInsideNestedIfTargetsInnermostLoop)
{
    KernelBuilder b("t", 16);
    auto i = b.tmp(DataType::D);
    b.mov(i, b.d(0));
    b.loop_();
    b.cmp(CondMod::Gt, 0, i, b.d(2));
    b.if_(0);
    b.breakIf(0);
    b.endif_();
    b.cmp(CondMod::Lt, 1, i, b.d(9));
    b.endLoop(1);
    const Kernel k = b.build();
    // 0 mov, 1 loop, 2 cmp, 3 if, 4 break, 5 endif, 6 cmp, 7 while.
    EXPECT_EQ(k.instr(4).op, Opcode::Break);
    EXPECT_EQ(k.instr(4).target0, 7);
}

TEST(BuilderChaining, PredAndWidthModifiers)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(1)).pred(1, true).width(8);
    const Kernel k = b.build();
    EXPECT_EQ(k.instr(0).predCtrl, PredCtrl::Inverted);
    EXPECT_EQ(k.instr(0).predFlag, 1);
    EXPECT_EQ(k.instr(0).simdWidth, 8);
}

TEST(BuilderValidation, RejectsUnclosedControlFlow)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, x, b.d(0));
    b.if_(0);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1),
                "unclosed control flow");
}

TEST(BuilderValidation, RejectsElseWithoutIf)
{
    KernelBuilder b("t", 16);
    EXPECT_EXIT(b.else_(), ::testing::ExitedWithCode(1),
                "else without if");
}

TEST(BuilderValidation, RejectsBreakOutsideLoop)
{
    KernelBuilder b("t", 16);
    EXPECT_EXIT(b.breakIf(0), ::testing::ExitedWithCode(1),
                "break outside loop");
}

TEST(BuilderValidation, RejectsArgsAfterTemps)
{
    KernelBuilder b("t", 16);
    (void)b.tmp(DataType::F);
    EXPECT_EXIT((void)b.argU("late"), ::testing::ExitedWithCode(1),
                "declare args before temporaries");
}

TEST(BuilderValidation, RejectsBadSimdWidth)
{
    EXPECT_EXIT(KernelBuilder("t", 12), ::testing::ExitedWithCode(1),
                "SIMD width");
}

TEST(BuilderValidation, RejectsGrfOverflow)
{
    KernelBuilder b("t", 16);
    EXPECT_EXIT(
        {
            for (int i = 0; i < 100; ++i)
                (void)b.tmp(DataType::DF); // 4 regs each
        },
        ::testing::ExitedWithCode(1), "out of GRF registers");
}

TEST(BuilderKernel, SlmRequirementRecorded)
{
    KernelBuilder b("t", 16);
    b.requireSlm(256);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(0));
    const Kernel k = b.build();
    EXPECT_EQ(k.slmBytes(), 256u);
}

} // namespace
