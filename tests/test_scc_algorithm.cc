/**
 * @file
 * Tests of the Figure 6 SCC control algorithm: the worked Figure 7
 * example, structural invariants of the emitted swizzle settings, and
 * exhaustive optimality/validity sweeps.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "compaction/scc_algorithm.hh"

namespace
{

using iwc::LaneMask;
using iwc::popCount;
using iwc::compaction::CyclePlan;
using iwc::compaction::ExecShape;
using iwc::compaction::planScc;
using iwc::compaction::verifyPlan;

ExecShape
shape16(LaneMask mask)
{
    return ExecShape{16, 4, mask};
}

/** Enabled hardware lanes in one cycle slot. */
unsigned
lanesEnabled(const CyclePlan &plan, unsigned cycle)
{
    unsigned count = 0;
    for (unsigned n = 0; n < plan.groupWidth; ++n)
        if (plan.slots[cycle].lanes[n].enabled())
            ++count;
    return count;
}

// Figure 7 walks mask 0101 0101 0101 0101 (lanes 0 and 2 of every
// quad... in the paper's bit order lane 1 and 3): 8 active lanes,
// optimal 2 cycles, with two swizzles per cycle.
TEST(SccFigure7, WorkedExample)
{
    const LaneMask mask = 0xaaaa; // lanes 1 and 3 of each quad
    const auto plan = planScc(shape16(mask));
    ASSERT_EQ(plan.cycles(), 2u);
    EXPECT_TRUE(verifyPlan(plan, shape16(mask)));
    // Both cycles are fully packed (8 lanes over 2 cycles of 4).
    EXPECT_EQ(lanesEnabled(plan, 0), 4u);
    EXPECT_EQ(lanesEnabled(plan, 1), 4u);
    // Exactly half the lanes had to move off their home position:
    // each cycle serves lanes {1,3} of two quads, so two of the four
    // hardware lanes carry swizzled work.
    EXPECT_EQ(plan.swizzledLanes(), 4u);
}

TEST(SccDegenerate, BccLikeWhenActiveQuadsEqualOptimal)
{
    // 0x00ff: two fully active quads, optimal = 2 = active quads, so
    // the algorithm takes the "skip empty quads, BCC-like" early out
    // with zero swizzles.
    const auto plan = planScc(shape16(0x00ff));
    EXPECT_EQ(plan.cycles(), 2u);
    EXPECT_EQ(plan.swizzledLanes(), 0u);
}

TEST(SccDegenerate, EmptyMaskHasNoCycles)
{
    const auto plan = planScc(shape16(0));
    EXPECT_EQ(plan.cycles(), 0u);
    EXPECT_EQ(plan.swizzledLanes(), 0u);
}

TEST(SccDegenerate, FullMaskIsIdentity)
{
    const auto plan = planScc(shape16(0xffff));
    EXPECT_EQ(plan.cycles(), 4u);
    EXPECT_EQ(plan.swizzledLanes(), 0u);
    for (unsigned c = 0; c < 4; ++c) {
        for (unsigned n = 0; n < 4; ++n) {
            EXPECT_EQ(plan.slots[c].lanes[n].srcGroup,
                      static_cast<std::int8_t>(c));
            EXPECT_EQ(plan.slots[c].lanes[n].srcLane,
                      static_cast<std::int8_t>(n));
        }
    }
}

TEST(SccInvariant, UnswizzledLanesStayHomeWhenOwnWorkExists)
{
    // The algorithm only swizzles into a lane that has run dry; a
    // lane with its own queued work keeps srcLane == position.
    for (std::uint32_t mask = 1; mask <= 0xffff; mask += 13) {
        const auto plan = planScc(shape16(mask));
        // Track per-lane remaining own work cycle by cycle.
        unsigned own[4] = {};
        for (unsigned g = 0; g < 4; ++g) {
            const LaneMask bits = (mask >> (g * 4)) & 0xf;
            for (unsigned n = 0; n < 4; ++n)
                if (bits & (1u << n))
                    ++own[n];
        }
        for (const auto &slot : plan.slots) {
            for (unsigned n = 0; n < 4; ++n) {
                const auto &sel = slot.lanes[n];
                if (!sel.enabled())
                    continue;
                if (own[n] > 0) {
                    ASSERT_EQ(sel.srcLane, static_cast<std::int8_t>(n))
                        << std::hex << mask;
                }
                --own[sel.srcLane];
            }
        }
    }
}

TEST(SccInvariant, NoCycleOverpacked)
{
    for (std::uint32_t mask = 0; mask <= 0xffff; mask += 3) {
        const auto plan = planScc(shape16(mask));
        for (unsigned c = 0; c < plan.cycles(); ++c)
            ASSERT_LE(lanesEnabled(plan, c), plan.groupWidth);
    }
}

TEST(SccInvariant, EveryActiveChannelIssuedExactlyOnce)
{
    // Note: cycles need not be fully packed (the BCC-like early out
    // keeps partially-filled quads intact), but the total lane count
    // must equal the active channels and the cycle count must still
    // be optimal.
    for (std::uint32_t mask = 0; mask <= 0xffff; ++mask) {
        const auto plan = planScc(shape16(mask));
        const unsigned active = popCount(mask);
        unsigned issued = 0;
        for (unsigned c = 0; c < plan.cycles(); ++c)
            issued += lanesEnabled(plan, c);
        ASSERT_EQ(issued, active) << std::hex << mask;
        ASSERT_EQ(plan.cycles(), (active + 3) / 4) << std::hex << mask;
    }
}

TEST(SccGroupWidths, WordAndDoubleGroupsAlsoOptimal)
{
    for (std::uint32_t mask = 0; mask <= 0xffff; mask += 11) {
        for (const unsigned bytes : {2u, 8u}) {
            const ExecShape s{16, static_cast<std::uint8_t>(bytes),
                              mask};
            const auto plan = planScc(s);
            const unsigned g = iwc::compaction::groupWidth(16, bytes);
            ASSERT_EQ(plan.cycles(), (popCount(mask) + g - 1) / g);
            ASSERT_TRUE(verifyPlan(plan, s)) << std::hex << mask;
        }
    }
}

TEST(SccStress, Simd32Exhaustive16BitSubspaces)
{
    // Sweep SIMD32 masks built from mirrored 16-bit halves plus a
    // rotating scramble, checking validity/optimality throughout.
    for (std::uint32_t half = 0; half <= 0xffff; half += 5) {
        const LaneMask mask =
            (half << 16) | ((half * 0x9d7u) & 0xffff);
        const ExecShape s{32, 4, mask};
        const auto plan = planScc(s);
        ASSERT_EQ(plan.cycles(), (popCount(mask) + 3) / 4);
        ASSERT_TRUE(verifyPlan(plan, s)) << std::hex << mask;
    }
}

} // namespace
