/** @file Unit tests for ISA types, operands, and the disassembler. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/isa.hh"

namespace
{

using namespace iwc::isa;

TEST(DataTypes, Sizes)
{
    EXPECT_EQ(dataTypeSize(DataType::UW), 2u);
    EXPECT_EQ(dataTypeSize(DataType::W), 2u);
    EXPECT_EQ(dataTypeSize(DataType::UD), 4u);
    EXPECT_EQ(dataTypeSize(DataType::D), 4u);
    EXPECT_EQ(dataTypeSize(DataType::F), 4u);
    EXPECT_EQ(dataTypeSize(DataType::DF), 8u);
    EXPECT_EQ(dataTypeSize(DataType::Q), 8u);
}

TEST(DataTypes, Classification)
{
    EXPECT_TRUE(isFloatType(DataType::F));
    EXPECT_TRUE(isFloatType(DataType::DF));
    EXPECT_FALSE(isFloatType(DataType::D));
    EXPECT_TRUE(isSignedType(DataType::D));
    EXPECT_FALSE(isSignedType(DataType::UD));
}

TEST(Opcodes, PipeClassification)
{
    EXPECT_TRUE(isExtendedMath(Opcode::Sqrt));
    EXPECT_TRUE(isExtendedMath(Opcode::Sin));
    EXPECT_FALSE(isExtendedMath(Opcode::Mad));
    EXPECT_TRUE(isControlFlow(Opcode::If));
    EXPECT_TRUE(isControlFlow(Opcode::Halt));
    EXPECT_FALSE(isControlFlow(Opcode::Send));
}

TEST(Operands, GrfByteOffset)
{
    const Operand op = grfOperand(10, DataType::F, 3);
    EXPECT_EQ(op.grfByteOffset(), 10u * 32 + 3 * 4);
    const Operand wop = grfOperand(2, DataType::W, 5);
    EXPECT_EQ(wop.grfByteOffset(), 2u * 32 + 5 * 2);
}

TEST(Operands, ImmediateEncodings)
{
    EXPECT_EQ(immD(-1).imm, 0xffffffffull);
    EXPECT_EQ(immUD(7).imm, 7ull);
    const Operand f = immF(1.0f);
    EXPECT_EQ(f.imm, 0x3f800000ull);
    EXPECT_TRUE(f.isImm());
    EXPECT_TRUE(nullOperand().isNull());
}

TEST(Operands, ScalarBroadcast)
{
    const Operand s = grfScalar(4, DataType::UD, 1);
    EXPECT_TRUE(s.scalar);
    EXPECT_EQ(s.subReg, 1);
}

TEST(ExecElemBytes, WidestOperandWins)
{
    Instruction in;
    in.op = Opcode::Add;
    in.dst = grfOperand(10, DataType::F);
    in.src0 = grfOperand(11, DataType::F);
    in.src1 = immF(1.0f);
    EXPECT_EQ(execElemBytes(in), 4u);
    in.dst = grfOperand(10, DataType::DF);
    EXPECT_EQ(execElemBytes(in), 8u);
    in.dst = grfOperand(10, DataType::W);
    in.src0 = grfOperand(11, DataType::W);
    in.src1 = immW(3);
    EXPECT_EQ(execElemBytes(in), 2u);
}

TEST(Disasm, RendersInstruction)
{
    Instruction in;
    in.op = Opcode::Mad;
    in.simdWidth = 16;
    in.dst = grfOperand(12, DataType::F);
    in.src0 = grfOperand(8, DataType::F);
    in.src1 = immF(2.0f);
    in.src2 = grfOperand(9, DataType::F);
    const std::string text = instrToString(in);
    EXPECT_NE(text.find("mad(16)"), std::string::npos);
    EXPECT_NE(text.find("r12.0:f"), std::string::npos);
    EXPECT_NE(text.find("2:f"), std::string::npos);
}

TEST(Disasm, RendersPredicationAndCmp)
{
    Instruction in;
    in.op = Opcode::Cmp;
    in.simdWidth = 8;
    in.condMod = CondMod::Lt;
    in.condFlag = 1;
    in.src0 = grfOperand(3, DataType::D);
    in.src1 = immD(5);
    in.predCtrl = PredCtrl::Inverted;
    in.predFlag = 0;
    const std::string text = instrToString(in);
    EXPECT_NE(text.find("(-f0)"), std::string::npos);
    EXPECT_NE(text.find("cmp.lt.f1(8)"), std::string::npos);
}

TEST(Disasm, RendersSend)
{
    Instruction in;
    in.op = Opcode::Send;
    in.simdWidth = 16;
    in.send.op = SendOp::GatherLoad;
    in.dst = grfOperand(20, DataType::F);
    in.src0 = grfOperand(18, DataType::UD);
    const std::string text = instrToString(in);
    EXPECT_NE(text.find("send.gather(16)"), std::string::npos);
}

} // namespace
