/**
 * @file
 * Tests for the small EU/mem building blocks: pipe selection and
 * occupancy, the rotating arbiter, bandwidth/bank resources, and the
 * GPU config option plumbing.
 */

#include <gtest/gtest.h>

#include "eu/arbiter.hh"
#include "eu/pipes.hh"
#include "gpu/gpu_config.hh"
#include "mem/resources.hh"

namespace
{

using namespace iwc;

TEST(PipeSelection, OpcodesRouteToTheRightPipe)
{
    isa::Instruction in;
    in.op = isa::Opcode::Mad;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Fpu);
    in.op = isa::Opcode::Sqrt;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Em);
    in.op = isa::Opcode::Sin;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Em);
    in.op = isa::Opcode::Send;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Send);
    in.op = isa::Opcode::EndIf;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Ctrl);
    in.op = isa::Opcode::Halt;
    EXPECT_EQ(eu::pipeFor(in), eu::PipeKind::Ctrl);
}

TEST(ExecPipeTest, OccupancyBlocksAndAccumulates)
{
    eu::ExecPipe pipe;
    EXPECT_TRUE(pipe.canAccept(0));
    pipe.occupy(0, 4);
    EXPECT_FALSE(pipe.canAccept(3));
    EXPECT_TRUE(pipe.canAccept(4));
    pipe.occupy(4, 1);
    EXPECT_EQ(pipe.busyCycles(), 5u);
    EXPECT_EQ(pipe.instructions(), 2u);
}

TEST(ExecPipeTest, ZeroCycleOccupancyLeavesPipeFree)
{
    // A fully-compressed instruction frees its slot immediately.
    eu::ExecPipe pipe;
    pipe.occupy(10, 0);
    EXPECT_TRUE(pipe.canAccept(10));
}

TEST(ArbiterTest, RoundRobinIsFair)
{
    eu::RotatingArbiter arbiter(4);
    std::vector<unsigned> grants(4, 0);
    for (int round = 0; round < 100; ++round) {
        const auto picks =
            arbiter.pick(1, [](unsigned) { return true; });
        ASSERT_EQ(picks.size(), 1u);
        ++grants[picks[0]];
    }
    for (const unsigned g : grants)
        EXPECT_EQ(g, 25u);
}

TEST(ArbiterTest, SkipsUnreadySlots)
{
    eu::RotatingArbiter arbiter(4);
    const auto picks =
        arbiter.pick(2, [](unsigned i) { return i == 1 || i == 3; });
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 1u);
    EXPECT_EQ(picks[1], 3u);
}

TEST(ArbiterTest, RespectsPickLimit)
{
    eu::RotatingArbiter arbiter(8);
    EXPECT_EQ(arbiter.pick(3, [](unsigned) { return true; }).size(),
              3u);
    EXPECT_TRUE(
        arbiter.pick(2, [](unsigned) { return false; }).empty());
}

TEST(BankedResourceTest, BanksSerializeIndependently)
{
    mem::BankedResource banks(2);
    EXPECT_EQ(banks.acquire(0, 10), 10u);
    EXPECT_EQ(banks.acquire(0, 10), 11u); // bank 0 backed up
    EXPECT_EQ(banks.acquire(1, 10), 10u); // bank 1 untouched
    banks.reset();
    EXPECT_EQ(banks.acquire(0, 0), 0u);
}

TEST(ThroughputResourceTest, SlotsPerCycleHonored)
{
    mem::ThroughputResource link(2);
    EXPECT_EQ(link.acquire(5), 5u);
    EXPECT_EQ(link.acquire(5), 5u); // two slots in cycle 5
    EXPECT_EQ(link.acquire(5), 6u); // third spills into cycle 6
    EXPECT_EQ(link.slotsUsed(), 3u);
}

TEST(GpuConfigTest, ParseModeNames)
{
    using compaction::Mode;
    EXPECT_EQ(gpu::parseMode("baseline"), Mode::Baseline);
    EXPECT_EQ(gpu::parseMode("ivb"), Mode::IvbOpt);
    EXPECT_EQ(gpu::parseMode("ivb-opt"), Mode::IvbOpt);
    EXPECT_EQ(gpu::parseMode("bcc"), Mode::Bcc);
    EXPECT_EQ(gpu::parseMode("scc"), Mode::Scc);
    EXPECT_EXIT(gpu::parseMode("nope"), ::testing::ExitedWithCode(1),
                "unknown compaction mode");
}

TEST(GpuConfigTest, ApplyOptionsOverridesEverything)
{
    OptionMap opts;
    opts.set("mode", "scc");
    opts.set("eus", "12");
    opts.set("threads", "8");
    opts.set("dc", "2");
    opts.set("perfect_l3", "1");
    opts.set("issue_width", "2");
    opts.set("arb_period", "2");
    opts.set("dram_latency", "250");
    opts.set("l3_kb", "256");
    opts.set("llc_kb", "4096");
    const gpu::GpuConfig config =
        gpu::applyOptions(gpu::ivbConfig(), opts);
    EXPECT_EQ(config.eu.mode, compaction::Mode::Scc);
    EXPECT_EQ(config.numEus, 12u);
    EXPECT_EQ(config.eu.numThreads, 8u);
    EXPECT_EQ(config.mem.dcLinesPerCycle, 2u);
    EXPECT_TRUE(config.mem.perfectL3);
    EXPECT_EQ(config.eu.issueWidth, 2u);
    EXPECT_EQ(config.eu.arbitrationPeriod, 2u);
    EXPECT_EQ(config.mem.dramLatency, 250u);
    EXPECT_EQ(config.mem.l3Bytes, 256u * 1024);
    EXPECT_EQ(config.mem.llcBytes, 4096u * 1024);
}

TEST(GpuConfigTest, DefaultsAreTable3)
{
    const gpu::GpuConfig config = gpu::ivbConfig();
    EXPECT_EQ(config.numEus, 6u);
    EXPECT_EQ(config.eu.numThreads, 6u);
    EXPECT_EQ(config.mem.l3Bytes, 128u * 1024);
    EXPECT_EQ(config.mem.l3Ways, 64u);
    EXPECT_EQ(config.mem.l3Banks, 4u);
    EXPECT_EQ(config.mem.l3Latency, 7u);
    EXPECT_EQ(config.mem.llcBytes, 2u * 1024 * 1024);
    EXPECT_EQ(config.mem.llcWays, 16u);
    EXPECT_EQ(config.mem.llcBanks, 8u);
    EXPECT_EQ(config.mem.llcLatency, 10u);
    EXPECT_EQ(config.mem.slmLatency, 5u);
    EXPECT_EQ(config.mem.dcLinesPerCycle, 1u);
}

} // namespace
