/**
 * @file
 * Observability subsystem tests: ring-buffer sink semantics, and the
 * two accounting identities the profile exporters promise — per-EU
 * busy + stall + idle covering every simulated cycle exactly, and
 * hotspot per-ip cycle totals agreeing with the simulator's aggregate
 * per-mode counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "obs/event.hh"
#include "obs/profile.hh"
#include "obs/sink.hh"
#include "run/run.hh"

namespace
{

using namespace iwc;
using namespace iwc::obs;

Event
issueAt(Cycle cycle, std::uint8_t eu, std::uint32_t ip = 0)
{
    Event e;
    e.cycle = cycle;
    e.ip = ip;
    e.kind = EventKind::InstrIssue;
    e.eu = eu;
    return e;
}

TEST(RingBufferSink, UnboundedKeepsEverythingPerStream)
{
    RingBufferSink sink(2); // 2 EUs -> 3 streams (global last)
    EXPECT_EQ(sink.numStreams(), 3u);
    EXPECT_EQ(sink.numEus(), 2u);

    sink.emit(issueAt(5, 0));
    sink.emit(issueAt(6, 1));
    sink.emit(issueAt(7, 0));
    Event global = issueAt(1, kGlobalEu);
    global.kind = EventKind::IdleSkip;
    sink.emit(global);

    EXPECT_EQ(sink.totalEvents(), 4u);
    EXPECT_EQ(sink.totalDropped(), 0u);
    EXPECT_EQ(sink.stream(0).size(), 2u);
    EXPECT_EQ(sink.stream(1).size(), 1u);
    EXPECT_EQ(sink.stream(2).size(), 1u); // global stream
    EXPECT_EQ(sink.stream(2)[0].kind, EventKind::IdleSkip);
}

TEST(RingBufferSink, BoundedKeepsNewestAndCountsDrops)
{
    RingBufferSink sink(1, 3);
    for (Cycle c = 1; c <= 8; ++c)
        sink.emit(issueAt(c, 0));

    EXPECT_EQ(sink.dropped(0), 5u);
    EXPECT_EQ(sink.totalDropped(), 5u);
    const std::vector<Event> kept = sink.stream(0);
    ASSERT_EQ(kept.size(), 3u);
    // Newest three, oldest first.
    EXPECT_EQ(kept[0].cycle, 6u);
    EXPECT_EQ(kept[1].cycle, 7u);
    EXPECT_EQ(kept[2].cycle, 8u);
}

TEST(RingBufferSink, CollectMergesSortedByCycle)
{
    RingBufferSink sink(3);
    sink.emit(issueAt(30, 2));
    sink.emit(issueAt(10, 0));
    sink.emit(issueAt(20, 1));
    sink.emit(issueAt(5, 1));

    const std::vector<Event> all = sink.collect();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                               [](const Event &a, const Event &b) {
                                   return a.cycle < b.cycle;
                               }));
    EXPECT_EQ(all.front().cycle, 5u);
    EXPECT_EQ(all.back().cycle, 30u);
}

run::RunResult
tracedRun(const std::string &workload)
{
    run::RunRequest request =
        run::RunRequest::timing(workload, gpu::ivbConfig(), 1);
    request.trace = true;
    run::RunResult result = run::executeRun(request);
    EXPECT_NE(result.events, nullptr);
    EXPECT_EQ(result.events->totalDropped(), 0u);
    return result;
}

/** The exporter identity: every EU cycle lands in exactly one bucket. */
void
expectOccupancyCoversEveryCycle(const std::string &workload)
{
    const run::RunResult result = tracedRun(workload);
    const unsigned num_eus = gpu::ivbConfig().numEus;
    const auto occ = computeOccupancy(result.events->collect(),
                                      result.stats.totalCycles, num_eus);
    ASSERT_EQ(occ.size(), num_eus);
    std::uint64_t instructions = 0, mem_messages = 0;
    for (unsigned i = 0; i < num_eus; ++i) {
        EXPECT_EQ(occ[i].total(), result.stats.totalCycles)
            << workload << " eu" << i << ": busy " << occ[i].busy
            << " + stall " << occ[i].stall << " + barrier "
            << occ[i].barrier << " + idle " << occ[i].idle;
        instructions += occ[i].instructions;
        mem_messages += occ[i].memMessages;
    }
    EXPECT_EQ(instructions, result.stats.eu.instructions);
    EXPECT_EQ(mem_messages, result.stats.eu.memMessages);
}

TEST(Occupancy, CoversEveryCycleDivergent)
{
    expectOccupancyCoversEveryCycle("micro_ifelse");
}

TEST(Occupancy, CoversEveryCycleWithBarriers)
{
    expectOccupancyCoversEveryCycle("dp"); // SLM reduction: barriers
}

TEST(Occupancy, CsvRowsSumExactly)
{
    const run::RunResult result = tracedRun("micro_ifelse");
    const unsigned num_eus = gpu::ivbConfig().numEus;
    const auto occ = computeOccupancy(result.events->collect(),
                                      result.stats.totalCycles, num_eus);
    std::stringstream ss;
    writeOccupancyCsv(ss, occ, result.stats.totalCycles,
                      {1, 2, 3, 4});
    std::string line;
    std::getline(ss, line); // header
    EXPECT_NE(line.find("busy_cycles"), std::string::npos);
    std::size_t rows = 0;
    while (std::getline(ss, line)) {
        ++rows;
        // label,total,busy,stall,stall_barrier,idle,...
        std::stringstream fields(line);
        std::string label, total, busy, stall, barrier, idle;
        std::getline(fields, label, ',');
        std::getline(fields, total, ',');
        std::getline(fields, busy, ',');
        std::getline(fields, stall, ',');
        std::getline(fields, barrier, ',');
        std::getline(fields, idle, ',');
        EXPECT_EQ(std::stoull(busy) + std::stoull(stall) +
                      std::stoull(idle),
                  std::stoull(total))
            << line;
    }
    EXPECT_EQ(rows, num_eus + 1u); // per-EU rows plus the total row
}

TEST(Hotspots, TotalsAgreeWithAggregateCounters)
{
    using compaction::Mode;
    const run::RunResult result = tracedRun("micro_ifelse");
    const auto profiles = computeHotspots(result.events->collect());
    ASSERT_FALSE(profiles.empty());

    std::uint64_t count = 0;
    std::array<std::uint64_t, compaction::kNumModes> cycles{};
    for (const IpProfile &p : profiles) {
        count += p.count;
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            cycles[m] += p.cyclesByMode[m];
    }
    // The per-event mode cycles are copied from the same plans the
    // EU stats accumulate, so the totals must agree exactly.
    EXPECT_EQ(count, result.stats.eu.instructions);
    EXPECT_EQ(cycles[0], result.stats.eu.euCycles(Mode::Baseline));
    EXPECT_EQ(cycles[1], result.stats.eu.euCycles(Mode::IvbOpt));
    EXPECT_EQ(cycles[2], result.stats.eu.euCycles(Mode::Bcc));
    EXPECT_EQ(cycles[3], result.stats.eu.euCycles(Mode::Scc));
}

TEST(Hotspots, ReportRanksBySccSavings)
{
    const run::RunResult result = tracedRun("micro_ifelse");
    const auto profiles = computeHotspots(result.events->collect());
    std::stringstream ss;
    writeHotspotReport(ss, profiles, nullptr, 5);
    const std::string report = ss.str();
    EXPECT_NE(report.find("divergence hotspots"), std::string::npos);
    EXPECT_NE(report.find("saved_scc"), std::string::npos);
    // top_n limits the body to five ranked rows (+3 header lines).
    EXPECT_LE(std::count(report.begin(), report.end(), '\n'),
              static_cast<long>(5 + 4));
}

TEST(TracingOff, ResultCarriesNoSink)
{
    run::RunRequest request =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    const run::RunResult result = run::executeRun(request);
    EXPECT_EQ(result.events, nullptr);
}

TEST(TracingOnOff, IdenticalTimingResults)
{
    run::RunRequest request =
        run::RunRequest::timing("micro_ifelse", gpu::ivbConfig(), 1);
    const run::RunResult off = run::executeRun(request);
    request.trace = true;
    const run::RunResult on = run::executeRun(request);
    // Instrumentation must never perturb simulated behaviour.
    EXPECT_EQ(off.stats.totalCycles, on.stats.totalCycles);
    EXPECT_EQ(off.stats.eu.instructions, on.stats.eu.instructions);
    EXPECT_EQ(off.stats.eu.euCycles(compaction::Mode::Scc),
              on.stats.eu.euCycles(compaction::Mode::Scc));
}

} // namespace
