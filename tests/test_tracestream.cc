/**
 * @file
 * The streaming trace pipeline: container round-trips (including the
 * degenerate and chunk-boundary sizes), corruption death tests for
 * every container layer (header, chunk CRC, payload tokens, index,
 * footer), randomized codec fuzz, prefetch-vs-sync cursor equality,
 * and the pipeline's core promise — the sharded out-of-core analyzer
 * is bit-identical to the in-memory analyzeTrace() across the entire
 * workload corpus.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "tracestream/analyze.hh"
#include "tracestream/reader.hh"
#include "tracestream/writer.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using trace::InstrKind;
using trace::MaskTrace;
using trace::TraceRecord;

std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "/iwc_tracestream_" + tag + ".iwct";
}

MaskTrace
smallTrace()
{
    MaskTrace t;
    t.name = "small";
    t.records = {
        {16, 4, InstrKind::Alu, 0x00ff},
        {16, 4, InstrKind::Alu, 0x00ff}, // repeat: exercises RLE
        {16, 4, InstrKind::Alu, 0x00ff},
        {16, 4, InstrKind::Alu, 0x0f0f}, // mask delta only
        {8, 2, InstrKind::Send, 0x0f},   // everything changes
        {8, 2, InstrKind::Ctrl, 0x0f},   // kind delta only
        {32, 4, InstrKind::Em, 0xdeadbeef},
        {1, 2, InstrKind::Alu, 0x1},
    };
    return t;
}

MaskTrace
randomTrace(std::uint32_t seed, std::size_t count)
{
    std::mt19937 rng(seed);
    const std::uint8_t widths[] = {1, 4, 8, 16, 32};
    const std::uint8_t elems[] = {2, 4, 8};
    MaskTrace t;
    t.name = "fuzz" + std::to_string(seed);
    t.records.reserve(count);
    TraceRecord r{16, 4, InstrKind::Alu, 0xffff};
    for (std::size_t i = 0; i < count; ++i) {
        // Mostly-repeating stream (the format's target distribution)
        // with bursts of full randomness.
        switch (rng() % 8) {
          case 0:
            r.simdWidth = widths[rng() % 5];
            r.elemBytes = elems[rng() % 3];
            r.kind = static_cast<InstrKind>(rng() % 4);
            [[fallthrough]];
          case 1:
          case 2:
            r.execMask = static_cast<LaneMask>(rng()) &
                         laneMaskForWidth(r.simdWidth);
            break;
          default:
            break; // exact repeat
        }
        t.append(r);
    }
    return t;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

void
expectSameRecords(const MaskTrace &a, const MaskTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.records[i].simdWidth, b.records[i].simdWidth) << i;
        EXPECT_EQ(a.records[i].elemBytes, b.records[i].elemBytes) << i;
        EXPECT_EQ(a.records[i].kind, b.records[i].kind) << i;
        EXPECT_EQ(a.records[i].execMask, b.records[i].execMask) << i;
    }
}

void
expectSameAnalysis(const trace::TraceAnalysis &a,
                   const trace::TraceAnalysis &b)
{
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.sumActiveLanes, b.sumActiveLanes);
    EXPECT_EQ(a.sumSimdWidth, b.sumSimdWidth);
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        EXPECT_EQ(a.euCycles[m], b.euCycles[m]) << "mode " << m;
    for (unsigned u = 0; u < compaction::kNumUtilBins; ++u)
        EXPECT_EQ(a.utilBins[u], b.utilBins[u]) << "bin " << u;
    EXPECT_EQ(a.aluRecords, b.aluRecords);
    EXPECT_EQ(a.sccSwizzledLanes, b.sccSwizzledLanes);
}

TEST(TraceContainer, RoundTripSmall)
{
    const std::string path = tempPath("roundtrip");
    const MaskTrace t = smallTrace();
    tracestream::writeContainerFile(path, t);
    EXPECT_TRUE(tracestream::isContainerFile(path));
    const MaskTrace back = tracestream::readContainerFile(path);
    EXPECT_EQ(back.name, "small");
    expectSameRecords(t, back);
    std::remove(path.c_str());
}

TEST(TraceContainer, RoundTripEmpty)
{
    const std::string path = tempPath("empty");
    MaskTrace t;
    t.name = "empty";
    tracestream::writeContainerFile(path, t);
    const tracestream::ContainerInfo info =
        tracestream::readContainerInfo(path);
    EXPECT_EQ(info.totalRecords, 0u);
    EXPECT_EQ(info.chunks.size(), 0u);
    const MaskTrace back = tracestream::readContainerFile(path);
    EXPECT_EQ(back.size(), 0u);
    TraceRecord r;
    tracestream::TraceCursor cursor(path);
    EXPECT_FALSE(cursor.next(r));
    std::remove(path.c_str());
}

TEST(TraceContainer, RoundTripChunkBoundaries)
{
    // 1 under, exactly at, and 1 over a chunk boundary, with a tiny
    // chunk size so multiple chunks engage.
    for (const std::size_t count : {7u, 8u, 9u, 16u, 17u, 1u}) {
        const std::string path = tempPath("boundary");
        const MaskTrace t = randomTrace(99, count);
        tracestream::writeContainerFile(path, t, 8);
        const MaskTrace back = tracestream::readContainerFile(path);
        expectSameRecords(t, back);
        std::remove(path.c_str());
    }
}

TEST(TraceContainer, RandomizedFuzzRoundTrip)
{
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
        const std::string path = tempPath("fuzz");
        const MaskTrace t = randomTrace(seed, 5000);
        tracestream::writeContainerFile(path, t, 512);
        const MaskTrace back = tracestream::readContainerFile(path);
        expectSameRecords(t, back);
        std::remove(path.c_str());
    }
}

TEST(TraceContainer, CompressesRepetitiveStream)
{
    const std::string path = tempPath("ratio");
    MaskTrace t;
    t.name = "repetitive";
    for (int i = 0; i < 100000; ++i)
        t.append({16, 4, InstrKind::Alu, 0xffff});
    tracestream::WriterOptions wo;
    wo.name = t.name;
    tracestream::ChunkedTraceWriter writer(path, std::move(wo));
    for (const TraceRecord &r : t.records)
        writer.append(r);
    writer.finish();
    // A constant stream is pure RLE: orders of magnitude below raw.
    EXPECT_LT(writer.codedBytes(), t.size() * sizeof(TraceRecord) / 100);
    expectSameRecords(t, tracestream::readContainerFile(path));
    std::remove(path.c_str());
}

TEST(TraceContainer, ConvertsFromLegacyBinaryIdentically)
{
    const std::string bin = tempPath("legacy_bin");
    const std::string cont = tempPath("legacy_cont");
    const MaskTrace t = randomTrace(7, 3000);
    trace::writeBinaryFile(bin, t);
    const MaskTrace from_bin = trace::readBinaryFile(bin);
    tracestream::writeContainerFile(cont, from_bin);
    expectSameRecords(from_bin, tracestream::readContainerFile(cont));
    EXPECT_FALSE(tracestream::isContainerFile(bin));
    std::remove(bin.c_str());
    std::remove(cont.c_str());
}

TEST(TraceContainerErrors, CorruptChunkPayloadDies)
{
    const std::string path = tempPath("badpayload");
    tracestream::writeContainerFile(path, smallTrace());
    std::vector<std::uint8_t> bytes = slurp(path);
    // Flip a payload byte just past the container header + chunk
    // header; the chunk CRC must catch it.
    const std::size_t off = 4 + 4 + 4 + 5 /*"small"*/ +
                            tracestream::kChunkHeaderBytes;
    ASSERT_LT(off, bytes.size());
    bytes[off] ^= 0x40;
    spit(path, bytes);
    EXPECT_EXIT(tracestream::readContainerFile(path),
                ::testing::ExitedWithCode(1), "CRC");
    std::remove(path.c_str());
}

TEST(TraceContainerErrors, TruncatedFooterDies)
{
    const std::string path = tempPath("truncfoot");
    tracestream::writeContainerFile(path, smallTrace());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes.resize(bytes.size() - 3);
    spit(path, bytes);
    EXPECT_EXIT(tracestream::readContainerInfo(path),
                ::testing::ExitedWithCode(1), "");
    std::remove(path.c_str());
}

TEST(TraceContainerErrors, CorruptIndexDies)
{
    const std::string path = tempPath("badindex");
    tracestream::writeContainerFile(path, smallTrace());
    std::vector<std::uint8_t> bytes = slurp(path);
    // The index sits immediately before the fixed-size footer.
    const std::size_t off =
        bytes.size() - tracestream::kFooterBytes -
        tracestream::kIndexEntryBytes + 2;
    bytes[off] ^= 0xff;
    spit(path, bytes);
    EXPECT_EXIT(tracestream::readContainerInfo(path),
                ::testing::ExitedWithCode(1), "index");
    std::remove(path.c_str());
}

TEST(TraceContainerErrors, BadHeaderMagicDies)
{
    const std::string path = tempPath("badmagic");
    tracestream::writeContainerFile(path, smallTrace());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    EXPECT_FALSE(tracestream::isContainerFile(path));
    EXPECT_EXIT(tracestream::readContainerInfo(path),
                ::testing::ExitedWithCode(1), "");
    std::remove(path.c_str());
}

TEST(TraceContainerErrors, MissingFileDies)
{
    EXPECT_EXIT(tracestream::readContainerInfo(
                    tempPath("never_written_nope")),
                ::testing::ExitedWithCode(1), "");
}

TEST(TraceCodecErrors, ReservedTokenBitsDie)
{
    // A token with reserved bits set is never produced by the
    // encoder; the decoder must refuse rather than guess.
    const std::uint8_t payload[] = {0xE1, 16};
    std::vector<TraceRecord> out;
    EXPECT_EXIT(tracestream::decodeChunk(payload, sizeof(payload), 1,
                                         out),
                ::testing::ExitedWithCode(1), "");
}

TEST(TraceCodecErrors, LeadingRunTokenDies)
{
    // An RLE run with no prior record in the chunk is malformed.
    const std::uint8_t payload[] = {0xFF, 0x01};
    std::vector<TraceRecord> out;
    EXPECT_EXIT(tracestream::decodeChunk(payload, sizeof(payload), 1,
                                         out),
                ::testing::ExitedWithCode(1), "");
}

TEST(TraceCursor, PrefetchMatchesSynchronous)
{
    const std::string path = tempPath("prefetch");
    const MaskTrace t = randomTrace(3, 20000);
    tracestream::writeContainerFile(path, t, 1024);

    tracestream::StreamOptions sync;
    sync.ioThreads = 0;
    tracestream::StreamOptions async;
    async.ioThreads = 3;
    async.ringChunks = 4;

    tracestream::TraceCursor a(path, sync);
    tracestream::TraceCursor b(path, async);
    TraceRecord ra, rb;
    std::size_t n = 0;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb)) << "async stream short at " << n;
        ASSERT_EQ(ra.execMask, rb.execMask) << n;
        ASSERT_EQ(ra.simdWidth, rb.simdWidth) << n;
        ++n;
    }
    EXPECT_FALSE(b.next(rb));
    EXPECT_EQ(n, t.size());
    std::remove(path.c_str());
}

TEST(TraceCursor, ChunkRangeSelectsShard)
{
    const std::string path = tempPath("range");
    const MaskTrace t = randomTrace(4, 4096);
    tracestream::writeContainerFile(path, t, 256); // 16 chunks
    tracestream::StreamOptions sync;
    sync.ioThreads = 0;
    tracestream::TraceCursor cursor(path, sync, 2, 5);
    TraceRecord r;
    std::size_t n = 0;
    std::size_t first_mismatch = 0;
    while (cursor.next(r)) {
        const TraceRecord &want = t.records[2 * 256 + n];
        if (r.execMask != want.execMask && first_mismatch == 0)
            first_mismatch = n + 1;
        ++n;
    }
    EXPECT_EQ(n, 3u * 256);
    EXPECT_EQ(first_mismatch, 0u);
    std::remove(path.c_str());
}

TEST(TraceAnalysisMerge, IsAssociative)
{
    const MaskTrace t = randomTrace(5, 9000);
    const trace::TraceAnalysis whole = trace::analyzeTrace(t);

    // Split 3 ways at arbitrary (non-chunk-aligned) points.
    MaskTrace parts[3];
    for (std::size_t i = 0; i < t.size(); ++i)
        parts[i < 1000 ? 0 : i < 5555 ? 1 : 2].append(t.records[i]);
    trace::TraceAnalysis merged = trace::analyzeTrace(parts[0]);
    merged.merge(trace::analyzeTrace(parts[1]));
    merged.merge(trace::analyzeTrace(parts[2]));
    expectSameAnalysis(whole, merged);
}

TEST(StreamAnalyze, MatchesInMemoryOnSyntheticTrace)
{
    const std::string path = tempPath("synth");
    trace::SyntheticProfile p = trace::profileByName("luxmark_sala");
    p.instructions = 50000;
    const MaskTrace t = trace::synthesize(p);
    tracestream::writeContainerFile(path, t, 4096);

    const trace::TraceAnalysis mem = trace::analyzeTrace(t);
    for (const unsigned jobs : {1u, 2u, 3u, 8u, 64u}) {
        tracestream::StreamAnalyzeOptions options;
        options.jobs = jobs;
        expectSameAnalysis(
            mem, tracestream::analyzeTraceStream(path, options));
    }
    std::remove(path.c_str());
}

TEST(StreamAnalyze, MatchesInMemoryAcrossWorkloadCorpus)
{
    // The pipeline's core promise, proven over every workload in the
    // registry: capture through the streaming writer, analyze sharded
    // out-of-core, compare bit-for-bit with the in-memory analyzer.
    for (const workloads::Entry &entry : workloads::registry()) {
        gpu::Device dev;
        const workloads::Workload w = workloads::make(entry.name, dev);
        MaskTrace t;
        t.name = entry.name;

        const std::string path = tempPath(entry.name);
        tracestream::WriterOptions wo;
        wo.name = entry.name;
        wo.chunkRecords = 2048; // small chunks so sharding engages
        tracestream::ChunkedTraceWriter writer(path, std::move(wo));
        // One launch, two observers: the in-memory reference and the
        // streaming writer see the identical instruction stream.
        const gpu::InstrObserver mem_obs = trace::captureObserver(t);
        const gpu::InstrObserver disk_obs =
            tracestream::captureObserver(writer);
        dev.launchFunctional(
            w.kernel, w.globalSize, w.localSize, w.args,
            [&](const isa::Instruction &ins, LaneMask mask) {
                mem_obs(ins, mask);
                disk_obs(ins, mask);
            });
        writer.finish();

        tracestream::StreamAnalyzeOptions options;
        options.jobs = 4;
        const trace::TraceAnalysis streamed =
            tracestream::analyzeTraceStream(path, options);
        expectSameAnalysis(trace::analyzeTrace(t), streamed);
        std::remove(path.c_str());
    }
}

TEST(StreamAnalyze, AnalyzeTraceFileHandlesEveryFormat)
{
    const MaskTrace t = randomTrace(6, 2000);
    const trace::TraceAnalysis want = trace::analyzeTrace(t);

    const std::string cont = tempPath("fmt_cont");
    tracestream::writeContainerFile(cont, t);
    expectSameAnalysis(want, tracestream::analyzeTraceFile(cont));
    std::remove(cont.c_str());

    const std::string bin = tempPath("fmt_bin");
    trace::writeBinaryFile(bin, t);
    expectSameAnalysis(want, tracestream::analyzeTraceFile(bin));
    std::remove(bin.c_str());

    const std::string txt = tempPath("fmt_txt");
    {
        std::FILE *f = std::fopen(txt.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
        std::ofstream os(txt);
        trace::writeText(os, t);
    }
    expectSameAnalysis(want, tracestream::analyzeTraceFile(txt));
    std::remove(txt.c_str());
}

TEST(TraceWriter, RejectsInvalidRecords)
{
    const std::string path = tempPath("reject");
    tracestream::ChunkedTraceWriter writer(path);
    EXPECT_EXIT(writer.append({7, 4, InstrKind::Alu, 0x7f}),
                ::testing::ExitedWithCode(1), "bad SIMD width 7");
    std::remove(path.c_str());
}

TEST(TraceWriter, RejectsOversizedChunkConfig)
{
    tracestream::WriterOptions wo;
    wo.chunkRecords = tracestream::kMaxChunkRecords + 1;
    EXPECT_EXIT(tracestream::ChunkedTraceWriter(
                    tempPath("oversize"), std::move(wo)),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
