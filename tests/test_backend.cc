/**
 * @file
 * Execution-backend tests: selection and IWC_BACKEND dispatch, the
 * scalar-vs-vector differential over every registry workload (both the
 * functional StepResult stream and the timing statistics must be
 * bit-identical), macro-stepping equivalence, and targeted edge-case
 * kernels (NaN propagation, signed wraparound, shift-count extremes)
 * where host-SIMD semantics classically diverge from scalar ones.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "func/backend_vector.hh"
#include "func/exec_backend.hh"
#include "func/interp.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "step_digest.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using func::BackendKind;
using gpu::Arg;
using gpu::Device;
using isa::CondMod;
using isa::DataType;
using isa::Kernel;
using isa::KernelBuilder;

/** Saves/clears IWC_BACKEND for one test, restoring it on exit. */
class EnvGuard
{
  public:
    EnvGuard()
    {
        const char *old = std::getenv("IWC_BACKEND");
        if (old != nullptr) {
            saved_ = old;
            had_ = true;
        }
        unsetenv("IWC_BACKEND");
    }

    ~EnvGuard()
    {
        if (had_)
            setenv("IWC_BACKEND", saved_.c_str(), 1);
        else
            unsetenv("IWC_BACKEND");
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST(BackendSelection, ParseAndNameRoundTrip)
{
    BackendKind kind = BackendKind::Auto;
    EXPECT_TRUE(func::parseBackendKind("scalar", kind));
    EXPECT_EQ(kind, BackendKind::Scalar);
    EXPECT_TRUE(func::parseBackendKind("vector", kind));
    EXPECT_EQ(kind, BackendKind::Vector);
    EXPECT_TRUE(func::parseBackendKind("auto", kind));
    EXPECT_EQ(kind, BackendKind::Auto);
    EXPECT_FALSE(func::parseBackendKind("sse", kind));
    EXPECT_FALSE(func::parseBackendKind("", kind));

    EXPECT_STREQ(func::backendKindName(BackendKind::Auto), "auto");
    EXPECT_STREQ(func::backendKindName(BackendKind::Scalar), "scalar");
    EXPECT_STREQ(func::backendKindName(BackendKind::Vector), "vector");
}

TEST(BackendSelection, AutoResolvesToVectorWithoutEnvironment)
{
    EnvGuard guard;
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Auto),
              BackendKind::Vector);
}

TEST(BackendSelection, EnvironmentVariableDrivesAutoResolution)
{
    EnvGuard guard;
    setenv("IWC_BACKEND", "scalar", 1);
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Auto),
              BackendKind::Scalar);
    setenv("IWC_BACKEND", "vector", 1);
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Auto),
              BackendKind::Vector);
}

TEST(BackendSelection, UnknownEnvironmentValueFallsBackToDefault)
{
    EnvGuard guard;
    setenv("IWC_BACKEND", "quantum", 1);
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Auto),
              BackendKind::Vector);
}

TEST(BackendSelection, ExplicitRequestBeatsEnvironment)
{
    EnvGuard guard;
    setenv("IWC_BACKEND", "vector", 1);
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Scalar),
              BackendKind::Scalar);
    setenv("IWC_BACKEND", "scalar", 1);
    EXPECT_EQ(func::resolveBackendKind(BackendKind::Vector),
              BackendKind::Vector);
}

Kernel
tinyKernel()
{
    KernelBuilder b("tiny", 16);
    auto x = b.tmp(DataType::F);
    b.mov(x, b.f(1.0f));
    b.add(x, x, b.f(2.0f));
    return b.build();
}

TEST(BackendSelection, MakeBackendAndInterpreterReportNames)
{
    EnvGuard guard;
    const Kernel k = tinyKernel();
    func::GlobalMemory gmem;
    EXPECT_STREQ(
        func::makeBackend(BackendKind::Scalar, k, gmem)->name(),
        "scalar");
    EXPECT_STREQ(
        func::makeBackend(BackendKind::Vector, k, gmem)->name(),
        "vector");

    setenv("IWC_BACKEND", "scalar", 1);
    func::Interpreter via_env(k, gmem);
    EXPECT_STREQ(via_env.backendName(), "scalar");

    func::Interpreter explicit_vec(k, gmem, BackendKind::Vector);
    EXPECT_STREQ(explicit_vec.backendName(), "vector");
}

TEST(BackendSelection, VectorBackendPlansFastPathsOnSimpleAlu)
{
    const Kernel k = tinyKernel();
    func::GlobalMemory gmem;
    func::VectorBackend backend(k, gmem);
    EXPECT_GT(backend.vectorizedCount(), 0u);
}

// ------------------------------------------------------ differential

TEST(BackendDifferential, FunctionalDigestsMatchOnEveryWorkload)
{
    EnvGuard guard;
    for (const auto &entry : workloads::registry()) {
        std::uint64_t digest[2];
        const BackendKind kinds[2] = {BackendKind::Scalar,
                                      BackendKind::Vector};
        for (unsigned i = 0; i < 2; ++i) {
            Device dev;
            const auto w = workloads::make(entry.name, dev, 1);
            std::vector<std::uint32_t> words;
            for (const auto &arg : w.args)
                words.push_back(arg.raw);
            digest[i] = testsupport::digestFunctionalRun(
                w.kernel, dev.memory(), w.globalSize, w.localSize,
                words, kinds[i]);
        }
        EXPECT_EQ(digest[0], digest[1])
            << "scalar and vector backends diverged on " << entry.name;
    }
}

TEST(BackendDifferential, TimingStatsMatchOnSampledWorkloads)
{
    EnvGuard guard;
    const char *names[] = {"mandelbrot", "bfs", "mm", "bscholes",
                           "kmeans"};
    for (const char *name : names) {
        std::uint64_t digest[2];
        const BackendKind kinds[2] = {BackendKind::Scalar,
                                      BackendKind::Vector};
        for (unsigned i = 0; i < 2; ++i) {
            gpu::GpuConfig config = gpu::ivbConfig();
            config.eu.backend = kinds[i];
            Device dev(config);
            const auto w = workloads::make(name, dev, 1);
            const auto stats =
                dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
            digest[i] = testsupport::digestLaunchStats(stats);
        }
        EXPECT_EQ(digest[0], digest[1])
            << "timing stats diverged between backends on " << name;
    }
}

// --------------------------------------------------- macro-stepping

// The observer-free functional runner macro-steps mask-stable runs;
// it must retire exactly the instructions the single-stepping detailed
// runner retires, and the workload's own output check must still pass.
TEST(BackendDifferential, MacroSteppingMatchesSingleStepping)
{
    EnvGuard guard;
    const char *names[] = {"mandelbrot", "urng", "mm", "bscholes"};
    for (const char *name : names) {
        Device macro_dev;
        const auto macro_w = workloads::make(name, macro_dev, 1);
        const std::uint64_t macro_count = macro_dev.launchFunctional(
            macro_w.kernel, macro_w.globalSize, macro_w.localSize,
            macro_w.args);
        if (macro_w.check)
            EXPECT_TRUE(macro_w.check(macro_dev))
                << "macro-stepped output wrong for " << name;

        Device step_dev;
        const auto step_w = workloads::make(name, step_dev, 1);
        std::uint64_t step_count = 0;
        step_dev.launchFunctionalDetailed(
            step_w.kernel, step_w.globalSize, step_w.localSize,
            step_w.args,
            [&step_count](const gpu::DetailedStep &) { ++step_count; });
        EXPECT_EQ(macro_count, step_count)
            << "macro-stepping retired a different instruction count "
               "for " << name;
    }
}

// ---------------------------------------------------- edge semantics

/** Runs @p kernel on two input buffers under @p kind; returns the raw
 *  words of the output buffer (slots * 16 lanes). */
std::vector<std::uint32_t>
runEdgeKernel(const Kernel &kernel, BackendKind kind,
              const std::vector<std::uint32_t> &a,
              const std::vector<std::uint32_t> &b, unsigned slots)
{
    gpu::GpuConfig config = gpu::ivbConfig();
    config.eu.backend = kind;
    Device dev(config);
    const Addr da = dev.uploadVector(a);
    const Addr db = dev.uploadVector(b);
    const Addr dout =
        dev.allocBuffer(static_cast<std::uint64_t>(slots) * 16 * 4);
    dev.launchFunctional(kernel, 16, 16,
                         {Arg::buffer(da), Arg::buffer(db),
                          Arg::buffer(dout)});
    return dev.downloadVector<std::uint32_t>(dout, slots * 16u);
}

/** min/max/add/mul/mov/cmp+sel over float lanes, one slot each. */
Kernel
floatEdgeKernel(unsigned &slots)
{
    KernelBuilder b("float_edge", 16);
    auto abuf = b.argBuffer("a");
    auto bbuf = b.argBuffer("b");
    auto obuf = b.argBuffer("out");
    auto addr = b.tmp(DataType::UD);
    auto oaddr = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    auto y = b.tmp(DataType::F);
    auto r = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), abuf);
    b.gatherLoad(x, addr, DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), bbuf);
    b.gatherLoad(y, addr, DataType::F);
    b.mad(oaddr, b.globalId(), b.ud(4), obuf);

    unsigned n = 0;
    auto emit = [&] {
        b.scatterStore(oaddr, r, DataType::F);
        b.add(oaddr, oaddr, b.ud(16 * 4));
        ++n;
    };
    b.min_(r, x, y);
    emit();
    b.max_(r, x, y);
    emit();
    b.add(r, x, y);
    emit();
    b.mul(r, x, y);
    emit();
    b.mov(r, x); // sNaN-quieting f64 roundtrip
    emit();
    b.mad(r, x, y, x);
    emit();
    b.cmp(CondMod::Lt, 0, x, y);
    b.sel(0, r, x, y);
    emit();
    slots = n;
    return b.build();
}

TEST(BackendEdgeCases, FloatNanZeroInfLanesMatchBitForBit)
{
    EnvGuard guard;
    // Lane soup: quiet/signalling NaNs with payloads, both-NaN pairs
    // (fmin/fmax must propagate the same payload), signed zeros,
    // infinities, denormals, and ordinary values.
    const std::vector<std::uint32_t> a = {
        0x7fc00000u, 0x7fc12345u, 0x7fa00001u, 0xffc00000u,
        0x80000000u, 0x00000000u, 0x7f800000u, 0xff800000u,
        0x00000001u, 0x807fffffu, 0x3f800000u, 0xbf800000u,
        0x7f7fffffu, 0x00800000u, 0x40490fdbu, 0xc2f6e979u,
    };
    const std::vector<std::uint32_t> b = {
        0x7fc54321u, 0x3f800000u, 0x7fc00000u, 0xffc00001u,
        0x00000000u, 0x80000000u, 0xff800000u, 0x7f800000u,
        0x80000001u, 0x007fffffu, 0xbf800000u, 0x3f800000u,
        0x00800000u, 0x7f7fffffu, 0xc2f6e979u, 0x40490fdbu,
    };
    unsigned slots = 0;
    const Kernel k = floatEdgeKernel(slots);

    func::GlobalMemory probe;
    func::VectorBackend backend(k, probe);
    EXPECT_GT(backend.vectorizedCount(), 0u)
        << "edge kernel no longer exercises the vector fast paths";

    const auto scalar =
        runEdgeKernel(k, BackendKind::Scalar, a, b, slots);
    const auto vector =
        runEdgeKernel(k, BackendKind::Vector, a, b, slots);
    ASSERT_EQ(scalar.size(), vector.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(scalar[i], vector[i])
            << "float lane " << i % 16 << " slot " << i / 16
            << " differs between backends";
}

/** Signed-overflow / shift-count / min-max kernel over D lanes. */
Kernel
intEdgeKernel(unsigned &slots)
{
    KernelBuilder b("int_edge", 16);
    auto abuf = b.argBuffer("a");
    auto bbuf = b.argBuffer("b");
    auto obuf = b.argBuffer("out");
    auto addr = b.tmp(DataType::UD);
    auto oaddr = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    auto r = b.tmp(DataType::D);
    b.mad(addr, b.globalId(), b.ud(4), abuf);
    b.gatherLoad(x, addr, DataType::D);
    b.mad(addr, b.globalId(), b.ud(4), bbuf);
    b.gatherLoad(y, addr, DataType::D);
    b.mad(oaddr, b.globalId(), b.ud(4), obuf);

    unsigned n = 0;
    auto emit = [&] {
        b.scatterStore(oaddr, r, DataType::D);
        b.add(oaddr, oaddr, b.ud(16 * 4));
        ++n;
    };
    b.add(r, x, y);
    emit();
    b.sub(r, x, y);
    emit();
    b.mul(r, x, y); // INT_MIN * -1 wraps
    emit();
    b.min_(r, x, y);
    emit();
    b.max_(r, x, y);
    emit();
    b.shl(r, x, y);
    emit();
    b.shr(r, x, y);
    emit();
    b.asr(r, x, y);
    emit();
    b.cmp(CondMod::Gt, 1, x, y);
    b.sel(1, r, x, y);
    emit();
    slots = n;
    return b.build();
}

TEST(BackendEdgeCases, IntMinWraparoundAndShiftCountsMatchBitForBit)
{
    EnvGuard guard;
    const auto u = [](std::int32_t v) {
        return static_cast<std::uint32_t>(v);
    };
    const std::vector<std::uint32_t> a = {
        u(INT32_MIN), u(INT32_MAX), u(-1),         0u,
        1u,           u(INT32_MIN), u(INT32_MAX),  u(-123456),
        0xdeadbeefu,  u(INT32_MIN), 0x40000000u,   u(-2),
        u(INT32_MAX), 2u,           u(INT32_MIN),  0x12345678u,
    };
    const std::vector<std::uint32_t> b = {
        u(-1),        1u,           u(INT32_MIN),  u(INT32_MIN),
        31u,          32u,          33u,           63u,
        64u,          u(-1),        1u,            u(INT32_MAX),
        u(INT32_MAX), 30u,          u(INT32_MIN),  0u,
    };
    unsigned slots = 0;
    const Kernel k = intEdgeKernel(slots);

    func::GlobalMemory probe;
    func::VectorBackend backend(k, probe);
    EXPECT_GT(backend.vectorizedCount(), 0u)
        << "edge kernel no longer exercises the vector fast paths";

    const auto scalar =
        runEdgeKernel(k, BackendKind::Scalar, a, b, slots);
    const auto vector =
        runEdgeKernel(k, BackendKind::Vector, a, b, slots);
    ASSERT_EQ(scalar.size(), vector.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(scalar[i], vector[i])
            << "int lane " << i % 16 << " slot " << i / 16
            << " differs between backends";
}

} // namespace
