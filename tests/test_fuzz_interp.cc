/**
 * @file
 * Property/fuzz tests: randomly generated kernels are executed by the
 * interpreter and checked against an independent host-side evaluator
 * of the same semantics — broad coverage of operand handling, masks,
 * predication, and integer arithmetic beyond the hand-written cases.
 * Every fuzzed kernel runs under both execution backends (and under
 * macro-stepping), and the full architectural state — GRF and flags —
 * must agree bit for bit across all of them.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.hh"
#include "func/interp.hh"
#include "isa/builder.hh"

namespace
{

using iwc::LaneMask;
using iwc::Rng;
using iwc::func::BackendKind;
using iwc::func::GlobalMemory;
using iwc::func::Interpreter;
using iwc::func::ThreadState;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

constexpr unsigned kVars = 6;

/** Host model: per-channel values of each virtual register. */
using HostState = std::array<std::array<std::int64_t, 16>, kVars>;

/** One random straight-line integer kernel + its host mirror. */
struct FuzzProgram
{
    Kernel kernel;
    HostState expected{};
    std::array<std::uint8_t, kVars> regBase{};
};

std::int64_t
wrap32(std::int64_t v)
{
    return static_cast<std::int32_t>(static_cast<std::uint64_t>(v));
}

FuzzProgram
makeProgram(std::uint64_t seed, unsigned length)
{
    Rng rng(seed);
    KernelBuilder b("fuzz", 16);

    std::array<iwc::isa::Reg, kVars> vars;
    FuzzProgram prog{Kernel{}, {}, {}};
    for (unsigned v = 0; v < kVars; ++v) {
        vars[v] = b.tmp(DataType::D);
        prog.regBase[v] = vars[v].base;
        const auto init = static_cast<std::int32_t>(
            rng.range(-1000, 1000));
        b.mov(vars[v], b.d(init));
        for (unsigned ch = 0; ch < 16; ++ch)
            prog.expected[v][ch] = init;
    }
    // Give channels distinct values via the local-id vector.
    b.add(vars[0], vars[0], b.localId());
    for (unsigned ch = 0; ch < 16; ++ch)
        prog.expected[0][ch] =
            wrap32(prog.expected[0][ch] + ch);

    LaneMask flag[2] = {0, 0};

    for (unsigned i = 0; i < length; ++i) {
        const unsigned dst = static_cast<unsigned>(rng.below(kVars));
        const unsigned s0 = static_cast<unsigned>(rng.below(kVars));
        const unsigned s1 = static_cast<unsigned>(rng.below(kVars));
        const unsigned op = static_cast<unsigned>(rng.below(9));
        const bool predicated = rng.chance(0.3);
        const unsigned pf = static_cast<unsigned>(rng.below(2));
        const bool inverted = rng.chance(0.5);

        LaneMask exec = 0xffff;
        if (predicated)
            exec = inverted ? ~flag[pf] & 0xffff : flag[pf] & 0xffff;

        auto apply = [&](auto fn) {
            for (unsigned ch = 0; ch < 16; ++ch) {
                if (!(exec & (LaneMask{1} << ch)))
                    continue;
                prog.expected[dst][ch] = wrap32(
                    fn(prog.expected[s0][ch], prog.expected[s1][ch]));
            }
        };

        iwc::isa::InstrRef ref = [&] {
            switch (op) {
              case 0:
                apply([](auto a, auto b2) { return a + b2; });
                return b.add(vars[dst], vars[s0], vars[s1]);
              case 1:
                apply([](auto a, auto b2) { return a - b2; });
                return b.sub(vars[dst], vars[s0], vars[s1]);
              case 2:
                apply([](auto a, auto b2) { return a * b2; });
                return b.mul(vars[dst], vars[s0], vars[s1]);
              case 3:
                apply([](auto a, auto b2) {
                    return std::min(a, b2);
                });
                return b.min_(vars[dst], vars[s0], vars[s1]);
              case 4:
                apply([](auto a, auto b2) {
                    return std::max(a, b2);
                });
                return b.max_(vars[dst], vars[s0], vars[s1]);
              case 5:
                apply([](auto a, auto b2) { return a & b2; });
                return b.and_(vars[dst], vars[s0], vars[s1]);
              case 6:
                apply([](auto a, auto b2) { return a | b2; });
                return b.or_(vars[dst], vars[s0], vars[s1]);
              case 7:
                apply([](auto a, auto b2) { return a ^ b2; });
                return b.xor_(vars[dst], vars[s0], vars[s1]);
              default:
                // mad with s0 doubling as the addend: a*b + a.
                apply([](auto a, auto b2) { return a * b2 + a; });
                return b.mad(vars[dst], vars[s0], vars[s1], vars[s0]);
            }
        }();
        if (predicated)
            ref.pred(pf, inverted);

        // Occasionally refresh a flag from a comparison.
        if (rng.chance(0.4)) {
            const unsigned cf = static_cast<unsigned>(rng.below(2));
            const unsigned a = static_cast<unsigned>(rng.below(kVars));
            const unsigned c = static_cast<unsigned>(rng.below(kVars));
            b.cmp(CondMod::Lt, cf, vars[a], vars[c]);
            LaneMask bits = 0;
            for (unsigned ch = 0; ch < 16; ++ch)
                if (prog.expected[a][ch] < prog.expected[c][ch])
                    bits |= LaneMask{1} << ch;
            flag[cf] = bits;
        }
    }

    prog.kernel = b.build();
    return prog;
}

class FuzzInterp : public ::testing::TestWithParam<std::uint64_t>
{
};

/** Runs @p prog to completion under one backend; when @p use_macro is
 *  set, mask-stable runs go through stepMacro. Returns final state. */
ThreadState
runProgram(const FuzzProgram &prog, BackendKind kind, bool use_macro,
           unsigned &retired)
{
    GlobalMemory gmem;
    Interpreter interp(prog.kernel, gmem, kind);
    ThreadState t;
    t.reset(0xffff);
    for (unsigned ch = 0; ch < 16; ++ch)
        t.writeGrf<std::uint32_t>(
            prog.kernel.localIdReg() * iwc::kGrfRegBytes + ch * 4, ch);
    retired = 0;
    unsigned dispatches = 0;
    while (!t.halted() && ++dispatches < 10000) {
        if (use_macro) {
            const unsigned n = interp.stepMacro(t);
            if (n != 0) {
                retired += n;
                continue;
            }
        }
        interp.step(t);
        ++retired;
    }
    EXPECT_TRUE(t.halted()) << "kernel did not terminate";
    return t;
}

TEST_P(FuzzInterp, MatchesHostEvaluatorUnderAllBackends)
{
    // Caveat for the mad case: the generator uses a*b + a (addend is
    // always s0), mirrored identically on the host.
    const FuzzProgram prog = makeProgram(GetParam(), 60);

    unsigned scalar_n = 0, vector_n = 0, macro_n = 0;
    const ThreadState scalar =
        runProgram(prog, BackendKind::Scalar, false, scalar_n);
    const ThreadState vector =
        runProgram(prog, BackendKind::Vector, false, vector_n);
    const ThreadState macro =
        runProgram(prog, BackendKind::Vector, true, macro_n);

    // The scalar oracle must match the independent host evaluator.
    for (unsigned v = 0; v < kVars; ++v) {
        for (unsigned ch = 0; ch < 16; ++ch) {
            const auto got = scalar.readGrf<std::int32_t>(
                prog.regBase[v] * iwc::kGrfRegBytes + ch * 4);
            ASSERT_EQ(got,
                      static_cast<std::int32_t>(
                          prog.expected[v][ch]))
                << "seed " << GetParam() << " var " << v << " ch "
                << ch;
        }
    }

    // Both backends (and the macro-stepped run) must agree with the
    // oracle on every byte of architectural state.
    const std::size_t grf_bytes =
        std::size_t{iwc::kGrfRegCount} * iwc::kGrfRegBytes;
    EXPECT_EQ(std::memcmp(scalar.grfData(), vector.grfData(),
                          grf_bytes),
              0)
        << "vector backend GRF diverged, seed " << GetParam();
    EXPECT_EQ(std::memcmp(scalar.grfData(), macro.grfData(), grf_bytes),
              0)
        << "macro-stepped GRF diverged, seed " << GetParam();
    for (unsigned f = 0; f < 2; ++f) {
        EXPECT_EQ(scalar.flag(f), vector.flag(f))
            << "flag " << f << " seed " << GetParam();
        EXPECT_EQ(scalar.flag(f), macro.flag(f))
            << "flag " << f << " seed " << GetParam();
    }
    EXPECT_EQ(scalar_n, vector_n);
    EXPECT_EQ(scalar_n, macro_n)
        << "macro-stepping retired a different instruction count";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInterp,
                         ::testing::Range<std::uint64_t>(1, 33));

} // namespace
