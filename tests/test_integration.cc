/**
 * @file
 * End-to-end integration tests: timing-mode runs of representative
 * workloads validate outputs AND exhibit the paper's headline
 * behaviours (compaction speeds up divergent kernels, never slows
 * coherent ones, and never changes memory divergence).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::compaction::Mode;
using iwc::gpu::Device;
using iwc::gpu::GpuConfig;
using iwc::gpu::ivbConfig;
using iwc::gpu::LaunchStats;
using iwc::workloads::make;
using iwc::workloads::Workload;

LaunchStats
runTiming(const std::string &name, Mode mode, bool check = true,
          const GpuConfig *config_override = nullptr)
{
    Device dev(config_override ? *config_override : ivbConfig(mode));
    Workload w = make(name, dev, 1);
    const LaunchStats stats =
        dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
    if (check)
        EXPECT_TRUE(w.check(dev)) << name;
    return stats;
}

class TimingCorrectness
    : public ::testing::TestWithParam<const char *>
{
};

// Timing-mode execution must be functionally identical to the
// reference for a representative slice of the suite (covering ALU,
// branches, loops, SLM + barriers, and sends).
TEST_P(TimingCorrectness, OutputsMatchReferenceUnderScc)
{
    runTiming(GetParam(), Mode::Scc);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeWorkloads, TimingCorrectness,
    ::testing::Values("va", "dp", "scla", "bfs", "hotspot", "bsearch",
                      "mandelbrot", "rt_ao_alien8", "micro_looptrip"));

TEST(Integration, CompactionSpeedsUpDivergentWorkload)
{
    const LaunchStats base = runTiming("mandelbrot", Mode::Baseline);
    const LaunchStats bcc = runTiming("mandelbrot", Mode::Bcc);
    const LaunchStats scc = runTiming("mandelbrot", Mode::Scc);
    EXPECT_LT(bcc.totalCycles, base.totalCycles);
    EXPECT_LE(scc.totalCycles, bcc.totalCycles);
}

TEST(Integration, CompactionNeverSlowsCoherentWorkload)
{
    const LaunchStats ivb = runTiming("va", Mode::IvbOpt);
    const LaunchStats scc = runTiming("va", Mode::Scc);
    // "our optimizations have no adverse impact on coherent
    // applications" (Section 5.4).
    EXPECT_LE(scc.totalCycles, ivb.totalCycles + 1);
}

TEST(Integration, MemoryDivergenceUnchangedByCompaction)
{
    // Intra-warp compaction must not alter the coalescing behaviour:
    // identical line counts and messages under every mode.
    for (const char *name : {"bfs", "lavamd", "va"}) {
        const LaunchStats ivb = runTiming(name, Mode::IvbOpt, false);
        const LaunchStats scc = runTiming(name, Mode::Scc, false);
        EXPECT_EQ(ivb.eu.memMessages, scc.eu.memMessages) << name;
        EXPECT_EQ(ivb.eu.memLines, scc.eu.memLines) << name;
        EXPECT_DOUBLE_EQ(ivb.avgLinesPerMessage,
                         scc.avgLinesPerMessage) << name;
    }
}

TEST(Integration, EuCycleAccountingIndependentOfRunMode)
{
    const LaunchStats a = runTiming("treesearch", Mode::Baseline,
                                    false);
    const LaunchStats b = runTiming("treesearch", Mode::Scc, false);
    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m)
        EXPECT_EQ(a.eu.euCyclesByMode[m], b.eu.euCyclesByMode[m]);
}

TEST(Integration, Dc2RelievesBandwidthBoundKernels)
{
    GpuConfig dc1 = ivbConfig(Mode::Scc);
    dc1.mem.dcLinesPerCycle = 1;
    GpuConfig dc2 = dc1;
    dc2.mem.dcLinesPerCycle = 2;
    // Transpose scatters across lines: bandwidth hungry.
    const LaunchStats r1 = runTiming("trans", Mode::Scc, false, &dc1);
    const LaunchStats r2 = runTiming("trans", Mode::Scc, false, &dc2);
    EXPECT_LT(r2.totalCycles, r1.totalCycles);
}

TEST(Integration, PerfectL3HelpsMemoryBoundBfs)
{
    GpuConfig real = ivbConfig(Mode::Scc);
    GpuConfig perfect = real;
    perfect.mem.perfectL3 = true;
    const LaunchStats r = runTiming("bfs", Mode::Scc, false, &real);
    const LaunchStats p = runTiming("bfs", Mode::Scc, false, &perfect);
    EXPECT_LT(p.totalCycles, r.totalCycles);
}

TEST(Integration, ScaledProblemsStillValidate)
{
    Device dev;
    Workload w = make("hotspot", dev, 2);
    dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
    EXPECT_TRUE(w.check(dev));
}

TEST(Integration, MoreEusShortenExecution)
{
    GpuConfig small = ivbConfig(Mode::IvbOpt);
    small.numEus = 2;
    GpuConfig big = small;
    big.numEus = 6;
    const LaunchStats s = runTiming("bscholes", Mode::IvbOpt, false,
                                    &small);
    const LaunchStats l = runTiming("bscholes", Mode::IvbOpt, false,
                                    &big);
    EXPECT_LT(l.totalCycles, s.totalCycles);
}

} // namespace
