/**
 * @file
 * Tests for the trace analyzer, including the cross-methodology
 * consistency property: execution-driven EU-cycle accounting equals
 * trace-based accounting for the same kernel.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "isa/builder.hh"
#include "eu/eu_core.hh"
#include "trace/analyzer.hh"

namespace
{

using namespace iwc::trace;
using iwc::compaction::Mode;
using iwc::compaction::UtilBin;
using iwc::gpu::Arg;
using iwc::gpu::Device;
using iwc::isa::CondMod;
using iwc::isa::DataType;
using iwc::isa::KernelBuilder;

TEST(AnalyzerTest, SimdEfficiency)
{
    MaskTrace trace;
    trace.records = {
        {16, 4, InstrKind::Alu, 0xffff},
        {16, 4, InstrKind::Alu, 0x000f},
    };
    const TraceAnalysis a = analyzeTrace(trace);
    EXPECT_DOUBLE_EQ(a.simdEfficiency(), 20.0 / 32.0);
    EXPECT_TRUE(a.isDivergent());
}

TEST(AnalyzerTest, ReductionForKnownPattern)
{
    // 0x1111 repeated: baseline/IVB/BCC all take 4 cycles; SCC 1.
    MaskTrace trace;
    for (int i = 0; i < 100; ++i)
        trace.records.push_back({16, 4, InstrKind::Alu, 0x1111});
    const TraceAnalysis a = analyzeTrace(trace);
    EXPECT_EQ(a.cycles(Mode::IvbOpt), 400u);
    EXPECT_EQ(a.cycles(Mode::Bcc), 400u);
    EXPECT_EQ(a.cycles(Mode::Scc), 100u);
    EXPECT_DOUBLE_EQ(a.reduction(Mode::Scc), 0.75);
    EXPECT_DOUBLE_EQ(a.reduction(Mode::Bcc), 0.0);
}

TEST(AnalyzerTest, FixedCostKindsDiluteBenefit)
{
    MaskTrace trace;
    trace.records = {
        {16, 4, InstrKind::Alu, 0x000f},  // 4 -> 1 cycle under BCC
        {16, 4, InstrKind::Send, 0x000f}, // fixed 2 cycles
        {16, 4, InstrKind::Ctrl, 0x000f}, // fixed 1 cycle
    };
    const TraceAnalysis a = analyzeTrace(trace);
    EXPECT_EQ(a.cycles(Mode::IvbOpt), 2u + 2 + 1); // IVB halves the alu
    EXPECT_EQ(a.cycles(Mode::Bcc), 1u + 2 + 1);
    EXPECT_EQ(a.aluRecords, 1u);
}

TEST(AnalyzerTest, UtilizationBins)
{
    MaskTrace trace;
    trace.records = {
        {16, 4, InstrKind::Alu, 0xffff},
        {16, 4, InstrKind::Alu, 0x00ff},
        {8, 4, InstrKind::Alu, 0x03},
        {8, 4, InstrKind::Em, 0xff},
    };
    const TraceAnalysis a = analyzeTrace(trace);
    EXPECT_DOUBLE_EQ(a.utilFraction(UtilBin::S16Active13To16), 0.25);
    EXPECT_DOUBLE_EQ(a.utilFraction(UtilBin::S16Active5To8), 0.25);
    EXPECT_DOUBLE_EQ(a.utilFraction(UtilBin::S8Active1To4), 0.25);
    EXPECT_DOUBLE_EQ(a.utilFraction(UtilBin::S8Active5To8), 0.25);
}

TEST(AnalyzerTest, StreamingMatchesBatch)
{
    MaskTrace trace;
    for (unsigned i = 0; i < 1000; ++i)
        trace.records.push_back(
            {16, 4, InstrKind::Alu,
             static_cast<iwc::LaneMask>(i * 2654435761u) & 0xffff});
    const TraceAnalysis batch = analyzeTrace(trace);
    TraceAnalyzer streaming;
    for (const auto &r : trace.records)
        streaming.add(r);
    EXPECT_EQ(batch.cycles(Mode::Scc), streaming.result().cycles(
        Mode::Scc));
    EXPECT_EQ(batch.sumActiveLanes, streaming.result().sumActiveLanes);
}

// The key cross-methodology property: for the same kernel, the
// trace-based analyzer and the execution-driven EU produce identical
// EU-cycle accounting under every mode.
TEST(AnalyzerTest, TraceAndTimingAccountingAgree)
{
    KernelBuilder b("xmethod", 16);
    auto out = b.argBuffer("out");
    auto lane = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    b.and_(lane, b.localId(), b.ud(15));
    b.mov(x, b.f(1.0f));
    b.mov(i, b.d(0));
    b.loop_();
    {
        auto bit = b.tmp(DataType::UD);
        b.and_(bit, lane, b.ud(1));
        b.cmp(CondMod::Eq, 0, bit, b.ud(0));
        b.if_(0);
        b.mad(x, x, b.f(1.01f), b.f(0.1f));
        b.mad(x, x, b.f(0.99f), b.f(0.2f));
        b.else_();
        b.sqrt(x, x);
        b.endif_();
        b.add(i, i, b.d(1));
        b.cmp(CondMod::Lt, 1, i, b.d(5));
    }
    b.endLoop(1);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    b.scatterStore(addr, x, DataType::F);
    const auto kernel = b.build();

    // Trace path.
    Device func_dev;
    const iwc::Addr fout = func_dev.allocBuffer(512 * 4);
    MaskTrace trace;
    func_dev.launchFunctional(kernel, 512, 64, {Arg::buffer(fout)},
                              captureObserver(trace));
    const TraceAnalysis a = analyzeTrace(trace);

    // Timing path.
    Device timing_dev;
    const iwc::Addr tout = timing_dev.allocBuffer(512 * 4);
    const auto stats =
        timing_dev.launch(kernel, 512, 64, {Arg::buffer(tout)});

    ASSERT_EQ(a.records, stats.eu.instructions);
    for (unsigned m = 0; m < iwc::compaction::kNumModes; ++m) {
        EXPECT_EQ(a.euCycles[m], stats.eu.euCyclesByMode[m])
            << "mode " << m;
    }
    EXPECT_EQ(a.sumActiveLanes, stats.eu.sumActiveLanes);
    EXPECT_EQ(a.sumSimdWidth, stats.eu.sumSimdWidth);
    for (unsigned bin = 0; bin < iwc::compaction::kNumUtilBins; ++bin)
        EXPECT_EQ(a.utilBins[bin], stats.eu.utilBins[bin]);
}

// Guard the constant coupling the two methodologies: the analyzer's
// default fixed costs must equal the EU config defaults, or the
// cross-methodology equality above would silently drift.
TEST(AnalyzerTest, DefaultCostsMatchEuConfig)
{
    const AnalyzerCosts costs;
    const iwc::eu::EuConfig eu_config;
    EXPECT_EQ(costs.sendCycles, eu_config.sendCycles);
    EXPECT_EQ(costs.ctrlCycles, eu_config.ctrlCycles);
}

} // namespace
