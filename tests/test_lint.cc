/**
 * @file
 * Tests for the static kernel verifier (src/lint): golden ip-level
 * diagnostics for every check kind, corpus cleanliness over all
 * registered workloads, robustness against arbitrary malformed
 * instruction streams, and the build/run wiring.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "lint/divergence.hh"
#include "lint/verifier.hh"
#include "run/run.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using isa::CondMod;
using isa::DataType;
using isa::Instruction;
using isa::Kernel;
using isa::KernelBuilder;
using isa::Opcode;
using isa::PredCtrl;
using isa::SendOp;
using lint::Check;
using lint::Report;
using lint::Severity;

/** Wraps a raw instruction vector as an unvalidated lint input. */
lint::KernelView
viewOf(const std::vector<Instruction> &instrs, unsigned simd_width = 16,
       unsigned first_temp = 7, unsigned slm_bytes = 0)
{
    lint::KernelView view;
    view.name = "test";
    view.simdWidth = simd_width;
    view.instrs = instrs.data();
    view.size = static_cast<std::uint32_t>(instrs.size());
    view.firstTempReg = first_temp;
    view.slmBytes = slm_bytes;
    return view;
}

Instruction
instr(Opcode op)
{
    Instruction in;
    in.op = op;
    return in;
}

Instruction
haltInstr()
{
    return instr(Opcode::Halt);
}

/** True if the report holds a diagnostic of @p check at @p ip. */
bool
hasDiag(const Report &report, Check check, std::int32_t ip,
        Severity severity)
{
    for (const lint::Diag &d : report.diags) {
        if (d.check == check && d.ip == ip && d.severity == severity)
            return true;
    }
    return false;
}

// --- Golden diagnostics, one per check kind ---------------------------

TEST(LintStructure, EndifWithoutIf)
{
    const std::vector<Instruction> instrs{instr(Opcode::EndIf),
                                          haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 0, Severity::Error));
    EXPECT_TRUE(report.hasErrors());
}

TEST(LintStructure, UnclosedIf)
{
    Instruction if_in = instr(Opcode::If);
    if_in.predCtrl = PredCtrl::Normal;
    if_in.target0 = 1;
    if_in.target1 = 1;
    const std::vector<Instruction> instrs{if_in, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 0, Severity::Error));
}

TEST(LintStructure, CorruptedIfTargetIsPinpointed)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, b.globalId(), b.ud(0)); // @0
    b.if_(0);                                     // @1
    b.mov(x, b.d(1));                             // @2
    b.endif_();                                   // @3
    const Kernel k = b.build();

    std::vector<Instruction> instrs = k.instructions();
    instrs[1].target1 = 2; // should point at the endif (ip 3)
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 1, Severity::Error));
}

TEST(LintWidth, IllegalSimdWidth)
{
    Instruction mov = instr(Opcode::Mov);
    mov.simdWidth = 3;
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintWidth, OutOfRangeFlagField)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    mov.predCtrl = PredCtrl::Normal;
    mov.predFlag = 5;
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintWidth, CmpWithoutCondMod)
{
    Instruction cmp = instr(Opcode::Cmp);
    cmp.src0 = isa::immD(1);
    cmp.src1 = isa::immD(2);
    const std::vector<Instruction> instrs{cmp, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintRegion, GrfOverrun)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(127, DataType::D); // 16 dwords from r127
    mov.src0 = isa::immD(0);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintRegion, MissingSource)
{
    Instruction add = instr(Opcode::Add);
    add.dst = isa::grfOperand(10, DataType::D);
    add.src0 = isa::immD(1); // src1 left null
    const std::vector<Instruction> instrs{add, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintRegion, ImmediateDestination)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::immD(0);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintBadSend, SlmAccessWithoutSlm)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::SlmGatherLoad;
    send.send.type = DataType::D;
    send.dst = isa::grfOperand(10, DataType::D);
    send.src0 = isa::grfOperand(8, DataType::UD);
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report =
        lint::verify(viewOf(instrs, 16, 12, /*slm_bytes=*/0));
    EXPECT_TRUE(hasDiag(report, Check::BadSend, 0, Severity::Error));
}

TEST(LintBadSend, GatherElementSizeMismatch)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::GatherLoad;
    send.send.type = DataType::UD;                // 4-byte elements...
    send.dst = isa::grfOperand(10, DataType::UW); // ...into 2-byte dst
    send.src0 = isa::grfOperand(8, DataType::UD);
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report = lint::verify(viewOf(instrs, 16, 12));
    EXPECT_TRUE(hasDiag(report, Check::BadSend, 0, Severity::Error));
}

TEST(LintSelfHazard, GatherDestinationOverlapsAddressPayload)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::GatherLoad;
    send.send.type = DataType::UD;
    send.dst = isa::grfOperand(8, DataType::UD); // r8-r9 writeback...
    send.src0 = isa::grfOperand(8, DataType::UD); // ...races r8-r9 reads
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report = lint::verify(viewOf(instrs, 16, 12));
    EXPECT_TRUE(hasDiag(report, Check::SelfHazard, 0, Severity::Error));
}

TEST(LintUnreachable, CodeAfterHalt)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{haltInstr(), mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(
        hasDiag(report, Check::Unreachable, 1, Severity::Warning));
    EXPECT_FALSE(report.hasErrors());
}

// --- Def-before-use ----------------------------------------------------

TEST(LintUndefRead, TemporaryReadBeforeDefinition)
{
    Instruction add = instr(Opcode::Add);
    add.dst = isa::grfOperand(10, DataType::D);
    add.src0 = isa::grfOperand(12, DataType::D); // never written
    add.src1 = isa::immD(1);
    const std::vector<Instruction> instrs{add, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::UndefRead, 0, Severity::Error));
}

TEST(LintUndefRead, PartialDefinitionFromOneArmWarns)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4)); // @0
    b.if_(0);                                     // @1
    b.mov(x, b.d(1));                             // @2
    b.endif_();                                   // @3
    b.add(y, x, b.d(0));                          // @4: x partial here
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(
        hasDiag(report, Check::UndefRead, 4, Severity::Warning));
    EXPECT_FALSE(report.hasErrors());
}

TEST(LintUndefRead, DefinitionInBothArmsIsClean)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4));
    b.if_(0);
    b.mov(x, b.d(1));
    b.else_();
    b.mov(x, b.d(2));
    b.endif_();
    b.add(y, x, b.d(0)); // fully defined on every feasible path
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(report.clean()) << lint::renderText(report, &k);
}

TEST(LintUndefRead, FlagReadBeforeAnyCmp)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(1)).pred(0); // f0 never written by a cmp
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(hasDiag(report, Check::UndefRead, 0, Severity::Error));
}

// --- Corpus and robustness --------------------------------------------

TEST(LintCorpus, AllRegisteredWorkloadsVerifyClean)
{
    for (const std::string &name : workloads::allNames()) {
        gpu::Device dev;
        const workloads::Workload w = workloads::make(name, dev, 1);
        const Report report = lint::verify(w.kernel);
        EXPECT_TRUE(report.clean())
            << name << ":\n" << lint::renderText(report, &w.kernel);
    }
}

/** Arbitrary in-domain instruction streams must never crash verify. */
TEST(LintFuzz, RandomStreamsNeverCrash)
{
    constexpr Opcode kOps[] = {
        Opcode::Mov,  Opcode::Add,    Opcode::Mad,     Opcode::Cmp,
        Opcode::Sel,  Opcode::Div,    Opcode::If,      Opcode::Else,
        Opcode::EndIf, Opcode::LoopBegin, Opcode::LoopEnd,
        Opcode::Break, Opcode::Cont,  Opcode::Halt,    Opcode::Send,
    };
    constexpr unsigned kWidths[] = {1, 3, 4, 8, 16, 32, 200};

    Rng rng(0xfeedbeef);
    // Raw construction, bypassing the factory helpers' own range
    // checks: out-of-range registers must flow into the verifier.
    auto random_operand = [&rng]() {
        isa::Operand op;
        switch (rng.below(4)) {
          case 0:
            return op; // null
          case 1:
            return isa::immD(static_cast<std::int32_t>(rng.below(100)));
          default:
            op.file = isa::RegFile::Grf;
            op.reg = static_cast<std::uint8_t>(rng.below(132));
            op.subReg = static_cast<std::uint8_t>(rng.below(12));
            op.type = static_cast<DataType>(rng.below(8));
            op.scalar = rng.chance(0.3);
            return op;
        }
    };

    for (unsigned iter = 0; iter < 400; ++iter) {
        const unsigned len = 1 + static_cast<unsigned>(rng.below(12));
        std::vector<Instruction> instrs;
        for (unsigned i = 0; i < len; ++i) {
            Instruction in;
            in.op = kOps[rng.below(std::size(kOps))];
            in.simdWidth = static_cast<std::uint8_t>(
                kWidths[rng.below(std::size(kWidths))]);
            in.dst = random_operand();
            in.src0 = random_operand();
            in.src1 = random_operand();
            in.src2 = random_operand();
            in.predCtrl = static_cast<PredCtrl>(rng.below(3));
            in.predFlag = static_cast<std::uint8_t>(rng.below(4));
            in.condMod = static_cast<CondMod>(rng.below(7));
            in.condFlag = static_cast<std::uint8_t>(rng.below(4));
            in.target0 =
                static_cast<std::int32_t>(rng.below(len + 4)) - 2;
            in.target1 =
                static_cast<std::int32_t>(rng.below(len + 4)) - 2;
            in.send.op = static_cast<SendOp>(rng.below(9));
            in.send.type = static_cast<DataType>(rng.below(8));
            in.send.numRegs =
                static_cast<std::uint8_t>(rng.below(140));
            instrs.push_back(in);
        }
        if (rng.chance(0.5))
            instrs.push_back(haltInstr());

        const lint::KernelView view = viewOf(
            instrs, 16, static_cast<unsigned>(rng.below(16)),
            static_cast<unsigned>(rng.below(2)) * 256);
        const Report report = lint::verify(view);
        if (!report.hasErrors())
            lint::analyzeDivergence(view);
    }
    SUCCEED();
}

/** Random single-field corruptions of a real kernel: same property. */
TEST(LintFuzz, MutatedBuilderKernelsNeverCrash)
{
    KernelBuilder b("seed", 16);
    auto buf = b.argBuffer("buf");
    auto x = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), buf);
    b.gatherLoad(x, addr, DataType::D);
    b.loop_();
    b.cmp(CondMod::Gt, 0, x, b.d(0));
    b.if_(0);
    b.sub(x, x, b.d(3));
    b.else_();
    b.add(x, x, b.d(1));
    b.endif_();
    b.cmp(CondMod::Gt, 1, x, b.d(100));
    b.breakIf(1);
    b.cmp(CondMod::Ne, 1, x, b.d(0));
    b.endLoop(1);
    b.scatterStore(addr, x, DataType::D);
    const Kernel seed = b.build();
    ASSERT_TRUE(lint::verify(seed).clean());

    Rng rng(0xabad1dea);
    for (unsigned iter = 0; iter < 400; ++iter) {
        std::vector<Instruction> instrs = seed.instructions();
        const unsigned mutations = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned m = 0; m < mutations; ++m) {
            Instruction &in =
                instrs[rng.below(instrs.size())];
            switch (rng.below(6)) {
              case 0:
                in.op = static_cast<Opcode>(
                    rng.below(static_cast<unsigned>(Opcode::NumOpcodes)));
                break;
              case 1:
                in.target0 = static_cast<std::int32_t>(
                    rng.below(instrs.size() + 4)) - 2;
                break;
              case 2:
                in.simdWidth =
                    static_cast<std::uint8_t>(rng.below(64));
                break;
              case 3:
                in.dst.reg = static_cast<std::uint8_t>(rng.below(255));
                break;
              case 4:
                in.predFlag = static_cast<std::uint8_t>(rng.below(8));
                in.predCtrl = static_cast<PredCtrl>(rng.below(3));
                break;
              default:
                in.src0.file = static_cast<isa::RegFile>(rng.below(3));
                break;
            }
        }
        const lint::KernelView view = viewOf(instrs, 16,
                                             seed.firstTempReg());
        const Report report = lint::verify(view);
        if (!report.hasErrors())
            lint::analyzeDivergence(view);
    }
    SUCCEED();
}

// --- Wiring ------------------------------------------------------------

TEST(LintWiring, BuildHookAcceptsCleanKernels)
{
    lint::installBuildVerifier();
    KernelBuilder b("hooked", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(7));
    const Kernel k = b.build(); // would fatal() if the verifier flagged it
    KernelBuilder::setBuildHook(nullptr);
    EXPECT_GT(k.size(), 0u);
}

TEST(LintWiring, RunRequestLintFlagVerifiesBeforeExecuting)
{
    run::RunRequest request = run::RunRequest::functionalTrace("va", 1);
    request.lint = true;
    const run::RunResult result = run::executeRun(request);
    EXPECT_GT(result.analysis.records, 0u);
}

TEST(LintRender, TextAndJsonCarryDiagnostics)
{
    const std::vector<Instruction> instrs{instr(Opcode::EndIf),
                                          haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    ASSERT_FALSE(report.clean());
    const std::string text = lint::renderText(report);
    EXPECT_NE(text.find("structure"), std::string::npos);
    const std::string json = lint::renderJson(report);
    EXPECT_NE(json.find("\"check\""), std::string::npos);
}

} // namespace
