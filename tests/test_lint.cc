/**
 * @file
 * Tests for the static kernel verifier (src/lint): golden ip-level
 * diagnostics for every check kind, corpus cleanliness over all
 * registered workloads, robustness against arbitrary malformed
 * instruction streams, and the build/run wiring.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "lint/cfg.hh"
#include "lint/divergence.hh"
#include "lint/verifier.hh"
#include "run/run.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using isa::CondMod;
using isa::DataType;
using isa::Instruction;
using isa::Kernel;
using isa::KernelBuilder;
using isa::Opcode;
using isa::PredCtrl;
using isa::SendOp;
using lint::Check;
using lint::Report;
using lint::Severity;

/** Wraps a raw instruction vector as an unvalidated lint input. */
lint::KernelView
viewOf(const std::vector<Instruction> &instrs, unsigned simd_width = 16,
       unsigned first_temp = 7, unsigned slm_bytes = 0)
{
    lint::KernelView view;
    view.name = "test";
    view.simdWidth = simd_width;
    view.instrs = instrs.data();
    view.size = static_cast<std::uint32_t>(instrs.size());
    view.firstTempReg = first_temp;
    view.slmBytes = slm_bytes;
    return view;
}

Instruction
instr(Opcode op)
{
    Instruction in;
    in.op = op;
    return in;
}

Instruction
haltInstr()
{
    return instr(Opcode::Halt);
}

/** True if the report holds a diagnostic of @p check at @p ip. */
bool
hasDiag(const Report &report, Check check, std::int32_t ip,
        Severity severity)
{
    for (const lint::Diag &d : report.diags) {
        if (d.check == check && d.ip == ip && d.severity == severity)
            return true;
    }
    return false;
}

// --- Golden diagnostics, one per check kind ---------------------------

TEST(LintStructure, EndifWithoutIf)
{
    const std::vector<Instruction> instrs{instr(Opcode::EndIf),
                                          haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 0, Severity::Error));
    EXPECT_TRUE(report.hasErrors());
}

TEST(LintStructure, UnclosedIf)
{
    Instruction if_in = instr(Opcode::If);
    if_in.predCtrl = PredCtrl::Normal;
    if_in.target0 = 1;
    if_in.target1 = 1;
    const std::vector<Instruction> instrs{if_in, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 0, Severity::Error));
}

TEST(LintStructure, CorruptedIfTargetIsPinpointed)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.cmp(CondMod::Eq, 0, b.globalId(), b.ud(0)); // @0
    b.if_(0);                                     // @1
    b.mov(x, b.d(1));                             // @2
    b.endif_();                                   // @3
    const Kernel k = b.build();

    std::vector<Instruction> instrs = k.instructions();
    instrs[1].target1 = 2; // should point at the endif (ip 3)
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Structure, 1, Severity::Error));
}

TEST(LintWidth, IllegalSimdWidth)
{
    Instruction mov = instr(Opcode::Mov);
    mov.simdWidth = 3;
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintWidth, OutOfRangeFlagField)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    mov.predCtrl = PredCtrl::Normal;
    mov.predFlag = 5;
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintWidth, CmpWithoutCondMod)
{
    Instruction cmp = instr(Opcode::Cmp);
    cmp.src0 = isa::immD(1);
    cmp.src1 = isa::immD(2);
    const std::vector<Instruction> instrs{cmp, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Width, 0, Severity::Error));
}

TEST(LintRegion, GrfOverrun)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(127, DataType::D); // 16 dwords from r127
    mov.src0 = isa::immD(0);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintRegion, MissingSource)
{
    Instruction add = instr(Opcode::Add);
    add.dst = isa::grfOperand(10, DataType::D);
    add.src0 = isa::immD(1); // src1 left null
    const std::vector<Instruction> instrs{add, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintRegion, ImmediateDestination)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::immD(0);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::Region, 0, Severity::Error));
}

TEST(LintBadSend, SlmAccessWithoutSlm)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::SlmGatherLoad;
    send.send.type = DataType::D;
    send.dst = isa::grfOperand(10, DataType::D);
    send.src0 = isa::grfOperand(8, DataType::UD);
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report =
        lint::verify(viewOf(instrs, 16, 12, /*slm_bytes=*/0));
    EXPECT_TRUE(hasDiag(report, Check::BadSend, 0, Severity::Error));
}

TEST(LintBadSend, GatherElementSizeMismatch)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::GatherLoad;
    send.send.type = DataType::UD;                // 4-byte elements...
    send.dst = isa::grfOperand(10, DataType::UW); // ...into 2-byte dst
    send.src0 = isa::grfOperand(8, DataType::UD);
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report = lint::verify(viewOf(instrs, 16, 12));
    EXPECT_TRUE(hasDiag(report, Check::BadSend, 0, Severity::Error));
}

TEST(LintSelfHazard, GatherDestinationOverlapsAddressPayload)
{
    Instruction send = instr(Opcode::Send);
    send.send.op = SendOp::GatherLoad;
    send.send.type = DataType::UD;
    send.dst = isa::grfOperand(8, DataType::UD); // r8-r9 writeback...
    send.src0 = isa::grfOperand(8, DataType::UD); // ...races r8-r9 reads
    const std::vector<Instruction> instrs{send, haltInstr()};
    const Report report = lint::verify(viewOf(instrs, 16, 12));
    EXPECT_TRUE(hasDiag(report, Check::SelfHazard, 0, Severity::Error));
}

TEST(LintUnreachable, CodeAfterHalt)
{
    Instruction mov = instr(Opcode::Mov);
    mov.dst = isa::grfOperand(10, DataType::D);
    mov.src0 = isa::immD(1);
    const std::vector<Instruction> instrs{haltInstr(), mov, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(
        hasDiag(report, Check::Unreachable, 1, Severity::Warning));
    EXPECT_FALSE(report.hasErrors());
}

// --- Def-before-use ----------------------------------------------------

TEST(LintUndefRead, TemporaryReadBeforeDefinition)
{
    Instruction add = instr(Opcode::Add);
    add.dst = isa::grfOperand(10, DataType::D);
    add.src0 = isa::grfOperand(12, DataType::D); // never written
    add.src1 = isa::immD(1);
    const std::vector<Instruction> instrs{add, haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    EXPECT_TRUE(hasDiag(report, Check::UndefRead, 0, Severity::Error));
}

TEST(LintUndefRead, PartialDefinitionFromOneArmWarns)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4)); // @0
    b.if_(0);                                     // @1
    b.mov(x, b.d(1));                             // @2
    b.endif_();                                   // @3
    b.add(y, x, b.d(0));                          // @4: x partial here
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(
        hasDiag(report, Check::UndefRead, 4, Severity::Warning));
    EXPECT_FALSE(report.hasErrors());
}

TEST(LintUndefRead, DefinitionInBothArmsIsClean)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    auto y = b.tmp(DataType::D);
    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(4));
    b.if_(0);
    b.mov(x, b.d(1));
    b.else_();
    b.mov(x, b.d(2));
    b.endif_();
    b.add(y, x, b.d(0)); // fully defined on every feasible path
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(report.clean()) << lint::renderText(report, &k);
}

TEST(LintUndefRead, FlagReadBeforeAnyCmp)
{
    KernelBuilder b("t", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(1)).pred(0); // f0 never written by a cmp
    const Kernel k = b.build();

    const Report report = lint::verify(k);
    EXPECT_TRUE(hasDiag(report, Check::UndefRead, 0, Severity::Error));
}

// --- Corpus and robustness --------------------------------------------

TEST(LintCorpus, AllRegisteredWorkloadsVerifyClean)
{
    for (const std::string &name : workloads::allNames()) {
        gpu::Device dev;
        const workloads::Workload w = workloads::make(name, dev, 1);
        const Report report = lint::verify(w.kernel);
        EXPECT_TRUE(report.clean())
            << name << ":\n" << lint::renderText(report, &w.kernel);
    }
}

/** Arbitrary in-domain instruction streams must never crash verify. */
TEST(LintFuzz, RandomStreamsNeverCrash)
{
    constexpr Opcode kOps[] = {
        Opcode::Mov,  Opcode::Add,    Opcode::Mad,     Opcode::Cmp,
        Opcode::Sel,  Opcode::Div,    Opcode::If,      Opcode::Else,
        Opcode::EndIf, Opcode::LoopBegin, Opcode::LoopEnd,
        Opcode::Break, Opcode::Cont,  Opcode::Halt,    Opcode::Send,
    };
    constexpr unsigned kWidths[] = {1, 3, 4, 8, 16, 32, 200};

    Rng rng(0xfeedbeef);
    // Raw construction, bypassing the factory helpers' own range
    // checks: out-of-range registers must flow into the verifier.
    auto random_operand = [&rng]() {
        isa::Operand op;
        switch (rng.below(4)) {
          case 0:
            return op; // null
          case 1:
            return isa::immD(static_cast<std::int32_t>(rng.below(100)));
          default:
            op.file = isa::RegFile::Grf;
            op.reg = static_cast<std::uint8_t>(rng.below(132));
            op.subReg = static_cast<std::uint8_t>(rng.below(12));
            op.type = static_cast<DataType>(rng.below(8));
            op.scalar = rng.chance(0.3);
            return op;
        }
    };

    for (unsigned iter = 0; iter < 400; ++iter) {
        const unsigned len = 1 + static_cast<unsigned>(rng.below(12));
        std::vector<Instruction> instrs;
        for (unsigned i = 0; i < len; ++i) {
            Instruction in;
            in.op = kOps[rng.below(std::size(kOps))];
            in.simdWidth = static_cast<std::uint8_t>(
                kWidths[rng.below(std::size(kWidths))]);
            in.dst = random_operand();
            in.src0 = random_operand();
            in.src1 = random_operand();
            in.src2 = random_operand();
            in.predCtrl = static_cast<PredCtrl>(rng.below(3));
            in.predFlag = static_cast<std::uint8_t>(rng.below(4));
            in.condMod = static_cast<CondMod>(rng.below(7));
            in.condFlag = static_cast<std::uint8_t>(rng.below(4));
            in.target0 =
                static_cast<std::int32_t>(rng.below(len + 4)) - 2;
            in.target1 =
                static_cast<std::int32_t>(rng.below(len + 4)) - 2;
            in.send.op = static_cast<SendOp>(rng.below(9));
            in.send.type = static_cast<DataType>(rng.below(8));
            in.send.numRegs =
                static_cast<std::uint8_t>(rng.below(140));
            instrs.push_back(in);
        }
        if (rng.chance(0.5))
            instrs.push_back(haltInstr());

        const lint::KernelView view = viewOf(
            instrs, 16, static_cast<unsigned>(rng.below(16)),
            static_cast<unsigned>(rng.below(2)) * 256);
        const Report report = lint::verify(view);
        if (!report.hasErrors())
            lint::analyzeDivergence(view);
    }
    SUCCEED();
}

/** Random single-field corruptions of a real kernel: same property. */
TEST(LintFuzz, MutatedBuilderKernelsNeverCrash)
{
    KernelBuilder b("seed", 16);
    auto buf = b.argBuffer("buf");
    auto x = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), buf);
    b.gatherLoad(x, addr, DataType::D);
    b.loop_();
    b.cmp(CondMod::Gt, 0, x, b.d(0));
    b.if_(0);
    b.sub(x, x, b.d(3));
    b.else_();
    b.add(x, x, b.d(1));
    b.endif_();
    b.cmp(CondMod::Gt, 1, x, b.d(100));
    b.breakIf(1);
    b.cmp(CondMod::Ne, 1, x, b.d(0));
    b.endLoop(1);
    b.scatterStore(addr, x, DataType::D);
    const Kernel seed = b.build();
    ASSERT_TRUE(lint::verify(seed).clean());

    Rng rng(0xabad1dea);
    for (unsigned iter = 0; iter < 400; ++iter) {
        std::vector<Instruction> instrs = seed.instructions();
        const unsigned mutations = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned m = 0; m < mutations; ++m) {
            Instruction &in =
                instrs[rng.below(instrs.size())];
            switch (rng.below(6)) {
              case 0:
                in.op = static_cast<Opcode>(
                    rng.below(static_cast<unsigned>(Opcode::NumOpcodes)));
                break;
              case 1:
                in.target0 = static_cast<std::int32_t>(
                    rng.below(instrs.size() + 4)) - 2;
                break;
              case 2:
                in.simdWidth =
                    static_cast<std::uint8_t>(rng.below(64));
                break;
              case 3:
                in.dst.reg = static_cast<std::uint8_t>(rng.below(255));
                break;
              case 4:
                in.predFlag = static_cast<std::uint8_t>(rng.below(8));
                in.predCtrl = static_cast<PredCtrl>(rng.below(3));
                break;
              default:
                in.src0.file = static_cast<isa::RegFile>(rng.below(3));
                break;
            }
        }
        const lint::KernelView view = viewOf(instrs, 16,
                                             seed.firstTempReg());
        const Report report = lint::verify(view);
        if (!report.hasErrors())
            lint::analyzeDivergence(view);
    }
    SUCCEED();
}

// --- Wiring ------------------------------------------------------------

TEST(LintWiring, BuildHookAcceptsCleanKernels)
{
    lint::installBuildVerifier();
    KernelBuilder b("hooked", 16);
    auto x = b.tmp(DataType::D);
    b.mov(x, b.d(7));
    const Kernel k = b.build(); // would fatal() if the verifier flagged it
    KernelBuilder::setBuildHook(nullptr);
    EXPECT_GT(k.size(), 0u);
}

TEST(LintWiring, RunRequestLintFlagVerifiesBeforeExecuting)
{
    run::RunRequest request = run::RunRequest::functionalTrace("va", 1);
    request.lint = true;
    const run::RunResult result = run::executeRun(request);
    EXPECT_GT(result.analysis.records, 0u);
}

TEST(LintRender, TextAndJsonCarryDiagnostics)
{
    const std::vector<Instruction> instrs{instr(Opcode::EndIf),
                                          haltInstr()};
    const Report report = lint::verify(viewOf(instrs));
    ASSERT_FALSE(report.clean());
    const std::string text = lint::renderText(report);
    EXPECT_NE(text.find("structure"), std::string::npos);
    const std::string json = lint::renderJson(report);
    EXPECT_NE(json.find("\"check\""), std::string::npos);
}

// --- JSON escaping ------------------------------------------------------

/** Inverse of jsonEscape, strict: fails the test on malformed input. */
std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        EXPECT_NE(c, '"') << "unescaped quote at " << i;
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control character at " << i;
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (i + 1 >= s.size()) {
            ADD_FAILURE() << "trailing backslash";
            return out;
        }
        switch (s[++i]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (i + 4 >= s.size()) {
                ADD_FAILURE() << "truncated \\u escape";
                return out;
            }
            out.push_back(static_cast<char>(
                std::stoi(s.substr(i + 1, 4), nullptr, 16)));
            i += 4;
            break;
          }
          default:
            ADD_FAILURE() << "unknown escape \\" << s[i];
        }
    }
    return out;
}

TEST(LintJson, EscapeRoundTripsEveryHostileByte)
{
    std::string hostile = "plain \"quoted\\path\\to\\thing\"";
    hostile += '\n';
    hostile += '\r';
    hostile += '\t';
    hostile += '\b';
    hostile += '\f';
    hostile += '\x01';
    hostile += '\x1f';
    const std::string escaped = lint::jsonEscape(hostile);
    EXPECT_EQ(jsonUnescape(escaped), hostile);
    EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
    EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
}

TEST(LintJson, HostileKernelNameAndMessageStayWellFormed)
{
    Report report;
    report.kernel = "evil\"kernel\\name\nwith\tcontrols\x02";
    report.add(Check::Structure, Severity::Error, 3,
               "message with \"quotes\" and a \\ backslash");
    const std::string json = lint::renderJson(report);

    // Every string literal in the output must decode back to its
    // source text, and nothing outside literals may be a raw control
    // byte — exactly what a JSON parser needs to round-trip it.
    EXPECT_NE(json.find(lint::jsonEscape(report.kernel)),
              std::string::npos);
    EXPECT_NE(json.find(lint::jsonEscape(report.diags[0].message)),
              std::string::npos);
    for (const char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    EXPECT_EQ(jsonUnescape(lint::jsonEscape(report.kernel)),
              report.kernel);
}

// --- CFG edge cases -----------------------------------------------------

/** Region of @p kind headed at @p head_ip, or nullptr. */
const lint::Region *
regionAt(const lint::Cfg &cfg, lint::Region::Kind kind,
         std::int32_t head_ip)
{
    for (const lint::Region &r : cfg.regions())
        if (r.kind == kind && r.headIp == head_ip)
            return &r;
    return nullptr;
}

TEST(LintCfg, BreakAndContInsideNestedDiamonds)
{
    // A loop whose body nests a diamond inside a diamond, with a Break
    // in the inner then arm and a Cont in the inner else arm — both
    // must resolve to the *loop*, not to any enclosing If.
    KernelBuilder b("nested", 16);
    auto x = b.tmp(DataType::UD);
    b.and_(x, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, x, b.ud(0));
    b.cmp(CondMod::Ne, 1, x, b.ud(1));
    b.loop_();                       // ip 3
    b.if_(0);                        // ip 4 (outer diamond)
    b.if_(1);                        // ip 5 (inner diamond)
    b.breakIf(0);                    // ip 6
    b.else_();                       // ip 7
    b.contIf(1);                     // ip 8
    b.endif_();                      // ip 9
    b.endif_();                      // ip 10
    b.endLoop(0);                    // ip 11
    const Kernel k = b.build();

    Report report;
    const lint::Cfg cfg =
        lint::Cfg::build(lint::KernelView::of(k), report);
    ASSERT_TRUE(cfg.structureOk());
    EXPECT_FALSE(report.hasErrors());

    const lint::Region *loop =
        regionAt(cfg, lint::Region::Kind::Loop, 3);
    const lint::Region *outer = regionAt(cfg, lint::Region::Kind::If, 4);
    const lint::Region *inner = regionAt(cfg, lint::Region::Kind::If, 5);
    ASSERT_NE(loop, nullptr);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->elseIp, 7);

    // Region nesting: inner if -> outer if -> loop -> top level.
    EXPECT_EQ(outer->parent,
              static_cast<std::int32_t>(loop - cfg.regions().data()));
    EXPECT_EQ(inner->parent,
              static_cast<std::int32_t>(outer - cfg.regions().data()));
    EXPECT_EQ(loop->parent, -1);

    // Break and Cont belong to the loop and jump to its LoopEnd.
    ASSERT_EQ(loop->exitIps.size(), 2u);
    EXPECT_EQ(loop->exitIps[0], 6);
    EXPECT_EQ(loop->exitIps[1], 8);
    for (const std::uint32_t break_ip : {6u, 8u}) {
        bool jumps_to_loop_end = false;
        for (const std::uint32_t succ : cfg.succs(break_ip))
            jumps_to_loop_end |= succ == 11u;
        EXPECT_TRUE(jumps_to_loop_end) << "ip " << break_ip;
    }
}

TEST(LintCfg, EmptyArmsAreLegalRegions)
{
    // if/else with an empty then arm, then one with an empty else arm:
    // degenerate but structurally legal, and every ip stays reachable.
    KernelBuilder b("empty_arms", 16);
    auto x = b.tmp(DataType::UD);
    b.and_(x, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, x, b.ud(0));
    b.if_(0);                        // ip 2: empty then arm
    b.else_();                       // ip 3
    b.add(x, x, b.ud(1));            // ip 4
    b.endif_();                      // ip 5
    b.if_(0);                        // ip 6
    b.add(x, x, b.ud(2));            // ip 7
    b.else_();                       // ip 8: empty else arm
    b.endif_();                      // ip 9
    const Kernel k = b.build();

    Report report;
    const lint::Cfg cfg =
        lint::Cfg::build(lint::KernelView::of(k), report);
    ASSERT_TRUE(cfg.structureOk());
    EXPECT_FALSE(report.hasErrors());
    for (std::uint32_t ip = 0; ip < cfg.size(); ++ip)
        EXPECT_TRUE(cfg.reachable(ip)) << "ip " << ip;
    // And the verifier accepts the whole kernel.
    EXPECT_FALSE(lint::verify(k).hasErrors());
}

TEST(LintCfg, BackToBackDiamondsShareTheJoinInstruction)
{
    // endif of diamond 1 is immediately followed by if of diamond 2:
    // the join instruction of the first region is the head of the
    // second, and the regions must not nest.
    KernelBuilder b("back_to_back", 16);
    auto x = b.tmp(DataType::UD);
    b.and_(x, b.globalId(), b.ud(1));
    b.cmp(CondMod::Ne, 0, x, b.ud(0));
    b.if_(0);                        // ip 2
    b.add(x, x, b.ud(1));            // ip 3
    b.endif_();                      // ip 4
    b.if_(0, /*inverted=*/true);     // ip 5
    b.add(x, x, b.ud(2));            // ip 6
    b.endif_();                      // ip 7
    const Kernel k = b.build();

    Report report;
    const lint::Cfg cfg =
        lint::Cfg::build(lint::KernelView::of(k), report);
    ASSERT_TRUE(cfg.structureOk());
    EXPECT_FALSE(report.hasErrors());

    const lint::Region *first = regionAt(cfg, lint::Region::Kind::If, 2);
    const lint::Region *second =
        regionAt(cfg, lint::Region::Kind::If, 5);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(first->endIp, 4);
    EXPECT_EQ(second->parent, -1); // siblings, not nested
    EXPECT_EQ(first->parent, -1);

    // The first EndIf falls through into the second If.
    ASSERT_EQ(cfg.succs(4).size(), 1u);
    EXPECT_EQ(cfg.succs(4)[0], 5u);
    // regionOf: the EndIf belongs to the first region, the If to the
    // second (heads and joins count as part of their own region).
    EXPECT_EQ(cfg.regionOf(3),
              static_cast<std::int32_t>(first - cfg.regions().data()));
    EXPECT_EQ(cfg.regionOf(6),
              static_cast<std::int32_t>(second - cfg.regions().data()));
}

} // namespace
