/** @file Unit tests for the statistics package and table renderer. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace
{

using namespace iwc::stats;

TEST(Counter, AccumulatesAndMerges)
{
    Counter a, b;
    a += 5;
    ++a;
    b += 10;
    a.merge(b);
    EXPECT_EQ(a.value(), 16u);
    a.reset();
    EXPECT_EQ(a.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(2.0);
    avg.sample(4.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    Average other;
    other.sample(12.0);
    avg.merge(other);
    EXPECT_DOUBLE_EQ(avg.mean(), 6.0);
    EXPECT_EQ(avg.count(), 3u);
}

TEST(HistogramTest, BinsAndClamping)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(3);
    h.sample(99); // clamps into the last bin
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 2u);
    EXPECT_EQ(h.bin(3), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(HistogramTest, Merge)
{
    Histogram a(3), b(3);
    a.sample(0);
    b.sample(2, 4);
    a.merge(b);
    EXPECT_EQ(a.bin(2), 4u);
    EXPECT_EQ(a.total(), 5u);
}

TEST(GroupTest, ScalarsAndDump)
{
    Group g("kernel");
    g.setScalar("cycles", 123);
    g.setScalar("eff", 0.5);
    EXPECT_TRUE(g.hasScalar("cycles"));
    EXPECT_FALSE(g.hasScalar("nope"));
    EXPECT_DOUBLE_EQ(g.getScalar("eff"), 0.5);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("kernel.cycles 123"), std::string::npos);
}

TEST(TableTest, PlainTextAlignment)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cellPct(0.125);
    t.row().cell("b").cell(std::uint64_t{42});
    std::ostringstream os;
    t.print(os, "demo");
    const std::string text = os.str();
    EXPECT_NE(text.find("== demo =="), std::string::npos);
    EXPECT_NE(text.find("12.5%"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
}

TEST(TableTest, Csv)
{
    Table t({"a", "b"});
    t.row().cell(1).cell(2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatPct)
{
    EXPECT_EQ(formatPct(0.2), "20.0%");
    EXPECT_EQ(formatPct(0.333, 0), "33%");
}

} // namespace
