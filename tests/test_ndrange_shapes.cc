/**
 * @file
 * NDRange shape sweep: every-work-item-exactly-once through the full
 * timing simulator for awkward geometry (partial workgroups, partial
 * subgroups, single-item launches, SIMD8 kernels, local sizes that
 * are not subgroup multiples).
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "isa/builder.hh"

namespace
{

using iwc::gpu::Arg;
using iwc::gpu::Device;
using iwc::isa::DataType;
using iwc::isa::Kernel;
using iwc::isa::KernelBuilder;

Kernel
storeGid(unsigned simd_width)
{
    KernelBuilder b("gid" + std::to_string(simd_width), simd_width);
    auto out = b.argBuffer("out");
    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out);
    auto v = b.tmp(DataType::UD);
    b.add(v, b.globalId(), b.ud(1)); // gid+1 so 0 means "not written"
    b.scatterStore(addr, v, DataType::UD);
    return b.build();
}

struct Shape
{
    unsigned simdWidth;
    std::uint64_t globalSize;
    unsigned localSize;
};

class NdRangeShapes : public ::testing::TestWithParam<Shape>
{
};

TEST_P(NdRangeShapes, EveryWorkItemRunsExactlyOnce)
{
    const Shape shape = GetParam();
    Device dev;
    const Kernel k = storeGid(shape.simdWidth);
    const iwc::Addr out =
        dev.allocBuffer((shape.globalSize + 64) * 4);
    dev.launch(k, shape.globalSize, shape.localSize,
               {Arg::buffer(out)});
    for (std::uint64_t i = 0; i < shape.globalSize; ++i)
        ASSERT_EQ(dev.memory().load<std::uint32_t>(out + i * 4), i + 1)
            << "work item " << i;
    // No overrun past the NDRange.
    for (unsigned i = 0; i < 32; ++i)
        ASSERT_EQ(dev.memory().load<std::uint32_t>(
                      out + (shape.globalSize + i) * 4), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NdRangeShapes,
    ::testing::Values(Shape{16, 1, 64},    // single work item
                      Shape{16, 15, 64},   // sub-subgroup launch
                      Shape{16, 17, 64},   // one full + partial
                      Shape{16, 64, 64},   // exactly one workgroup
                      Shape{16, 65, 64},   // one WG + 1 item
                      Shape{16, 1000, 64}, // ragged tail
                      Shape{16, 100, 24},  // local not a SG multiple
                      Shape{16, 300, 100}, // >1 EU's worth per WG
                      Shape{8, 100, 24},   // SIMD8 kernel
                      Shape{8, 333, 40},
                      Shape{32, 500, 96},  // SIMD32 kernel
                      Shape{32, 33, 64}));

TEST(NdRangeShapes, FunctionalAndTimingAgreeOnRaggedShape)
{
    const Kernel k = storeGid(16);
    Device a, b2;
    const iwc::Addr oa = a.allocBuffer(777 * 4);
    const iwc::Addr ob = b2.allocBuffer(777 * 4);
    a.launch(k, 777, 48, {Arg::buffer(oa)});
    b2.launchFunctional(k, 777, 48, {Arg::buffer(ob)});
    EXPECT_EQ(a.downloadVector<std::uint32_t>(oa, 777),
              b2.downloadVector<std::uint32_t>(ob, 777));
}

} // namespace
