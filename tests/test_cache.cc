/** @file Unit tests for the set-associative cache tag model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace
{

using iwc::Addr;
using iwc::kCacheLineBytes;
using iwc::mem::Cache;

TEST(CacheTest, MissThenHit)
{
    Cache c("t", 8 * 1024, 4);
    EXPECT_FALSE(c.access(0, false, 0).hit);
    EXPECT_TRUE(c.access(0, false, 1).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, LruEviction)
{
    // 2-way, tiny cache: 4 lines, 2 sets.
    Cache c("t", 4 * kCacheLineBytes, 2);
    ASSERT_EQ(c.numSets(), 2u);
    const Addr set0_stride = 2 * kCacheLineBytes;
    // Fill both ways of set 0, then touch a third line: LRU evicted.
    c.access(0 * set0_stride, false, 0);
    c.access(1 * set0_stride, false, 1);
    c.access(0 * set0_stride, false, 2); // refresh line 0
    c.access(2 * set0_stride, false, 3); // evicts line 1
    EXPECT_TRUE(c.access(0 * set0_stride, false, 4).hit);
    EXPECT_FALSE(c.access(1 * set0_stride, false, 5).hit);
}

TEST(CacheTest, DirtyEvictionReported)
{
    Cache c("t", 4 * kCacheLineBytes, 2);
    const Addr stride = 2 * kCacheLineBytes;
    c.access(0, true, 0); // dirty
    c.access(stride, false, 1);
    const auto result = c.access(2 * stride, false, 2);
    EXPECT_TRUE(result.dirtyEviction);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(CacheTest, MshrMergesInFlightMisses)
{
    Cache c("t", 8 * 1024, 4);
    const auto first = c.access(0, false, 0);
    EXPECT_FALSE(first.hit);
    c.noteFill(0, 50);
    // Second access before the fill lands merges with it.
    const auto merged = c.access(0, false, 10);
    EXPECT_FALSE(merged.hit);
    EXPECT_TRUE(merged.mergedMiss);
    EXPECT_EQ(merged.fillReady, 50u);
    // After the fill completes it is a plain hit.
    const auto after = c.access(0, false, 60);
    EXPECT_TRUE(after.hit);
}

TEST(CacheTest, FlushDropsEverything)
{
    Cache c("t", 8 * 1024, 4);
    c.access(0, false, 0);
    c.access(64, false, 0);
    c.flush();
    EXPECT_FALSE(c.access(0, false, 1).hit);
}

TEST(CacheTest, CapacityBehaviour)
{
    // Streaming through 2x the capacity hits nothing on first pass
    // and nothing on the second pass either (capacity misses).
    Cache c("t", 16 * kCacheLineBytes, 4);
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 32 * kCacheLineBytes;
             a += kCacheLineBytes)
            c.access(a, false, 0);
    EXPECT_EQ(c.hits(), 0u);
    // A working set that fits is all hits on the second pass.
    Cache small("t2", 16 * kCacheLineBytes, 4);
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 16 * kCacheLineBytes;
             a += kCacheLineBytes)
            small.access(a, false, 0);
    EXPECT_EQ(small.hits(), 16u);
}

TEST(CacheTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache("bad", 100, 3), ::testing::ExitedWithCode(1),
                "bad geometry");
}

} // namespace
