/**
 * @file
 * Unit and property tests for cycle planning under all four
 * compaction modes, including an exhaustive sweep over every SIMD16
 * execution mask.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "compaction/cycle_plan.hh"

namespace
{

using iwc::LaneMask;
using iwc::popCount;
using iwc::compaction::classifyUtil;
using iwc::compaction::ExecShape;
using iwc::compaction::groupWidth;
using iwc::compaction::Mode;
using iwc::compaction::numGroups;
using iwc::compaction::planCycleCount;
using iwc::compaction::planCycles;
using iwc::compaction::UtilBin;
using iwc::compaction::verifyPlan;

ExecShape
shape16(LaneMask mask, unsigned elem_bytes = 4)
{
    return ExecShape{16, static_cast<std::uint8_t>(elem_bytes), mask};
}

TEST(GroupGeometry, DwordTypesRunFourLanesPerCycle)
{
    EXPECT_EQ(groupWidth(16, 4), 4u);
    EXPECT_EQ(numGroups(16, 4), 4u);
    EXPECT_EQ(groupWidth(8, 4), 4u);
    EXPECT_EQ(numGroups(8, 4), 2u);
    EXPECT_EQ(groupWidth(32, 4), 4u);
    EXPECT_EQ(numGroups(32, 4), 8u);
}

TEST(GroupGeometry, WordTypesRunEightLanesPerCycle)
{
    EXPECT_EQ(groupWidth(16, 2), 8u);
    EXPECT_EQ(numGroups(16, 2), 2u);
}

TEST(GroupGeometry, DoubleTypesRunTwoLanesPerCycle)
{
    EXPECT_EQ(groupWidth(16, 8), 2u);
    EXPECT_EQ(numGroups(16, 8), 8u);
}

TEST(GroupGeometry, GroupNeverWiderThanInstruction)
{
    EXPECT_EQ(groupWidth(4, 2), 4u);
    EXPECT_EQ(numGroups(4, 2), 1u);
}

TEST(Baseline, AlwaysFullCycles)
{
    EXPECT_EQ(planCycleCount(Mode::Baseline, shape16(0xffff)), 4u);
    EXPECT_EQ(planCycleCount(Mode::Baseline, shape16(0x0001)), 4u);
    EXPECT_EQ(planCycleCount(Mode::Baseline, shape16(0x0000)), 4u);
    EXPECT_EQ(planCycleCount(Mode::Baseline, shape16(0xffff, 8)), 8u);
    EXPECT_EQ(planCycleCount(Mode::Baseline, shape16(0xffff, 2)), 2u);
}

// Section 5.2: SIMD16 with the upper or lower eight lanes inactive
// executes as SIMD8.
TEST(IvbOpt, HalfMaskedSimd16RunsAsSimd8)
{
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0x00ff)), 2u);
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0xff00)), 2u);
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0x000f)), 2u);
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0xf000)), 2u);
}

TEST(IvbOpt, OtherPatternsNotOptimized)
{
    // Figure 8: 0xF0F0 and 0xAAAA are NOT helped by the IVB opt.
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0xf0f0)), 4u);
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0xaaaa)), 4u);
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(0xffff)), 4u);
}

TEST(IvbOpt, OnlyAppliesToSimd16)
{
    const ExecShape s8{8, 4, 0x0f};
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, s8), 2u);
    const ExecShape s32{32, 4, 0x0000ffff};
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, s32), 8u);
}

TEST(Bcc, SkipsDeadQuads)
{
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0xf0f0)), 2u);
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0x000f)), 1u);
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0xffff)), 4u);
    // Scattered actives defeat BCC: every quad has one live lane.
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0x1111)), 4u);
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0xaaaa)), 4u);
}

TEST(Bcc, FullyMaskedInstructionTakesZeroCycles)
{
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(0x0000)), 0u);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0x0000)), 0u);
}

TEST(Scc, ReachesOptimalCycles)
{
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0x1111)), 1u);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0xaaaa)), 2u);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0x5555)), 2u);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0xffff)), 4u);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(0x8421)), 1u);
}

// Table 2 of the paper: nested-branch masks and the per-mode savings.
struct Table2Case
{
    LaneMask mask;
    unsigned ivb;
    unsigned bcc;
    unsigned scc;
};

class Table2 : public ::testing::TestWithParam<Table2Case>
{
};

TEST_P(Table2, CycleCountsMatchThePaper)
{
    const auto &c = GetParam();
    EXPECT_EQ(planCycleCount(Mode::IvbOpt, shape16(c.mask)), c.ivb);
    EXPECT_EQ(planCycleCount(Mode::Bcc, shape16(c.mask)), c.bcc);
    EXPECT_EQ(planCycleCount(Mode::Scc, shape16(c.mask)), c.scc);
}

INSTANTIATE_TEST_SUITE_P(
    PaperMasks, Table2,
    ::testing::Values(
        // L1: 0101... -> SCC halves the cycles (50% benefit).
        Table2Case{0x5555, 4, 4, 2},
        Table2Case{0xaaaa, 4, 4, 2},
        // L2: one lane per quad -> SCC gets 1 cycle (75% benefit).
        Table2Case{0x1111, 4, 4, 1},
        Table2Case{0x4444, 4, 4, 1},
        Table2Case{0x8888, 4, 4, 1},
        Table2Case{0x2222, 4, 4, 1},
        // L3: two quads dead -> BCC 2 cycles, SCC 1 (50% + 25%).
        Table2Case{0x0101, 4, 2, 1},
        Table2Case{0x1010, 4, 2, 1},
        Table2Case{0x0404, 4, 2, 1},
        Table2Case{0x4040, 4, 2, 1},
        Table2Case{0x0808, 4, 2, 1},
        Table2Case{0x8080, 4, 2, 1},
        Table2Case{0x0202, 4, 2, 1},
        Table2Case{0x2020, 4, 2, 1},
        // L4: a single active lane -> IVB helps when it is in one
        // half; BCC reaches 1 cycle.
        Table2Case{0x0001, 2, 1, 1},
        Table2Case{0x8000, 2, 1, 1},
        Table2Case{0x0100, 2, 1, 1}));

// Exhaustive property sweep: every SIMD16 mask, every mode.
TEST(Property, AllSimd16MasksOrderAndValidity)
{
    for (std::uint32_t mask = 0; mask <= 0xffff; ++mask) {
        const ExecShape s = shape16(mask);
        const unsigned base = planCycleCount(Mode::Baseline, s);
        const unsigned ivb = planCycleCount(Mode::IvbOpt, s);
        const unsigned bcc = planCycleCount(Mode::Bcc, s);
        const unsigned scc = planCycleCount(Mode::Scc, s);

        // Monotone ordering: each technique subsumes the previous.
        ASSERT_LE(ivb, base) << std::hex << mask;
        ASSERT_LE(bcc, ivb) << std::hex << mask;
        ASSERT_LE(scc, bcc) << std::hex << mask;
        // SCC is optimal.
        ASSERT_EQ(scc, (popCount(mask) + 3) / 4) << std::hex << mask;

        // Full plans agree with the fast counts and are valid
        // schedules (every enabled channel exactly once).
        for (const Mode mode : {Mode::Baseline, Mode::IvbOpt, Mode::Bcc,
                                Mode::Scc}) {
            const auto plan = planCycles(mode, s);
            ASSERT_EQ(plan.cycles(), planCycleCount(mode, s))
                << std::hex << mask << " mode "
                << iwc::compaction::modeName(mode);
            ASSERT_TRUE(verifyPlan(plan, s))
                << std::hex << mask << " mode "
                << iwc::compaction::modeName(mode);
        }
    }
}

// The same properties for word and double element sizes.
class ElemBytesSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ElemBytesSweep, OrderingAndValidityHold)
{
    const unsigned elem_bytes = GetParam();
    const unsigned g = groupWidth(16, elem_bytes);
    for (std::uint32_t mask = 0; mask <= 0xffff; mask += 7) {
        const ExecShape s = shape16(mask & 0xffff, elem_bytes);
        const unsigned base = planCycleCount(Mode::Baseline, s);
        const unsigned ivb = planCycleCount(Mode::IvbOpt, s);
        const unsigned bcc = planCycleCount(Mode::Bcc, s);
        const unsigned scc = planCycleCount(Mode::Scc, s);
        ASSERT_LE(ivb, base);
        ASSERT_LE(bcc, ivb);
        ASSERT_LE(scc, bcc);
        ASSERT_EQ(scc, (popCount(mask & 0xffff) + g - 1) / g);
        const auto plan = planCycles(Mode::Scc, s);
        ASSERT_TRUE(verifyPlan(plan, s)) << std::hex << mask;
    }
}

INSTANTIATE_TEST_SUITE_P(WordDwordDouble, ElemBytesSweep,
                         ::testing::Values(2u, 4u, 8u));

TEST(Property, Simd32MasksSampled)
{
    // SIMD32 instructions: 8 dword groups.
    for (std::uint64_t seed = 1; seed < 4000; ++seed) {
        const LaneMask mask = static_cast<LaneMask>(
            seed * 0x9e3779b97f4a7c15ull >> 32);
        const ExecShape s{32, 4, mask};
        const unsigned scc = planCycleCount(Mode::Scc, s);
        ASSERT_EQ(scc, (popCount(mask) + 3) / 4);
        ASSERT_TRUE(verifyPlan(planCycles(Mode::Scc, s), s));
        ASSERT_TRUE(verifyPlan(planCycles(Mode::Bcc, s), s));
    }
}

TEST(UtilBins, Figure9Classification)
{
    EXPECT_EQ(classifyUtil(16, 0x0003), UtilBin::S16Active1To4);
    EXPECT_EQ(classifyUtil(16, 0x00ff), UtilBin::S16Active5To8);
    EXPECT_EQ(classifyUtil(16, 0x0fff), UtilBin::S16Active9To12);
    EXPECT_EQ(classifyUtil(16, 0xffff), UtilBin::S16Active13To16);
    EXPECT_EQ(classifyUtil(8, 0x03), UtilBin::S8Active1To4);
    EXPECT_EQ(classifyUtil(8, 0xff), UtilBin::S8Active5To8);
    EXPECT_EQ(classifyUtil(16, 0x0000), UtilBin::Other);
    EXPECT_EQ(classifyUtil(32, 0xffffffff), UtilBin::Other);
}

TEST(Plans, BccSuppressesOperandFetchForDeadQuads)
{
    const auto plan = planCycles(Mode::Bcc, shape16(0xf00f));
    EXPECT_EQ(plan.cycles(), 2u);
    EXPECT_EQ(plan.suppressedGroups(), 2u);
    EXPECT_EQ(plan.swizzledLanes(), 0u);
}

TEST(Plans, BaselinePlanHasNoSwizzles)
{
    for (const LaneMask mask : {0xffffu, 0x8421u, 0x0f0fu}) {
        EXPECT_EQ(planCycles(Mode::Baseline, shape16(mask))
                      .swizzledLanes(), 0u);
        EXPECT_EQ(planCycles(Mode::IvbOpt, shape16(mask))
                      .swizzledLanes(), 0u);
        EXPECT_EQ(planCycles(Mode::Bcc, shape16(mask))
                      .swizzledLanes(), 0u);
    }
}

} // namespace
