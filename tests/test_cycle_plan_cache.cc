/**
 * @file
 * PlanCache equivalence: the memoized plan costs must be
 * indistinguishable from the uncached planCycleCount/planScc results
 * for every reachable shape. Exhaustive over the full mask space at
 * the direct-mapped widths (8/16) and randomized for SIMD32, plus
 * hit/miss accounting and the stats::Group plumbing.
 */

#include <random>

#include <gtest/gtest.h>

#include "compaction/cycle_plan.hh"
#include "compaction/plan_cache.hh"
#include "compaction/scc_algorithm.hh"
#include "stats/stats.hh"

namespace iwc::compaction
{
namespace
{

/** The uncached reference, straight from the plan functions. */
PlanCosts
referenceCosts(const ExecShape &shape)
{
    PlanCosts costs;
    for (unsigned m = 0; m < kNumModes; ++m) {
        costs.cycles[m] = static_cast<std::uint16_t>(
            planCycleCount(static_cast<Mode>(m), shape));
    }
    costs.sccSwizzledLanes =
        static_cast<std::uint16_t>(planScc(shape).swizzledLanes());
    return costs;
}

void
expectCostsEqual(const PlanCosts &got, const PlanCosts &want,
                 const ExecShape &shape)
{
    for (unsigned m = 0; m < kNumModes; ++m) {
        ASSERT_EQ(got.cycles[m], want.cycles[m])
            << "mode " << m << " width " << unsigned(shape.simdWidth)
            << " elem " << unsigned(shape.elemBytes) << " mask 0x"
            << std::hex << shape.execMask;
    }
    ASSERT_EQ(got.sccSwizzledLanes, want.sccSwizzledLanes)
        << "width " << unsigned(shape.simdWidth) << " mask 0x"
        << std::hex << shape.execMask;
}

TEST(PlanCacheTest, ExhaustiveSimd8And16MatchesUncached)
{
    for (const unsigned width : {8u, 16u}) {
        for (const unsigned elem_bytes : {2u, 4u, 8u}) {
            PlanCache cache;
            const LaneMask masks = LaneMask{1} << width;
            for (LaneMask mask = 0; mask < masks; ++mask) {
                const ExecShape shape{static_cast<std::uint8_t>(width),
                                      static_cast<std::uint8_t>(elem_bytes),
                                      mask};
                expectCostsEqual(cache.costs(shape),
                                 referenceCosts(shape), shape);
            }
            // The whole mask space again: every query must now hit.
            const std::uint64_t misses_before = cache.misses();
            for (LaneMask mask = 0; mask < masks; ++mask) {
                const ExecShape shape{static_cast<std::uint8_t>(width),
                                      static_cast<std::uint8_t>(elem_bytes),
                                      mask};
                expectCostsEqual(cache.costs(shape),
                                 referenceCosts(shape), shape);
            }
            EXPECT_EQ(cache.misses(), misses_before);
        }
    }
}

TEST(PlanCacheTest, NarrowWidthsMatchUncached)
{
    PlanCache cache;
    for (const unsigned width : {1u, 4u}) {
        for (const unsigned elem_bytes : {2u, 4u, 8u}) {
            const LaneMask masks = LaneMask{1} << width;
            for (LaneMask mask = 0; mask < masks; ++mask) {
                const ExecShape shape{static_cast<std::uint8_t>(width),
                                      static_cast<std::uint8_t>(elem_bytes),
                                      mask};
                expectCostsEqual(cache.costs(shape),
                                 referenceCosts(shape), shape);
            }
        }
    }
}

TEST(PlanCacheTest, RandomizedSimd32MatchesUncached)
{
    std::mt19937 rng(0x5ca1ab1e);
    PlanCache cache;
    for (const unsigned elem_bytes : {2u, 4u, 8u}) {
        for (unsigned i = 0; i < 2000; ++i) {
            // Mix dense, sparse, and structured masks.
            LaneMask mask = rng();
            if (i % 3 == 1)
                mask &= rng();
            if (i % 3 == 2)
                mask |= rng();
            const ExecShape shape{32,
                                  static_cast<std::uint8_t>(elem_bytes),
                                  mask};
            expectCostsEqual(cache.costs(shape), referenceCosts(shape),
                             shape);
            // Re-query through the hash-map path.
            expectCostsEqual(cache.costs(shape), referenceCosts(shape),
                             shape);
        }
    }
    // Boundary masks the random draw may have missed.
    for (const LaneMask mask : {LaneMask{0}, ~LaneMask{0}, LaneMask{1},
                                LaneMask{1} << 31, LaneMask{0xffff0000},
                                LaneMask{0x0000ffff}}) {
        const ExecShape shape{32, 4, mask};
        expectCostsEqual(cache.costs(shape), referenceCosts(shape),
                         shape);
    }
}

TEST(PlanCacheTest, CachedCostsComeFromVerifiedPlans)
{
    // The costs the cache stores are cycle counts of real schedules:
    // materialize the plan behind every (mode, shape) sample and check
    // that it passes verifyPlan and that its length equals the cached
    // cycle count.
    PlanCache cache;
    std::mt19937 rng(0xfeedface);
    for (const unsigned width : {8u, 16u, 32u}) {
        for (unsigned i = 0; i < 200; ++i) {
            const LaneMask mask =
                rng() & laneMaskForWidth(width);
            const ExecShape shape{static_cast<std::uint8_t>(width), 4,
                                  mask};
            const PlanCosts &costs = cache.costs(shape);
            for (unsigned m = 0; m < kNumModes; ++m) {
                const Mode mode = static_cast<Mode>(m);
                const CyclePlan plan = planCycles(mode, shape);
                EXPECT_TRUE(verifyPlan(plan, shape))
                    << "mode " << m << " mask 0x" << std::hex << mask;
                EXPECT_EQ(plan.cycles(), costs.cycles[m]);
            }
        }
    }
}

TEST(PlanCacheTest, HitMissCounters)
{
    PlanCache cache;
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);

    const ExecShape a{16, 4, 0x00ff};
    const ExecShape b{16, 4, 0x0f0f};
    cache.costs(a);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.costs(a);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.costs(b);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);

    // SIMD32 goes through the hash-map path; counters keep counting.
    const ExecShape wide{32, 4, 0xdeadbeef};
    cache.costs(wide);
    cache.costs(wide);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 3u);

    // Same mask, different element size: a distinct entry.
    const ExecShape wide2{32, 8, 0xdeadbeef};
    cache.costs(wide2);
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(PlanCacheTest, WriteToPublishesCounters)
{
    PlanCache cache;
    cache.costs(ExecShape{8, 4, 0x3c});
    cache.costs(ExecShape{8, 4, 0x3c});
    cache.costs(ExecShape{8, 4, 0xff});

    stats::Group group("plan_cache");
    cache.writeTo(group);
    ASSERT_TRUE(group.hasScalar("plan_cache_hits"));
    ASSERT_TRUE(group.hasScalar("plan_cache_misses"));
    EXPECT_EQ(group.getScalar("plan_cache_hits"), 1.0);
    EXPECT_EQ(group.getScalar("plan_cache_misses"), 2.0);
}

} // namespace
} // namespace iwc::compaction
