/**
 * @file
 * Unit tests for the host-SIMD lane kernels (src/func/vector_kernels)
 * against scalar references of the pinned ISA semantics: float ops
 * compute in double and round to float with NaN results canonicalized
 * to the default quiet NaN, min/max are explicit selects (a wins
 * below b or when b is NaN; ties take b), mov/sel are raw bit copies,
 * integer ops wrap mod 2^32, and shifts honor the count-mod-64 rule
 * with its 32..63 saturation. Both dispatch tables are tested: the
 * always-available host table and, where the CPU supports it, the
 * AVX2 table.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "func/vector_kernels.hh"

namespace
{

using namespace iwc;
using func::VecKernelTable;

constexpr unsigned kN = 16;

struct NamedTable
{
    const char *name;
    const VecKernelTable *table;
};

std::vector<NamedTable>
tables()
{
    std::vector<NamedTable> v = {{"host", &func::hostVecKernels()}};
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        v.push_back({"avx2", &func::avx2VecKernels()});
#endif
    return v;
}

/** Float lane soup: NaNs with payloads (quiet + signalling), both-NaN
 *  pairs, signed zeros, infinities, denormals, ordinary values. */
const std::uint32_t kFa[kN] = {
    0x7fc00000u, 0x7fc12345u, 0x7fa00001u, 0xffc00000u,
    0x80000000u, 0x00000000u, 0x7f800000u, 0xff800000u,
    0x00000001u, 0x807fffffu, 0x3f800000u, 0xbf800000u,
    0x7f7fffffu, 0x00800000u, 0x40490fdbu, 0xc2f6e979u,
};
const std::uint32_t kFb[kN] = {
    0x7fc54321u, 0x3f800000u, 0x7fc00000u, 0xffc00001u,
    0x00000000u, 0x80000000u, 0xff800000u, 0x7f800000u,
    0x80000001u, 0x007fffffu, 0xbf800000u, 0x3f800000u,
    0x00800000u, 0x7f7fffffu, 0xc2f6e979u, 0x40490fdbu,
};

/** Integer lane soup: INT_MIN/INT_MAX boundaries and bit patterns. */
const std::uint32_t kIa[kN] = {
    0x80000000u, 0x7fffffffu, 0xffffffffu, 0x00000000u,
    0x00000001u, 0x80000000u, 0x7fffffffu, 0xfffe1dc0u,
    0xdeadbeefu, 0x80000000u, 0x40000000u, 0xfffffffeu,
    0x7fffffffu, 0x00000002u, 0x80000001u, 0x12345678u,
};
/** Doubles as shift counts: 0/1/31/32/33/63/64/-1 and extremes. */
const std::uint32_t kIb[kN] = {
    0xffffffffu, 0x00000001u, 0x80000000u, 0x80000000u,
    0x0000001fu, 0x00000020u, 0x00000021u, 0x0000003fu,
    0x00000040u, 0xffffffffu, 0x00000001u, 0x7fffffffu,
    0x7fffffffu, 0x0000001eu, 0x80000000u, 0x00000000u,
};

const std::uint32_t kFullMask[kN] = {
    ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u,
    ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u,
};

float
asF(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

std::uint32_t
asU(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

/** Canonical f32 quiet NaN every NaN-producing ALU op must yield. */
constexpr std::uint32_t kCanonNan = 0x7fc00000u;

/** Reference for the oracle's float pipeline: widen, op, narrow,
 *  with NaN results canonicalized (pinned semantics — this also
 *  makes the reference immune to compile-time sNaN folding). */
template <typename F>
std::uint32_t
refF(std::uint32_t a, std::uint32_t b, F op)
{
    const double x = asF(a);
    const double y = asF(b);
    const double r = op(x, y);
    if (std::isnan(r))
        return kCanonNan;
    return asU(static_cast<float>(r));
}

template <typename F>
void
checkFloat2(const NamedTable &nt, unsigned op, F ref)
{
    alignas(32) std::uint32_t out[kN] = {};
    nt.table->alu[op](out, kFa, kFb, kFa, kFullMask, kN);
    for (unsigned ch = 0; ch < kN; ++ch)
        EXPECT_EQ(out[ch], refF(kFa[ch], kFb[ch], ref))
            << nt.name << " op " << op << " lane " << ch;
}

TEST(SimdOpsFloat, MinMaxArePinnedSelects)
{
    // Deliberately not libm fmin/fmax, whose tie and NaN ordering
    // rules vary by implementation: a wins below b or when b is NaN,
    // ties take b, and a both-NaN result canonicalizes.
    for (const NamedTable &nt : tables()) {
        checkFloat2(nt, func::kFMin, [](double x, double y) {
            return (x < y || std::isnan(y)) ? x : y;
        });
        checkFloat2(nt, func::kFMax, [](double x, double y) {
            return (x > y || std::isnan(y)) ? x : y;
        });
    }
}

TEST(SimdOpsFloat, ArithmeticMatchesWidenedDoubles)
{
    for (const NamedTable &nt : tables()) {
        checkFloat2(nt, func::kFAdd,
                    [](double x, double y) { return x + y; });
        checkFloat2(nt, func::kFSub,
                    [](double x, double y) { return x - y; });
        checkFloat2(nt, func::kFMul,
                    [](double x, double y) { return x * y; });
        checkFloat2(nt, func::kFAvg,
                    [](double x, double y) { return (x + y) * 0.5; });
        checkFloat2(nt, func::kFDiv,
                    [](double x, double y) { return x / y; });
    }
}

TEST(SimdOpsFloat, MadIsMulThenAddWithoutFmaContraction)
{
    for (const NamedTable &nt : tables()) {
        alignas(32) std::uint32_t out[kN] = {};
        nt.table->alu[func::kFMad](out, kFa, kFb, kFb, kFullMask, kN);
        for (unsigned ch = 0; ch < kN; ++ch) {
            const double x = asF(kFa[ch]);
            const double y = asF(kFb[ch]);
            // Explicit product-then-sum in double; an FMA-contracted
            // kernel would differ on nothing here (the product of two
            // f32-derived doubles is exact), so also pin a case where
            // contraction at f32 precision would show: handled by the
            // widen-to-double pipeline itself.
            const double r = x * y + y;
            const std::uint32_t expect =
                std::isnan(r) ? kCanonNan : asU(static_cast<float>(r));
            EXPECT_EQ(out[ch], expect) << nt.name << " lane " << ch;
        }
    }
}

TEST(SimdOpsFloat, MovIsARawBitCopy)
{
    // Pinned semantics: float mov copies bits verbatim — even the
    // signalling NaN in lane 2 survives with its quiet bit clear.
    // (A widen/narrow roundtrip would be unpinnable: compilers fold
    // it to a raw copy at will under default NaN assumptions.)
    for (const NamedTable &nt : tables()) {
        alignas(32) std::uint32_t out[kN] = {};
        nt.table->alu[func::kFMov](out, kFa, kFa, kFa, kFullMask, kN);
        for (unsigned ch = 0; ch < kN; ++ch)
            EXPECT_EQ(out[ch], kFa[ch]) << nt.name << " lane " << ch;
        EXPECT_EQ(out[2] & 0x00400000u, 0u) << "sNaN must stay raw";
    }
}

template <typename P>
void
checkFloatCmp(const NamedTable &nt, unsigned op, P pred)
{
    const std::uint32_t bits = nt.table->cmp[op](kFa, kFb, kN);
    for (unsigned ch = 0; ch < kN; ++ch) {
        const double x = asF(kFa[ch]);
        const double y = asF(kFb[ch]);
        EXPECT_EQ((bits >> ch) & 1u, pred(x, y) ? 1u : 0u)
            << nt.name << " cmp " << op << " lane " << ch;
    }
}

TEST(SimdOpsFloat, ComparesAreOrderedExceptNotEqual)
{
    for (const NamedTable &nt : tables()) {
        checkFloatCmp(nt, func::kCFEq,
                      [](double x, double y) { return x == y; });
        checkFloatCmp(nt, func::kCFNe,
                      [](double x, double y) { return !(x == y); });
        checkFloatCmp(nt, func::kCFLt,
                      [](double x, double y) { return x < y; });
        checkFloatCmp(nt, func::kCFLe,
                      [](double x, double y) { return x <= y; });
        checkFloatCmp(nt, func::kCFGt,
                      [](double x, double y) { return x > y; });
        checkFloatCmp(nt, func::kCFGe,
                      [](double x, double y) { return x >= y; });
    }
}

template <typename F>
void
checkInt2(const NamedTable &nt, unsigned op, F ref)
{
    alignas(32) std::uint32_t out[kN] = {};
    nt.table->alu[op](out, kIa, kIb, kIa, kFullMask, kN);
    for (unsigned ch = 0; ch < kN; ++ch)
        EXPECT_EQ(out[ch], ref(kIa[ch], kIb[ch]))
            << nt.name << " op " << op << " lane " << ch;
}

TEST(SimdOpsInt, ArithmeticWrapsMod32)
{
    using U = std::uint32_t;
    for (const NamedTable &nt : tables()) {
        checkInt2(nt, func::kIAdd, [](U a, U b) { return a + b; });
        checkInt2(nt, func::kISub, [](U a, U b) { return a - b; });
        checkInt2(nt, func::kIMul, [](U a, U b) { return a * b; });
        checkInt2(nt, func::kIAnd, [](U a, U b) { return a & b; });
        checkInt2(nt, func::kIOr, [](U a, U b) { return a | b; });
        checkInt2(nt, func::kIXor, [](U a, U b) { return a ^ b; });
    }
}

TEST(SimdOpsInt, MinMaxRespectSignedness)
{
    using U = std::uint32_t;
    const auto s = [](U v) { return static_cast<std::int32_t>(v); };
    for (const NamedTable &nt : tables()) {
        checkInt2(nt, func::kIMinS, [&](U a, U b) {
            return static_cast<U>(std::min(s(a), s(b)));
        });
        checkInt2(nt, func::kIMaxS, [&](U a, U b) {
            return static_cast<U>(std::max(s(a), s(b)));
        });
        checkInt2(nt, func::kIMinU,
                  [](U a, U b) { return std::min(a, b); });
        checkInt2(nt, func::kIMaxU,
                  [](U a, U b) { return std::max(a, b); });
    }
}

TEST(SimdOpsInt, ShiftsHonorCountMod64WithSaturationAbove31)
{
    using U = std::uint32_t;
    for (const NamedTable &nt : tables()) {
        checkInt2(nt, func::kIShl, [](U a, U b) {
            const unsigned c = b & 63u;
            return c >= 32 ? 0u : a << c;
        });
        checkInt2(nt, func::kIShrL, [](U a, U b) {
            const unsigned c = b & 63u;
            return c >= 32 ? 0u : a >> c;
        });
        checkInt2(nt, func::kIShrA, [](U a, U b) {
            const auto wide =
                static_cast<std::int64_t>(static_cast<std::int32_t>(a));
            return static_cast<U>(wide >> (b & 63u));
        });
    }
}

TEST(SimdOpsInt, ComparesRespectSignednessAtBoundaries)
{
    using U = std::uint32_t;
    for (const NamedTable &nt : tables()) {
        struct Row
        {
            unsigned op;
            bool (*pred)(U, U);
        };
        const Row rows[] = {
            {func::kCIEq, [](U a, U b) { return a == b; }},
            {func::kCINe, [](U a, U b) { return a != b; }},
            {func::kCILtS,
             [](U a, U b) {
                 return static_cast<std::int32_t>(a) <
                     static_cast<std::int32_t>(b);
             }},
            {func::kCIGeS,
             [](U a, U b) {
                 return static_cast<std::int32_t>(a) >=
                     static_cast<std::int32_t>(b);
             }},
            {func::kCILtU, [](U a, U b) { return a < b; }},
            {func::kCIGtU, [](U a, U b) { return a > b; }},
        };
        for (const Row &row : rows) {
            const std::uint32_t bits =
                nt.table->cmp[row.op](kIa, kIb, kN);
            for (unsigned ch = 0; ch < kN; ++ch)
                EXPECT_EQ((bits >> ch) & 1u,
                          row.pred(kIa[ch], kIb[ch]) ? 1u : 0u)
                    << nt.name << " cmp " << row.op << " lane " << ch;
        }
    }
}

TEST(SimdOps, MaskedStorePreservesInactiveLanes)
{
    alignas(32) std::uint32_t mask[kN];
    alignas(32) std::uint32_t out[kN];
    for (unsigned ch = 0; ch < kN; ++ch) {
        mask[ch] = (ch & 1) ? ~0u : 0u;
        out[ch] = 0xcafe0000u + ch;
    }
    for (const NamedTable &nt : tables()) {
        alignas(32) std::uint32_t dst[kN];
        std::copy(out, out + kN, dst);
        nt.table->alu[func::kIAdd](dst, kIa, kIb, kIa, mask, kN);
        for (unsigned ch = 0; ch < kN; ++ch) {
            const std::uint32_t expect =
                (ch & 1) ? kIa[ch] + kIb[ch] : out[ch];
            EXPECT_EQ(dst[ch], expect)
                << nt.name << " lane " << ch;
        }
    }
}

} // namespace
