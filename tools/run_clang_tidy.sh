#!/usr/bin/env sh
# Runs clang-tidy (configuration in .clang-tidy at the repo root) over
# every first-party translation unit, using the compile commands of an
# existing build directory.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build directory defaults to ./build and must have been configured
# with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the CI job does this; locally,
# re-run cmake with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON once).
# Exits non-zero if clang-tidy reports anything, so it works as a gate.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "error: $build_dir/compile_commands.json not found." >&2
    echo "Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
    exit 2
fi

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" > /dev/null 2>&1; then
    echo "error: $tidy not found in PATH (set CLANG_TIDY to override)." >&2
    exit 2
fi

# First-party sources only: the vendored/third-party code pulled in by
# the build (gtest, benchmark) is not ours to lint.
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
             "$repo_root/examples" "$repo_root/tests" \
             -name '*.cc' | sort)

# shellcheck disable=SC2086 — word splitting of $files is intended.
exec "$tidy" -p "$build_dir" --quiet $files
