/**
 * @file
 * Driver for the control-flow melder (src/xform): per-branch verdict
 * reports, before/after disassembly, the functional differential gate,
 * and the corpus sweep that measures how static melding composes with
 * the hardware compaction modes.
 *
 *   iwc_meld all=1 [json=1]              # meld report for every kernel
 *   iwc_meld workload=<name> [disasm=1]  # one kernel, optionally code
 *   iwc_meld workload=<name> diff=1      # functional differential gate
 *   iwc_meld all=1 diff=1                # ... over the whole corpus
 *   iwc_meld sweep=1 [jobs=N] [csv=1]    # 4 modes x {unmelded, melded}
 *
 * Common options: scale=N, uniform=1 (also meld lattice-uniform
 * diamonds), max_arm=N (per-arm instruction ceiling). diff honors
 * backend=scalar|vector (default: both). Unknown key=value arguments
 * are rejected with a usage error (matching iwc_sim).
 *
 * Exit status: 0 when nothing failed — reports clean (no reverts),
 * every differential identical, sweep completed.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "gpu/device.hh"
#include "isa/disasm.hh"
#include "run/experiment.hh"
#include "run/run.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"
#include "xform/diff.hh"
#include "xform/meld.hh"

namespace
{

using namespace iwc;

int
usage()
{
    std::puts(
        "usage: iwc_meld <all=1 | workload=name> [scale=N] [json=1]"
        " [disasm=1] [diff=1]"
        "\n       iwc_meld sweep=1 [scale=N] [jobs=N] [csv=1]"
        "\n  all=1       process every registered workload"
        "\n  workload=   process one workload by registry name"
        "\n  scale=N     workload scale factor (default 1)"
        "\n  json=1      machine-readable meld reports"
        "\n  disasm=1    print original and melded disassembly"
        "\n  diff=1      functional differential gate: execute original"
        "\n              and melded kernels, compare memory streams,"
        "\n              final memory, and reference checks"
        "\n  backend=    scalar|vector for diff (default: both)"
        "\n  sweep=1     EU-cycle table: 4 compaction modes x"
        " {unmelded, melded}"
        "\n  uniform=1   also meld lattice-uniform diamonds"
        "\n  max_arm=N   per-arm instruction ceiling (default 48)"
        "\n  jobs=N      sweep worker threads; progress=1; csv=1");
    return 1;
}

xform::MeldOptions
meldOptions(const OptionMap &opts)
{
    xform::MeldOptions options;
    options.meldUniform = opts.getBool("uniform", false);
    options.maxArmLen =
        static_cast<unsigned>(opts.getInt("max_arm", 48));
    return options;
}

/** Meld one kernel and print the report; true when it needs no alarm. */
bool
reportOne(const std::string &name, unsigned scale,
          const xform::MeldOptions &options, bool json, bool disasm)
{
    gpu::Device dev;
    const workloads::Workload w = workloads::make(name, dev, scale);
    const xform::MeldResult melded = xform::meldKernel(w.kernel, options);

    if (json) {
        std::fputs(xform::renderMeldJson(melded.report).c_str(), stdout);
        std::fputs("\n", stdout);
    } else {
        std::fputs(xform::renderMeld(melded.report).c_str(), stdout);
        if (disasm && melded.changed) {
            std::printf("--- original %s ---\n%s", name.c_str(),
                        isa::kernelToString(w.kernel).c_str());
            std::printf("--- melded %s ---\n%s", name.c_str(),
                        isa::kernelToString(melded.kernel).c_str());
        }
    }
    return melded.report.valid && !melded.report.reverted;
}

/** Differential gate under one backend; true when bit-identical. */
bool
diffOne(const std::string &name, unsigned scale,
        func::BackendKind backend, const xform::MeldOptions &options)
{
    const xform::MeldDiff diff =
        xform::runMeldDiff(name, scale, backend, options);
    std::printf(
        "%-18s %-6s  melds %u  instrs %llu -> %llu  %s\n", name.c_str(),
        func::backendKindName(backend), diff.meldedBranches,
        static_cast<unsigned long long>(diff.instrsOriginal),
        static_cast<unsigned long long>(diff.instrsMelded),
        diff.identical() ? "IDENTICAL" : "MISMATCH");
    if (!diff.identical()) {
        std::printf("  mem stream %016llx vs %016llx, final mem %016llx "
                    "vs %016llx, check %d/%d, reverted %d\n",
                    static_cast<unsigned long long>(
                        diff.memStreamOriginal),
                    static_cast<unsigned long long>(diff.memStreamMelded),
                    static_cast<unsigned long long>(diff.finalMemOriginal),
                    static_cast<unsigned long long>(diff.finalMemMelded),
                    diff.checkOriginal, diff.checkMelded,
                    diff.report.reverted);
    }
    return diff.identical();
}

int
runSweep(const OptionMap &opts, unsigned scale)
{
    const std::vector<std::string> names = workloads::allNames();

    // One FunctionalTrace analysis per (workload, melded) pair answers
    // all four compaction modes at once; the sweep runner dedups the
    // rest and parallelizes across jobs=N threads.
    std::vector<run::RunRequest> requests;
    for (const std::string &name : names) {
        for (const bool meld : {false, true}) {
            run::RunRequest request =
                run::RunRequest::functionalTrace(name, scale);
            request.meld = meld;
            requests.push_back(std::move(request));
        }
    }
    run::SweepRunner runner(run::sweepOptions(opts));
    const std::vector<run::RunResult> results = runner.run(requests);

    const xform::MeldOptions options = meldOptions(opts);
    stats::Table table({"workload", "melds", "base", "base+meld",
                        "ivb", "ivb+meld", "bcc", "bcc+meld", "scc",
                        "scc+meld", "ivb \xce\x94"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const trace::TraceAnalysis &plain = results[2 * i].analysis;
        const trace::TraceAnalysis &melded =
            results[2 * i + 1].analysis;

        // The sweep requests never materialize the meld report, so
        // recompute the (cheap, static) branch count for the table.
        gpu::Device dev;
        const workloads::Workload w =
            workloads::make(names[i], dev, scale);
        const unsigned melds =
            xform::meldKernel(w.kernel, options).report.meldedBranches();

        table.row().cell(names[i]).cell(melds);
        for (const compaction::Mode mode :
             {compaction::Mode::Baseline, compaction::Mode::IvbOpt,
              compaction::Mode::Bcc, compaction::Mode::Scc})
            table.cell(plain.cycles(mode)).cell(melded.cycles(mode));
        const double ivb =
            static_cast<double>(plain.cycles(compaction::Mode::IvbOpt));
        const double ivb_meld = static_cast<double>(
            melded.cycles(compaction::Mode::IvbOpt));
        table.cellPct(ivb > 0 ? 1.0 - ivb_meld / ivb : 0.0);
    }
    run::printTable(table,
                    "EU cycles: compaction mode x static melding",
                    opts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const std::vector<std::string> unknown = opts.unknownKeys(
        {"all", "workload", "scale", "json", "disasm", "diff",
         "backend", "sweep", "uniform", "max_arm", "jobs", "progress",
         "csv"});
    if (!unknown.empty()) {
        for (const std::string &key : unknown)
            std::fprintf(stderr, "iwc_meld: unknown option '%s'\n",
                         key.c_str());
        return usage();
    }

    const auto scale = static_cast<unsigned>(opts.getInt("scale", 1));
    if (opts.getBool("sweep", false))
        return runSweep(opts, scale);

    const bool all = opts.getBool("all", false);
    const std::string one = opts.getString("workload", "");
    if (!all && one.empty())
        return usage();

    std::vector<std::string> names;
    if (all)
        names = workloads::allNames();
    else
        names.push_back(one);

    const xform::MeldOptions options = meldOptions(opts);

    if (opts.getBool("diff", false)) {
        std::vector<func::BackendKind> backends;
        const std::string backend = opts.getString("backend", "");
        if (backend.empty()) {
            backends = {func::BackendKind::Scalar,
                        func::BackendKind::Vector};
        } else {
            func::BackendKind kind = func::BackendKind::Auto;
            if (!func::parseBackendKind(backend, kind))
                return usage();
            backends = {kind};
        }
        unsigned mismatches = 0;
        for (const std::string &name : names)
            for (const func::BackendKind kind : backends)
                mismatches += !diffOne(name, scale, kind, options);
        std::printf("%zu differential run(s), %u mismatch(es)\n",
                    names.size() * backends.size(), mismatches);
        return mismatches == 0 ? 0 : 1;
    }

    const bool json = opts.getBool("json", false);
    const bool disasm = opts.getBool("disasm", false);
    unsigned dirty = 0;
    for (const std::string &name : names)
        dirty += !reportOne(name, scale, options, json, disasm);
    if (!json) {
        std::printf("%zu kernel(s) processed, %u with meld failures\n",
                    names.size(), dirty);
    }
    return dirty == 0 ? 0 : 1;
}
