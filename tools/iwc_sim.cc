/**
 * @file
 * Command-line simulator driver: run any workload of the suite on any
 * machine configuration and print the full statistics dump — the tool
 * a downstream user reaches for first.
 *
 *   iwc_sim list=1                       # show available workloads
 *   iwc_sim workload=bfs                 # run one workload (ivb-opt)
 *   iwc_sim workload=bfs mode=scc dc=2 perfect_l3=1 scale=2
 *   iwc_sim workload=bfs compare=1       # run all four modes
 *   iwc_sim workload=bfs compare=1 jobs=4  # ... on four threads
 *   iwc_sim workload=bfs check=1         # also verify vs CPU reference
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hh"
#include "gpu/device.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

void
printStats(const gpu::LaunchStats &stats)
{
    using compaction::Mode;
    std::printf("  total cycles          : %llu\n",
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("  workgroups / threads  : %u / %llu\n",
                stats.workgroups,
                static_cast<unsigned long long>(stats.threads));
    std::printf("  instructions          : %llu (alu %llu, send %llu, "
                "ctrl %llu)\n",
                static_cast<unsigned long long>(stats.eu.instructions),
                static_cast<unsigned long long>(
                    stats.eu.aluInstructions),
                static_cast<unsigned long long>(
                    stats.eu.sendInstructions),
                static_cast<unsigned long long>(
                    stats.eu.ctrlInstructions));
    std::printf("  SIMD efficiency       : %.1f%%\n",
                stats.simdEfficiency() * 100);
    std::printf("  EU cycles base/ivb    : %llu / %llu\n",
                static_cast<unsigned long long>(
                    stats.eu.euCycles(Mode::Baseline)),
                static_cast<unsigned long long>(
                    stats.eu.euCycles(Mode::IvbOpt)));
    std::printf("  EU-cycle reduction    : bcc %.1f%%, scc %.1f%% "
                "(vs ivb-opt)\n",
                stats.euCycleReduction(Mode::Bcc) * 100,
                stats.euCycleReduction(Mode::Scc) * 100);
    std::printf("  FPU / EM busy cycles  : %llu / %llu\n",
                static_cast<unsigned long long>(stats.fpuBusyCycles),
                static_cast<unsigned long long>(stats.emBusyCycles));
    std::printf("  mem messages / lines  : %llu / %llu "
                "(%.2f lines/msg)\n",
                static_cast<unsigned long long>(stats.eu.memMessages),
                static_cast<unsigned long long>(stats.eu.memLines),
                stats.avgLinesPerMessage);
    std::printf("  L3 hits/misses        : %llu / %llu\n",
                static_cast<unsigned long long>(stats.l3Hits),
                static_cast<unsigned long long>(stats.l3Misses));
    std::printf("  LLC hits/misses       : %llu / %llu\n",
                static_cast<unsigned long long>(stats.llcHits),
                static_cast<unsigned long long>(stats.llcMisses));
    std::printf("  DRAM lines            : %llu\n",
                static_cast<unsigned long long>(stats.dramLines));
    std::printf("  DC throughput         : %.3f lines/cycle\n",
                stats.dcThroughput());
    std::printf("  SLM accesses          : %llu\n",
                static_cast<unsigned long long>(stats.slmAccesses));
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);

    if (opts.getBool("list", false) || !opts.has("workload")) {
        std::puts("usage: iwc_sim workload=<name> [mode=baseline|ivb|"
                  "bcc|scc] [scale=N] [compare=1] [check=1]");
        std::puts("       plus machine overrides: eus= threads= dc= "
                  "perfect_l3= issue_width= arb_period= dram_latency= "
                  "l3_kb= llc_kb=\n");
        std::puts("workloads:");
        for (const auto &entry : workloads::registry())
            std::printf("  %-18s %s%s\n", entry.name,
                        entry.description,
                        entry.expectDivergent ? " [divergent]" : "");
        return opts.has("workload") ? 0 : 1;
    }

    const std::string name = opts.getString("workload", "");
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const bool check = opts.getBool("check", false);

    // compare=1 sweeps all four modes; otherwise one mode. Either way
    // the runs go through the sweep harness (jobs=N parallelizes the
    // compare sweep; printing stays in submission order).
    std::vector<compaction::Mode> modes;
    if (opts.getBool("compare", false))
        modes = {compaction::Mode::Baseline, compaction::Mode::IvbOpt,
                 compaction::Mode::Bcc, compaction::Mode::Scc};
    else
        modes = {gpu::parseMode(opts.getString("mode", "ivb"))};

    std::vector<run::RunRequest> requests;
    for (const compaction::Mode mode : modes) {
        run::RunRequest request = run::RunRequest::timing(
            name, gpu::applyOptions(gpu::ivbConfig(mode), opts),
            scale);
        request.checkOutput = check;
        requests.push_back(std::move(request));
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const run::RunResult &result = results[i];
        std::printf("%s under %s:\n", name.c_str(),
                    compaction::modeName(modes[i]));
        printStats(result.stats);
        if (result.checked) {
            std::printf("  reference check       : %s\n",
                        result.checkOk ? "PASS" : "FAIL");
            ok = result.checkOk && ok;
        }
        if (results.size() > 1)
            std::puts("");
    }
    return ok ? 0 : 1;
}
