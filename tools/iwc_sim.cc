/**
 * @file
 * Command-line simulator driver: run any workload of the suite on any
 * machine configuration and print the full statistics dump — the tool
 * a downstream user reaches for first.
 *
 *   iwc_sim list=1                       # show available workloads
 *   iwc_sim workload=bfs                 # run one workload (ivb-opt)
 *   iwc_sim workload=bfs mode=scc dc=2 perfect_l3=1 scale=2
 *   iwc_sim workload=bfs compare=1       # run all four modes
 *   iwc_sim workload=bfs compare=1 jobs=4  # ... on four threads
 *   iwc_sim workload=bfs check=1         # also verify vs CPU reference
 *   iwc_sim workload=bfs meld=1          # meld divergent branches first
 *
 * Unknown key=value arguments are rejected with a usage error so a
 * typo'd key cannot silently run with defaults.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "func/vector_kernels.hh"
#include "gpu/device.hh"
#include "obs/chrome_trace.hh"
#include "obs/profile.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

void
printStats(const gpu::LaunchStats &stats)
{
    using compaction::Mode;
    std::printf("  total cycles          : %llu\n",
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("  workgroups / threads  : %u / %llu\n",
                stats.workgroups,
                static_cast<unsigned long long>(stats.threads));
    std::printf("  instructions          : %llu (alu %llu, send %llu, "
                "ctrl %llu)\n",
                static_cast<unsigned long long>(stats.eu.instructions),
                static_cast<unsigned long long>(
                    stats.eu.aluInstructions),
                static_cast<unsigned long long>(
                    stats.eu.sendInstructions),
                static_cast<unsigned long long>(
                    stats.eu.ctrlInstructions));
    std::printf("  SIMD efficiency       : %.1f%%\n",
                stats.simdEfficiency() * 100);
    std::printf("  EU cycles base/ivb    : %llu / %llu\n",
                static_cast<unsigned long long>(
                    stats.eu.euCycles(Mode::Baseline)),
                static_cast<unsigned long long>(
                    stats.eu.euCycles(Mode::IvbOpt)));
    std::printf("  EU-cycle reduction    : bcc %.1f%%, scc %.1f%% "
                "(vs ivb-opt)\n",
                stats.euCycleReduction(Mode::Bcc) * 100,
                stats.euCycleReduction(Mode::Scc) * 100);
    std::printf("  FPU / EM busy cycles  : %llu / %llu\n",
                static_cast<unsigned long long>(stats.fpuBusyCycles),
                static_cast<unsigned long long>(stats.emBusyCycles));
    std::printf("  mem messages / lines  : %llu / %llu "
                "(%.2f lines/msg)\n",
                static_cast<unsigned long long>(stats.eu.memMessages),
                static_cast<unsigned long long>(stats.eu.memLines),
                stats.avgLinesPerMessage);
    std::printf("  L3 hits/misses        : %llu / %llu\n",
                static_cast<unsigned long long>(stats.l3Hits),
                static_cast<unsigned long long>(stats.l3Misses));
    std::printf("  LLC hits/misses       : %llu / %llu\n",
                static_cast<unsigned long long>(stats.llcHits),
                static_cast<unsigned long long>(stats.llcMisses));
    std::printf("  DRAM lines            : %llu\n",
                static_cast<unsigned long long>(stats.dramLines));
    std::printf("  DC throughput         : %.3f lines/cycle\n",
                stats.dcThroughput());
    std::printf("  SLM accesses          : %llu\n",
                static_cast<unsigned long long>(stats.slmAccesses));
    std::printf("  plan cache hit/miss   : %llu / %llu\n",
                static_cast<unsigned long long>(stats.planCacheHits),
                static_cast<unsigned long long>(stats.planCacheMisses));
    std::printf("  idle cycles skipped   : %llu (in %llu jumps)\n",
                static_cast<unsigned long long>(
                    stats.idleCyclesSkipped),
                static_cast<unsigned long long>(stats.idleSkips));
}

/** "out.json" + "scc" -> "out.scc.json" (multi-mode artifact names). */
std::string
withModeSuffix(const std::string &path, const std::string &mode,
               bool multi)
{
    if (!multi)
        return path;
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || path.find('/', dot) != std::string::npos)
        return path + "." + mode;
    return path.substr(0, dot) + "." + mode + path.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);

    const std::vector<std::string> unknown = opts.unknownKeys(
        {"list", "workload", "mode", "scale", "compare", "check",
         "meld", "jobs", "progress", "trace_out", "profile",
         "trace_capacity", "backend", "engine", "eus", "threads", "dc",
         "perfect_l3", "issue_width", "arb_period", "dram_latency",
         "l3_kb", "llc_kb"});
    for (const std::string &key : unknown)
        std::fprintf(stderr, "iwc_sim: unknown option '%s'\n",
                     key.c_str());

    if (!unknown.empty() || opts.getBool("list", false) ||
        !opts.has("workload")) {
        std::puts("usage: iwc_sim workload=<name> [mode=baseline|ivb|"
                  "bcc|scc] [scale=N] [compare=1] [check=1] [meld=1]");
        std::puts("       tracing: trace_out=<file.json> (Chrome trace) "
                  "profile=<prefix> (occupancy CSV + hotspot report)");
        std::puts("       backend=auto|scalar|vector selects the "
                  "functional execution backend (or set IWC_BACKEND)");
        std::puts("       meld=1 runs the control-flow melder over the "
                  "kernel before simulating");
        std::puts("       plus machine overrides: eus= threads= dc= "
                  "perfect_l3= issue_width= arb_period= dram_latency= "
                  "l3_kb= llc_kb=\n");
        if (!unknown.empty())
            return 1;
        std::puts("workloads:");
        for (const auto &entry : workloads::registry())
            std::printf("  %-18s %s%s\n", entry.name,
                        entry.description,
                        entry.expectDivergent ? " [divergent]" : "");
        return opts.has("workload") ? 0 : 1;
    }

    const std::string name = opts.getString("workload", "");
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const bool check = opts.getBool("check", false);

    // compare=1 sweeps all four modes; otherwise one mode. Either way
    // the runs go through the sweep harness (jobs=N parallelizes the
    // compare sweep; printing stays in submission order).
    std::vector<compaction::Mode> modes;
    if (opts.getBool("compare", false))
        modes = {compaction::Mode::Baseline, compaction::Mode::IvbOpt,
                 compaction::Mode::Bcc, compaction::Mode::Scc};
    else
        modes = {gpu::parseMode(opts.getString("mode", "ivb"))};

    const std::string trace_out = opts.getString("trace_out", "");
    const std::string profile = opts.getString("profile", "");
    const bool tracing = !trace_out.empty() || !profile.empty();

    std::vector<run::RunRequest> requests;
    for (const compaction::Mode mode : modes) {
        run::RunRequest request = run::RunRequest::timing(
            name, gpu::applyOptions(gpu::ivbConfig(mode), opts),
            scale);
        request.checkOutput = check;
        request.meld = opts.getBool("meld", false);
        request.trace = tracing;
        request.traceCapacity = static_cast<std::size_t>(
            opts.getInt("trace_capacity", 0));
        requests.push_back(std::move(request));
    }

    // The exporters can name slices/hotspots by disassembly; build the
    // workload once on a throwaway device just to hold its kernel.
    std::unique_ptr<gpu::Device> naming_dev;
    std::unique_ptr<workloads::Workload> naming_w;
    if (tracing) {
        naming_dev = std::make_unique<gpu::Device>();
        naming_w = std::make_unique<workloads::Workload>(
            workloads::make(name, *naming_dev, scale));
    }

    const func::BackendKind resolved_backend = func::resolveBackendKind(
        requests.front().config.eu.backend);
    std::printf("execution backend: %s",
                func::backendKindName(resolved_backend));
    if (resolved_backend == func::BackendKind::Vector)
        std::printf(" (%s lane kernels)", func::activeVecKernelIsa());
    std::puts("");

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const run::RunResult &result = results[i];
        std::printf("%s under %s:\n", name.c_str(),
                    compaction::modeName(modes[i]));
        printStats(result.stats);
        if (result.checked) {
            std::printf("  reference check       : %s\n",
                        result.checkOk ? "PASS" : "FAIL");
            ok = result.checkOk && ok;
        }
        if (result.events) {
            const std::vector<obs::Event> events =
                result.events->collect();
            const std::string mode = compaction::modeName(modes[i]);
            const bool multi = results.size() > 1;
            if (result.events->totalDropped() != 0)
                std::printf("  trace events dropped  : %llu (raise "
                            "trace_capacity=)\n",
                            static_cast<unsigned long long>(
                                result.events->totalDropped()));
            if (!trace_out.empty()) {
                const std::string path =
                    withModeSuffix(trace_out, mode, multi);
                obs::ChromeTraceOptions trace_opts;
                trace_opts.kernel = &naming_w->kernel;
                obs::writeChromeTraceFile(path, events, trace_opts);
                std::printf("  trace written         : %s\n",
                            path.c_str());
            }
            if (!profile.empty()) {
                const auto occ = obs::computeOccupancy(
                    events, result.stats.totalCycles,
                    requests[i].config.numEus);
                const obs::RunCounters counters{
                    result.stats.planCacheHits,
                    result.stats.planCacheMisses,
                    result.stats.idleCyclesSkipped,
                    result.stats.idleSkips,
                    result.events->totalDropped()};
                const std::string csv = withModeSuffix(
                    profile + ".occupancy.csv", mode, multi);
                std::ofstream csv_os(csv);
                fatal_if(!csv_os, "cannot open %s", csv.c_str());
                obs::writeOccupancyCsv(csv_os, occ,
                                       result.stats.totalCycles,
                                       counters);
                const std::string hot = withModeSuffix(
                    profile + ".hotspots.txt", mode, multi);
                std::ofstream hot_os(hot);
                fatal_if(!hot_os, "cannot open %s", hot.c_str());
                obs::writeHotspotReport(hot_os,
                                        obs::computeHotspots(events),
                                        &naming_w->kernel, 0,
                                        result.events->totalDropped());
                std::printf("  profile written       : %s, %s\n",
                            csv.c_str(), hot.c_str());
            }
        }
        if (results.size() > 1)
            std::puts("");
    }
    return ok ? 0 : 1;
}
