#!/bin/sh
# Compares a fresh bench/perf_smoke result file against the checked-in
# baseline and reports per-metric deltas. Exits 1 if any throughput
# metric (cycles_per_sec, speedup) regressed by more than the
# tolerance — CI runs this step with continue-on-error, so a
# regression warns without failing the build (shared runners are far
# too noisy for a hard perf gate; see docs/perf.md).
#
#   tools/bench_diff.sh BENCH_results.json new.json [tolerance_pct]
set -eu

baseline="${1:?usage: bench_diff.sh baseline.json new.json [tol_pct]}"
fresh="${2:?usage: bench_diff.sh baseline.json new.json [tol_pct]}"
tol="${3:-25}"

# Flattens the known perf_smoke JSON shape (one "key": value pair per
# line, objects delimited by braces) into "id metric value" rows.
flatten() {
    awk '
        /"driver"/   { gsub(/[",]/, "", $2); driver = $2; variant = "-" }
        /"backend"/  { gsub(/[",]/, "", $2); variant = $2 }
        /"workload"/ { gsub(/[",]/, "", $2); variant = $2 }
        /"cycles_per_sec"|"events_per_sec"|"speedup"|"records_per_sec"/ {
            metric = $1; gsub(/[":]/, "", metric)
            value = $2; gsub(/,/, "", value)
            print driver "/" variant, metric, value
        }
    ' "$1"
}

tmp_base=$(mktemp); tmp_new=$(mktemp)
trap 'rm -f "$tmp_base" "$tmp_new"' EXIT
flatten "$baseline" > "$tmp_base"
flatten "$fresh" > "$tmp_new"

status=0
while read -r id metric new_value; do
    base_value=$(awk -v id="$id" -v m="$metric" \
        '$1 == id && $2 == m { print $3 }' "$tmp_base")
    if [ -z "$base_value" ]; then
        echo "NEW   $id $metric=$new_value (no baseline)"
        continue
    fi
    verdict=$(awk -v b="$base_value" -v n="$new_value" -v t="$tol" '
        BEGIN {
            delta = b > 0 ? (n - b) / b * 100 : 0
            printf "%+.1f%% %s", delta, (delta < -t ? "REGRESSED" : "ok")
        }')
    echo "$id $metric: $base_value -> $new_value ($verdict)"
    case "$verdict" in *REGRESSED*) status=1 ;; esac
done < "$tmp_new"

[ "$status" -eq 0 ] || echo "warning: perf regression beyond ${tol}%" \
    "tolerance (informational; rerun on quiet hardware before acting)"
exit "$status"
