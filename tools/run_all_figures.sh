#!/usr/bin/env bash
# Smoke-runs every bench driver (the full figure/table reproduction)
# at scale=1 with CSV output through the parallel sweep harness, and
# iwc_sim's four-mode compare path. Fails on the first non-zero exit.
#
# Usage: run_all_figures.sh [build_dir] [jobs]
#   build_dir  CMake build tree holding bench/ and tools/ (default: build)
#   jobs       SweepRunner worker count (default: 0 = hardware threads)
#
# Wired into CTest as the "figures-smoke" test (see bench/CMakeLists.txt).

set -u

build_dir=${1:-build}
jobs=${2:-0}

if [ ! -d "$build_dir/bench" ]; then
    echo "run_all_figures: no bench/ under '$build_dir' (build first:" \
         "cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
fi

failures=0
run_one() {
    local label=$1
    shift
    echo "=== $label: $*" >&2
    if ! "$@" > /dev/null; then
        echo "FAIL: $label" >&2
        failures=$((failures + 1))
    fi
}

drivers="
fig03_simd_efficiency
fig08_ivb_microbench
tab02_nested_branches
fig09_utilization
fig10_cycle_reduction
fig11_raytracing
fig12_rodinia
tab04_summary
rf_area_model
comparison_interwarp
energy_model
ablation_scc_policy
ablation_issue_bw
ablation_simd_width
ablation_datatypes
"

for driver in $drivers; do
    run_one "$driver" "$build_dir/bench/$driver" scale=1 csv=1 "jobs=$jobs"
done

# google-benchmark driver: takes benchmark flags, not key=value options.
run_one microbench_components "$build_dir/bench/microbench_components" \
    --benchmark_filter='BM_SweepRunnerDispatch|BM_PlanCycleCount' \
    --benchmark_min_time=0.02

# The downstream CLI, four-mode compare with reference checking.
run_one iwc_sim "$build_dir/tools/iwc_sim" workload=bfs compare=1 \
    check=1 scale=1 "jobs=$jobs"

if [ "$failures" -ne 0 ]; then
    echo "run_all_figures: $failures driver(s) failed" >&2
    exit 1
fi
echo "run_all_figures: all drivers passed" >&2
