/**
 * @file
 * Static kernel linter: runs the src/lint verifier (structure,
 * def-before-use, widths/regions, send descriptors, self-hazards,
 * unreachable code) and the static divergence analyzer over workload
 * kernels, without simulating anything.
 *
 *   iwc_lint all=1 [scale=N] [json=1] [divergence=1] [macro=1]
 *   iwc_lint workload=<name> [scale=N] [json=1] [divergence=1] [macro=1]
 *
 * Exit status is 0 when every checked kernel is clean, 1 otherwise —
 * usable as a CI gate over the whole registered corpus.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "gpu/device.hh"
#include "lint/divergence.hh"
#include "lint/macro.hh"
#include "lint/verifier.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

int
usage()
{
    std::puts(
        "usage: iwc_lint <all=1 | workload=name> [scale=N] [json=1]"
        " [divergence=1] [macro=1]"
        "\n  all=1        lint every registered workload"
        "\n  workload=    lint one workload by registry name"
        "\n  scale=N      workload scale factor (default 1)"
        "\n  json=1       machine-readable output"
        "\n  divergence=1 also print the branch divergence analysis"
        "\n  macro=1      also print macro-steppable regions (mask-"
        "stable runs\n               classified by the divergence "
        "lattice)");
    return 1;
}

struct KernelResult
{
    lint::Report report;
    lint::DivergenceReport divergence;
    lint::MacroReport macro;
};

KernelResult
lintOne(const std::string &name, unsigned scale, bool want_divergence,
        bool want_macro, bool json)
{
    gpu::Device dev;
    const workloads::Workload w = workloads::make(name, dev, scale);

    KernelResult result;
    result.report = lint::verify(w.kernel);
    if (want_divergence && !result.report.hasErrors()) {
        result.divergence = lint::analyzeDivergence(
            w.kernel, {w.globalSize, w.localSize});
    }
    if (want_macro && !result.report.hasErrors()) {
        result.macro = lint::analyzeMacroRegions(
            w.kernel, {w.globalSize, w.localSize});
    }

    if (json) {
        std::fputs(lint::renderJson(result.report).c_str(), stdout);
        std::fputs("\n", stdout);
    } else {
        std::fputs(lint::renderText(result.report, &w.kernel).c_str(),
                   stdout);
        if (want_divergence && !result.report.hasErrors()) {
            std::fputs(
                lint::renderDivergence(result.divergence, &w.kernel)
                    .c_str(),
                stdout);
        }
        if (want_macro && !result.report.hasErrors()) {
            std::fputs(
                lint::renderMacroReport(result.macro, &w.kernel)
                    .c_str(),
                stdout);
        }
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const bool all = opts.getBool("all", false);
    const std::string one = opts.getString("workload", "");
    if (!all && one.empty())
        return usage();

    const auto scale = static_cast<unsigned>(opts.getInt("scale", 1));
    const bool json = opts.getBool("json", false);
    const bool divergence = opts.getBool("divergence", false);
    const bool macro = opts.getBool("macro", false);

    std::vector<std::string> names;
    if (all)
        names = workloads::allNames();
    else
        names.push_back(one);

    unsigned dirty = 0;
    for (const std::string &name : names) {
        const KernelResult result =
            lintOne(name, scale, divergence, macro, json);
        dirty += !result.report.clean();
    }
    if (!json) {
        std::printf("%zu kernel(s) checked, %u with diagnostics\n",
                    names.size(), dirty);
    }
    return dirty == 0 ? 0 : 1;
}
