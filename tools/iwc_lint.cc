/**
 * @file
 * Static kernel linter: runs the src/lint verifier (structure,
 * def-before-use, widths/regions, send descriptors, self-hazards,
 * unreachable code) and the static divergence analyzer over workload
 * kernels, without simulating anything.
 *
 *   iwc_lint all=1 [scale=N] [json=1] [divergence=1] [macro=1] [meld=1]
 *   iwc_lint workload=<name> [scale=N] [json=1] [divergence=1] [macro=1]
 *            [meld=1]
 *
 * Exit status is 0 when every checked kernel is clean, 1 otherwise —
 * usable as a CI gate over the whole registered corpus. Unknown
 * key=value arguments are rejected with a usage error (matching
 * iwc_sim) so a typo'd key cannot silently lint with defaults.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "gpu/device.hh"
#include "lint/divergence.hh"
#include "lint/macro.hh"
#include "lint/verifier.hh"
#include "workloads/registry.hh"
#include "xform/meld.hh"

namespace
{

using namespace iwc;

int
usage()
{
    std::puts(
        "usage: iwc_lint <all=1 | workload=name> [scale=N] [json=1]"
        " [divergence=1] [macro=1] [meld=1]"
        "\n  all=1        lint every registered workload"
        "\n  workload=    lint one workload by registry name"
        "\n  scale=N      workload scale factor (default 1)"
        "\n  json=1       machine-readable output"
        "\n  divergence=1 also print the branch divergence analysis"
        "\n  macro=1      also print macro-steppable regions (mask-"
        "stable runs\n               classified by the divergence "
        "lattice)"
        "\n  meld=1       also run the control-flow melder (src/xform)"
        "\n               and print its per-branch verdicts");
    return 1;
}

struct KernelResult
{
    lint::Report report;
    lint::DivergenceReport divergence;
    lint::MacroReport macro;
    xform::MeldReport meld;
};

KernelResult
lintOne(const std::string &name, unsigned scale, bool want_divergence,
        bool want_macro, bool want_meld, bool json)
{
    gpu::Device dev;
    const workloads::Workload w = workloads::make(name, dev, scale);

    KernelResult result;
    result.report = lint::verify(w.kernel);
    if (want_divergence && !result.report.hasErrors()) {
        result.divergence = lint::analyzeDivergence(
            w.kernel, {w.globalSize, w.localSize});
    }
    if (want_macro && !result.report.hasErrors()) {
        result.macro = lint::analyzeMacroRegions(
            w.kernel, {w.globalSize, w.localSize});
    }
    if (want_meld && !result.report.hasErrors())
        result.meld = xform::meldKernel(w.kernel).report;

    if (json) {
        std::fputs(lint::renderJson(result.report).c_str(), stdout);
        std::fputs("\n", stdout);
        if (want_meld && !result.report.hasErrors()) {
            std::fputs(xform::renderMeldJson(result.meld).c_str(),
                       stdout);
            std::fputs("\n", stdout);
        }
    } else {
        std::fputs(lint::renderText(result.report, &w.kernel).c_str(),
                   stdout);
        if (want_divergence && !result.report.hasErrors()) {
            std::fputs(
                lint::renderDivergence(result.divergence, &w.kernel)
                    .c_str(),
                stdout);
        }
        if (want_macro && !result.report.hasErrors()) {
            std::fputs(
                lint::renderMacroReport(result.macro, &w.kernel)
                    .c_str(),
                stdout);
        }
        if (want_meld && !result.report.hasErrors())
            std::fputs(xform::renderMeld(result.meld).c_str(), stdout);
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const std::vector<std::string> unknown = opts.unknownKeys(
        {"all", "workload", "scale", "json", "divergence", "macro",
         "meld"});
    if (!unknown.empty()) {
        for (const std::string &key : unknown)
            std::fprintf(stderr, "iwc_lint: unknown option '%s'\n",
                         key.c_str());
        return usage();
    }
    const bool all = opts.getBool("all", false);
    const std::string one = opts.getString("workload", "");
    if (!all && one.empty())
        return usage();

    const auto scale = static_cast<unsigned>(opts.getInt("scale", 1));
    const bool json = opts.getBool("json", false);
    const bool divergence = opts.getBool("divergence", false);
    const bool macro = opts.getBool("macro", false);
    const bool meld = opts.getBool("meld", false);

    std::vector<std::string> names;
    if (all)
        names = workloads::allNames();
    else
        names.push_back(one);

    unsigned dirty = 0;
    for (const std::string &name : names) {
        const KernelResult result =
            lintOne(name, scale, divergence, macro, meld, json);
        dirty += !result.report.clean() || result.meld.reverted;
    }
    if (!json) {
        std::printf("%zu kernel(s) checked, %u with diagnostics\n",
                    names.size(), dirty);
    }
    return dirty == 0 ? 0 : 1;
}
