#!/bin/sh
# Trace-replay regression gate over the committed .iwct corpus.
#
# tests/corpus holds small captured mask traces (one per
# representative workload, captured once with `iwc_trace cmd=capture`)
# together with golden analysis reports. For every trace this script
# replays the container through the streaming analyzer — sharded
# (jobs=4) and single-shard — and requires the normalized report to
# match the committed golden byte for byte. This pins down three
# things at once: the .iwct container format (an old file must keep
# decoding), the analyzer's numbers, and shard-count independence.
#
# Reports are normalized exactly like trace_stream_smoke.sh: the
# header embeds the input path (replaced) and streamed runs may
# append a peak-RSS line (dropped). Regenerate a golden only for an
# intentional analyzer change:
#   iwc_trace cmd=analyze in=<w>.iwct jobs=4 \
#     | sed -e 's|^trace .*: \([0-9]* records\)$|trace: \1|' \
#           -e '/peak RSS/d' > <w>.golden.txt
#
# Usage: trace_replay_regression.sh <path-to-iwc_trace> <corpus-dir>
set -eu

IWC_TRACE=${1:?usage: trace_replay_regression.sh <iwc_trace> <corpus-dir>}
CORPUS=${2:?usage: trace_replay_regression.sh <iwc_trace> <corpus-dir>}

workdir=$(mktemp -d "${TMPDIR:-/tmp}/iwc_replay_reg.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

normalize() {
    sed -e 's|^trace .*: \([0-9]* records\)$|trace: \1|' \
        -e '/peak RSS/d' "$1"
}

status=0
found=0
for trace in "$CORPUS"/*.iwct; do
    [ -e "$trace" ] || continue
    found=1
    base=$(basename "$trace" .iwct)
    golden=$CORPUS/$base.golden.txt
    if [ ! -f "$golden" ]; then
        echo "FAIL: $base has no golden report ($golden)" >&2
        status=1
        continue
    fi
    for jobs in 4 1; do
        "$IWC_TRACE" cmd=analyze in="$trace" jobs=$jobs \
            > "$workdir/$base.raw"
        normalize "$workdir/$base.raw" > "$workdir/$base.txt"
        if ! diff -u "$golden" "$workdir/$base.txt"; then
            echo "FAIL: $base (jobs=$jobs) diverges from golden" >&2
            status=1
        fi
    done
    echo "ok: $base"
done

if [ "$found" = 0 ]; then
    echo "FAIL: no .iwct traces found in $CORPUS" >&2
    exit 1
fi
exit $status
