/**
 * @file
 * Load-test driver for the iwc_simd daemon: hammers it with
 * thousands of concurrent requests from multiple client threads and
 * reports throughput, latency percentiles, and cache effectiveness —
 * and doubles as the service's end-to-end correctness harness (every
 * reply is byte-compared against the first reply for the same
 * request point, and optionally against a local run::executeRun).
 *
 *   iwc_loadtest socket=/tmp/iwc.sock clients=16 pipeline=64 \
 *                requests=5000
 *   iwc_loadtest spawn=1 daemon=./iwc_simd requests=200   # smoke
 *
 * Phases: a serial warmup submits each distinct request point once
 * (cold latency, one simulation each), then the hammer phase keeps
 * clients*pipeline requests in flight over the now-warm cache, then
 * a serial probe phase measures cached round-trip latency with one
 * request in flight (hammer latency is mostly queueing delay at
 * 1000+ concurrent, so it says nothing about cache service time).
 * cold_p50 / probe_p50 is the cache speedup. warmup=0 skips the
 * first phase, turning the burst into a dedup/coalescing stress
 * instead.
 *
 * Exit status is 0 only if: every request got a reply, zero replies
 * were corrupted (byte-mismatched), no errors/backpressure beyond
 * what was asked for, the daemon saw >= 1 cache hit (expect_hits=1,
 * default), any verify= golden checks passed, and a spawned daemon
 * (spawn=1) exited 0 after SIGTERM — i.e. ctest can run this
 * directly as the loadtest-smoke test.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/config.hh"
#include "common/logging.hh"
#include "run/run.hh"
#include "svc/client.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;
using Clock = std::chrono::steady_clock;

double
usSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** The distinct request points the run cycles over. */
std::vector<run::RunRequest>
buildPoints(const OptionMap &opts)
{
    const std::vector<std::string> names = splitCsv(opts.getString(
        "workloads", "micro_ifelse,micro_nested,va,dp"));
    const auto scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const auto distinct =
        static_cast<std::size_t>(opts.getInt("distinct", 0));

    static const compaction::Mode kModes[] = {
        compaction::Mode::IvbOpt, compaction::Mode::Bcc,
        compaction::Mode::Scc, compaction::Mode::Baseline};

    std::vector<run::RunRequest> points;
    for (const std::string &name : names) {
        for (const compaction::Mode mode : kModes)
            points.push_back(run::RunRequest::timing(
                name, gpu::ivbConfig(mode), scale));
        points.push_back(
            run::RunRequest::functionalTrace(name, scale));
    }
    if (distinct != 0 && points.size() > distinct)
        points.resize(distinct);
    fatal_if(points.empty(), "no request points (workloads=?)");
    return points;
}

struct ClientStats
{
    std::uint64_t sent = 0;
    std::uint64_t replies = 0;
    std::uint64_t okReplies = 0;
    std::uint64_t busy = 0;
    std::uint64_t errors = 0;
    std::uint64_t corrupted = 0;
    std::vector<double> latenciesUs;
};

/** First-reply-wins canonical bytes per point; later replies must
 *  match byte for byte (the service's bit-identity contract). */
class CanonicalSet
{
  public:
    explicit CanonicalSet(std::size_t n) : bytes_(n) {}

    /** Returns false iff @p raw mismatches an established value. */
    bool
    checkOrSet(std::size_t idx, const std::string &raw)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (bytes_[idx].empty()) {
            bytes_[idx] = raw;
            return true;
        }
        return bytes_[idx] == raw;
    }

    const std::string &
    get(std::size_t idx) const
    {
        return bytes_[idx];
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::string> bytes_;
};

void
hammerClient(const std::string &socket_path,
             const std::vector<run::RunRequest> &points,
             CanonicalSet &canonical, std::size_t quota,
             std::size_t pipeline, std::size_t offset,
             ClientStats &stats)
{
    svc::Client client;
    if (!client.connect(socket_path, 5000)) {
        stats.errors = quota; // count the whole quota as failed
        return;
    }
    stats.latenciesUs.reserve(quota);

    std::vector<Clock::time_point> sendTime(quota);
    std::vector<std::size_t> pointOf(quota);
    std::size_t sent = 0;
    std::size_t outstanding = 0;

    auto sendNext = [&]() -> bool {
        const std::size_t idx = (offset + sent) % points.size();
        pointOf[sent] = idx;
        sendTime[sent] = Clock::now();
        if (!client.sendSubmit(points[idx], sent))
            return false;
        ++sent;
        ++stats.sent;
        ++outstanding;
        return true;
    };

    while (stats.replies < quota) {
        while (sent < quota && outstanding < pipeline)
            if (!sendNext())
                return;
        svc::ClientReply reply;
        if (!client.recvReply(reply))
            return; // connection died; dropped shows in the totals
        --outstanding;
        ++stats.replies;
        if (reply.reqId >= sent) {
            ++stats.corrupted;
            continue;
        }
        stats.latenciesUs.push_back(
            usSince(sendTime[reply.reqId], Clock::now()));
        if (reply.status == svc::Status::Ok) {
            ++stats.okReplies;
            if (!canonical.checkOrSet(pointOf[reply.reqId], reply.raw))
                ++stats.corrupted;
        } else if (reply.status == svc::Status::Busy) {
            ++stats.busy;
        } else {
            ++stats.errors;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    if (opts.has("help")) {
        std::puts(
            "usage: iwc_loadtest socket=<path> [clients=N] [pipeline=N]\n"
            "                    [requests=N] [workloads=a,b,c] "
            "[scale=N] [distinct=N]\n"
            "                    [warmup=1] [verify=N] [expect_hits=1] "
            "[min_speedup=X]\n"
            "       iwc_loadtest spawn=1 daemon=<iwc_simd> [...]\n"
            "  spawn=1 forks the daemon, load-tests it, SIGTERMs it, "
            "and requires exit 0");
        return 0;
    }

    const bool spawn = opts.getBool("spawn", false);
    std::string socket_path = opts.getString("socket", "");
    pid_t daemon_pid = -1;

    if (spawn) {
        const std::string daemon_bin = opts.getString("daemon", "");
        fatal_if(daemon_bin.empty(), "spawn=1 needs daemon=<iwc_simd>");
        if (socket_path.empty())
            socket_path = "/tmp/iwc_loadtest." +
                          std::to_string(::getpid()) + ".sock";
        const std::string socket_arg = "socket=" + socket_path;
        const std::string workers_arg =
            "workers=" + opts.getString("workers", "0");
        const std::string queues_arg =
            "queues=" + opts.getString("queues", "4");
        const std::string depth_arg =
            "queue_depth=" + opts.getString("queue_depth", "4096");
        const std::string cache_arg =
            "cache_entries=" + opts.getString("cache_entries", "4096");
        daemon_pid = ::fork();
        fatal_if(daemon_pid < 0, "fork(): %s", std::strerror(errno));
        if (daemon_pid == 0) {
            ::execl(daemon_bin.c_str(), daemon_bin.c_str(),
                    socket_arg.c_str(), workers_arg.c_str(),
                    queues_arg.c_str(), depth_arg.c_str(),
                    cache_arg.c_str(), static_cast<char *>(nullptr));
            std::fprintf(stderr, "execl(%s): %s\n", daemon_bin.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
    }
    fatal_if(socket_path.empty(), "need socket=<path> (or spawn=1)");

    const auto clients =
        static_cast<std::size_t>(opts.getInt("clients", 8));
    const auto pipeline =
        static_cast<std::size_t>(opts.getInt("pipeline", 16));
    const auto requests =
        static_cast<std::size_t>(opts.getInt("requests", 1000));
    const auto verify =
        static_cast<std::size_t>(opts.getInt("verify", 2));
    const bool warmup = opts.getBool("warmup", true);
    const bool expect_hits = opts.getBool("expect_hits", true);
    const double min_speedup = opts.getDouble("min_speedup", 0);

    const std::vector<run::RunRequest> points = buildPoints(opts);
    CanonicalSet canonical(points.size());

    // Readiness probe (also covers spawn startup).
    {
        svc::Client probe;
        fatal_if(!probe.connect(socket_path, 15000) || !probe.ping(),
                 "daemon not reachable on %s", socket_path.c_str());
    }

    svc::Client control;
    fatal_if(!control.connect(socket_path, 1000),
             "control connection failed");
    svc::StatsSnapshot before{};
    control.stats(before);

    // --- Warmup: each point once, serially -> cold latencies -------
    std::vector<double> cold_us;
    if (warmup) {
        svc::Client warm;
        fatal_if(!warm.connect(socket_path, 1000), "warmup connect");
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto t0 = Clock::now();
            svc::ClientReply reply;
            fatal_if(!warm.call(points[i], reply) ||
                         reply.status != svc::Status::Ok,
                     "warmup request %zu failed (%s)", i,
                     svc::statusName(reply.status));
            cold_us.push_back(usSince(t0, Clock::now()));
            canonical.checkOrSet(i, reply.raw);
        }
    }

    // --- Hammer: clients x pipeline concurrent requests ------------
    std::vector<ClientStats> stats(clients);
    std::vector<std::thread> threads;
    const auto t_start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        const std::size_t quota =
            requests / clients + (c < requests % clients ? 1 : 0);
        threads.emplace_back([&, c, quota] {
            hammerClient(socket_path, points, canonical, quota,
                         pipeline, c, stats[c]);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t_start).count();

    // --- Probe: serial round trips over the warm cache --------------
    std::vector<double> probe_us;
    if (warmup) {
        svc::Client probe;
        fatal_if(!probe.connect(socket_path, 1000), "probe connect");
        for (int pass = 0; pass < 3; ++pass) {
            for (std::size_t i = 0; i < points.size(); ++i) {
                const auto t0 = Clock::now();
                svc::ClientReply reply;
                fatal_if(!probe.call(points[i], reply) ||
                             reply.status != svc::Status::Ok,
                         "probe request %zu failed (%s)", i,
                         svc::statusName(reply.status));
                probe_us.push_back(usSince(t0, Clock::now()));
            }
        }
    }

    // --- Aggregate --------------------------------------------------
    ClientStats total;
    for (const ClientStats &s : stats) {
        total.sent += s.sent;
        total.replies += s.replies;
        total.okReplies += s.okReplies;
        total.busy += s.busy;
        total.errors += s.errors;
        total.corrupted += s.corrupted;
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 s.latenciesUs.begin(),
                                 s.latenciesUs.end());
    }
    const std::uint64_t dropped = requests - total.replies;

    svc::StatsSnapshot after{};
    control.stats(after);
    const std::uint64_t hits = after.cacheHits - before.cacheHits;
    const std::uint64_t misses = after.cacheMisses - before.cacheMisses;
    const std::uint64_t coalesced = after.coalesced - before.coalesced;

    // --- Golden verify: daemon bytes vs local library runs ----------
    std::uint64_t verify_failures = 0;
    for (std::size_t i = 0; i < std::min(verify, points.size()); ++i) {
        const std::string local =
            svc::encodeRunResult(run::executeRun(points[i]));
        if (canonical.get(i).empty()) {
            std::fprintf(stderr,
                         "verify: point %zu never answered Ok\n", i);
            ++verify_failures;
        } else if (canonical.get(i) != local) {
            std::fprintf(stderr,
                         "verify: point %zu daemon bytes differ from "
                         "local executeRun\n",
                         i);
            ++verify_failures;
        }
    }

    // --- Report ------------------------------------------------------
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());
    std::sort(cold_us.begin(), cold_us.end());
    std::sort(probe_us.begin(), probe_us.end());
    const double warm_p50 = percentile(total.latenciesUs, 0.50);
    const double cold_p50 = percentile(cold_us, 0.50);
    const double probe_p50 = percentile(probe_us, 0.50);
    const double speedup =
        probe_p50 > 0 && cold_p50 > 0 ? cold_p50 / probe_p50 : 0;

    std::printf("iwc_loadtest: %zu clients x %zu pipeline "
                "(%zu concurrent), %zu points\n",
                clients, pipeline, clients * pipeline, points.size());
    std::printf("  requests   : %zu sent, %llu replies, %llu dropped\n",
                requests,
                static_cast<unsigned long long>(total.replies),
                static_cast<unsigned long long>(dropped));
    std::printf("  status     : %llu ok, %llu busy, %llu error, "
                "%llu corrupted\n",
                static_cast<unsigned long long>(total.okReplies),
                static_cast<unsigned long long>(total.busy),
                static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.corrupted));
    std::printf("  throughput : %.0f req/s (%.3f s wall)\n",
                wall_s > 0 ? total.replies / wall_s : 0, wall_s);
    std::printf("  latency us : p50 %.1f  p90 %.1f  p99 %.1f  "
                "max %.1f\n",
                warm_p50, percentile(total.latenciesUs, 0.90),
                percentile(total.latenciesUs, 0.99),
                total.latenciesUs.empty() ? 0
                                          : total.latenciesUs.back());
    if (warmup)
        std::printf("  cache      : cold p50 %.1f us -> cached p50 "
                    "%.1f us (%.1fx)\n",
                    cold_p50, probe_p50, speedup);
    std::printf("  daemon     : %llu hits, %llu misses, %llu "
                "coalesced, %llu executed\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(coalesced),
                static_cast<unsigned long long>(after.executed -
                                                before.executed));
    std::printf("  daemon lat : p50 %llu us  p95 %llu us  p99 %llu us "
                "(%llu samples, power-of-two buckets)\n",
                static_cast<unsigned long long>(after.latencyP50Us),
                static_cast<unsigned long long>(after.latencyP95Us),
                static_cast<unsigned long long>(after.latencyP99Us),
                static_cast<unsigned long long>(after.latencySamples));
    const auto hit_rate = [](std::uint64_t h, std::uint64_t m) {
        return h + m > 0 ? 100.0 * static_cast<double>(h) /
                               static_cast<double>(h + m)
                         : 0.0;
    };
    std::printf("  sim caches : plan %llu/%llu (%.1f%%), predecode "
                "%llu/%llu (%.1f%%)\n",
                static_cast<unsigned long long>(after.sharedPlanHits),
                static_cast<unsigned long long>(
                    after.sharedPlanHits + after.sharedPlanMisses),
                hit_rate(after.sharedPlanHits, after.sharedPlanMisses),
                static_cast<unsigned long long>(after.predecodeHits),
                static_cast<unsigned long long>(
                    after.predecodeHits + after.predecodeMisses),
                hit_rate(after.predecodeHits, after.predecodeMisses));

    // --- Teardown / acceptance --------------------------------------
    bool ok = true;
    auto fail = [&](const char *what) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ok = false;
    };
    if (dropped != 0)
        fail("dropped replies");
    if (total.corrupted != 0)
        fail("corrupted (non-bit-identical) replies");
    if (total.errors != 0)
        fail("error replies");
    if (total.busy != 0 && !opts.getBool("allow_busy", false))
        fail("backpressure (Busy) replies; raise queue_depth or pass "
             "allow_busy=1");
    if (expect_hits && hits == 0)
        fail("no cache hits");
    if (verify_failures != 0)
        fail("golden verify mismatches");
    if (min_speedup > 0 && speedup < min_speedup)
        fail("cache speedup below min_speedup");

    if (spawn) {
        fatal_if(::kill(daemon_pid, SIGTERM) != 0, "kill: %s",
                 std::strerror(errno));
        int status = 0;
        fatal_if(::waitpid(daemon_pid, &status, 0) != daemon_pid,
                 "waitpid: %s", std::strerror(errno));
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "FAIL: daemon did not exit cleanly "
                         "(status 0x%x)\n",
                         status);
            ok = false;
        } else {
            std::printf("  daemon exited 0 after SIGTERM (graceful "
                        "drain)\n");
        }
    }

    return ok ? 0 : 1;
}
