/**
 * @file
 * Trace utility: capture execution-mask traces from workloads,
 * synthesize the paper's trace workloads, convert between the three
 * trace formats (chunked .iwct container, legacy flat binary, text),
 * inspect containers, and analyze any trace for BCC/SCC opportunity
 * — streaming out-of-core with a sharded analyzer when the input is
 * a container.
 *
 *   iwc_trace cmd=capture workload=bfs out=bfs.iwct [scale=N]
 *   iwc_trace cmd=synth profile=luxmark_sky out=lux.iwct [instrs=N]
 *   iwc_trace cmd=analyze in=bfs.iwct [jobs=N] [rss_budget_mb=N]
 *   iwc_trace cmd=info in=bfs.iwct
 *   iwc_trace cmd=convert in=bfs.iwct out=bfs.txt format=text
 *   iwc_trace cmd=profiles
 *
 * format= selects the output encoding for capture/synth/convert:
 * "container" (default; chunked, compressed, seekable), "binary"
 * (legacy flat), or "text". Capture and synthesis stream straight to
 * disk when writing containers, so trace size is bounded by the disk,
 * not by RSS.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common/config.hh"
#include "gpu/device.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "tracestream/analyze.hh"
#include "tracestream/reader.hh"
#include "tracestream/writer.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

int
usage()
{
    std::puts(
        "usage: iwc_trace cmd=<capture|synth|analyze|info|convert|"
        "profiles>"
        "\n  capture : workload=<name> out=<file> [scale=N]"
        "\n  synth   : profile=<name> out=<file> [instrs=N] [seed=N]"
        "\n  analyze : in=<file> [jobs=N] [io_threads=N] [ring=N]"
        "\n            [rss_budget_mb=N]  fail if peak RSS exceeded"
        "\n  info    : in=<file>  container header/index summary"
        "\n  convert : in=<file> out=<file>"
        "\n  profiles: list synthetic trace profiles"
        "\n  common  : format=container|binary|text  output encoding"
        "\n            (default container; text=1 keeps working)"
        "\n            chunk=N  records per container chunk");
    return 1;
}

enum class Format
{
    Container,
    Binary,
    Text,
};

Format
outputFormat(const OptionMap &opts)
{
    if (opts.getBool("text", false))
        return Format::Text;
    const std::string format =
        opts.getString("format", "container");
    if (format == "container")
        return Format::Container;
    if (format == "binary")
        return Format::Binary;
    if (format == "text")
        return Format::Text;
    fatal("unknown format '%s' (expected container, binary, or text)",
          format.c_str());
}

trace::MaskTrace
readAny(const std::string &path)
{
    if (tracestream::isContainerFile(path))
        return tracestream::readContainerFile(path);
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
        fatal("cannot open %s", path.c_str());
    char magic[4] = {};
    probe.read(magic, 4);
    probe.close();
    if (std::string(magic, 4) == "IWCT")
        return trace::readBinaryFile(path);
    std::ifstream is(path);
    return trace::readText(is);
}

void
writeAny(const std::string &path, const trace::MaskTrace &t,
         Format format, std::uint32_t chunk_records)
{
    switch (format) {
      case Format::Container:
        tracestream::writeContainerFile(path, t, chunk_records);
        break;
      case Format::Binary:
        trace::writeBinaryFile(path, t);
        break;
      case Format::Text: {
        std::ofstream os(path);
        fatal_if(!os, "cannot open %s for writing", path.c_str());
        trace::writeText(os, t);
        break;
      }
    }
}

void
printAnalysis(const std::string &name, const trace::TraceAnalysis &a)
{
    using compaction::Mode;
    std::printf("trace %s: %llu records\n", name.c_str(),
                static_cast<unsigned long long>(a.records));
    std::printf("  SIMD efficiency    : %.1f%% (%s)\n",
                a.simdEfficiency() * 100,
                a.isDivergent() ? "divergent" : "coherent");
    std::printf("  EU cycles baseline : %llu\n",
                static_cast<unsigned long long>(
                    a.cycles(Mode::Baseline)));
    std::printf("  reduction ivb-opt  : %.1f%% (vs baseline)\n",
                a.reduction(Mode::IvbOpt, Mode::Baseline) * 100);
    std::printf("  reduction bcc      : %.1f%% (vs ivb-opt)\n",
                a.reduction(Mode::Bcc) * 100);
    std::printf("  reduction scc      : %.1f%% (vs ivb-opt)\n",
                a.reduction(Mode::Scc) * 100);
    std::printf("  utilization bins   :");
    for (unsigned bin = 0; bin < compaction::kNumUtilBins; ++bin) {
        const auto b = static_cast<compaction::UtilBin>(bin);
        if (a.utilFraction(b) > 0.0005)
            std::printf(" %s=%.1f%%", compaction::utilBinName(b),
                        a.utilFraction(b) * 100);
    }
    std::puts("");
}

/** Peak RSS of this process in MB (Linux VmHWM; 0 if unavailable). */
std::uint64_t
peakRssMb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        unsigned long long kb = 0;
        if (std::sscanf(line.c_str(), "VmHWM: %llu kB", &kb) == 1)
            return kb / 1024;
    }
    return 0;
}

int
cmdInfo(const std::string &path)
{
    if (!tracestream::isContainerFile(path)) {
        // Legacy formats have no index to inspect; load and count.
        const trace::MaskTrace t = readAny(path);
        std::printf("%s: legacy trace '%s', %llu records "
                    "(no chunk index; convert to a container with "
                    "cmd=convert)\n",
                    path.c_str(), t.name.c_str(),
                    static_cast<unsigned long long>(t.size()));
        return 0;
    }

    const tracestream::ContainerInfo info =
        tracestream::readContainerInfo(path);
    std::uint64_t coded = 0;
    std::uint32_t min_records = ~std::uint32_t{0};
    std::uint32_t max_records = 0;
    for (const tracestream::ChunkIndexEntry &e : info.chunks) {
        coded += e.codedBytes;
        min_records = std::min(min_records, e.recordCount);
        max_records = std::max(max_records, e.recordCount);
    }
    const std::uint64_t raw =
        info.totalRecords * sizeof(trace::TraceRecord);
    std::printf("%s: trace container '%s'\n", path.c_str(),
                info.name.c_str());
    std::printf("  records            : %llu\n",
                static_cast<unsigned long long>(info.totalRecords));
    std::printf("  chunks             : %zu (%u..%u records)\n",
                info.chunks.size(),
                info.chunks.empty() ? 0 : min_records, max_records);
    std::printf("  payload bytes      : %llu coded / %llu raw "
                "(%.2fx compression)\n",
                static_cast<unsigned long long>(coded),
                static_cast<unsigned long long>(raw),
                coded > 0 ? static_cast<double>(raw) / coded : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const std::string cmd = opts.getString("cmd", "");
    const auto chunk_records = static_cast<std::uint32_t>(opts.getInt(
        "chunk", tracestream::kDefaultChunkRecords));

    if (cmd == "profiles") {
        for (const auto &p : trace::paperTraceProfiles())
            std::printf("  %-22s %s simd%u, %llu instrs\n",
                        p.name.c_str(), p.category.c_str(),
                        p.simdWidth,
                        static_cast<unsigned long long>(
                            p.instructions));
        return 0;
    }

    if (cmd == "capture") {
        const std::string name = opts.getString("workload", "");
        const std::string out = opts.getString("out", "");
        if (name.empty() || out.empty())
            return usage();
        const Format format = outputFormat(opts);
        gpu::Device dev;
        workloads::Workload w = workloads::make(
            name, dev, static_cast<unsigned>(opts.getInt("scale", 1)));
        if (format == Format::Container) {
            // Stream straight to disk: RSS stays chunk-bounded no
            // matter how long the capture runs.
            tracestream::WriterOptions wo;
            wo.name = name;
            wo.chunkRecords = chunk_records;
            tracestream::ChunkedTraceWriter writer(out, std::move(wo));
            dev.launchFunctional(w.kernel, w.globalSize, w.localSize,
                                 w.args,
                                 tracestream::captureObserver(writer));
            writer.finish();
            std::printf("captured %llu records to %s "
                        "(%llu chunks, %llu coded bytes)\n",
                        static_cast<unsigned long long>(
                            writer.recordsWritten()),
                        out.c_str(),
                        static_cast<unsigned long long>(
                            writer.chunksWritten()),
                        static_cast<unsigned long long>(
                            writer.codedBytes()));
            printAnalysis(name, tracestream::analyzeTraceStream(out));
            return 0;
        }
        trace::MaskTrace t;
        t.name = name;
        dev.launchFunctional(w.kernel, w.globalSize, w.localSize,
                             w.args, trace::captureObserver(t));
        writeAny(out, t, format, chunk_records);
        std::printf("captured %llu records to %s\n",
                    static_cast<unsigned long long>(t.size()),
                    out.c_str());
        printAnalysis(name, trace::analyzeTrace(t));
        return 0;
    }

    if (cmd == "synth") {
        const std::string profile = opts.getString("profile", "");
        const std::string out = opts.getString("out", "");
        if (profile.empty() || out.empty())
            return usage();
        const Format format = outputFormat(opts);
        trace::SyntheticProfile p = trace::profileByName(profile);
        p.instructions = static_cast<std::uint64_t>(opts.getInt(
            "instrs", static_cast<std::int64_t>(p.instructions)));
        p.seed = static_cast<std::uint64_t>(
            opts.getInt("seed", static_cast<std::int64_t>(p.seed)));
        if (format == Format::Container) {
            // Generation streams through the writer: a 100M-record
            // synthetic corpus costs one chunk of memory.
            tracestream::WriterOptions wo;
            wo.name = p.name;
            wo.chunkRecords = chunk_records;
            tracestream::ChunkedTraceWriter writer(out, std::move(wo));
            trace::synthesizeTo(p, [&](const trace::TraceRecord &r) {
                writer.append(r);
            });
            writer.finish();
            std::printf("synthesized %llu records to %s "
                        "(%llu chunks, %llu coded bytes)\n",
                        static_cast<unsigned long long>(
                            writer.recordsWritten()),
                        out.c_str(),
                        static_cast<unsigned long long>(
                            writer.chunksWritten()),
                        static_cast<unsigned long long>(
                            writer.codedBytes()));
            return 0;
        }
        const trace::MaskTrace t = trace::synthesize(p);
        writeAny(out, t, format, chunk_records);
        std::printf("synthesized %llu records to %s\n",
                    static_cast<unsigned long long>(t.size()),
                    out.c_str());
        printAnalysis(p.name, trace::analyzeTrace(t));
        return 0;
    }

    if (cmd == "analyze") {
        const std::string in = opts.getString("in", "");
        if (in.empty())
            return usage();
        tracestream::StreamAnalyzeOptions options;
        options.jobs =
            static_cast<unsigned>(opts.getInt("jobs", 1));
        options.stream.ioThreads = static_cast<unsigned>(
            opts.getInt("io_threads", options.stream.ioThreads));
        options.stream.ringChunks = static_cast<unsigned>(
            opts.getInt("ring", options.stream.ringChunks));
        const trace::TraceAnalysis a =
            tracestream::analyzeTraceFile(in, options);
        printAnalysis(in, a);

        const auto budget_mb = static_cast<std::uint64_t>(
            opts.getInt("rss_budget_mb", 0));
        if (budget_mb > 0) {
            const std::uint64_t peak = peakRssMb();
            if (peak == 0) {
                std::puts("  peak RSS           : unavailable on this "
                          "platform; budget not enforced");
            } else {
                std::printf("  peak RSS           : %llu MB "
                            "(budget %llu MB)\n",
                            static_cast<unsigned long long>(peak),
                            static_cast<unsigned long long>(budget_mb));
                fatal_if(peak > budget_mb,
                         "peak RSS %llu MB exceeds the %llu MB budget "
                         "(streaming is not out-of-core?)",
                         static_cast<unsigned long long>(peak),
                         static_cast<unsigned long long>(budget_mb));
            }
        }
        return 0;
    }

    if (cmd == "info") {
        const std::string in = opts.getString("in", "");
        if (in.empty())
            return usage();
        return cmdInfo(in);
    }

    if (cmd == "convert") {
        const std::string in = opts.getString("in", "");
        const std::string out = opts.getString("out", "");
        if (in.empty() || out.empty())
            return usage();
        const trace::MaskTrace t = readAny(in);
        writeAny(out, t, outputFormat(opts), chunk_records);
        std::printf("converted %llu records: %s -> %s\n",
                    static_cast<unsigned long long>(t.size()),
                    in.c_str(), out.c_str());
        return 0;
    }

    return usage();
}
