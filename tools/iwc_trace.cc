/**
 * @file
 * Trace utility: capture execution-mask traces from workloads,
 * synthesize the paper's trace workloads, convert between binary and
 * text formats, and analyze any trace for BCC/SCC opportunity.
 *
 *   iwc_trace cmd=capture workload=bfs out=bfs.iwct [scale=N]
 *   iwc_trace cmd=synth profile=luxmark_sky out=lux.iwct
 *   iwc_trace cmd=analyze in=bfs.iwct
 *   iwc_trace cmd=convert in=bfs.iwct out=bfs.txt text=1
 *   iwc_trace cmd=profiles
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/config.hh"
#include "gpu/device.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

int
usage()
{
    std::puts(
        "usage: iwc_trace cmd=<capture|synth|analyze|convert|profiles>"
        "\n  capture : workload=<name> out=<file> [scale=N] [text=1]"
        "\n  synth   : profile=<name> out=<file> [text=1]"
        "\n  analyze : in=<file>"
        "\n  convert : in=<file> out=<file> [text=1]"
        "\n  profiles: list synthetic trace profiles");
    return 1;
}

trace::MaskTrace
readAny(const std::string &path)
{
    // Sniff the magic to pick the format.
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
        fatal("cannot open %s", path.c_str());
    char magic[4] = {};
    probe.read(magic, 4);
    probe.close();
    if (std::string(magic, 4) == "IWCT")
        return trace::readBinaryFile(path);
    std::ifstream is(path);
    return trace::readText(is);
}

void
writeAny(const std::string &path, const trace::MaskTrace &t, bool text)
{
    if (text) {
        std::ofstream os(path);
        fatal_if(!os, "cannot open %s for writing", path.c_str());
        trace::writeText(os, t);
    } else {
        trace::writeBinaryFile(path, t);
    }
}

void
analyze(const trace::MaskTrace &t)
{
    using compaction::Mode;
    const trace::TraceAnalysis a = trace::analyzeTrace(t);
    std::printf("trace %s: %llu records\n", t.name.c_str(),
                static_cast<unsigned long long>(a.records));
    std::printf("  SIMD efficiency    : %.1f%% (%s)\n",
                a.simdEfficiency() * 100,
                a.isDivergent() ? "divergent" : "coherent");
    std::printf("  EU cycles baseline : %llu\n",
                static_cast<unsigned long long>(
                    a.cycles(Mode::Baseline)));
    std::printf("  reduction ivb-opt  : %.1f%% (vs baseline)\n",
                a.reduction(Mode::IvbOpt, Mode::Baseline) * 100);
    std::printf("  reduction bcc      : %.1f%% (vs ivb-opt)\n",
                a.reduction(Mode::Bcc) * 100);
    std::printf("  reduction scc      : %.1f%% (vs ivb-opt)\n",
                a.reduction(Mode::Scc) * 100);
    std::printf("  utilization bins   :");
    for (unsigned bin = 0; bin < compaction::kNumUtilBins; ++bin) {
        const auto b = static_cast<compaction::UtilBin>(bin);
        if (a.utilFraction(b) > 0.0005)
            std::printf(" %s=%.1f%%", compaction::utilBinName(b),
                        a.utilFraction(b) * 100);
    }
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const std::string cmd = opts.getString("cmd", "");

    if (cmd == "profiles") {
        for (const auto &p : trace::paperTraceProfiles())
            std::printf("  %-22s %s simd%u, %llu instrs\n",
                        p.name.c_str(), p.category.c_str(),
                        p.simdWidth,
                        static_cast<unsigned long long>(
                            p.instructions));
        return 0;
    }

    if (cmd == "capture") {
        const std::string name = opts.getString("workload", "");
        const std::string out = opts.getString("out", "");
        if (name.empty() || out.empty())
            return usage();
        gpu::Device dev;
        workloads::Workload w = workloads::make(
            name, dev, static_cast<unsigned>(opts.getInt("scale", 1)));
        trace::MaskTrace t;
        t.name = name;
        dev.launchFunctional(w.kernel, w.globalSize, w.localSize,
                             w.args, trace::captureObserver(t));
        writeAny(out, t, opts.getBool("text", false));
        std::printf("captured %llu records to %s\n",
                    static_cast<unsigned long long>(t.size()),
                    out.c_str());
        analyze(t);
        return 0;
    }

    if (cmd == "synth") {
        const std::string profile = opts.getString("profile", "");
        const std::string out = opts.getString("out", "");
        if (profile.empty() || out.empty())
            return usage();
        const trace::MaskTrace t =
            trace::synthesize(trace::profileByName(profile));
        writeAny(out, t, opts.getBool("text", false));
        std::printf("synthesized %llu records to %s\n",
                    static_cast<unsigned long long>(t.size()),
                    out.c_str());
        analyze(t);
        return 0;
    }

    if (cmd == "analyze") {
        const std::string in = opts.getString("in", "");
        if (in.empty())
            return usage();
        analyze(readAny(in));
        return 0;
    }

    if (cmd == "convert") {
        const std::string in = opts.getString("in", "");
        const std::string out = opts.getString("out", "");
        if (in.empty() || out.empty())
            return usage();
        writeAny(out, readAny(in), opts.getBool("text", false));
        return 0;
    }

    return usage();
}
