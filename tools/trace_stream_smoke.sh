#!/bin/sh
# Streaming trace pipeline smoke test.
#
# Exercises the full out-of-core path end to end:
#   1. synthesize a multi-million-record trace straight into the
#      chunked .iwct container (never holding it in memory),
#   2. analyze it with the sharded streaming analyzer under a hard
#      peak-RSS budget (the analyzer aborts if VmHWM exceeds it),
#   3. convert the container to the legacy in-memory binary format,
#      analyze that with the in-memory path, and require the two
#      reports to be byte-identical.
#
# Usage: trace_stream_smoke.sh <path-to-iwc_trace> [records]
set -eu

IWC_TRACE=${1:?usage: trace_stream_smoke.sh <iwc_trace> [records]}
RECORDS=${2:-4000000}
RSS_BUDGET_MB=${RSS_BUDGET_MB:-256}

workdir=$(mktemp -d "${TMPDIR:-/tmp}/iwc_stream_smoke.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

container=$workdir/smoke.iwct
legacy=$workdir/smoke.bin

echo "== synth $RECORDS records -> $container"
"$IWC_TRACE" cmd=synth profile=luxmark_sala instrs="$RECORDS" \
    out="$container" format=container

"$IWC_TRACE" cmd=info in="$container"

echo "== streamed analyze (jobs=4, rss budget ${RSS_BUDGET_MB}MB)"
"$IWC_TRACE" cmd=analyze in="$container" jobs=4 \
    rss_budget_mb="$RSS_BUDGET_MB" > "$workdir/streamed.txt"

echo "== convert to legacy binary + in-memory analyze"
"$IWC_TRACE" cmd=convert in="$container" out="$legacy" format=binary
"$IWC_TRACE" cmd=analyze in="$legacy" > "$workdir/inmemory.txt"

# Normalize before diffing: the report header embeds the input path,
# and the streamed run appends a peak-RSS line the in-memory path
# lacks. Every analysis number must match exactly.
normalize() {
    sed -e 's/^trace .*: \([0-9]* records\)$/trace: \1/' \
        -e '/peak RSS/d' "$1"
}
normalize "$workdir/streamed.txt" > "$workdir/streamed_cmp.txt"
normalize "$workdir/inmemory.txt" > "$workdir/inmemory_cmp.txt"
if ! diff -u "$workdir/inmemory_cmp.txt" "$workdir/streamed_cmp.txt"; then
    echo "FAIL: streamed analysis diverges from the in-memory analyzer" >&2
    exit 1
fi

echo "OK: streamed analysis is bit-identical to the in-memory path"
