/**
 * @file
 * The simulation daemon: serves RunRequests over a Unix-domain
 * socket with batched multi-queue ingestion, in-flight request
 * coalescing, and a bounded (workload digest, config digest) result
 * cache — the long-running form of the src/run harness for clients
 * sweeping millions of (workload, width, compaction mode) points.
 *
 *   iwc_simd socket=/tmp/iwc.sock                 # serve until signal
 *   iwc_simd socket=/tmp/iwc.sock workers=8 queues=8 \
 *            queue_depth=2048 cache_entries=65536 max_scale=16
 *
 * SIGINT/SIGTERM drain gracefully: in-flight and queued jobs finish
 * and deliver their replies, new submissions are refused with
 * "shutting-down", the socket is unlinked, and the process exits 0.
 * A stale socket left by a crashed daemon is removed on startup; a
 * live one is detected and refused.
 */

#include <csignal>
#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "common/logging.hh"
#include "stats/stats.hh"
#include "svc/daemon.hh"

namespace
{

using namespace iwc;

svc::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    // requestStop is one write() on a self-pipe: async-signal-safe.
    if (g_daemon)
        g_daemon->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    if (!opts.has("socket")) {
        std::puts(
            "usage: iwc_simd socket=<path> [workers=N] [queues=N]\n"
            "               [queue_depth=N] [cache_entries=N] "
            "[max_scale=N] [capture_dir=DIR]\n"
            "  workers       worker threads (0 = one per hw thread)\n"
            "  queues        submission queues (per-client fairness)\n"
            "  queue_depth   admission bound per queue (Busy beyond)\n"
            "  cache_entries result-cache capacity (0 disables)\n"
            "  max_scale     largest accepted RunRequest::scale\n"
            "  capture_dir   persist each executed functional-trace\n"
            "                request as a .iwct container here\n"
            "                (regression corpus; dir must exist)");
        return opts.has("help") ? 0 : 1;
    }

    svc::DaemonOptions options;
    options.socketPath = opts.getString("socket", "");
    options.engine.workers =
        static_cast<unsigned>(opts.getInt("workers", 0));
    options.engine.queues =
        static_cast<unsigned>(opts.getInt("queues", 4));
    options.engine.maxQueueDepth =
        static_cast<std::size_t>(opts.getInt("queue_depth", 1024));
    options.engine.cacheEntries =
        static_cast<std::size_t>(opts.getInt("cache_entries", 4096));
    options.engine.maxScale =
        static_cast<unsigned>(opts.getInt("max_scale", 64));
    options.engine.captureDir = opts.getString("capture_dir", "");

    svc::Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    daemon.start();
    daemon.serveUntilStopped();

    // Final counter dump through the obs stats path.
    stats::Group group("iwc_simd");
    daemon.engine().stats().writeTo(group);
    const svc::StatsSnapshot s = daemon.engine().wireStats();
    group.setScalar("svc.cache_entries",
                    static_cast<double>(s.cacheEntries));
    group.setScalar("svc.cache_evictions",
                    static_cast<double>(s.cacheEvictions));
    group.setScalar("svc.shared_plan_hits",
                    static_cast<double>(s.sharedPlanHits));
    group.setScalar("svc.shared_plan_misses",
                    static_cast<double>(s.sharedPlanMisses));
    group.setScalar("svc.predecode_hits",
                    static_cast<double>(s.predecodeHits));
    group.setScalar("svc.predecode_misses",
                    static_cast<double>(s.predecodeMisses));
    group.dump(std::cerr);
    return 0;
}
