/**
 * @file
 * Profiling driver: run one workload with full event tracing and emit
 * every observability artifact in one go (see docs/observability.md):
 *
 *   <prefix>.trace.json     Chrome Trace / Perfetto timeline
 *   <prefix>.occupancy.csv  per-EU busy / stall / idle breakdown
 *   <prefix>.hotspots.txt   per-instruction divergence hotspot report
 *
 *   iwc_profile workload=bfs                       # ivb-opt, prefix bfs
 *   iwc_profile workload=bfs mode=scc scale=2 out=/tmp/bfs_scc
 *   iwc_profile workload=bfs capacity=100000 top=20
 *
 * Machine overrides (eus=, dc=, perfect_l3=, ...) apply as in iwc_sim.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "gpu/device.hh"
#include "obs/chrome_trace.hh"
#include "obs/profile.hh"
#include "obs/sink.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;

    const OptionMap opts(argc, argv);
    if (opts.getBool("list", false) || !opts.has("workload")) {
        std::puts("usage: iwc_profile workload=<name> [mode=baseline|"
                  "ivb|bcc|scc] [scale=N] [out=<prefix>]");
        std::puts("       [capacity=N]  max events kept per EU "
                  "(0 = keep everything)");
        std::puts("       [top=N]       hotspot rows (0 = all)");
        std::puts("       plus the iwc_sim machine overrides\n");
        std::puts("workloads:");
        for (const auto &entry : workloads::registry())
            std::printf("  %-18s %s%s\n", entry.name,
                        entry.description,
                        entry.expectDivergent ? " [divergent]" : "");
        return opts.has("workload") ? 0 : 1;
    }

    const std::string name = opts.getString("workload", "");
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const std::string prefix = opts.getString("out", name);
    const std::size_t capacity =
        static_cast<std::size_t>(opts.getInt("capacity", 0));
    const std::size_t top_n =
        static_cast<std::size_t>(opts.getInt("top", 0));

    gpu::GpuConfig config = gpu::applyOptions(
        gpu::ivbConfig(gpu::parseMode(opts.getString("mode", "ivb"))),
        opts);
    obs::RingBufferSink sink(config.numEus, capacity);
    config.sink = &sink;

    gpu::Device dev(config);
    const workloads::Workload w = workloads::make(name, dev, scale);
    const gpu::LaunchStats stats =
        dev.launch(w.kernel, w.globalSize, w.localSize, w.args);

    const std::vector<obs::Event> events = sink.collect();
    std::printf("%s: %llu cycles, %llu events captured",
                name.c_str(),
                static_cast<unsigned long long>(stats.totalCycles),
                static_cast<unsigned long long>(events.size()));
    if (sink.totalDropped() != 0)
        std::printf(" (%llu dropped; raise capacity=)",
                    static_cast<unsigned long long>(
                        sink.totalDropped()));
    std::puts("");

    obs::ChromeTraceOptions trace_opts;
    trace_opts.kernel = &w.kernel;
    const std::string trace_path = prefix + ".trace.json";
    obs::writeChromeTraceFile(trace_path, events, trace_opts);

    const std::string csv_path = prefix + ".occupancy.csv";
    {
        const auto occ = obs::computeOccupancy(events, stats.totalCycles,
                                               config.numEus);
        const obs::RunCounters counters{
            stats.planCacheHits, stats.planCacheMisses,
            stats.idleCyclesSkipped, stats.idleSkips,
            sink.totalDropped()};
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open %s", csv_path.c_str());
        obs::writeOccupancyCsv(os, occ, stats.totalCycles, counters);
    }

    const std::string hot_path = prefix + ".hotspots.txt";
    {
        std::ofstream os(hot_path);
        fatal_if(!os, "cannot open %s", hot_path.c_str());
        obs::writeHotspotReport(os, obs::computeHotspots(events),
                                &w.kernel, top_n, sink.totalDropped());
    }

    std::printf("wrote %s, %s, %s\n", trace_path.c_str(),
                csv_path.c_str(), hot_path.c_str());
    return 0;
}
