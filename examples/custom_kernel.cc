/**
 * @file
 * Custom-kernel walkthrough: authors a divergent kernel from scratch
 * (per-element iterative square root via Newton's method, where the
 * iteration count is data dependent), traces its execution masks, and
 * shows where BCC and SCC find their cycles. This is the template to
 * copy when adding new workloads to the suite.
 *
 * Run: ./custom_kernel [n=16384]
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "stats/table.hh"
#include "trace/analyzer.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    using isa::CondMod;
    using isa::DataType;
    const OptionMap opts(argc, argv);
    const auto n = static_cast<std::uint64_t>(opts.getInt("n", 16384));

    // Newton iteration: x' = (x + v/x) / 2 until |x^2 - v| < eps.
    // Convergence speed depends on the value, so lanes drop out of
    // the loop at different iterations -> classic loop divergence.
    isa::KernelBuilder b("newton_sqrt", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");

    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::F);
    auto x = b.tmp(DataType::F);
    auto x2 = b.tmp(DataType::F);
    auto err = b.tmp(DataType::F);
    auto q = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);

    b.mad(addr, b.globalId(), b.ud(4), in_buf);
    b.gatherLoad(v, addr, DataType::F);
    b.mov(x, b.f(1.0f)); // deliberately bad initial guess
    b.mov(i, b.d(0));

    b.loop_();
    {
        b.mul(x2, x, x);
        b.sub(err, x2, v);
        iwc::isa::Operand abs_err = err;
        abs_err.absolute = true;
        b.cmp(CondMod::Lt, 0, abs_err, b.f(1e-4f));
        b.breakIf(0); // converged lanes leave
        b.div(q, v, x);
        b.add(x, x, q);
        b.mul(x, x, b.f(0.5f));
        b.add(i, i, b.d(1));
        b.cmp(CondMod::Lt, 1, i, b.d(64));
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, x, DataType::F);
    const isa::Kernel kernel = b.build();

    // Inputs spanning several orders of magnitude (spreads the
    // iteration counts).
    Rng rng(2026);
    std::vector<float> host_in(n);
    for (auto &val : host_in)
        val = 0.01f + 1000.0f * rng.nextFloat() * rng.nextFloat();

    gpu::Device dev(gpu::ivbConfig(Mode::Scc));
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));

    // Trace the mask stream while validating functionally.
    trace::TraceAnalyzer analyzer;
    dev.launchFunctional(
        kernel, n, 64,
        {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out)},
        [&](const isa::Instruction &in, LaneMask mask) {
            analyzer.add(trace::recordOf(in, mask));
        });
    const auto result = dev.downloadVector<float>(dev_out, n);
    double worst = 0;
    for (std::uint64_t k = 0; k < n; ++k)
        worst = std::max(worst,
                         std::fabs(result[k] -
                                   std::sqrt(double(host_in[k]))));
    std::printf("newton_sqrt over %llu elements, worst abs error "
                "%.2e\n\n",
                static_cast<unsigned long long>(n), worst);

    const auto &a = analyzer.result();
    stats::Table table({"metric", "value"});
    table.row().cell("SIMD efficiency").cellPct(a.simdEfficiency());
    table.row().cell("EU-cycle reduction, BCC").cellPct(
        a.reduction(Mode::Bcc));
    table.row().cell("EU-cycle reduction, SCC").cellPct(
        a.reduction(Mode::Scc));
    table.print(std::cout, "Mask-stream analysis");

    // And the end-to-end execution time under each mode.
    stats::Table timing({"mode", "total_cycles"});
    for (const Mode mode : {Mode::IvbOpt, Mode::Bcc, Mode::Scc}) {
        gpu::Device tdev(gpu::ivbConfig(mode));
        const Addr tin = tdev.uploadVector(host_in);
        const Addr tout = tdev.allocBuffer(n * sizeof(float));
        const auto stats = tdev.launch(
            kernel, n, 64,
            {gpu::Arg::buffer(tin), gpu::Arg::buffer(tout)});
        timing.row()
            .cell(compaction::modeName(mode))
            .cell(stats.totalCycles);
    }
    std::puts("");
    timing.print(std::cout, "Timing per compaction mode");
    return 0;
}
