/**
 * @file
 * Ray-tracer demo: renders the ambient-occlusion scene to an ASCII
 * image on the simulated GPU and shows how SCC accelerates the
 * divergent AO kernel — the paper's flagship divergent workload.
 *
 * Run: ./raytracer_demo [scene=alien|bulldozer|windmill] [simd=8|16]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/config.hh"
#include "gpu/device.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const std::string scene = opts.getString("scene", "alien");
    const unsigned simd =
        static_cast<unsigned>(opts.getInt("simd", 16));

    // Render once under SCC and keep the image.
    gpu::Device dev(gpu::ivbConfig(Mode::Scc));
    workloads::Workload w =
        workloads::makeRayTraceAo(dev, 1, scene, simd);
    const auto scc_stats =
        dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
    if (!w.check(dev)) {
        std::fputs("reference check FAILED\n", stderr);
        return 1;
    }

    // The output buffer is the second kernel argument.
    const Addr image_buf = w.args[1].raw;
    const auto dim = static_cast<unsigned>(
        std::lround(std::sqrt(static_cast<double>(w.globalSize))));
    const auto image =
        dev.downloadVector<float>(image_buf, w.globalSize);

    std::printf("ambient occlusion, scene '%s', SIMD%u, %ux%u\n\n",
                scene.c_str(), simd, dim, dim);
    const char *shades = " .:-=+*#%@";
    for (unsigned row = 0; row < dim; row += 2) { // 2:1 aspect fix
        for (unsigned col = 0; col < dim; ++col) {
            const float v = image[row * dim + col];
            const int idx = static_cast<int>((1.0f - v) * 9.99f);
            std::putchar(shades[std::clamp(idx, 0, 9)]);
        }
        std::putchar('\n');
    }

    // Compare against the machine without compaction.
    gpu::Device ivb_dev(gpu::ivbConfig(Mode::IvbOpt));
    workloads::Workload w2 =
        workloads::makeRayTraceAo(ivb_dev, 1, scene, simd);
    const auto ivb_stats = ivb_dev.launch(w2.kernel, w2.globalSize,
                                          w2.localSize, w2.args);

    std::printf("\nSIMD efficiency        : %.1f%%\n",
                scc_stats.simdEfficiency() * 100);
    std::printf("cycles without SCC     : %llu\n",
                static_cast<unsigned long long>(
                    ivb_stats.totalCycles));
    std::printf("cycles with SCC        : %llu (-%.1f%%)\n",
                static_cast<unsigned long long>(scc_stats.totalCycles),
                100.0 * (1.0 - static_cast<double>(
                                   scc_stats.totalCycles) /
                                   ivb_stats.totalCycles));
    std::printf("EU-cycle reduction     : BCC %.1f%%, SCC %.1f%%\n",
                ivb_stats.euCycleReduction(Mode::Bcc) * 100,
                ivb_stats.euCycleReduction(Mode::Scc) * 100);
    return 0;
}
