/**
 * @file
 * Quickstart: build a SAXPY kernel with the kernel builder, run it on
 * the simulated Ivy Bridge-style GPU, validate the result, and print
 * the headline statistics — the five-minute tour of the library.
 *
 * Run: ./quickstart [n=65536] [mode=ivb|bcc|scc|baseline]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "gpu/device.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const auto n =
        static_cast<std::uint64_t>(opts.getInt("n", 65536));
    const compaction::Mode mode =
        gpu::parseMode(opts.getString("mode", "ivb"));

    // 1. Author a kernel: y[i] = a * x[i] + y[i], SIMD16.
    isa::KernelBuilder b("saxpy", 16);
    auto xs = b.argBuffer("x");
    auto ys = b.argBuffer("y");
    auto a = b.argF("a");
    auto addr = b.tmp(isa::DataType::UD);
    auto x = b.tmp(isa::DataType::F);
    auto y = b.tmp(isa::DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), xs);
    b.gatherLoad(x, addr, isa::DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), ys);
    b.gatherLoad(y, addr, isa::DataType::F);
    b.mad(y, x, a, y);
    b.scatterStore(addr, y, isa::DataType::F);
    const isa::Kernel kernel = b.build();

    std::puts("Generated EU code:");
    std::fputs(isa::kernelToString(kernel).c_str(), stdout);

    // 2. Create a device (Table 3 machine) and upload data.
    gpu::Device dev(gpu::ivbConfig(mode));
    std::vector<float> host_x(n), host_y(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        host_x[i] = static_cast<float>(i % 100);
        host_y[i] = 1.0f;
    }
    const Addr dev_x = dev.uploadVector(host_x);
    const Addr dev_y = dev.uploadVector(host_y);

    // 3. Launch with 64-work-item workgroups.
    const gpu::LaunchStats stats = dev.launch(
        kernel, n, 64,
        {gpu::Arg::buffer(dev_x), gpu::Arg::buffer(dev_y),
         gpu::Arg::f32(2.0f)});

    // 4. Validate.
    const auto result = dev.downloadVector<float>(dev_y, n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const float expected = 2.0f * host_x[i] + 1.0f;
        if (result[i] != expected) {
            std::fprintf(stderr, "MISMATCH at %llu: %f != %f\n",
                         static_cast<unsigned long long>(i), result[i],
                         expected);
            return 1;
        }
    }

    // 5. Report.
    std::printf("\nsaxpy over %llu work items: OK\n",
                static_cast<unsigned long long>(n));
    std::printf("  compaction mode     : %s\n",
                compaction::modeName(mode));
    std::printf("  total cycles        : %llu\n",
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("  instructions        : %llu\n",
                static_cast<unsigned long long>(
                    stats.eu.instructions));
    std::printf("  SIMD efficiency     : %.1f%%\n",
                stats.simdEfficiency() * 100);
    std::printf("  L3 hit rate         : %.1f%%\n",
                100.0 * stats.l3Hits /
                    std::max<std::uint64_t>(
                        1, stats.l3Hits + stats.l3Misses));
    std::printf("  DC throughput       : %.3f lines/cycle\n",
                stats.dcThroughput());
    return 0;
}
