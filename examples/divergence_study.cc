/**
 * @file
 * Divergence study: pick any workload from the suite and see, side by
 * side, what the paper's two techniques buy it — SIMD efficiency, the
 * Figure 9 utilization breakdown, EU-cycle reductions, and measured
 * execution time under every compaction mode.
 *
 * Run: ./divergence_study [workload=mandelbrot] [scale=1] [list=1]
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "gpu/device.hh"
#include "stats/table.hh"
#include "trace/analyzer.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);

    if (opts.getBool("list", false)) {
        std::puts("available workloads:");
        for (const auto &entry : workloads::registry())
            std::printf("  %-18s %s%s\n", entry.name,
                        entry.description,
                        entry.expectDivergent ? " [divergent]" : "");
        return 0;
    }

    const std::string name =
        opts.getString("workload", "mandelbrot");
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    // Functional pass: mask-stream analysis.
    gpu::Device func_dev;
    workloads::Workload wf = workloads::make(name, func_dev, scale);
    trace::TraceAnalyzer analyzer;
    func_dev.launchFunctional(
        wf.kernel, wf.globalSize, wf.localSize, wf.args,
        [&](const isa::Instruction &in, LaneMask mask) {
            analyzer.add(trace::recordOf(in, mask));
        });
    if (!wf.check(func_dev)) {
        std::fprintf(stderr, "reference check FAILED for %s\n",
                     name.c_str());
        return 1;
    }
    const trace::TraceAnalysis &a = analyzer.result();

    std::printf("workload %s (%s): %llu instructions, "
                "SIMD efficiency %.1f%% -> %s\n\n",
                name.c_str(), wf.description.c_str(),
                static_cast<unsigned long long>(a.records),
                a.simdEfficiency() * 100,
                a.isDivergent() ? "divergent" : "coherent");

    stats::Table util({"bin", "fraction"});
    for (unsigned bin = 0; bin < compaction::kNumUtilBins; ++bin) {
        util.row()
            .cell(compaction::utilBinName(
                static_cast<compaction::UtilBin>(bin)))
            .cellPct(a.utilFraction(
                static_cast<compaction::UtilBin>(bin)));
    }
    util.print(std::cout, "SIMD utilization breakdown (Figure 9 bins)");
    std::puts("");

    // Timing pass under each mode.
    stats::Table timing({"mode", "total_cycles", "time_reduction",
                         "eu_cycle_reduction"});
    std::uint64_t ivb_cycles = 0;
    // ivb-opt runs first so the others can normalize against it.
    for (const Mode mode : {Mode::IvbOpt, Mode::Baseline, Mode::Bcc,
                            Mode::Scc}) {
        gpu::Device dev(gpu::ivbConfig(mode));
        workloads::Workload w = workloads::make(name, dev, scale);
        const auto stats =
            dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
        if (mode == Mode::IvbOpt)
            ivb_cycles = stats.totalCycles;
        timing.row()
            .cell(compaction::modeName(mode))
            .cell(stats.totalCycles)
            .cellPct(ivb_cycles
                         ? 1.0 - static_cast<double>(
                               stats.totalCycles) / ivb_cycles
                         : 0.0)
            .cellPct(a.reduction(mode));
    }
    timing.print(std::cout,
                 "Execution under each compaction mode (reductions "
                 "vs ivb-opt)");
    return 0;
}
