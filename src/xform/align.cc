#include "xform/align.hh"

#include <algorithm>

#include "common/types.hh"

namespace iwc::xform
{

namespace
{

bool
sameOperand(const isa::Operand &a, const isa::Operand &b)
{
    if (a.file != b.file)
        return false;
    switch (a.file) {
      case isa::RegFile::Null:
        return true;
      case isa::RegFile::Imm:
        return a.type == b.type && a.imm == b.imm &&
            a.negate == b.negate && a.absolute == b.absolute;
      case isa::RegFile::Grf:
        return a.reg == b.reg && a.subReg == b.subReg &&
            a.type == b.type && a.scalar == b.scalar &&
            a.negate == b.negate && a.absolute == b.absolute;
    }
    return false;
}

} // namespace

bool
sameInstruction(const isa::Instruction &a, const isa::Instruction &b)
{
    if (a.op != b.op || a.simdWidth != b.simdWidth)
        return false;
    if (!sameOperand(a.dst, b.dst) || !sameOperand(a.src0, b.src0) ||
        !sameOperand(a.src1, b.src1) || !sameOperand(a.src2, b.src2))
        return false;
    if (a.predCtrl != b.predCtrl || a.predFlag != b.predFlag)
        return false;
    if (a.condMod != b.condMod || a.condFlag != b.condFlag)
        return false;
    if (a.op == isa::Opcode::Send) {
        return a.send.op == b.send.op && a.send.type == b.send.type &&
            a.send.numRegs == b.send.numRegs;
    }
    return true;
}

unsigned
instrCycles(const isa::Instruction &in)
{
    const unsigned bytes = in.simdWidth * isa::execElemBytes(in);
    return std::max(1u, (bytes + kAluDatapathBytes - 1) / kAluDatapathBytes);
}

Alignment
alignArms(const isa::Instruction *instrs, std::uint32_t t0,
          std::uint32_t t1, std::uint32_t e0, std::uint32_t e1)
{
    const std::uint32_t m = t1 - t0;
    const std::uint32_t n = e1 - e0;

    // dp[i][j] = best score aligning then[i..m) with else[j..n).
    std::vector<unsigned> dp((m + 1) * (n + 1), 0);
    const auto at = [&](std::uint32_t i, std::uint32_t j) -> unsigned & {
        return dp[i * (n + 1) + j];
    };
    for (std::uint32_t i = m; i-- > 0;) {
        for (std::uint32_t j = n; j-- > 0;) {
            unsigned best = std::max(at(i + 1, j), at(i, j + 1));
            if (sameInstruction(instrs[t0 + i], instrs[e0 + j])) {
                best = std::max(
                    best, at(i + 1, j + 1) + instrCycles(instrs[t0 + i]));
            }
            at(i, j) = best;
        }
    }

    Alignment out;
    out.score = at(0, 0);
    out.ops.reserve(m + n);
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    while (i < m || j < n) {
        if (i < m && j < n &&
            sameInstruction(instrs[t0 + i], instrs[e0 + j]) &&
            at(i, j) == at(i + 1, j + 1) + instrCycles(instrs[t0 + i])) {
            out.ops.push_back({AlignKind::Match, t0 + i, e0 + j});
            ++out.matches;
            ++i;
            ++j;
        } else if (i < m && (j == n || at(i, j) == at(i + 1, j))) {
            out.ops.push_back({AlignKind::ThenOnly, t0 + i, 0});
            ++i;
        } else {
            out.ops.push_back({AlignKind::ElseOnly, 0, e0 + j});
            ++j;
        }
    }
    return out;
}

} // namespace iwc::xform
