#include "xform/meld.hh"

#include <algorithm>
#include <bitset>

#include "common/logging.hh"
#include "lint/cfg.hh"
#include "lint/divergence.hh"
#include "lint/verifier.hh"
#include "xform/align.hh"

namespace iwc::xform
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::PredCtrl;

namespace
{

/** ALU/EM source arity (mirrors the interpreter's operand reads). */
unsigned
numAluSrcs(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Rndd:
      case Opcode::Frc:
      case Opcode::Inv:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp2:
      case Opcode::Log2:
        return 1;
      case Opcode::Mad:
        return 3;
      default:
        return 2;
    }
}

using RegSet = std::bitset<kGrfRegCount>;

void
addSpan(RegSet &set, const Operand &op, unsigned width)
{
    const lint::RegSpan span = lint::operandRegs(op, width);
    if (!span.valid)
        return;
    for (unsigned r = span.first; r <= span.last; ++r)
        set.set(r);
}

/** Registers an arm writes (ALU dsts; arms contain no sends). */
RegSet
armWrites(const lint::KernelView &view, std::uint32_t begin,
          std::uint32_t end)
{
    RegSet writes;
    for (std::uint32_t ip = begin; ip < end; ++ip)
        addSpan(writes, view.at(ip).dst, view.at(ip).simdWidth);
    return writes;
}

/**
 * Registers one instruction reads as a broadcast (scalar stride-0
 * source) — the only register reads that cross channel boundaries.
 */
RegSet
scalarReads(const Instruction &in)
{
    RegSet reads;
    const Operand *srcs[3] = {&in.src0, &in.src1, &in.src2};
    const unsigned arity = numAluSrcs(in.op);
    for (unsigned i = 0; i < arity; ++i) {
        if (srcs[i]->isGrf() && srcs[i]->scalar)
            addSpan(reads, *srcs[i], in.simdWidth);
    }
    return reads;
}

RegSet
armScalarReads(const lint::KernelView &view, std::uint32_t begin,
               std::uint32_t end)
{
    RegSet reads;
    for (std::uint32_t ip = begin; ip < end; ++ip)
        reads |= scalarReads(view.at(ip));
    return reads;
}

PredCtrl
oppositeSense(PredCtrl ctrl)
{
    return ctrl == PredCtrl::Normal ? PredCtrl::Inverted
                                    : PredCtrl::Normal;
}

/** One meldable diamond with its alignment, ready for emission. */
struct PlannedMeld
{
    std::uint32_t headIp = 0; ///< ip of the If (start of the cut)
    std::uint32_t endIp = 0;  ///< ip of the EndIf (end of the cut)
    Alignment alignment;
    /** Per alignment op: Match steps safe to merge into one copy. */
    std::vector<bool> mergeable;
    PredCtrl thenSense = PredCtrl::Normal;
    std::uint8_t predFlag = 0;
};

/**
 * Decides the verdict for one If region and, when meldable, plans the
 * alignment and per-pair merge safety.
 */
void
classify(const lint::KernelView &view, const lint::Region &region,
         const lint::DivergenceReport &div, const MeldOptions &options,
         MeldCandidate &cand, PlannedMeld &plan)
{
    const auto head = static_cast<std::uint32_t>(region.headIp);
    const auto end = static_cast<std::uint32_t>(region.endIp);
    const Instruction &ifInstr = view.at(head);

    const std::uint32_t t0 = head + 1;
    const std::uint32_t t1 =
        region.elseIp >= 0 ? static_cast<std::uint32_t>(region.elseIp)
                           : end;
    const std::uint32_t e0 =
        region.elseIp >= 0 ? static_cast<std::uint32_t>(region.elseIp) + 1
                           : end;
    const std::uint32_t e1 = end;

    cand.headIp = head;
    cand.elseIp = region.elseIp;
    cand.endIp = end;
    cand.thenLen = t1 - t0;
    cand.elseLen = e1 - e0;
    for (const lint::BranchClass &b : div.branches) {
        if (b.ip == head) {
            cand.divergent = b.divergent;
            break;
        }
    }

    // An If without a predicate takes every channel down the then arm;
    // the lattice classifies it uniform, and there is no inverse sense
    // to predicate an else arm with.
    if (ifInstr.predCtrl == PredCtrl::None ||
        (!cand.divergent && !options.meldUniform)) {
        cand.verdict = MeldVerdict::UniformBranch;
        return;
    }
    // Channels beyond a narrow If's width mask fall into the else mask,
    // which inverse predication alone cannot reproduce.
    if (ifInstr.simdWidth < view.simdWidth) {
        cand.verdict = MeldVerdict::WidthMismatch;
        return;
    }
    if (cand.thenLen > options.maxArmLen ||
        cand.elseLen > options.maxArmLen) {
        cand.verdict = MeldVerdict::ArmTooLong;
        return;
    }
    for (std::uint32_t ip = t0; ip < e1; ++ip) {
        if (ip == t1 || (region.elseIp >= 0 &&
                         ip == static_cast<std::uint32_t>(region.elseIp)))
            continue;
        const Instruction &in = view.at(ip);
        if (isa::isControlFlow(in.op)) {
            cand.verdict = MeldVerdict::ArmControlFlow;
            return;
        }
        if (in.op == Opcode::Send) {
            cand.verdict = MeldVerdict::ArmSend;
            return;
        }
        if (in.predCtrl != PredCtrl::None) {
            cand.verdict = MeldVerdict::ArmPredicated;
            return;
        }
        if (in.op == Opcode::Cmp && in.condFlag == ifInstr.predFlag) {
            cand.verdict = MeldVerdict::PredFlagClobber;
            return;
        }
    }

    // Broadcast reads observe element 0 across channels, so the value
    // they see depends on cross-arm write order; reject diamonds where
    // one arm broadcasts a register the other arm writes.
    const RegSet thenWrites = armWrites(view, t0, t1);
    const RegSet elseWrites = armWrites(view, e0, e1);
    if ((armScalarReads(view, t0, t1) & elseWrites).any() ||
        (armScalarReads(view, e0, e1) & thenWrites).any()) {
        cand.verdict = MeldVerdict::CrossArmScalarHazard;
        return;
    }

    plan.headIp = head;
    plan.endIp = end;
    plan.alignment = alignArms(view.instrs, t0, t1, e0, e1);
    plan.thenSense = ifInstr.predCtrl;
    plan.predFlag = ifInstr.predFlag;
    plan.mergeable.assign(plan.alignment.ops.size(), false);

    const RegSet anyWrites = thenWrites | elseWrites;
    unsigned emitted = 0;
    unsigned savedMergeCycles = 0;
    for (std::size_t i = 0; i < plan.alignment.ops.size(); ++i) {
        const AlignOp &op = plan.alignment.ops[i];
        if (op.kind != AlignKind::Match) {
            ++emitted;
            continue;
        }
        ++cand.matched;
        const Instruction &in = view.at(op.thenIp);
        // A merged copy runs once under the union mask. That is exact
        // unless the instruction broadcasts a register some arm
        // instruction writes (the two original copies could observe
        // different element-0 values) or its destination is itself a
        // broadcast (stride-0 dst: the surviving channel changes when
        // the masks fuse). Demote those to a predicated pair.
        const bool scalarDst = in.dst.isGrf() && in.dst.scalar;
        if (!scalarDst && (scalarReads(in) & anyWrites).none()) {
            plan.mergeable[i] = true;
            ++cand.merged;
            savedMergeCycles += instrCycles(in);
            ++emitted;
        } else {
            emitted += 2;
        }
    }
    cand.verdict = MeldVerdict::Melded;
    cand.emitted = emitted;
    // Deleted control instructions cost one issue slot each; merged
    // pairs save one full execution.
    cand.savedCycles = savedMergeCycles + (region.elseIp >= 0 ? 3 : 2);
}

/** Appends the melded emission of one diamond, recording new ips. */
void
emitMeld(const lint::KernelView &view, const PlannedMeld &plan,
         std::vector<Instruction> &out, std::vector<std::int32_t> &newIp)
{
    const PredCtrl elseSense = oppositeSense(plan.thenSense);
    for (std::size_t i = 0; i < plan.alignment.ops.size(); ++i) {
        const AlignOp &op = plan.alignment.ops[i];
        switch (op.kind) {
          case AlignKind::Match:
            if (plan.mergeable[i]) {
                newIp[op.thenIp] = static_cast<std::int32_t>(out.size());
                newIp[op.elseIp] = static_cast<std::int32_t>(out.size());
                out.push_back(view.at(op.thenIp));
                break;
            }
            newIp[op.thenIp] = static_cast<std::int32_t>(out.size());
            out.push_back(view.at(op.thenIp));
            out.back().predCtrl = plan.thenSense;
            out.back().predFlag = plan.predFlag;
            newIp[op.elseIp] = static_cast<std::int32_t>(out.size());
            out.push_back(view.at(op.elseIp));
            out.back().predCtrl = elseSense;
            out.back().predFlag = plan.predFlag;
            break;
          case AlignKind::ThenOnly:
            newIp[op.thenIp] = static_cast<std::int32_t>(out.size());
            out.push_back(view.at(op.thenIp));
            out.back().predCtrl = plan.thenSense;
            out.back().predFlag = plan.predFlag;
            break;
          case AlignKind::ElseOnly:
            newIp[op.elseIp] = static_cast<std::int32_t>(out.size());
            out.push_back(view.at(op.elseIp));
            out.back().predCtrl = elseSense;
            out.back().predFlag = plan.predFlag;
            break;
        }
    }
}

} // namespace

const char *
meldVerdictName(MeldVerdict verdict)
{
    switch (verdict) {
      case MeldVerdict::Melded:           return "melded";
      case MeldVerdict::UniformBranch:    return "uniform-branch";
      case MeldVerdict::WidthMismatch:    return "width-mismatch";
      case MeldVerdict::ArmControlFlow:   return "arm-control-flow";
      case MeldVerdict::ArmSend:          return "arm-send";
      case MeldVerdict::ArmPredicated:    return "arm-predicated";
      case MeldVerdict::PredFlagClobber:  return "pred-flag-clobber";
      case MeldVerdict::CrossArmScalarHazard:
        return "cross-arm-scalar-hazard";
      case MeldVerdict::ArmTooLong:       return "arm-too-long";
    }
    return "?";
}

MeldResult
meldKernel(const isa::Kernel &kernel, const MeldOptions &options)
{
    MeldResult result{kernel, {}, false};
    MeldReport &report = result.report;
    report.kernel = kernel.name();

    const lint::KernelView view = lint::KernelView::of(kernel);
    if (lint::verify(view).hasErrors())
        return result;
    report.valid = true;

    lint::Report structure;
    const lint::Cfg cfg = lint::Cfg::build(view, structure);
    const lint::DivergenceReport div = lint::analyzeDivergence(view);

    std::vector<PlannedMeld> plans;
    for (const lint::Region &region : cfg.regions()) {
        if (region.kind != lint::Region::Kind::If)
            continue;
        report.candidates.emplace_back();
        PlannedMeld plan;
        classify(view, region, div, options, report.candidates.back(),
                 plan);
        if (report.candidates.back().melded())
            plans.push_back(std::move(plan));
    }
    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const MeldCandidate &a, const MeldCandidate &b) {
                  return a.headIp < b.headIp;
              });
    if (plans.empty())
        return result;
    // Melded diamonds have straight-line arms, so they never nest and
    // emission can replace each [If, EndIf] span in stream order.
    std::sort(plans.begin(), plans.end(),
              [](const PlannedMeld &a, const PlannedMeld &b) {
                  return a.headIp < b.headIp;
              });

    std::vector<Instruction> out;
    out.reserve(kernel.size());
    std::vector<std::int32_t> newIp(view.size, -1);
    std::size_t next = 0;
    for (std::uint32_t ip = 0; ip < view.size; ++ip) {
        if (next < plans.size() && ip == plans[next].headIp) {
            emitMeld(view, plans[next], out, newIp);
            ip = plans[next].endIp;
            ++next;
            continue;
        }
        newIp[ip] = static_cast<std::int32_t>(out.size());
        out.push_back(view.at(ip));
    }

    // Re-patch branch targets. A target can only land on a deleted ip
    // when a loop's first body instruction was a melded If (LoopEnd
    // targets the body start); map it to the first surviving
    // instruction at or after the old target.
    std::vector<std::int32_t> atOrAfter(view.size + 1);
    std::int32_t nextNew = static_cast<std::int32_t>(out.size());
    atOrAfter[view.size] = nextNew;
    for (std::uint32_t ip = view.size; ip-- > 0;) {
        if (newIp[ip] >= 0)
            nextNew = newIp[ip];
        atOrAfter[ip] = nextNew;
    }
    const auto remap = [&](std::int32_t target) {
        panic_if(target < 0 ||
                     target > static_cast<std::int32_t>(view.size),
                 "meld: branch target %d out of range", target);
        return atOrAfter[static_cast<std::uint32_t>(target)];
    };
    for (Instruction &in : out) {
        if (in.target0 >= 0)
            in.target0 = remap(in.target0);
        if (in.target1 >= 0)
            in.target1 = remap(in.target1);
    }

    isa::Kernel melded(kernel.name(), kernel.simdWidth(), std::move(out),
                       kernel.args(), kernel.firstTempReg(),
                       kernel.regsUsed(), kernel.slmBytes());

    // Legality layer: the transformed kernel must survive the full
    // verifier pipeline. An error here is a melder bug — keep the
    // original kernel and say so rather than shipping it.
    report.postVerify = lint::verify(melded);
    if (report.postVerify.hasErrors()) {
        report.reverted = true;
        return result;
    }
    result.kernel = std::move(melded);
    result.changed = true;
    return result;
}

std::string
renderMeld(const MeldReport &report)
{
    std::string out = report.kernel + ": ";
    if (!report.valid)
        return out + "skipped (fails verification)\n";
    out += std::to_string(report.meldedBranches()) + "/" +
        std::to_string(report.candidates.size()) + " diamond(s) melded";
    if (report.reverted)
        out += " [REVERTED: post-verify failed]";
    out += "\n";
    for (const MeldCandidate &c : report.candidates) {
        out += "  if@" + std::to_string(c.headIp) + " arms " +
            std::to_string(c.thenLen) + "/" + std::to_string(c.elseLen) +
            (c.divergent ? " divergent" : " uniform");
        out += ": ";
        out += meldVerdictName(c.verdict);
        if (c.melded()) {
            out += " (matched " + std::to_string(c.matched) +
                ", merged " + std::to_string(c.merged) + ", emitted " +
                std::to_string(c.emitted) + ", ~" +
                std::to_string(c.savedCycles) + " cycles/exec saved)";
        }
        out += "\n";
    }
    return out;
}

std::string
renderMeldJson(const MeldReport &report)
{
    std::string out = "{\"kernel\":\"" + lint::jsonEscape(report.kernel) +
        "\",\"valid\":" + (report.valid ? "true" : "false") +
        ",\"reverted\":" + (report.reverted ? "true" : "false") +
        ",\"melded\":" + std::to_string(report.meldedBranches()) +
        ",\"candidates\":[";
    for (std::size_t i = 0; i < report.candidates.size(); ++i) {
        const MeldCandidate &c = report.candidates[i];
        if (i)
            out += ",";
        out += "{\"ip\":" + std::to_string(c.headIp) +
            ",\"divergent\":" + (c.divergent ? "true" : "false") +
            ",\"verdict\":\"";
        out += meldVerdictName(c.verdict);
        out += "\",\"thenLen\":" + std::to_string(c.thenLen) +
            ",\"elseLen\":" + std::to_string(c.elseLen) +
            ",\"matched\":" + std::to_string(c.matched) +
            ",\"merged\":" + std::to_string(c.merged) +
            ",\"emitted\":" + std::to_string(c.emitted) +
            ",\"savedCycles\":" + std::to_string(c.savedCycles) + "}";
    }
    out += "]}";
    return out;
}

} // namespace iwc::xform
