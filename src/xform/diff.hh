/**
 * @file
 * The melder's functional differential gate: proves a transformed
 * kernel bit-identical to the original by executing both and
 * comparing everything melding is allowed to preserve.
 *
 * A melded kernel necessarily retires a different instruction stream
 * (that is the point), so the classic per-step ip digest cannot match.
 * What must match, and what the interpreter's scheduling makes
 * deterministic, is:
 *  - the ordered memory-access substream: every send's kind, element
 *    size, execution mask, and per-lane (or block) addresses, tagged
 *    with the issuing thread — threads run to their next barrier in a
 *    fixed order, and sends are never melded, so the global order is
 *    invariant under the transform;
 *  - the final global-memory image (GlobalMemory::digest), which
 *    folds in every value any store produced;
 *  - the workload's host-side reference check.
 * Together these pin both the addresses/masks and the data of every
 * externally visible effect, under either execution backend.
 */

#ifndef IWC_XFORM_DIFF_HH
#define IWC_XFORM_DIFF_HH

#include <cstdint>
#include <string>

#include "func/exec_backend.hh"
#include "xform/meld.hh"

namespace iwc::xform
{

/** Everything one original-vs-melded differential run compared. */
struct MeldDiff
{
    std::string workload;
    /** Branches actually melded; 0 means the kernels are identical. */
    unsigned meldedBranches = 0;
    MeldReport report;

    std::uint64_t memStreamOriginal = 0;
    std::uint64_t memStreamMelded = 0;
    std::uint64_t finalMemOriginal = 0;
    std::uint64_t finalMemMelded = 0;
    std::uint64_t instrsOriginal = 0;
    std::uint64_t instrsMelded = 0;
    bool checkOriginal = false;
    bool checkMelded = false;

    bool
    identical() const
    {
        return memStreamOriginal == memStreamMelded &&
            finalMemOriginal == finalMemMelded && checkOriginal &&
            checkMelded && !report.reverted;
    }
};

/**
 * Builds the named registry workload twice on fresh devices, melds
 * one copy, executes both under @p backend, and compares (see file
 * comment). Fatals only on unknown workload names.
 */
MeldDiff runMeldDiff(const std::string &workload, unsigned scale,
                     func::BackendKind backend,
                     const MeldOptions &options = {});

} // namespace iwc::xform

#endif // IWC_XFORM_DIFF_HH
