#include "xform/diff.hh"

#include <vector>

#include "common/hash.hh"
#include "gpu/device.hh"
#include "workloads/registry.hh"

namespace iwc::xform
{

namespace
{

/**
 * Ordered digest of the externally visible substream of one launch:
 * memory accesses, barriers, and thread retirement, each tagged with
 * the issuing thread — everything except the ips and per-thread step
 * counts melding legitimately changes.
 */
struct EffectDigest
{
    Fnv64 hash;
    std::uint64_t instructions = 0;

    void
    step(const gpu::DetailedStep &s)
    {
        ++instructions;
        const func::StepResult &r = *s.result;
        if (!r.hasMem && !r.isBarrier && !r.isHalt)
            return;
        hash.add(s.workgroup);
        hash.add(s.subgroup);
        hash.add((std::uint64_t{r.isBarrier} << 1) |
                 std::uint64_t{r.isHalt});
        if (!r.hasMem)
            return;
        const func::MemAccess &mem = r.mem;
        hash.add(static_cast<std::uint64_t>(mem.op));
        hash.add(mem.elemBytes);
        hash.add(mem.mask);
        if (mem.isBlock) {
            hash.add(mem.blockAddr);
            hash.add(mem.blockBytes);
            return;
        }
        for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch)
            if (mem.mask & (LaneMask{1} << ch))
                hash.add(mem.addrs[ch]);
    }
};

struct RunOutcome
{
    std::uint64_t memStream = 0;
    std::uint64_t finalMem = 0;
    std::uint64_t instructions = 0;
    bool checkOk = false;
};

RunOutcome
runOnce(const std::string &name, unsigned scale,
        func::BackendKind backend, const MeldOptions *meld,
        MeldReport *report_out)
{
    gpu::Device dev;
    workloads::Workload w = workloads::make(name, dev, scale);
    if (meld != nullptr) {
        MeldResult melded = meldKernel(w.kernel, *meld);
        if (report_out != nullptr)
            *report_out = melded.report;
        w.kernel = std::move(melded.kernel);
    }

    std::vector<std::uint32_t> arg_words;
    arg_words.reserve(w.args.size());
    for (const gpu::Arg &a : w.args)
        arg_words.push_back(a.raw);

    EffectDigest digest;
    gpu::runKernelFunctionalDetailed(
        w.kernel, dev.memory(), w.globalSize, w.localSize, arg_words,
        [&digest](const gpu::DetailedStep &s) { digest.step(s); },
        backend);

    RunOutcome out;
    out.memStream = digest.hash.value();
    out.instructions = digest.instructions;
    out.finalMem = dev.memory().digest();
    out.checkOk = w.check ? w.check(dev) : true;
    return out;
}

} // namespace

MeldDiff
runMeldDiff(const std::string &workload, unsigned scale,
            func::BackendKind backend, const MeldOptions &options)
{
    MeldDiff diff;
    diff.workload = workload;

    const RunOutcome original =
        runOnce(workload, scale, backend, nullptr, nullptr);
    const RunOutcome melded =
        runOnce(workload, scale, backend, &options, &diff.report);

    diff.meldedBranches = diff.report.meldedBranches();
    diff.memStreamOriginal = original.memStream;
    diff.memStreamMelded = melded.memStream;
    diff.finalMemOriginal = original.finalMem;
    diff.finalMemMelded = melded.finalMem;
    diff.instrsOriginal = original.instructions;
    diff.instrsMelded = melded.instructions;
    diff.checkOriginal = original.checkOk;
    diff.checkMelded = melded.checkOk;
    return diff;
}

} // namespace iwc::xform
