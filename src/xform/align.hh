/**
 * @file
 * Instruction-sequence alignment for the control-flow melder: a
 * cycle-weighted global alignment (Needleman-Wunsch over a match /
 * skip-then / skip-else edit alphabet) of the two arms of an if/else
 * diamond. Only semantically identical instructions may pair, so the
 * optimum is a weighted longest-common-subsequence where the weight of
 * a pair is the datapath cycles merging it would save; everything the
 * DP leaves unpaired is later emitted twice under complementary
 * predicates.
 */

#ifndef IWC_XFORM_ALIGN_HH
#define IWC_XFORM_ALIGN_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace iwc::xform
{

/** One step of an arm alignment (a monotone edit script). */
enum class AlignKind : std::uint8_t
{
    Match,    ///< identical instruction in both arms
    ThenOnly, ///< instruction only in the then arm
    ElseOnly, ///< instruction only in the else arm
};

struct AlignOp
{
    AlignKind kind = AlignKind::ThenOnly;
    std::uint32_t thenIp = 0; ///< valid for Match / ThenOnly
    std::uint32_t elseIp = 0; ///< valid for Match / ElseOnly
};

struct Alignment
{
    std::vector<AlignOp> ops;
    unsigned matches = 0; ///< number of Match steps
    unsigned score = 0;   ///< summed instrCycles of matched pairs
};

/**
 * Field-wise semantic equality: opcode, width, operands (including
 * source modifiers), predication, condition modifier and flags, and —
 * for sends — the message descriptor. Branch targets are excluded;
 * the melder never aligns control flow anyway.
 */
bool sameInstruction(const isa::Instruction &a, const isa::Instruction &b);

/**
 * Datapath cycles one full-mask execution of @p in occupies on the
 * 16 B/cycle EU datapath — the similarity weight of the cost model.
 */
unsigned instrCycles(const isa::Instruction &in);

/**
 * Globally aligns the arm instruction ranges [t0, t1) and [e0, e1) of
 * one instruction stream, maximizing the summed cycle weight of
 * matched identical instructions. O(|then| * |else|) time and space.
 */
Alignment alignArms(const isa::Instruction *instrs, std::uint32_t t0,
                    std::uint32_t t1, std::uint32_t e0, std::uint32_t e1);

} // namespace iwc::xform

#endif // IWC_XFORM_ALIGN_HH
