/**
 * @file
 * DARM-style control-flow melding on the Gen-like ISA: a static
 * divergence-reduction optimizer that consumes the lint CFG and the
 * uniform/varying divergence lattice and *transforms* kernels.
 *
 * For every divergent if/else diamond whose arms are straight-line and
 * meld-legal, the pass aligns the two arm instruction sequences
 * (xform/align.hh), merges aligned identical instructions into one
 * unpredicated copy, emits everything else under complementary
 * predicates — then arm under the If's own predicate sense, else arm
 * under the opposite — and deletes the If/Else/EndIf triple, re-
 * patching every surviving branch target.
 *
 * Why this is exact (bit-identical to the original execution): the
 * interpreter computes taken = active & pred & widthMask and
 * elseMask = active & ~taken, so when the If covers the full kernel
 * width the two arm masks partition the active channels, and every
 * per-channel instruction reads and writes only its own channel's
 * lanes. Re-predicating an arm instruction reproduces exactly its
 * original execution mask, and interleaving the arms cannot change
 * any channel's view of the register file — each channel only ever
 * sees writes from its own arm, whose relative order the alignment
 * preserves. The only operations that cross channels are broadcast
 * (scalar) source reads and scalar destination writes; the legality
 * layer rejects diamonds whose broadcasts cross an arm boundary and
 * demotes merge candidates that touch them (emitting a predicated
 * pair instead, which is always exact).
 *
 * The legality layer re-runs the full PR 4 verifier over every
 * transformed kernel and additionally enforces the meld-specific
 * soundness rules: send instructions are never melded (so scoreboard
 * claim/drain behavior is untouched), no arm instruction may clobber
 * the branch predicate flag, and no cross-arm scalar hazards.
 */

#ifndef IWC_XFORM_MELD_HH
#define IWC_XFORM_MELD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "lint/report.hh"

namespace iwc::xform
{

/** Why a diamond was or was not melded. */
enum class MeldVerdict : std::uint8_t
{
    Melded,           ///< transformed into a predicated block
    UniformBranch,    ///< lattice proves the branch never diverges
    WidthMismatch,    ///< If narrower than the kernel SIMD width
    ArmControlFlow,   ///< nested control flow inside an arm
    ArmSend,          ///< memory/barrier send inside an arm
    ArmPredicated,    ///< arm instruction already predicated
    PredFlagClobber,  ///< arm cmp rewrites the branch predicate flag
    CrossArmScalarHazard, ///< broadcast read crosses the arm boundary
    ArmTooLong,       ///< exceeds MeldOptions::maxArmLen
};

const char *meldVerdictName(MeldVerdict verdict);

/** One if/else diamond the detector considered. */
struct MeldCandidate
{
    std::uint32_t headIp = 0; ///< ip of the If
    std::int32_t elseIp = -1; ///< ip of the Else, -1 when absent
    std::uint32_t endIp = 0;  ///< ip of the EndIf
    bool divergent = false;   ///< lattice branch classification
    MeldVerdict verdict = MeldVerdict::UniformBranch;
    unsigned thenLen = 0;     ///< then-arm instruction count
    unsigned elseLen = 0;     ///< else-arm instruction count
    unsigned matched = 0;     ///< aligned identical pairs
    unsigned merged = 0;      ///< pairs actually merged into one copy
    unsigned emitted = 0;     ///< instructions the meld emitted
    /** Estimated datapath cycles saved per both-arms execution. */
    unsigned savedCycles = 0;

    bool melded() const { return verdict == MeldVerdict::Melded; }
};

/** Everything one melder run derived about one kernel. */
struct MeldReport
{
    std::string kernel;
    /** False when the input kernel fails verification (no transform). */
    bool valid = false;
    /** True when the transform was undone by a post-verify failure. */
    bool reverted = false;
    std::vector<MeldCandidate> candidates;
    /** Verifier report over the transformed kernel (when changed). */
    lint::Report postVerify;

    unsigned
    meldedBranches() const
    {
        unsigned n = 0;
        for (const MeldCandidate &c : candidates)
            n += c.melded();
        return n;
    }

    unsigned
    divergentBranches() const
    {
        unsigned n = 0;
        for (const MeldCandidate &c : candidates)
            n += c.divergent;
        return n;
    }
};

struct MeldOptions
{
    /** Also meld diamonds the lattice proves uniform (default: skip —
     *  the EU never splits the mask there, so melding only costs). */
    bool meldUniform = false;
    /** Per-arm instruction count ceiling (profitability guard). */
    unsigned maxArmLen = 48;
};

/** A transformed kernel with the report explaining what happened. */
struct MeldResult
{
    isa::Kernel kernel;
    MeldReport report;
    /** True when the returned kernel differs from the input. */
    bool changed = false;
};

/**
 * Runs the melder over @p kernel. The input must pass the verifier
 * (error-free); otherwise the kernel is returned unchanged with
 * report.valid == false. The transformed kernel is re-verified before
 * it is returned; a post-verify error reverts to the original (and
 * sets report.reverted — a melder bug worth a test case, not a crash).
 */
MeldResult meldKernel(const isa::Kernel &kernel,
                      const MeldOptions &options = {});

/** Human-readable rendering, one line per candidate diamond. */
std::string renderMeld(const MeldReport &report);

/** Machine-readable rendering (a JSON object, candidates as array). */
std::string renderMeldJson(const MeldReport &report);

} // namespace iwc::xform

#endif // IWC_XFORM_MELD_HH
