/**
 * @file
 * One experiment point as a pure job: a RunRequest names a workload
 * (or trace profile), a scale, and a machine configuration; executing
 * it produces a RunResult holding timing statistics or a trace
 * analysis. All mutable state a job needs — the Device, its
 * GlobalMemory, the workload inputs — is created inside the job, so
 * two requests never share mutable state and can run on different
 * threads (see sweep_runner.hh).
 */

#ifndef IWC_RUN_RUN_HH
#define IWC_RUN_RUN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "gpu/gpu_config.hh"
#include "obs/sink.hh"
#include "trace/analyzer.hh"
#include "workloads/workload.hh"

namespace iwc::run
{

/** What executing a request means. */
enum class JobKind
{
    /** Cycle-level simulation; the result carries LaunchStats. */
    Timing,
    /**
     * Functional execution feeding the trace analyzer; the result
     * carries a TraceAnalysis (which reports EU cycles for every
     * compaction mode at once, so one functional run answers all
     * per-mode questions — the SweepRunner caches on this).
     */
    FunctionalTrace,
    /** Synthetic mask-trace generation + analysis (trace workloads). */
    SyntheticTrace,
    /**
     * Replay of an on-disk trace file through the trace analyzer.
     * Container traces (.iwct, see src/tracestream) stream out-of-core
     * and shard across RunRequest::traceJobs threads; legacy
     * flat-binary and text traces load in memory first.
     */
    FileTrace,
    /**
     * Single-build multi-mode timing comparison: the workload and its
     * inputs are built ONCE, the lowest requested mode runs a full
     * simulation capturing the issue trace (see eu/issue_trace.hh),
     * and every other mode replays that trace — full mode-dependent
     * timing, no redundant functional execution, predecode, or plan
     * construction. Per-mode LaunchStats land in RunResult::compare
     * and are bit-identical to individual JobKind::Timing runs of the
     * same modes (gated by tests/test_compare_run.cc). The request's
     * config.eu.mode is ignored; RunRequest::compareModes selects the
     * modes.
     */
    TimingCompare,
};

/**
 * Builds the workload instance a job runs. Defaults to the registry
 * factory for RunRequest::workload; set explicitly for parameterized
 * kernels (lane patterns, nesting depths, datatypes).
 */
using WorkloadFactory =
    std::function<workloads::Workload(gpu::Device &, unsigned)>;

/** See file comment. */
struct RunRequest
{
    JobKind kind = JobKind::Timing;

    /** Registry name; display label when @ref factory is set. */
    std::string workload;
    /** Optional non-registry workload builder (disables caching). */
    WorkloadFactory factory;
    /**
     * Caller-supplied cache identity for @ref factory requests. A
     * factory is an opaque closure, so the harness cannot derive a
     * cache key from it; the caller asserts one here ("every request
     * with this tag, scale, and config builds the same workload").
     * Empty (the default) means "no cache identity": such requests
     * are uncacheable, and the service daemon rejects them outright
     * rather than silently re-simulating (see svc::Engine). Ignored
     * for registry requests, whose name is already their identity.
     */
    std::string cacheTag;
    unsigned scale = 1;
    /** Machine configuration (compaction mode lives in config.eu.mode). */
    gpu::GpuConfig config = gpu::ivbConfig();
    /**
     * Functional execution backend. Anything other than Auto overrides
     * config.eu.backend for this job (both the timing model's
     * issue-time execution and functional-trace runs).
     */
    func::BackendKind backend = func::BackendKind::Auto;
    /** Profile name for JobKind::SyntheticTrace. */
    std::string traceProfile;
    /** Trace file path for JobKind::FileTrace. */
    std::string tracePath;
    /** Analyzer shards for container FileTrace requests (0 = 1). */
    unsigned traceJobs = 1;
    /**
     * FunctionalTrace only: also persist the captured mask trace as a
     * chunked container at this path (bounded memory, written while
     * the analysis runs). Makes the request uncacheable — a cache hit
     * would skip the side effect. Empty = no capture.
     */
    std::string captureTo;
    /** Timing only: run the host-side reference check after launch. */
    bool checkOutput = false;
    /**
     * Timing only: record observability events (see obs/event.hh) into
     * RunResult::events. Off by default — tracing multi-million-cycle
     * sweeps would dwarf the simulation itself in memory.
     */
    bool trace = false;
    /** Max events kept per EU stream when tracing; 0 = unbounded. */
    std::size_t traceCapacity = 0;
    /**
     * Run the static kernel verifier (src/lint) over the built kernel
     * before simulating; any diagnostic is fatal. Cheap next to any
     * simulation, but opt-in so sweeps choose their own strictness.
     */
    bool lint = false;
    /**
     * Run the control-flow melder (src/xform) over the built kernel
     * before simulating: divergent if/else diamonds are if-converted
     * into predicated straight-line code. Functionally bit-identical
     * by construction (the melder re-verifies and reverts on any
     * legality failure), so the flag only changes cycle counts — part
     * of the cache key like lint/checkOutput.
     */
    bool meld = false;
    /**
     * TimingCompare only: bitmask of compaction modes to time, bit m
     * selecting static_cast<compaction::Mode>(m). 0 means all modes.
     */
    std::uint8_t compareModes = 0;

    // --- Convenience constructors ---------------------------------------

    static RunRequest timing(std::string workload, gpu::GpuConfig config,
                             unsigned scale = 1);
    static RunRequest timingCompare(std::string workload,
                                    gpu::GpuConfig config,
                                    unsigned scale = 1,
                                    std::uint8_t modes = 0);
    static RunRequest functionalTrace(std::string workload,
                                      unsigned scale = 1);
    static RunRequest syntheticTrace(std::string profile);
    static RunRequest fileTrace(std::string path, unsigned jobs = 1);
};

/**
 * Full identity of a request for result caching: anything that can
 * change a RunResult bit is either part of this key or makes the
 * request uncacheable (see cacheKeyFor). Two requests with equal
 * keys produce bit-identical results by the same argument that makes
 * SweepRunner's per-sweep sharing sound — every job builds its whole
 * world from (workload identity, scale, config).
 */
struct CacheKey
{
    /** Digest of the workload identity (registry name, cache tag, or
     *  synthetic profile name, tagged by origin). */
    std::uint64_t workloadDigest = 0;
    /** gpu::configDigest of the request's machine configuration. */
    std::uint64_t configDigest = 0;
    std::uint32_t scale = 1;
    std::uint8_t kind = 0;
    std::uint8_t backend = 0;
    /** checkOutput/lint/meld bits — they change the result. */
    std::uint8_t flags = 0;
    /**
     * TimingCompare: the requested mode set. Always 0 for other
     * kinds. The config digest of a compare key is taken with
     * config.eu.mode normalized to Baseline (the mode is irrelevant
     * to a compare result), so without this field two compare
     * requests over different mode sets would alias.
     */
    std::uint8_t modeMask = 0;

    bool operator==(const CacheKey &) const = default;

    /** Stable 64-bit fold of the key (map hashing / wire export). */
    std::uint64_t hash() const;
};

/**
 * The mode set a compare request with @p modes times: masked to the
 * valid modes, with 0 (the default) meaning all of them.
 */
std::uint8_t normalizedCompareModes(std::uint8_t modes);

/**
 * The cache identity of @p request, or nullopt for requests that
 * must not be served from a cache: factory requests without a
 * cacheTag (opaque builder, no asserted identity), tracing requests
 * (their value is the event stream, which is unique to an execution),
 * capture requests (the on-disk trace is a side effect a cache hit
 * would skip), and file-trace requests (the key cannot see the
 * file's contents, so equal paths do not imply equal results).
 */
std::optional<CacheKey> cacheKeyFor(const RunRequest &request);

/** Outcome of one executed request. */
struct RunResult
{
    JobKind kind = JobKind::Timing;
    /** Workload or profile name the job ran. */
    std::string label;

    /**
     * isa::Kernel::digest() of the kernel the job built and ran; 0
     * for synthetic-trace jobs, which have no kernel. Lets callers
     * (and the service protocol) verify that two runs claiming the
     * same cache identity really executed the same instructions.
     */
    std::uint64_t kernelDigest = 0;

    /** Valid for JobKind::Timing. */
    gpu::LaunchStats stats;
    /** Valid for JobKind::FunctionalTrace / SyntheticTrace. */
    trace::TraceAnalysis analysis;
    /** One timed mode of a TimingCompare result. */
    struct ModeStats
    {
        compaction::Mode mode = compaction::Mode::Baseline;
        gpu::LaunchStats stats;
    };
    /** Valid for JobKind::TimingCompare, ascending mode order. */
    std::vector<ModeStats> compare;

    /** Reference-check outcome (Timing with checkOutput=true). */
    bool checked = false;
    bool checkOk = false;

    /** Captured event streams (Timing with trace=true), else null. */
    std::shared_ptr<obs::RingBufferSink> events;
};

/**
 * Executes one request in isolation on the calling thread: fresh
 * Device and GlobalMemory, workload built from scratch. The building
 * block of SweepRunner; callable directly for one-off runs.
 */
RunResult executeRun(const RunRequest &request);

/**
 * The functional-trace computation executeRun performs for
 * JobKind::FunctionalTrace, exposed so the SweepRunner cache can
 * share one execution among the requests that agree on it.
 */
trace::TraceAnalysis analyzeWorkload(const std::string &name,
                                     unsigned scale);

/** As analyzeWorkload, but through an explicit factory. */
trace::TraceAnalysis analyzeWorkload(const WorkloadFactory &factory,
                                     unsigned scale);

/** Synthesizes and analyzes the named paper trace profile. */
trace::TraceAnalysis analyzeSyntheticProfile(const std::string &name);

/** Runs a workload on the timing simulator under @p config. */
gpu::LaunchStats runWorkloadTiming(const std::string &name,
                                   const gpu::GpuConfig &config,
                                   unsigned scale);

} // namespace iwc::run

#endif // IWC_RUN_RUN_HH
