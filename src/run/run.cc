#include "run/run.hh"

#include <bit>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "lint/verifier.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"
#include "tracestream/analyze.hh"
#include "tracestream/writer.hh"
#include "workloads/registry.hh"
#include "xform/meld.hh"

namespace iwc::run
{

namespace
{

workloads::Workload
buildWorkload(const RunRequest &request, gpu::Device &dev)
{
    if (request.factory)
        return request.factory(dev, request.scale);
    return workloads::make(request.workload, dev, request.scale);
}

trace::TraceAnalysis
analyzeBuilt(gpu::Device &dev, const workloads::Workload &w,
             tracestream::ChunkedTraceWriter *capture = nullptr)
{
    trace::TraceAnalyzer analyzer;
    // Every TraceRecord field except execMask is a pure function of
    // the static instruction, so derive them once per ip up front
    // instead of once per dynamic instruction.
    std::vector<trace::TraceRecord> tmpl;
    std::vector<LaneMask> width_mask;
    tmpl.reserve(w.kernel.size());
    width_mask.reserve(w.kernel.size());
    for (const isa::Instruction &in : w.kernel.instructions()) {
        tmpl.push_back(trace::recordOf(in, 0));
        width_mask.push_back(in.widthMask());
    }
    dev.launchFunctionalDetailed(
        w.kernel, w.globalSize, w.localSize, w.args,
        [&](const gpu::DetailedStep &step) {
            trace::TraceRecord r = tmpl[step.ip];
            r.execMask = step.result->execMask & width_mask[step.ip];
            analyzer.add(r);
            if (capture != nullptr)
                capture->append(r);
        });
    return analyzer.result();
}

} // namespace

std::uint64_t
CacheKey::hash() const
{
    Fnv64 h;
    h.add(workloadDigest);
    h.add(configDigest);
    h.add(scale);
    h.addByte(kind);
    h.addByte(backend);
    h.addByte(flags);
    h.addByte(modeMask);
    return h.value();
}

std::uint8_t
normalizedCompareModes(std::uint8_t modes)
{
    constexpr std::uint8_t all =
        (1u << compaction::kNumModes) - 1;
    const std::uint8_t mask = modes & all;
    return mask == 0 ? all : mask;
}

std::optional<CacheKey>
cacheKeyFor(const RunRequest &request)
{
    if (request.trace || !request.captureTo.empty() ||
        request.kind == JobKind::FileTrace)
        return std::nullopt;

    CacheKey key;
    if (request.kind == JobKind::SyntheticTrace) {
        key.workloadDigest = fnv64("t:" + request.traceProfile);
    } else if (request.factory) {
        if (request.cacheTag.empty())
            return std::nullopt;
        key.workloadDigest = fnv64("f:" + request.cacheTag);
    } else {
        key.workloadDigest = fnv64("w:" + request.workload);
    }
    if (request.kind == JobKind::TimingCompare) {
        // The request's own eu.mode cannot influence a compare result
        // (every requested mode is timed explicitly), so normalize it
        // out of the digest; the mode set itself lives in modeMask.
        gpu::GpuConfig norm = request.config;
        norm.eu.mode = compaction::Mode::Baseline;
        key.configDigest = gpu::configDigest(norm);
        key.modeMask = normalizedCompareModes(request.compareModes);
    } else {
        key.configDigest = gpu::configDigest(request.config);
    }
    key.scale = request.scale;
    key.kind = static_cast<std::uint8_t>(request.kind);
    key.backend = static_cast<std::uint8_t>(request.backend);
    key.flags = static_cast<std::uint8_t>(
        (request.checkOutput ? 1u : 0u) | (request.lint ? 2u : 0u) |
        (request.meld ? 4u : 0u));
    return key;
}

RunRequest
RunRequest::timing(std::string workload, gpu::GpuConfig config,
                   unsigned scale)
{
    RunRequest request;
    request.kind = JobKind::Timing;
    request.workload = std::move(workload);
    request.config = std::move(config);
    request.scale = scale;
    return request;
}

RunRequest
RunRequest::timingCompare(std::string workload, gpu::GpuConfig config,
                          unsigned scale, std::uint8_t modes)
{
    RunRequest request;
    request.kind = JobKind::TimingCompare;
    request.workload = std::move(workload);
    request.config = std::move(config);
    request.scale = scale;
    request.compareModes = modes;
    return request;
}

RunRequest
RunRequest::functionalTrace(std::string workload, unsigned scale)
{
    RunRequest request;
    request.kind = JobKind::FunctionalTrace;
    request.workload = std::move(workload);
    request.scale = scale;
    return request;
}

RunRequest
RunRequest::syntheticTrace(std::string profile)
{
    RunRequest request;
    request.kind = JobKind::SyntheticTrace;
    request.traceProfile = std::move(profile);
    return request;
}

RunRequest
RunRequest::fileTrace(std::string path, unsigned jobs)
{
    RunRequest request;
    request.kind = JobKind::FileTrace;
    request.tracePath = std::move(path);
    request.traceJobs = jobs;
    return request;
}

trace::TraceAnalysis
analyzeWorkload(const std::string &name, unsigned scale)
{
    gpu::Device dev;
    const workloads::Workload w = workloads::make(name, dev, scale);
    return analyzeBuilt(dev, w);
}

trace::TraceAnalysis
analyzeWorkload(const WorkloadFactory &factory, unsigned scale)
{
    gpu::Device dev;
    const workloads::Workload w = factory(dev, scale);
    return analyzeBuilt(dev, w);
}

trace::TraceAnalysis
analyzeSyntheticProfile(const std::string &name)
{
    return trace::analyzeTrace(
        trace::synthesize(trace::profileByName(name)));
}

gpu::LaunchStats
runWorkloadTiming(const std::string &name, const gpu::GpuConfig &config,
                  unsigned scale)
{
    gpu::Device dev(config);
    const workloads::Workload w = workloads::make(name, dev, scale);
    return dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
}

RunResult
executeRun(const RunRequest &request)
{
    RunResult result;
    result.kind = request.kind;

    switch (request.kind) {
      case JobKind::Timing: {
        result.label = request.workload;
        gpu::GpuConfig config = request.config;
        if (request.backend != func::BackendKind::Auto)
            config.eu.backend = request.backend;
        if (request.trace) {
            result.events = std::make_shared<obs::RingBufferSink>(
                config.numEus, request.traceCapacity);
            config.sink = result.events.get();
        }
        gpu::Device dev(config);
        workloads::Workload w = buildWorkload(request, dev);
        if (request.meld)
            w.kernel = xform::meldKernel(w.kernel).kernel;
        result.kernelDigest = w.kernel.digest();
        if (request.lint)
            lint::verifyOrDie(w.kernel);
        result.stats =
            dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
        if (request.checkOutput) {
            result.checked = true;
            result.checkOk = w.check ? w.check(dev) : true;
        }
        return result;
      }
      case JobKind::FunctionalTrace: {
        result.label = request.workload;
        gpu::GpuConfig config = request.config;
        if (request.backend != func::BackendKind::Auto)
            config.eu.backend = request.backend;
        gpu::Device dev(config);
        workloads::Workload w = buildWorkload(request, dev);
        if (request.meld)
            w.kernel = xform::meldKernel(w.kernel).kernel;
        result.kernelDigest = w.kernel.digest();
        if (request.lint)
            lint::verifyOrDie(w.kernel);
        if (!request.captureTo.empty()) {
            tracestream::WriterOptions wo;
            wo.name = result.label;
            tracestream::ChunkedTraceWriter capture(request.captureTo,
                                                    std::move(wo));
            result.analysis = analyzeBuilt(dev, w, &capture);
            capture.finish();
        } else {
            result.analysis = analyzeBuilt(dev, w);
        }
        return result;
      }
      case JobKind::SyntheticTrace: {
        result.label = request.traceProfile;
        result.analysis = analyzeSyntheticProfile(request.traceProfile);
        return result;
      }
      case JobKind::FileTrace: {
        result.label = request.tracePath;
        tracestream::StreamAnalyzeOptions options;
        options.jobs = request.traceJobs;
        result.analysis =
            tracestream::analyzeTraceFile(request.tracePath, options);
        return result;
      }
      case JobKind::TimingCompare: {
        fatal_if(request.trace,
                 "TimingCompare cannot record observability events; "
                 "trace the individual Timing runs instead");
        result.label = request.workload;
        gpu::GpuConfig config = request.config;
        if (request.backend != func::BackendKind::Auto)
            config.eu.backend = request.backend;

        // Build the workload and its inputs exactly once.
        gpu::Device dev(config);
        workloads::Workload w = buildWorkload(request, dev);
        if (request.meld)
            w.kernel = xform::meldKernel(w.kernel).kernel;
        result.kernelDigest = w.kernel.digest();
        if (request.lint)
            lint::verifyOrDie(w.kernel);

        // The lowest requested mode leads: one full simulation that
        // captures the issue trace (and owns the output check, whose
        // result is mode-invariant). Every other mode replays.
        const std::uint8_t mask =
            normalizedCompareModes(request.compareModes);
        const unsigned lead =
            static_cast<unsigned>(std::countr_zero(mask));
        eu::IssueTrace trace;
        for (unsigned m = 0; m < compaction::kNumModes; ++m) {
            if ((mask & (1u << m)) == 0)
                continue;
            dev.config().eu.mode = static_cast<compaction::Mode>(m);
            RunResult::ModeStats entry;
            entry.mode = static_cast<compaction::Mode>(m);
            if (m == lead) {
                entry.stats =
                    dev.launchCapture(w.kernel, w.globalSize,
                                      w.localSize, w.args, trace);
                if (request.checkOutput) {
                    result.checked = true;
                    result.checkOk = w.check ? w.check(dev) : true;
                }
            } else {
                entry.stats =
                    dev.launchReplay(w.kernel, w.globalSize,
                                     w.localSize, w.args, trace);
            }
            result.compare.push_back(std::move(entry));
        }
        return result;
      }
    }
    panic("unknown JobKind %d", static_cast<int>(request.kind));
}

} // namespace iwc::run
