/**
 * @file
 * Parallel experiment sweeps. A SweepRunner executes a vector of
 * RunRequests on a pool of worker threads and returns the results in
 * submission order, bit-identical to a serial run: every job owns its
 * whole simulation state, so scheduling cannot change any result.
 *
 * Functional-trace requests that agree on (workload, scale) — e.g.
 * the four compaction modes of one workload — share a single
 * functional execution through a per-sweep cache, and synthetic-trace
 * requests for one profile share a single synthesis.
 *
 *   run::SweepRunner runner(run::sweepOptions(opts)); // jobs=N
 *   auto results = runner.run(requests);              // ordered
 */

#ifndef IWC_RUN_SWEEP_RUNNER_HH
#define IWC_RUN_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "run/run.hh"

namespace iwc::run
{

/** Called after each finished job with (done, total). May print; the
 *  runner serializes invocations. */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/** Runner knobs, typically parsed from the command line. */
struct SweepOptions
{
    /**
     * Worker-thread count. 0 = one per hardware thread; 1 = the
     * legacy serial path (everything runs on the calling thread, no
     * threads are spawned).
     */
    unsigned jobs = 0;
    ProgressFn progress;
};

/** Counters describing the last run() call (cache effectiveness). */
struct SweepStats
{
    /** Distinct functional executions / trace syntheses performed. */
    std::uint64_t traceExecutions = 0;
    /** Requests whose analysis was shared from the per-sweep cache. */
    std::uint64_t traceCacheHits = 0;
    /** Multi-mode compare jobs run on behalf of grouped requests. */
    std::uint64_t compareExecutions = 0;
    /** Timing requests served from a shared compare job. */
    std::uint64_t comparePoints = 0;
};

/**
 * See file comment.
 *
 * Timing requests that differ ONLY in their compaction mode (equal
 * mode-blind cache identity) are additionally routed through one
 * JobKind::TimingCompare job per group: the workload is built and
 * functionally executed once, and every other mode replays the lead
 * mode's issue trace. The per-request results are bit-identical to
 * individual executeRun calls (the invariant the replay layer is
 * built on — see eu/issue_trace.hh), just several times cheaper.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** Resolved worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Executes every request and returns results in submission order.
     * Execution order across threads is unspecified; results are not.
     */
    std::vector<RunResult> run(const std::vector<RunRequest> &requests);

    /**
     * Deterministic parallel-for underlying run(): invokes
     * @p body(0..count-1), each index exactly once, distributed over
     * the worker pool. @p body must not touch state shared between
     * indices without its own synchronization. Exceptions propagate
     * to the caller after all workers drain.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &body);

    /** Cache counters of the most recent run() call. */
    const SweepStats &lastStats() const { return stats_; }

  private:
    unsigned jobs_ = 1;
    ProgressFn progress_;
    SweepStats stats_;
};

} // namespace iwc::run

#endif // IWC_RUN_SWEEP_RUNNER_HH
