#include "run/experiment.hh"

#include <cstdio>
#include <iostream>

namespace iwc::run
{

SweepOptions
sweepOptions(const OptionMap &opts)
{
    SweepOptions options;
    options.jobs = static_cast<unsigned>(opts.getInt("jobs", 0));
    if (opts.getBool("progress", false)) {
        options.progress = [](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\rsweep: %zu/%zu%s", done, total,
                         done == total ? "\n" : "");
            std::fflush(stderr);
        };
    }
    return options;
}

void
printTable(const stats::Table &table, const std::string &title,
           const OptionMap &opts)
{
    if (opts.getBool("csv", false))
        table.printCsv(std::cout);
    else
        table.print(std::cout, title);
    std::cout << '\n';
}

std::string
pct(double fraction)
{
    return stats::formatPct(fraction, 1);
}

} // namespace iwc::run
