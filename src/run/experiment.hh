/**
 * @file
 * Shared plumbing for the experiment drivers (bench/, tools/): option
 * parsing for the sweep runner and table/percent output formatting.
 *
 * Every driver accepts "key=value" options: scale=N (problem size),
 * csv=1 (CSV output), jobs=N (worker threads, default one per
 * hardware thread, 1 = serial), progress=1 (stderr progress line),
 * plus the machine overrides documented in gpu/gpu_config.hh.
 */

#ifndef IWC_RUN_EXPERIMENT_HH
#define IWC_RUN_EXPERIMENT_HH

#include <string>

#include "common/config.hh"
#include "run/sweep_runner.hh"
#include "stats/table.hh"

namespace iwc::run
{

/**
 * Builds SweepOptions from driver options: "jobs" (default 0 = one
 * worker per hardware thread) and "progress" (stderr progress line,
 * off by default so table output stays clean).
 */
SweepOptions sweepOptions(const OptionMap &opts);

/** Prints @p table as text or CSV per the "csv" option. */
void printTable(const stats::Table &table, const std::string &title,
                const OptionMap &opts);

/** Percent formatting of a cycle-reduction fraction. */
std::string pct(double fraction);

} // namespace iwc::run

#endif // IWC_RUN_EXPERIMENT_HH
