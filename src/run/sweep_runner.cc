#include "run/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

namespace iwc::run
{

namespace
{

/**
 * One shared trace analysis: the first request to need it computes
 * it under the once_flag; later requests (other modes of the same
 * workload) reuse the stored result.
 */
struct CacheEntry
{
    std::once_flag once;
    trace::TraceAnalysis analysis;
    std::uint64_t kernelDigest = 0;
};

/** Cache key for requests whose analysis is config-independent. */
std::string
cacheKey(const RunRequest &request)
{
    if (request.factory)
        return {}; // opaque builder: never shared
    if (!request.captureTo.empty())
        return {}; // capture is a side effect sharing would skip
    if (request.kind == JobKind::FunctionalTrace)
        return "w:" + request.workload + "@" +
               std::to_string(request.scale) +
               (request.meld ? "+meld" : "");
    if (request.kind == JobKind::SyntheticTrace)
        return "t:" + request.traceProfile;
    return {};
}

/** One shared multi-mode compare job (see class comment). */
struct CompareGroup
{
    std::once_flag once;
    RunRequest request;       ///< the TimingCompare job to run
    RunResult result;         ///< its multi-mode outcome
    std::vector<std::size_t> members;
};

/**
 * The mode-blind identity of a cacheable Timing request: equal keys
 * mean "the same job except possibly the compaction mode", the
 * precondition for sharing one compare run. Total ordering for map
 * storage.
 */
struct ModeBlindKey
{
    CacheKey key;

    bool
    operator<(const ModeBlindKey &o) const
    {
        const auto tie = [](const CacheKey &k) {
            return std::tuple(k.workloadDigest, k.configDigest, k.scale,
                              k.kind, k.backend, k.flags, k.modeMask);
        };
        return tie(key) < tie(o.key);
    }
};

/** Mode-blind key of @p request, or nullopt if it cannot be grouped. */
std::optional<ModeBlindKey>
modeBlindKeyFor(const RunRequest &request)
{
    if (request.kind != JobKind::Timing)
        return std::nullopt;
    RunRequest blind = request;
    blind.config.eu.mode = compaction::Mode::Baseline;
    const auto key = cacheKeyFor(blind);
    if (!key)
        return std::nullopt; // traced/opaque/side-effecting: never shared
    return ModeBlindKey{*key};
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : progress_(std::move(options.progress))
{
    jobs_ = options.jobs;
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

void
SweepRunner::forEach(std::size_t count,
                     const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    std::mutex progress_mutex;
    std::size_t done = 0;
    auto report = [&] {
        if (!progress_)
            return;
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress_(++done, count);
    };

    // Legacy serial path: no threads, everything on the caller.
    if (jobs_ == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
            report();
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            report();
        }
    };

    const std::size_t workers =
        std::min<std::size_t>(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunRequest> &requests)
{
    stats_ = {};

    // Per-sweep trace cache: group the requests whose analysis is
    // identical by construction so one execution serves all of them.
    std::map<std::string, std::shared_ptr<CacheEntry>> cache;
    std::vector<std::shared_ptr<CacheEntry>> entry_of(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::string key = cacheKey(requests[i]);
        if (key.empty())
            continue;
        auto [it, inserted] =
            cache.emplace(key, std::shared_ptr<CacheEntry>());
        if (inserted)
            it->second = std::make_shared<CacheEntry>();
        else
            ++stats_.traceCacheHits;
        entry_of[i] = it->second;
    }

    // Compare-group routing: cacheable Timing requests that agree on
    // everything but the compaction mode share one TimingCompare job.
    std::map<ModeBlindKey, std::shared_ptr<CompareGroup>> groups;
    std::vector<std::shared_ptr<CompareGroup>> group_of(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto key = modeBlindKeyFor(requests[i]);
        if (!key)
            continue;
        auto [it, inserted] =
            groups.emplace(*key, std::shared_ptr<CompareGroup>());
        if (inserted)
            it->second = std::make_shared<CompareGroup>();
        it->second->members.push_back(i);
    }
    for (auto &[key, group] : groups) {
        if (group->members.size() < 2) {
            group_of[group->members.front()] = nullptr;
            continue;
        }
        RunRequest compare = requests[group->members.front()];
        compare.kind = JobKind::TimingCompare;
        compare.compareModes = 0;
        compare.checkOutput = false;
        for (const std::size_t i : group->members) {
            compare.compareModes |= static_cast<std::uint8_t>(
                1u << static_cast<unsigned>(
                    requests[i].config.eu.mode));
            compare.checkOutput =
                compare.checkOutput || requests[i].checkOutput;
        }
        group->request = std::move(compare);
        for (const std::size_t i : group->members)
            group_of[i] = group;
        stats_.comparePoints += group->members.size();
    }

    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> compare_executions{0};
    std::vector<RunResult> results(requests.size());
    forEach(requests.size(), [&](std::size_t i) {
        const RunRequest &request = requests[i];
        if (const auto &group = group_of[i]) {
            std::call_once(group->once, [&] {
                compare_executions.fetch_add(
                    1, std::memory_order_relaxed);
                group->result = executeRun(group->request);
            });
            const RunResult &shared = group->result;
            RunResult &out = results[i];
            out.kind = JobKind::Timing;
            out.label = shared.label;
            out.kernelDigest = shared.kernelDigest;
            for (const RunResult::ModeStats &entry : shared.compare) {
                if (entry.mode == request.config.eu.mode) {
                    out.stats = entry.stats;
                    break;
                }
            }
            if (request.checkOutput) {
                // The check ran once on the lead mode; its outcome is
                // mode-invariant (the replay-layer invariant).
                out.checked = true;
                out.checkOk = shared.checkOk;
            }
            return;
        }
        if (const auto &entry = entry_of[i]) {
            std::call_once(entry->once, [&] {
                executions.fetch_add(1, std::memory_order_relaxed);
                if (request.kind != JobKind::FunctionalTrace) {
                    entry->analysis =
                        analyzeSyntheticProfile(request.traceProfile);
                } else {
                    // Through executeRun (not analyzeWorkload) so the
                    // shared entry also carries the kernel digest and
                    // melding applies when requested — shared results
                    // stay bit-identical to unshared ones.
                    RunResult shared = executeRun(request);
                    entry->analysis = std::move(shared.analysis);
                    entry->kernelDigest = shared.kernelDigest;
                }
            });
            results[i].kind = request.kind;
            results[i].label = request.kind == JobKind::FunctionalTrace
                                   ? request.workload
                                   : request.traceProfile;
            results[i].kernelDigest = entry->kernelDigest;
            results[i].analysis = entry->analysis;
            return;
        }
        results[i] = executeRun(request);
    });
    stats_.traceExecutions = executions.load();
    stats_.compareExecutions = compare_executions.load();
    return results;
}

} // namespace iwc::run
