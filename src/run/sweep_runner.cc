#include "run/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace iwc::run
{

namespace
{

/**
 * One shared trace analysis: the first request to need it computes
 * it under the once_flag; later requests (other modes of the same
 * workload) reuse the stored result.
 */
struct CacheEntry
{
    std::once_flag once;
    trace::TraceAnalysis analysis;
};

/** Cache key for requests whose analysis is config-independent. */
std::string
cacheKey(const RunRequest &request)
{
    if (request.factory)
        return {}; // opaque builder: never shared
    if (request.kind == JobKind::FunctionalTrace)
        return "w:" + request.workload + "@" +
               std::to_string(request.scale) +
               (request.meld ? "+meld" : "");
    if (request.kind == JobKind::SyntheticTrace)
        return "t:" + request.traceProfile;
    return {};
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : progress_(std::move(options.progress))
{
    jobs_ = options.jobs;
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

void
SweepRunner::forEach(std::size_t count,
                     const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    std::mutex progress_mutex;
    std::size_t done = 0;
    auto report = [&] {
        if (!progress_)
            return;
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress_(++done, count);
    };

    // Legacy serial path: no threads, everything on the caller.
    if (jobs_ == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
            report();
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            report();
        }
    };

    const std::size_t workers =
        std::min<std::size_t>(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunRequest> &requests)
{
    stats_ = {};

    // Per-sweep trace cache: group the requests whose analysis is
    // identical by construction so one execution serves all of them.
    std::map<std::string, std::shared_ptr<CacheEntry>> cache;
    std::vector<std::shared_ptr<CacheEntry>> entry_of(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::string key = cacheKey(requests[i]);
        if (key.empty())
            continue;
        auto [it, inserted] =
            cache.emplace(key, std::shared_ptr<CacheEntry>());
        if (inserted)
            it->second = std::make_shared<CacheEntry>();
        else
            ++stats_.traceCacheHits;
        entry_of[i] = it->second;
    }

    std::atomic<std::uint64_t> executions{0};
    std::vector<RunResult> results(requests.size());
    forEach(requests.size(), [&](std::size_t i) {
        const RunRequest &request = requests[i];
        if (const auto &entry = entry_of[i]) {
            std::call_once(entry->once, [&] {
                executions.fetch_add(1, std::memory_order_relaxed);
                if (request.kind != JobKind::FunctionalTrace)
                    entry->analysis =
                        analyzeSyntheticProfile(request.traceProfile);
                else if (request.meld)
                    // Melding rewrites the kernel, so the analysis is
                    // meld-specific (the key carries a "+meld" tag);
                    // route through executeRun, which applies it.
                    entry->analysis = executeRun(request).analysis;
                else
                    entry->analysis = analyzeWorkload(request.workload,
                                                      request.scale);
            });
            results[i].kind = request.kind;
            results[i].label = request.kind == JobKind::FunctionalTrace
                                   ? request.workload
                                   : request.traceProfile;
            results[i].analysis = entry->analysis;
            return;
        }
        results[i] = executeRun(request);
    });
    stats_.traceExecutions = executions.load();
    return results;
}

} // namespace iwc::run
