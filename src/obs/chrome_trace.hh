/**
 * @file
 * Chrome Trace Format (JSON) exporter, loadable in Perfetto or
 * chrome://tracing. Each EU becomes one process, each EU thread slot
 * one thread track; instruction issues and their preceding stalls are
 * complete ("X") slices, memory transactions get per-slot side tracks,
 * and dispatch/barrier/retire markers are instant events. Whole-GPU
 * events (workgroup dispatch, idle skips) land on a synthetic
 * "simulator" process. Timestamps are simulated cycles rendered as
 * microseconds (1 cycle = 1 us), the usual convention for simulator
 * traces.
 */

#ifndef IWC_OBS_CHROME_TRACE_HH
#define IWC_OBS_CHROME_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace iwc::isa
{
class Kernel;
}

namespace iwc::obs
{

/** Exporter knobs. */
struct ChromeTraceOptions
{
    /** When set, slices are named by disassembly instead of "ip N". */
    const isa::Kernel *kernel = nullptr;
    /** Emit dispatch/barrier/retire instant markers. */
    bool instants = true;
    /** Emit wait:sb / wait:other slices preceding stalled issues. */
    bool stalls = true;
    /** Emit memory-transaction slices on per-slot "mem" tracks. */
    bool mem = true;
};

/** Writes @p events (see RingBufferSink::collect) as trace JSON. */
void writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                      const ChromeTraceOptions &options = {});

/** As writeChromeTrace, to a file (fatal on open failure). */
void writeChromeTraceFile(const std::string &path,
                          const std::vector<Event> &events,
                          const ChromeTraceOptions &options = {});

} // namespace iwc::obs

#endif // IWC_OBS_CHROME_TRACE_HH
