#include "obs/service_stats.hh"

#include "stats/stats.hh"

namespace iwc::obs
{

void
ServiceStats::writeTo(stats::Group &group) const
{
    group.setScalar("svc.submitted", static_cast<double>(submitted));
    group.setScalar("svc.completed", static_cast<double>(completed));
    group.setScalar("svc.executed", static_cast<double>(executed));
    group.setScalar("svc.cache_hits", static_cast<double>(cacheHits));
    group.setScalar("svc.cache_misses", static_cast<double>(cacheMisses));
    group.setScalar("svc.coalesced", static_cast<double>(coalesced));
    group.setScalar("svc.rejected_busy",
                    static_cast<double>(rejectedBusy));
    group.setScalar("svc.rejected_untagged_factory",
                    static_cast<double>(rejectedUntagged));
    group.setScalar("svc.rejected_bad_request",
                    static_cast<double>(rejectedBad));
    group.setScalar("svc.rejected_shutdown",
                    static_cast<double>(rejectedShutdown));
    group.setScalar("svc.latency_samples",
                    static_cast<double>(latencySamples));
    group.setScalar("svc.latency_p50_us",
                    static_cast<double>(latencyP50Us));
    group.setScalar("svc.latency_p95_us",
                    static_cast<double>(latencyP95Us));
    group.setScalar("svc.latency_p99_us",
                    static_cast<double>(latencyP99Us));
}

} // namespace iwc::obs
