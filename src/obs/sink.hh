/**
 * @file
 * Event sinks: where instrumentation points deliver their events.
 *
 * The disabled state is not a sink at all — every instrumentation
 * point holds a raw `EventSink *` that defaults to nullptr and guards
 * emission with a single predictable branch, so a run without tracing
 * executes no observability code beyond that null check (perf_smoke
 * stays within noise and all outputs are bit-identical; see
 * docs/observability.md for the overhead argument). NullSink exists
 * for call sites that want a non-null sink that discards everything.
 *
 * RingBufferSink is the capture sink: one independent buffer per EU
 * (plus one for whole-GPU events), so concurrently-ticked EUs would
 * never contend on a shared tail — "lock-free enough" for the current
 * single-threaded Simulator and for any future per-EU threading.
 * Capacity 0 keeps every event; a bounded capacity keeps the newest
 * events per stream and counts the drops.
 */

#ifndef IWC_OBS_SINK_HH
#define IWC_OBS_SINK_HH

#include <cstddef>
#include <vector>

#include "obs/event.hh"

namespace iwc::obs
{

/** Abstract destination for simulation events. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Delivers one event. Must not throw on the hot path. */
    virtual void emit(const Event &event) = 0;
};

/** Discards everything (explicit "tracing off" object). */
class NullSink final : public EventSink
{
  public:
    void emit(const Event &) override {}
};

/** See file comment. */
class RingBufferSink final : public EventSink
{
  public:
    /**
     * @param num_eus     EU count of the machine being traced; events
     *                    with eu == kGlobalEu land in an extra stream.
     * @param capacity    max events kept per stream; 0 = unbounded.
     */
    explicit RingBufferSink(unsigned num_eus, std::size_t capacity = 0);

    void emit(const Event &event) override;

    /** Streams: one per EU, plus the whole-GPU stream at index numEus(). */
    unsigned numStreams() const
    {
        return static_cast<unsigned>(streams_.size());
    }
    unsigned numEus() const { return numStreams() - 1; }

    /** Events of one stream in emission order (oldest first). */
    std::vector<Event> stream(unsigned index) const;

    /** Events dropped from one stream (bounded capacity only). */
    std::uint64_t dropped(unsigned index) const;
    std::uint64_t totalDropped() const;

    /** Events currently held across all streams. */
    std::uint64_t totalEvents() const;

    /**
     * All held events merged into one sequence ordered by cycle
     * (ties: stream order, then emission order) — the form the
     * exporters consume.
     */
    std::vector<Event> collect() const;

  private:
    struct Stream
    {
        std::vector<Event> events; ///< ring when bounded, else append
        std::size_t head = 0;      ///< oldest element when wrapped
        std::uint64_t drops = 0;
        bool wrapped = false;
    };

    Stream &streamFor(std::uint8_t eu);

    std::vector<Stream> streams_;
    std::size_t capacity_;
};

} // namespace iwc::obs

#endif // IWC_OBS_SINK_HH
