/**
 * @file
 * Service-level observability: the counters the simulation daemon
 * (src/svc) exports — submissions, cache hits/misses, in-flight
 * coalesces, admission rejections — through the same stats path the
 * rest of the tree uses (stats::Group, cf. LaunchStats::writeTo).
 *
 * ServiceCounters is the live, thread-safe accumulator: every field
 * is an independent relaxed atomic, because each one is a statistic,
 * not a synchronization point — readers take a snapshot() that is
 * approximately consistent, which is all a monitoring counter means
 * under concurrency.
 */

#ifndef IWC_OBS_SERVICE_STATS_HH
#define IWC_OBS_SERVICE_STATS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace iwc::stats
{
class Group;
}

namespace iwc::obs
{

/**
 * Lock-free request-latency histogram: one relaxed atomic counter per
 * power-of-two microsecond octave. Quantiles report the upper bound
 * of the bucket holding the requested rank, so they are exact to a
 * factor of two — the right fidelity for a monitoring counter that
 * must cost two relaxed increments per request.
 */
class LatencyHistogram
{
  public:
    static constexpr unsigned kBuckets = 40; ///< up to ~2^39 us (~6 days)

    void
    record(std::uint64_t micros)
    {
        buckets_[bucketOf(micros)].fetch_add(
            1, std::memory_order_relaxed);
    }

    std::uint64_t
    samples() const
    {
        std::uint64_t n = 0;
        for (const auto &b : buckets_)
            n += b.load(std::memory_order_relaxed);
        return n;
    }

    /**
     * Upper bound (µs) of the bucket containing the @p q-quantile
     * sample (0 when empty). Monotone in q by construction.
     */
    std::uint64_t
    quantileUs(double q) const
    {
        std::array<std::uint64_t, kBuckets> counts;
        std::uint64_t total = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            counts[i] = buckets_[i].load(std::memory_order_relaxed);
            total += counts[i];
        }
        if (total == 0)
            return 0;
        const std::uint64_t rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen > rank)
                return upperBoundUs(i);
        }
        return upperBoundUs(kBuckets - 1);
    }

  private:
    static unsigned
    bucketOf(std::uint64_t micros)
    {
        if (micros == 0)
            return 0;
        const unsigned b = static_cast<unsigned>(std::bit_width(micros));
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** Largest value mapping to bucket @p i (bucket 0 holds just 0). */
    static std::uint64_t
    upperBoundUs(unsigned i)
    {
        return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/** Point-in-time copy of the service counters. */
struct ServiceStats
{
    std::uint64_t submitted = 0;  ///< requests entering submit()
    std::uint64_t completed = 0;  ///< replies delivered (any status)
    std::uint64_t executed = 0;   ///< actual simulations performed
    std::uint64_t cacheHits = 0;  ///< served from the result cache
    std::uint64_t cacheMisses = 0; ///< scheduled a fresh execution
    std::uint64_t coalesced = 0;  ///< joined an identical in-flight job
    std::uint64_t rejectedBusy = 0;      ///< admission control
    std::uint64_t rejectedUntagged = 0;  ///< untagged factory requests
    std::uint64_t rejectedBad = 0;       ///< malformed / unknown workload
    std::uint64_t rejectedShutdown = 0;  ///< submitted while draining

    /** Request-latency distribution (µs, factor-of-two resolution). */
    std::uint64_t latencySamples = 0;
    std::uint64_t latencyP50Us = 0;
    std::uint64_t latencyP95Us = 0;
    std::uint64_t latencyP99Us = 0;

    /** Exports every counter into @p group ("svc.cache_hits", ...). */
    void writeTo(stats::Group &group) const;
};

/** See file comment. */
class ServiceCounters
{
  public:
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> rejectedBusy{0};
    std::atomic<std::uint64_t> rejectedUntagged{0};
    std::atomic<std::uint64_t> rejectedBad{0};
    std::atomic<std::uint64_t> rejectedShutdown{0};
    /** Submit-to-reply latency of every delivered reply. */
    LatencyHistogram latency;

    ServiceStats
    snapshot() const
    {
        ServiceStats s;
        s.submitted = submitted.load(std::memory_order_relaxed);
        s.completed = completed.load(std::memory_order_relaxed);
        s.executed = executed.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits.load(std::memory_order_relaxed);
        s.cacheMisses = cacheMisses.load(std::memory_order_relaxed);
        s.coalesced = coalesced.load(std::memory_order_relaxed);
        s.rejectedBusy = rejectedBusy.load(std::memory_order_relaxed);
        s.rejectedUntagged =
            rejectedUntagged.load(std::memory_order_relaxed);
        s.rejectedBad = rejectedBad.load(std::memory_order_relaxed);
        s.rejectedShutdown =
            rejectedShutdown.load(std::memory_order_relaxed);
        s.latencySamples = latency.samples();
        s.latencyP50Us = latency.quantileUs(0.50);
        s.latencyP95Us = latency.quantileUs(0.95);
        s.latencyP99Us = latency.quantileUs(0.99);
        return s;
    }
};

} // namespace iwc::obs

#endif // IWC_OBS_SERVICE_STATS_HH
