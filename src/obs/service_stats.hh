/**
 * @file
 * Service-level observability: the counters the simulation daemon
 * (src/svc) exports — submissions, cache hits/misses, in-flight
 * coalesces, admission rejections — through the same stats path the
 * rest of the tree uses (stats::Group, cf. LaunchStats::writeTo).
 *
 * ServiceCounters is the live, thread-safe accumulator: every field
 * is an independent relaxed atomic, because each one is a statistic,
 * not a synchronization point — readers take a snapshot() that is
 * approximately consistent, which is all a monitoring counter means
 * under concurrency.
 */

#ifndef IWC_OBS_SERVICE_STATS_HH
#define IWC_OBS_SERVICE_STATS_HH

#include <atomic>
#include <cstdint>

namespace iwc::stats
{
class Group;
}

namespace iwc::obs
{

/** Point-in-time copy of the service counters. */
struct ServiceStats
{
    std::uint64_t submitted = 0;  ///< requests entering submit()
    std::uint64_t completed = 0;  ///< replies delivered (any status)
    std::uint64_t executed = 0;   ///< actual simulations performed
    std::uint64_t cacheHits = 0;  ///< served from the result cache
    std::uint64_t cacheMisses = 0; ///< scheduled a fresh execution
    std::uint64_t coalesced = 0;  ///< joined an identical in-flight job
    std::uint64_t rejectedBusy = 0;      ///< admission control
    std::uint64_t rejectedUntagged = 0;  ///< untagged factory requests
    std::uint64_t rejectedBad = 0;       ///< malformed / unknown workload
    std::uint64_t rejectedShutdown = 0;  ///< submitted while draining

    /** Exports every counter into @p group ("svc.cache_hits", ...). */
    void writeTo(stats::Group &group) const;
};

/** See file comment. */
class ServiceCounters
{
  public:
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> rejectedBusy{0};
    std::atomic<std::uint64_t> rejectedUntagged{0};
    std::atomic<std::uint64_t> rejectedBad{0};
    std::atomic<std::uint64_t> rejectedShutdown{0};

    ServiceStats
    snapshot() const
    {
        ServiceStats s;
        s.submitted = submitted.load(std::memory_order_relaxed);
        s.completed = completed.load(std::memory_order_relaxed);
        s.executed = executed.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits.load(std::memory_order_relaxed);
        s.cacheMisses = cacheMisses.load(std::memory_order_relaxed);
        s.coalesced = coalesced.load(std::memory_order_relaxed);
        s.rejectedBusy = rejectedBusy.load(std::memory_order_relaxed);
        s.rejectedUntagged =
            rejectedUntagged.load(std::memory_order_relaxed);
        s.rejectedBad = rejectedBad.load(std::memory_order_relaxed);
        s.rejectedShutdown =
            rejectedShutdown.load(std::memory_order_relaxed);
        return s;
    }
};

} // namespace iwc::obs

#endif // IWC_OBS_SERVICE_STATS_HH
