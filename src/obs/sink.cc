#include "obs/sink.hh"

#include <algorithm>

#include "common/logging.hh"

namespace iwc::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::InstrIssue:
        return "issue";
      case EventKind::MemAccess:
        return "mem";
      case EventKind::Dispatch:
        return "dispatch";
      case EventKind::BarrierArrive:
        return "barrier_arrive";
      case EventKind::BarrierRelease:
        return "barrier_release";
      case EventKind::ThreadRetire:
        return "retire";
      case EventKind::WgDispatch:
        return "wg_dispatch";
      case EventKind::IdleSkip:
        return "idle_skip";
    }
    return "unknown";
}

RingBufferSink::RingBufferSink(unsigned num_eus, std::size_t capacity)
    : streams_(num_eus + 1), capacity_(capacity)
{
    fatal_if(num_eus == 0, "RingBufferSink needs at least one EU");
}

RingBufferSink::Stream &
RingBufferSink::streamFor(std::uint8_t eu)
{
    const unsigned index =
        eu == kGlobalEu ? numEus() : std::min<unsigned>(eu, numEus());
    return streams_[index];
}

void
RingBufferSink::emit(const Event &event)
{
    Stream &s = streamFor(event.eu);
    if (capacity_ == 0) {
        s.events.push_back(event);
        return;
    }
    if (s.events.size() < capacity_) {
        s.events.push_back(event);
        return;
    }
    // Ring: overwrite the oldest event, keep the newest capacity_.
    s.events[s.head] = event;
    s.head = (s.head + 1) % capacity_;
    s.wrapped = true;
    ++s.drops;
}

std::vector<Event>
RingBufferSink::stream(unsigned index) const
{
    const Stream &s = streams_.at(index);
    if (!s.wrapped)
        return s.events;
    std::vector<Event> out;
    out.reserve(s.events.size());
    out.insert(out.end(), s.events.begin() + static_cast<long>(s.head),
               s.events.end());
    out.insert(out.end(), s.events.begin(),
               s.events.begin() + static_cast<long>(s.head));
    return out;
}

std::uint64_t
RingBufferSink::dropped(unsigned index) const
{
    return streams_.at(index).drops;
}

std::uint64_t
RingBufferSink::totalDropped() const
{
    std::uint64_t total = 0;
    for (const Stream &s : streams_)
        total += s.drops;
    return total;
}

std::uint64_t
RingBufferSink::totalEvents() const
{
    std::uint64_t total = 0;
    for (const Stream &s : streams_)
        total += s.events.size();
    return total;
}

std::vector<Event>
RingBufferSink::collect() const
{
    std::vector<Event> all;
    all.reserve(static_cast<std::size_t>(totalEvents()));
    for (unsigned i = 0; i < numStreams(); ++i) {
        const std::vector<Event> s = stream(i);
        all.insert(all.end(), s.begin(), s.end());
    }
    // Streams are individually cycle-ordered; stable_sort by cycle
    // yields a global order with ties broken by (stream, emission).
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &a, const Event &b) {
                         return a.cycle < b.cycle;
                     });
    return all;
}

} // namespace iwc::obs
