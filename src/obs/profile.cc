#include "obs/profile.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>

#include "isa/disasm.hh"
#include "isa/kernel.hh"

namespace iwc::obs
{

namespace
{

/** Counter deltas applied when a sweep reaches a given cycle. */
struct Deltas
{
    int busy = 0;    ///< pipes executing an instruction
    int live = 0;    ///< dispatched, not-yet-retired slots
    int barrier = 0; ///< live slots blocked at a barrier
};

} // namespace

std::vector<EuOccupancy>
computeOccupancy(const std::vector<Event> &events, Cycle total_cycles,
                 unsigned num_eus)
{
    std::vector<EuOccupancy> occ(num_eus);
    // Per-EU edge lists for the interval sweep. Intervals:
    //  - busy:    [issue, issue + occCycles)
    //  - live:    [dispatch readyAt, retire + 1) — the retiring Halt
    //             still issues on its cycle
    //  - barrier: [arrive + 1, release + 1) — the barrier instruction
    //             itself issues on the arrival cycle
    std::vector<std::map<Cycle, Deltas>> edges(num_eus);
    for (const Event &e : events) {
        if (e.eu >= num_eus)
            continue; // whole-GPU events carry no EU occupancy
        EuOccupancy &o = occ[e.eu];
        std::map<Cycle, Deltas> &ed = edges[e.eu];
        switch (e.kind) {
          case EventKind::InstrIssue: {
            const IssuePayload &p = e.issue;
            ++o.instructions;
            o.waitSb += p.waitSb;
            o.waitOther += p.waitTotal - p.waitSb;
            if (p.occCycles > 0) {
                ++ed[e.cycle].busy;
                --ed[e.cycle + p.occCycles].busy;
            }
            break;
          }
          case EventKind::MemAccess:
            ++o.memMessages;
            break;
          case EventKind::Dispatch:
            ++ed[e.cycle].live;
            break;
          case EventKind::ThreadRetire:
            --ed[e.cycle + 1].live;
            break;
          case EventKind::BarrierArrive:
            ++ed[e.cycle + 1].barrier;
            break;
          case EventKind::BarrierRelease:
            --ed[e.cycle + 1].barrier;
            break;
          case EventKind::WgDispatch:
          case EventKind::IdleSkip:
            break;
        }
    }

    for (unsigned i = 0; i < num_eus; ++i) {
        EuOccupancy &o = occ[i];
        Cycle prev = 0;
        int busy = 0, live = 0, barrier = 0;
        auto classify = [&](Cycle until) {
            const Cycle end = std::min(until, total_cycles);
            if (end <= prev)
                return;
            const std::uint64_t span = end - prev;
            if (busy > 0)
                o.busy += span;
            else if (live <= 0)
                o.idle += span;
            else if (barrier >= live)
                o.barrier += span;
            else
                o.stall += span;
        };
        for (const auto &[cycle, d] : edges[i]) {
            classify(cycle);
            prev = std::min(cycle, total_cycles);
            busy += d.busy;
            live += d.live;
            barrier += d.barrier;
        }
        classify(total_cycles);
    }
    return occ;
}

void
writeOccupancyCsv(std::ostream &os,
                  const std::vector<EuOccupancy> &occupancy,
                  Cycle total_cycles, const RunCounters &counters)
{
    os << "eu,total_cycles,busy_cycles,stall_cycles,"
          "stall_barrier_cycles,idle_cycles,busy_pct,"
          "wait_sb_slot_cycles,wait_other_slot_cycles,"
          "instructions,mem_messages,"
          "plan_cache_hits,plan_cache_misses,"
          "idle_cycles_skipped,idle_skips,dropped_events\n";
    char buf[256];
    EuOccupancy sum;
    auto row = [&](const std::string &label, const EuOccupancy &o,
                   std::uint64_t total, const RunCounters &c) {
        const double pct = total != 0
            ? 100.0 * static_cast<double>(o.busy) / total
            : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%.2f,%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                      label.c_str(), total,
                      o.busy, o.stall + o.barrier, o.barrier, o.idle, pct,
                      o.waitSb, o.waitOther, o.instructions, o.memMessages,
                      c.planCacheHits, c.planCacheMisses,
                      c.idleCyclesSkipped, c.idleSkips, c.droppedEvents);
        os << buf;
    };
    for (std::size_t i = 0; i < occupancy.size(); ++i) {
        const EuOccupancy &o = occupancy[i];
        // Per-EU rows leave the run-level counter columns at zero.
        row("eu" + std::to_string(i), o, total_cycles, RunCounters{});
        sum.busy += o.busy;
        sum.stall += o.stall;
        sum.barrier += o.barrier;
        sum.idle += o.idle;
        sum.waitSb += o.waitSb;
        sum.waitOther += o.waitOther;
        sum.instructions += o.instructions;
        sum.memMessages += o.memMessages;
    }
    // The total row keeps the identity busy + stall + idle == total by
    // reporting EU-cycles (num_eus * total_cycles) as its total.
    row("total", sum, total_cycles * occupancy.size(), counters);
}

std::vector<IpProfile>
computeHotspots(const std::vector<Event> &events)
{
    std::map<std::uint32_t, IpProfile> by_ip;
    for (const Event &e : events) {
        if (e.kind != EventKind::InstrIssue)
            continue;
        const IssuePayload &p = e.issue;
        IpProfile &prof = by_ip[e.ip];
        prof.ip = e.ip;
        prof.simdWidth = p.simdWidth;
        ++prof.count;
        const unsigned lanes = static_cast<unsigned>(
            std::popcount(static_cast<std::uint32_t>(p.execMask)));
        prof.sumLanes += lanes;
        prof.laneHist[std::min<unsigned>(lanes, kMaxSimdWidth)]++;
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            prof.cyclesByMode[m] += p.modeCycles[m];
    }
    std::vector<IpProfile> out;
    out.reserve(by_ip.size());
    for (auto &[ip, prof] : by_ip)
        out.push_back(prof);
    return out;
}

namespace
{

std::string
laneHistString(const IpProfile &p)
{
    std::string out;
    char buf[48];
    for (unsigned lanes = 0; lanes <= kMaxSimdWidth; ++lanes) {
        if (p.laneHist[lanes] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s%u:%" PRIu64,
                      out.empty() ? "" : " ", lanes, p.laneHist[lanes]);
        out += buf;
    }
    return out;
}

} // namespace

void
writeHotspotReport(std::ostream &os,
                   const std::vector<IpProfile> &profiles,
                   const isa::Kernel *kernel, std::size_t top_n,
                   std::uint64_t dropped_events)
{
    using compaction::Mode;
    if (dropped_events != 0) {
        char warn[128];
        std::snprintf(warn, sizeof(warn),
                      "WARNING: event ring dropped %" PRIu64
                      " records; this report is truncated "
                      "(raise the ring capacity)\n",
                      dropped_events);
        os << warn;
    }
    std::vector<IpProfile> ranked = profiles;
    auto saved = [](const IpProfile &p, Mode m) {
        return static_cast<std::int64_t>(p.cycles(Mode::IvbOpt))
            - static_cast<std::int64_t>(p.cycles(m));
    };
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](const IpProfile &a, const IpProfile &b) {
                         const std::int64_t sa = saved(a, Mode::Scc);
                         const std::int64_t sb = saved(b, Mode::Scc);
                         if (sa != sb)
                             return sa > sb;
                         return a.cycles(Mode::IvbOpt)
                             > b.cycles(Mode::IvbOpt);
                     });
    if (top_n != 0 && ranked.size() > top_n)
        ranked.resize(top_n);

    IpProfile total;
    for (const IpProfile &p : profiles) {
        total.count += p.count;
        total.sumLanes += p.sumLanes;
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            total.cyclesByMode[m] += p.cyclesByMode[m];
    }

    os << "divergence hotspots (ranked by EU cycles SCC saves vs "
          "IvbOpt)\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "total: %" PRIu64 " instructions, EU cycles "
                  "base=%" PRIu64 " ivb=%" PRIu64 " bcc=%" PRIu64
                  " scc=%" PRIu64 " (bcc saves %" PRId64
                  ", scc saves %" PRId64 ")\n\n",
                  total.count, total.cycles(Mode::Baseline),
                  total.cycles(Mode::IvbOpt), total.cycles(Mode::Bcc),
                  total.cycles(Mode::Scc), saved(total, Mode::Bcc),
                  saved(total, Mode::Scc));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "%6s %10s %8s %10s %10s %10s %10s %10s %10s  %s\n",
                  "ip", "execs", "avg_occ", "cyc_base", "cyc_ivb",
                  "cyc_bcc", "cyc_scc", "saved_bcc", "saved_scc",
                  "instruction / lane histogram");
    os << buf;
    for (const IpProfile &p : ranked) {
        const double avg_occ = p.count != 0 && p.simdWidth != 0
            ? static_cast<double>(p.sumLanes)
                / (static_cast<double>(p.count) * p.simdWidth)
            : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "%6u %10" PRIu64 " %7.1f%% %10" PRIu64
                      " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                      " %10" PRId64 " %10" PRId64 "  ",
                      p.ip, p.count, 100.0 * avg_occ,
                      p.cycles(Mode::Baseline), p.cycles(Mode::IvbOpt),
                      p.cycles(Mode::Bcc), p.cycles(Mode::Scc),
                      saved(p, Mode::Bcc), saved(p, Mode::Scc));
        os << buf;
        if (kernel != nullptr && p.ip < kernel->size())
            os << isa::instrToString(kernel->instructions()[p.ip]);
        else
            os << "ip " << p.ip;
        os << "  [" << laneHistString(p) << "]\n";
    }
}

} // namespace iwc::obs
