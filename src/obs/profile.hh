/**
 * @file
 * Profile reductions over an event stream: per-EU occupancy / stall
 * breakdown and the per-instruction-pointer divergence hotspot report
 * — the numbers a kernel author reads to decide whether BCC/SCC pays
 * for a given kernel and where its cycles actually go.
 *
 * Occupancy classifies every simulated cycle of every EU into exactly
 * one of busy / stall / barrier / idle (priority in that order when
 * states overlap across slots), so busy + stall + barrier + idle ==
 * totalCycles per EU by construction. The classification is derived
 * from the event stream by an interval sweep, not by re-simulating:
 *  - busy:    some pipe on the EU is executing an instruction,
 *  - stall:   no pipe busy, but a live slot is blocked (scoreboard,
 *             memory, fence, pipe contention),
 *  - barrier: every live slot is waiting at a workgroup barrier,
 *  - idle:    no live slots (before dispatch / after drain; the
 *             dispatch-latency ramp counts as idle).
 * Exact results require a capture with no ring-buffer drops.
 */

#ifndef IWC_OBS_PROFILE_HH
#define IWC_OBS_PROFILE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace iwc::isa
{
class Kernel;
}

namespace iwc::obs
{

/** Cycle breakdown of one EU; see file comment for the taxonomy. */
struct EuOccupancy
{
    std::uint64_t busy = 0;
    std::uint64_t stall = 0;
    std::uint64_t barrier = 0;
    std::uint64_t idle = 0;

    /** Slot-weighted stall attribution (sums slot-cycles, so one EU
     *  cycle with three waiting slots counts three; complements the
     *  exclusive per-EU classification above). */
    std::uint64_t waitSb = 0;
    std::uint64_t waitOther = 0;

    std::uint64_t instructions = 0;
    std::uint64_t memMessages = 0;

    std::uint64_t total() const { return busy + stall + barrier + idle; }
};

/** Per-EU occupancy from an event stream (see RingBufferSink::collect). */
std::vector<EuOccupancy> computeOccupancy(const std::vector<Event> &events,
                                          Cycle total_cycles,
                                          unsigned num_eus);

/** Run-level counters folded into the CSV's total row. */
struct RunCounters
{
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    std::uint64_t idleCyclesSkipped = 0;
    std::uint64_t idleSkips = 0;
    /** Events the capture ring discarded (RingBufferSink::totalDropped).
     *  Non-zero means every artifact built from this stream is
     *  truncated — occupancy undercounts and hotspots are partial. */
    std::uint64_t droppedEvents = 0;
};

/**
 * Writes the occupancy breakdown as CSV: one row per EU plus a total
 * row carrying the run-level counters. The stall_cycles column folds
 * barrier waits in (broken out in stall_barrier_cycles), so per row
 * busy + stall + idle == total simulated cycles.
 */
void writeOccupancyCsv(std::ostream &os,
                       const std::vector<EuOccupancy> &occupancy,
                       Cycle total_cycles,
                       const RunCounters &counters = {});

/** Aggregated issue profile of one static instruction. */
struct IpProfile
{
    std::uint32_t ip = 0;
    unsigned simdWidth = 16;
    std::uint64_t count = 0;    ///< dynamic executions
    std::uint64_t sumLanes = 0; ///< enabled lanes summed over executions
    /** EU cycles this ip would cost under each compaction mode. */
    std::array<std::uint64_t, compaction::kNumModes> cyclesByMode{};
    /** Execution-mask histogram keyed by enabled-lane count. */
    std::array<std::uint64_t, kMaxSimdWidth + 1> laneHist{};

    std::uint64_t
    cycles(compaction::Mode m) const
    {
        return cyclesByMode[static_cast<unsigned>(m)];
    }
};

/** Per-ip profiles (ascending ip) from an event stream. */
std::vector<IpProfile> computeHotspots(const std::vector<Event> &events);

/**
 * Writes the divergence hotspot report: per-ip executions, mean
 * occupancy, per-mode cycles, cycles saved by BCC/SCC relative to
 * IvbOpt, and the mask histogram, ranked by SCC savings. @p kernel
 * (optional) names rows by disassembly. @p top_n limits rows (0 = all).
 */
void writeHotspotReport(std::ostream &os,
                        const std::vector<IpProfile> &profiles,
                        const isa::Kernel *kernel = nullptr,
                        std::size_t top_n = 0,
                        std::uint64_t dropped_events = 0);

} // namespace iwc::obs

#endif // IWC_OBS_PROFILE_HH
