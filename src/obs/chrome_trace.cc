#include "obs/chrome_trace.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "common/logging.hh"
#include "eu/pipes.hh"
#include "isa/disasm.hh"
#include "isa/kernel.hh"

namespace iwc::obs
{

namespace
{

/** Synthetic pid for whole-GPU events (kGlobalEu). */
constexpr unsigned kSimPid = 255;
/** Memory-transaction tracks sit at tid = slot + this offset. */
constexpr unsigned kMemTidBase = 64;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
sliceName(const Event &e, const isa::Kernel *kernel)
{
    if (kernel != nullptr && e.ip < kernel->size())
        return jsonEscape(isa::instrToString(kernel->instructions()[e.ip]));
    char buf[48];
    const char *pipe = "ctrl";
    switch (static_cast<eu::PipeKind>(e.issue.pipe)) {
      case eu::PipeKind::Fpu:
        pipe = "fpu";
        break;
      case eu::PipeKind::Em:
        pipe = "em";
        break;
      case eu::PipeKind::Send:
        pipe = "send";
        break;
      case eu::PipeKind::Ctrl:
        pipe = "ctrl";
        break;
    }
    std::snprintf(buf, sizeof(buf), "ip %u (%s)", e.ip, pipe);
    return buf;
}

/** Emits one complete ("X") slice. */
void
slice(std::ostream &os, bool &first, const std::string &name,
      unsigned pid, unsigned tid, Cycle ts, std::uint64_t dur,
      const std::string &args)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"", first ? "" : ",\n");
    os << buf << name << "\",\"ph\":\"X\",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (!args.empty())
        os << ",\"args\":{" << args << "}";
    os << "}";
    first = false;
}

/** Emits one instant ("i") marker. */
void
instant(std::ostream &os, bool &first, const std::string &name,
        unsigned pid, unsigned tid, Cycle ts, const std::string &args)
{
    os << (first ? "" : ",\n") << "{\"name\":\"" << name
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
       << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (!args.empty())
        os << ",\"args\":{" << args << "}";
    os << "}";
    first = false;
}

/** Emits one metadata ("M") record naming a process or thread. */
void
metadata(std::ostream &os, bool &first, const char *what, unsigned pid,
         int tid, const std::string &name)
{
    os << (first ? "" : ",\n") << "{\"name\":\"" << what
       << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (tid >= 0)
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"" << name << "\"}}";
    first = false;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                 const ChromeTraceOptions &options)
{
    os << "{\n\"traceEvents\": [\n";
    bool first = true;

    // Name every (pid, tid) pair that will appear, so Perfetto shows
    // "EU0 / slot2" instead of raw ids.
    std::set<std::pair<unsigned, unsigned>> tracks;
    bool sim_track = false;
    for (const Event &e : events) {
        if (e.eu == kGlobalEu) {
            sim_track = true;
            continue;
        }
        tracks.emplace(e.eu, e.slot);
        if (options.mem && e.kind == EventKind::MemAccess)
            tracks.emplace(e.eu, e.slot + kMemTidBase);
    }
    std::set<unsigned> pids;
    for (const auto &[pid, tid] : tracks)
        pids.insert(pid);
    for (const unsigned pid : pids)
        metadata(os, first, "process_name", pid, -1,
                 "EU" + std::to_string(pid));
    for (const auto &[pid, tid] : tracks) {
        const std::string name = tid >= kMemTidBase
            ? "slot" + std::to_string(tid - kMemTidBase) + ".mem"
            : "slot" + std::to_string(tid);
        metadata(os, first, "thread_name", pid, static_cast<int>(tid),
                 name);
    }
    if (sim_track) {
        metadata(os, first, "process_name", kSimPid, -1, "simulator");
        metadata(os, first, "thread_name", kSimPid, 0, "scheduler");
    }

    char args[192];
    for (const Event &e : events) {
        switch (e.kind) {
          case EventKind::InstrIssue: {
            const IssuePayload &p = e.issue;
            if (options.stalls && p.waitTotal > 0) {
                const bool sb = p.waitSb > 0;
                std::string name = "wait:other";
                if (sb) {
                    name = p.blockReg == kBlockFlag
                        ? "wait:sb(flag)"
                        : "wait:sb(r" + std::to_string(p.blockReg) + ")";
                }
                std::snprintf(args, sizeof(args),
                              "\"wait_sb\":%u,\"wait_total\":%u",
                              p.waitSb, p.waitTotal);
                slice(os, first, name, e.eu, e.slot,
                      e.cycle - p.waitTotal, p.waitTotal, args);
            }
            using compaction::Mode;
            const unsigned ivb =
                p.modeCycles[static_cast<unsigned>(Mode::IvbOpt)];
            const unsigned bcc =
                p.modeCycles[static_cast<unsigned>(Mode::Bcc)];
            const unsigned scc =
                p.modeCycles[static_cast<unsigned>(Mode::Scc)];
            std::snprintf(
                args, sizeof(args),
                "\"ip\":%u,\"mask\":\"0x%x\",\"lanes\":%d,"
                "\"saved_bcc\":%d,\"saved_scc\":%d",
                e.ip, p.execMask,
                std::popcount(static_cast<std::uint32_t>(p.execMask)),
                static_cast<int>(ivb) - static_cast<int>(bcc),
                static_cast<int>(ivb) - static_cast<int>(scc));
            // Zero-cycle issues (a fully-skipped BCC group) still get
            // a minimal slice so they are visible in the viewer.
            slice(os, first, sliceName(e, options.kernel), e.eu, e.slot,
                  e.cycle, std::max<unsigned>(p.occCycles, 1), args);
            break;
          }
          case EventKind::MemAccess:
            if (options.mem) {
                const MemPayload &p = e.mem;
                std::snprintf(args, sizeof(args),
                              "\"ip\":%u,\"lines\":%u,\"latency\":%u",
                              e.ip, p.lines, p.latency);
                slice(os, first,
                      p.isSlm ? "slm" : (p.isWrite ? "store" : "load"),
                      e.eu, e.slot + kMemTidBase, e.cycle, p.latency,
                      args);
            }
            break;
          case EventKind::Dispatch:
            if (options.instants) {
                std::snprintf(args, sizeof(args),
                              "\"wg\":%d,\"subgroup\":%u", e.thread.wgId,
                              e.thread.subgroup);
                instant(os, first, "dispatch", e.eu, e.slot, e.cycle,
                        args);
            }
            break;
          case EventKind::BarrierArrive:
          case EventKind::BarrierRelease:
          case EventKind::ThreadRetire:
            if (options.instants) {
                std::snprintf(args, sizeof(args), "\"wg\":%d",
                              e.thread.wgId);
                instant(os, first, eventKindName(e.kind), e.eu, e.slot,
                        e.cycle, args);
            }
            break;
          case EventKind::WgDispatch:
            if (options.instants) {
                std::snprintf(args, sizeof(args),
                              "\"wg\":%d,\"threads\":%u", e.wg.wgId,
                              e.wg.threads);
                instant(os, first, "wg_dispatch", kSimPid, 0, e.cycle,
                        args);
            }
            break;
          case EventKind::IdleSkip: {
            std::snprintf(args, sizeof(args), "\"cycles\":%" PRIu64,
                          e.skip.resumeCycle - e.cycle);
            slice(os, first, "idle-skip", kSimPid, 0, e.cycle,
                  e.skip.resumeCycle - e.cycle, args);
            break;
          }
        }
    }

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n"
       << "\"otherData\": {\"tool\": \"iwc obs\", "
       << "\"time_unit\": \"1 us = 1 simulated cycle\"}\n}\n";
}

void
writeChromeTraceFile(const std::string &path,
                     const std::vector<Event> &events,
                     const ChromeTraceOptions &options)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open %s for writing", path.c_str());
    writeChromeTrace(os, events, options);
}

} // namespace iwc::obs
