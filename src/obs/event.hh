/**
 * @file
 * Structured simulation events: the vocabulary of the observability
 * subsystem. Every instrumentation point in the timing stack (EU issue,
 * scoreboard stalls, dispatch, barriers, memory transactions, the
 * simulator's idle-cycle skips) emits one fixed-size POD Event into an
 * EventSink (see sink.hh). Events are deliberately small and flat —
 * one 48-byte record per dynamic instruction keeps multi-million-cycle
 * captures cheap — and carry everything the exporters (chrome_trace.hh,
 * profile.hh) need without re-running the simulation.
 */

#ifndef IWC_OBS_EVENT_HH
#define IWC_OBS_EVENT_HH

#include <cstdint>

#include "common/types.hh"
#include "compaction/cycle_plan.hh"

namespace iwc::obs
{

/** What happened. Determines which Event payload member is valid. */
enum class EventKind : std::uint8_t
{
    /**
     * One instruction issued on an EU thread slot. Carries the final
     * execution mask, the per-mode cycle plan (planned cycles under
     * Baseline/IvbOpt/Bcc/Scc regardless of the configured mode, so
     * "cycles skipped by BCC/SCC/IVB" is derivable per instruction),
     * the cycles actually occupied, and the stall attribution for the
     * wait that preceded the issue.
     */
    InstrIssue,
    /** One memory message left an EU (global or SLM). */
    MemAccess,
    /** A subgroup was placed on an EU thread slot. */
    Dispatch,
    /** A thread arrived at its workgroup barrier (slot blocks). */
    BarrierArrive,
    /** A thread's barrier released (slot resumes next cycle). */
    BarrierRelease,
    /** A thread executed Halt and retired from its slot. */
    ThreadRetire,
    /** The dispatcher started a whole workgroup. */
    WgDispatch,
    /** The simulator jumped over provably-dead cycles. */
    IdleSkip,
};

const char *eventKindName(EventKind kind);

/** Event::blockReg value meaning "the flag register, not a GRF". */
constexpr std::int16_t kBlockFlag = -2;
/** Event::blockReg value meaning "no scoreboard stall". */
constexpr std::int16_t kBlockNone = -1;

/** Payload of EventKind::InstrIssue. */
struct IssuePayload
{
    LaneMask execMask;   ///< final execution mask
    /** Planned EU cycles under every compaction mode (Baseline, IvbOpt,
     *  Bcc, Scc — indexed by compaction::Mode). */
    std::uint16_t modeCycles[compaction::kNumModes];
    std::uint16_t occCycles; ///< cycles occupied under the active mode
    /** Cycles the slot sat unable to issue before this instruction
     *  (since its previous issue / dispatch / barrier release),
     *  saturated at 0xffff. */
    std::uint16_t waitTotal;
    /** Portion of waitTotal gated by the scoreboard (RAW/WAW). */
    std::uint16_t waitSb;
    /** GRF register that gated issue longest (scoreboard attribution);
     *  kBlockFlag for a flag register, kBlockNone when waitSb == 0. */
    std::int16_t blockReg;
    std::uint8_t pipe; ///< eu::PipeKind the instruction went to
    std::uint8_t simdWidth;
};

/** Payload of EventKind::MemAccess. */
struct MemPayload
{
    std::uint32_t lines;   ///< distinct cache lines (1 per SLM message)
    std::uint32_t latency; ///< issue-to-completion cycles
    std::uint8_t isWrite;
    std::uint8_t isSlm;
};

/** Payload of EventKind::Dispatch / BarrierArrive / BarrierRelease /
 *  ThreadRetire. */
struct ThreadPayload
{
    std::int32_t wgId;
    std::uint32_t subgroup; ///< Dispatch only; 0 elsewhere
};

/** Payload of EventKind::WgDispatch. */
struct WgPayload
{
    std::int32_t wgId;
    std::uint32_t threads; ///< EU threads the workgroup occupies
};

/** Payload of EventKind::IdleSkip (cycle = jump origin). */
struct SkipPayload
{
    Cycle resumeCycle; ///< first simulated cycle after the jump
};

/** EU id used for whole-GPU events (WgDispatch, IdleSkip). */
constexpr std::uint8_t kGlobalEu = 0xff;

/** One simulation event. See the payload structs for field meaning. */
struct Event
{
    Cycle cycle = 0;      ///< when it happened (simulated cycles)
    std::uint32_t ip = 0; ///< static instruction index (issue/mem/retire)
    EventKind kind = EventKind::InstrIssue;
    std::uint8_t eu = 0;   ///< EU id, or kGlobalEu
    std::uint8_t slot = 0; ///< EU thread slot
    union {
        IssuePayload issue;
        MemPayload mem;
        ThreadPayload thread;
        WgPayload wg;
        SkipPayload skip;
    };

    Event() : issue{} {}
};

static_assert(sizeof(Event) <= 48, "events are meant to stay compact");

} // namespace iwc::obs

#endif // IWC_OBS_EVENT_HH
