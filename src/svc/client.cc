#include "svc/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace iwc::svc
{

bool
Client::connect(const std::string &socket_path, int wait_ms)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(wait_ms);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return true;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendSubmit(const run::RunRequest &request, std::uint64_t req_id)
{
    if (fd_ < 0)
        return false;
    return writeFrame(fd_, MsgType::Submit,
                      encodeSubmit({req_id, request}));
}

bool
Client::recvReply(ClientReply &out)
{
    MsgType type;
    std::string payload;
    for (;;) {
        if (fd_ < 0 || !readFrame(fd_, type, payload))
            return false;
        if (type == MsgType::Result) {
            WireReader r(payload);
            out.reqId = r.u64();
            if (!r.ok())
                return false;
            out.status = Status::Ok;
            out.raw = payload.substr(8);
            out.message.clear();
            return decodeRunResult(out.raw, out.result);
        }
        if (type == MsgType::Error) {
            ErrorMsg err;
            if (!decodeError(payload, err))
                return false;
            out.reqId = err.reqId;
            out.status = err.status;
            out.raw.clear();
            out.result = run::RunResult{};
            out.message = std::move(err.message);
            return true;
        }
        // Unsolicited frame (e.g. a Pong from an earlier control
        // message): skip and keep looking for a reply.
    }
}

bool
Client::call(const run::RunRequest &request, ClientReply &out)
{
    const std::uint64_t id = nextId_++;
    if (!sendSubmit(request, id))
        return false;
    if (!recvReply(out))
        return false;
    return out.reqId == id;
}

bool
Client::ping()
{
    if (fd_ < 0 || !writeFrame(fd_, MsgType::Ping, {}))
        return false;
    MsgType type;
    std::string payload;
    if (!readFrame(fd_, type, payload))
        return false;
    return type == MsgType::Pong;
}

bool
Client::stats(StatsSnapshot &out)
{
    if (fd_ < 0 || !writeFrame(fd_, MsgType::StatsReq, {}))
        return false;
    MsgType type;
    std::string payload;
    if (!readFrame(fd_, type, payload))
        return false;
    return type == MsgType::StatsReply && decodeStats(payload, out);
}

bool
Client::shutdownDaemon()
{
    if (fd_ < 0 || !writeFrame(fd_, MsgType::Shutdown, {}))
        return false;
    MsgType type;
    std::string payload;
    if (!readFrame(fd_, type, payload))
        return false;
    return type == MsgType::Pong;
}

} // namespace iwc::svc
