/**
 * @file
 * Wire protocol of the simulation service: length-prefixed frames
 * carrying explicitly serialized messages over a Unix-domain stream
 * socket.
 *
 * Framing: every message is `u32 payload_length (LE) | u8 type |
 * payload`. Payloads are built field-by-field with WireWriter /
 * WireReader — fixed-width little-endian integers, doubles as raw
 * IEEE-754 bit patterns, strings length-prefixed — never from raw
 * struct memory, so the encoding is independent of host padding and
 * a RunResult round-trips bit-identically (the property the result
 * cache and the golden cross-check tests rely on).
 *
 * A Submit carries a client-chosen request id that the matching
 * Result/Error echoes, so clients may pipeline many requests per
 * connection and accept replies out of order.
 */

#ifndef IWC_SVC_WIRE_HH
#define IWC_SVC_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "run/run.hh"

namespace iwc::svc
{

/** Frame types. */
enum class MsgType : std::uint8_t
{
    Submit = 1,     ///< client -> daemon: reqId + RunRequest
    Result = 2,     ///< daemon -> client: reqId + serialized RunResult
    Error = 3,      ///< daemon -> client: reqId + Status + message
    StatsReq = 4,   ///< client -> daemon: service-counter query
    StatsReply = 5, ///< daemon -> client: StatsSnapshot
    Ping = 6,       ///< client -> daemon: liveness / readiness probe
    Pong = 7,       ///< daemon -> client: Ping (or Shutdown) ack
    Shutdown = 8,   ///< client -> daemon: request graceful shutdown
};

/** Reply status for Error frames and the in-process engine API. */
enum class Status : std::uint8_t
{
    Ok = 0,
    /** Admission control: the client's submission queue is full. */
    Busy = 1,
    /** Malformed or unknown-workload request. */
    BadRequest = 2,
    /** Factory request without a cacheTag (see run::RunRequest). */
    UntaggedFactory = 3,
    /** Daemon is draining; no new submissions accepted. */
    ShuttingDown = 4,
    /** Valid request the service cannot serve (e.g. trace capture). */
    Unsupported = 5,
    InternalError = 6,
};

/** Short stable name ("ok", "busy", ...). */
const char *statusName(Status status);

/** Appends fields to a payload buffer (see file comment). */
class WireWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    void f64(double v);

    /** Length-prefixed string (u32 length + bytes). */
    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked payload parser. Any overrun sticks: ok() turns
 * false and every later read returns zero/empty, so decoders can
 * parse straight-line and check ok() once at the end.
 */
class WireReader
{
  public:
    explicit WireReader(std::string_view data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** ok() and the whole payload was consumed. */
    bool done() const { return ok_ && atEnd(); }

  private:
    bool take(std::size_t n);

    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// --- Message payloads ---------------------------------------------------

/** Submit payload: client request id + the request itself. */
struct SubmitMsg
{
    std::uint64_t reqId = 0;
    run::RunRequest request;
};

/**
 * Encodes a Submit payload. The request must not carry a factory —
 * closures cannot cross the wire; fatal() if one is set. Ignores
 * RunRequest::config.sink (observability is daemon-local).
 */
std::string encodeSubmit(const SubmitMsg &msg);
bool decodeSubmit(std::string_view payload, SubmitMsg &out);

/**
 * Serializes a RunResult (every field except the captured event
 * streams, which the service never produces). The encoded bytes are
 * the canonical result representation: the cache stores them, every
 * coalesced waiter receives the same bytes, and "bit-identical" in
 * tests means byte-equal encodings.
 */
std::string encodeRunResult(const run::RunResult &result);
bool decodeRunResult(std::string_view payload, run::RunResult &out);

/** Error payload. */
struct ErrorMsg
{
    std::uint64_t reqId = 0;
    Status status = Status::InternalError;
    std::string message;
};

std::string encodeError(const ErrorMsg &msg);
bool decodeError(std::string_view payload, ErrorMsg &out);

/** Service counters as exported over the wire (see obs counters). */
struct StatsSnapshot
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t executed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t rejectedBusy = 0;
    std::uint64_t rejectedUntagged = 0;
    std::uint64_t rejectedBad = 0;
    std::uint64_t rejectedShutdown = 0;
    std::uint64_t cacheEntries = 0;
    std::uint64_t cacheEvictions = 0;

    /** Request-latency quantiles (µs, factor-of-two resolution). */
    std::uint64_t latencySamples = 0;
    std::uint64_t latencyP50Us = 0;
    std::uint64_t latencyP95Us = 0;
    std::uint64_t latencyP99Us = 0;

    /** Process-wide shared simulation caches (hits amortized across
     *  every run in the daemon, not just service cache hits). */
    std::uint64_t sharedPlanHits = 0;
    std::uint64_t sharedPlanMisses = 0;
    std::uint64_t predecodeHits = 0;
    std::uint64_t predecodeMisses = 0;
};

std::string encodeStats(const StatsSnapshot &stats);
bool decodeStats(std::string_view payload, StatsSnapshot &out);

// --- Frame I/O ----------------------------------------------------------

/** Default ceiling on accepted frame payloads (defense in depth). */
constexpr std::size_t kMaxFrameBytes = 16u << 20;

/**
 * Writes one frame, handling short writes. Not thread-safe per fd;
 * concurrent writers must serialize externally. Returns false on any
 * I/O error (including EPIPE from a vanished peer).
 */
bool writeFrame(int fd, MsgType type, std::string_view payload);

/**
 * Reads one frame. Returns false on EOF, I/O error, or a payload
 * longer than @p max_payload.
 */
bool readFrame(int fd, MsgType &type, std::string &payload,
               std::size_t max_payload = kMaxFrameBytes);

} // namespace iwc::svc

#endif // IWC_SVC_WIRE_HH
