#include "svc/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace iwc::svc
{

namespace
{

sockaddr_un
socketAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(path.size() >= sizeof(addr.sun_path),
             "socket path too long (%zu bytes, max %zu): %s",
             path.size(), sizeof(addr.sun_path) - 1, path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

void
Daemon::Connection::shutdownIo()
{
    const std::lock_guard<std::mutex> lock(writeMutex);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
Daemon::Connection::closeFd()
{
    const std::lock_guard<std::mutex> lock(writeMutex);
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), engine_(options_.engine)
{
    fatal_if(options_.socketPath.empty(), "daemon needs a socket path");
}

Daemon::~Daemon()
{
    if (started_)
        stop();
    if (stopPipe_[0] >= 0)
        ::close(stopPipe_[0]);
    if (stopPipe_[1] >= 0)
        ::close(stopPipe_[1]);
}

void
Daemon::cleanStaleSocket()
{
    const std::string &path = options_.socketPath;
    struct stat st{};
    if (::lstat(path.c_str(), &st) != 0)
        return; // nothing there
    fatal_if(!S_ISSOCK(st.st_mode),
             "%s exists and is not a socket; refusing to remove it",
             path.c_str());

    // Probe it: a live daemon accepts, a stale file from a crashed
    // one refuses.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(fd < 0, "socket(): %s", std::strerror(errno));
    const sockaddr_un addr = socketAddress(path);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                             sizeof(addr));
    ::close(fd);
    fatal_if(rc == 0, "a daemon is already serving on %s", path.c_str());
    warn("removing stale socket %s", path.c_str());
    fatal_if(::unlink(path.c_str()) != 0, "unlink(%s): %s", path.c_str(),
             std::strerror(errno));
}

void
Daemon::start()
{
    fatal_if(started_, "daemon already started");
    fatal_if(::pipe(stopPipe_) != 0, "pipe(): %s", std::strerror(errno));

    cleanStaleSocket();

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(listenFd_ < 0, "socket(): %s", std::strerror(errno));
    const sockaddr_un addr = socketAddress(options_.socketPath);
    fatal_if(::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind(%s): %s", options_.socketPath.c_str(),
             std::strerror(errno));
    fatal_if(::listen(listenFd_, 128) != 0, "listen(): %s",
             std::strerror(errno));

    engine_.start();
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    inform("iwc_simd serving on %s (%u workers, %u queues, "
           "%zu-entry cache)",
           options_.socketPath.c_str(), engine_.workers(),
           engine_.queues(), options_.engine.cacheEntries);
}

void
Daemon::requestStop()
{
    if (stopRequested_.exchange(true))
        return;
    // Only async-signal-safe calls here: this runs from SIGINT /
    // SIGTERM handlers.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
}

void
Daemon::serveUntilStopped()
{
    char byte;
    for (;;) {
        const ssize_t n = ::read(stopPipe_[0], &byte, 1);
        if (n > 0 || (n < 0 && errno != EINTR))
            break;
    }
    stop();
}

void
Daemon::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    stopRequested_.store(true);

    // 1. Stop accepting: no new clients while draining.
    ::shutdown(listenFd_, SHUT_RDWR);
    acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // 2. Drain the engine. Reader threads are still alive, so every
    //    queued and in-flight job delivers its reply over its
    //    connection; submissions arriving during the drain get
    //    ShuttingDown replies.
    engine_.stop();

    // 3. Tear the connections down: unblock every reader, wait for
    //    all of them to exit, then release the descriptors. Replies
    //    are already delivered (the engine drain joined the workers
    //    that write them).
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::unique_lock<std::mutex> lock(connsMutex_);
        conns = conns_;
        for (const auto &conn : conns)
            conn->shutdownIo();
        connsCv_.wait(lock, [&] { return activeReaders_ == 0; });
        conns_.clear();
    }
    for (const auto &conn : conns)
        conn->closeFd();

    if (::unlink(options_.socketPath.c_str()) != 0 && errno != ENOENT)
        warn("unlink(%s): %s", options_.socketPath.c_str(),
             std::strerror(errno));
    inform("iwc_simd drained and stopped");
}

void
Daemon::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down (or fatal accept error)
        }
        if (stopRequested_.load()) {
            ::close(fd);
            continue;
        }
        // A hung or vanished client must not wedge a reply writer
        // (and with it the drain) forever.
        timeval send_timeout{30, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                     sizeof(send_timeout));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            const std::lock_guard<std::mutex> lock(connsMutex_);
            conn->id = nextClientId_++;
            conns_.push_back(conn);
            ++activeReaders_;
        }
        std::thread([this, conn] { readerLoop(conn); }).detach();
    }
}

void
Daemon::sendReply(const std::shared_ptr<Connection> &conn,
                  std::uint64_t req_id, const Reply &reply)
{
    if (reply.status == Status::Ok) {
        // Result frame: reqId + the cached/serialized result bytes.
        WireWriter w;
        w.u64(req_id);
        std::string payload = w.take();
        payload += *reply.result;
        const std::lock_guard<std::mutex> lock(conn->writeMutex);
        if (conn->fd >= 0)
            writeFrame(conn->fd, MsgType::Result, payload);
        return;
    }
    const std::string payload =
        encodeError({req_id, reply.status, reply.message});
    const std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->fd >= 0)
        writeFrame(conn->fd, MsgType::Error, payload);
}

void
Daemon::readerLoop(const std::shared_ptr<Connection> &conn)
{
    MsgType type;
    std::string payload;
    while (readFrame(conn->fd, type, payload, options_.maxFrameBytes)) {
        switch (type) {
          case MsgType::Submit: {
            SubmitMsg msg;
            if (!decodeSubmit(payload, msg)) {
                Reply reply;
                reply.status = Status::BadRequest;
                reply.message = "malformed Submit frame";
                sendReply(conn, msg.reqId, reply);
                break;
            }
            const std::uint64_t req_id = msg.reqId;
            conn->pending.fetch_add(1);
            engine_.submit(msg.request, conn->id,
                           [this, conn, req_id](const Reply &reply) {
                               sendReply(conn, req_id, reply);
                               if (conn->pending.fetch_sub(1) == 1 &&
                                   conn->eof.load())
                                   conn->closeFd();
                           });
            break;
          }
          case MsgType::Ping: {
            const std::lock_guard<std::mutex> lock(conn->writeMutex);
            if (conn->fd >= 0)
                writeFrame(conn->fd, MsgType::Pong, {});
            break;
          }
          case MsgType::StatsReq: {
            const std::string stats = encodeStats(engine_.wireStats());
            const std::lock_guard<std::mutex> lock(conn->writeMutex);
            if (conn->fd >= 0)
                writeFrame(conn->fd, MsgType::StatsReply, stats);
            break;
          }
          case MsgType::Shutdown: {
            {
                const std::lock_guard<std::mutex> lock(conn->writeMutex);
                if (conn->fd >= 0)
                    writeFrame(conn->fd, MsgType::Pong, {});
            }
            requestStop();
            break;
          }
          default: {
            const std::string err = encodeError(
                {0, Status::BadRequest, "unknown frame type"});
            const std::lock_guard<std::mutex> lock(conn->writeMutex);
            if (conn->fd >= 0)
                writeFrame(conn->fd, MsgType::Error, err);
            break;
          }
        }
    }
    // Peer went away (or shutdownIo during stop()). Drop the
    // connection from the live set; the fd is released by the last
    // in-flight reply (pending refcount) or right here when none is
    // outstanding — never earlier, so a late reply cannot write
    // into a recycled descriptor.
    {
        const std::lock_guard<std::mutex> lock(connsMutex_);
        conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                     conns_.end());
        --activeReaders_;
    }
    connsCv_.notify_all();
    conn->eof.store(true);
    if (conn->pending.load() == 0)
        conn->closeFd();
}

} // namespace iwc::svc
