/**
 * @file
 * The service execution engine: everything the daemon does except
 * sockets, so tests (and in-process embedders) can drive batching,
 * deduplication, caching, fairness, and drain deterministically
 * without a wire.
 *
 * Structure (modelled on a multi-queue storage host: N submission
 * queues in front of a worker pool):
 *
 *   submit() ──► admission ──► result cache ──► in-flight dedup ──►
 *     per-client submission queue ──► worker pool ──► executeRun()
 *
 *  - Admission control: each submission queue is depth-bounded; a
 *    full queue rejects with Status::Busy immediately (backpressure
 *    the client can see) instead of queueing unboundedly.
 *  - Result cache: a bounded LRU over serialized RunResults keyed by
 *    run::CacheKey; a hit replies without touching the simulator.
 *  - Dedup: identical requests in flight coalesce onto one job; all
 *    waiters receive the same result bytes, so coalesced replies are
 *    bit-identical by construction.
 *  - Fairness: clients hash onto queues (client id mod N) and the
 *    workers service queues round-robin, so one client sweeping a
 *    huge config space cannot starve interactive clients — it can
 *    only fill (and then be backpressured on) its own queue.
 *  - Drain: stop() rejects new submissions with ShuttingDown,
 *    finishes every queued and executing job, delivers all replies,
 *    and joins the workers.
 *
 * Every reply callback is invoked with no engine lock held — it may
 * re-enter the engine.
 */

#ifndef IWC_SVC_ENGINE_HH
#define IWC_SVC_ENGINE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/service_stats.hh"
#include "svc/cache.hh"
#include "svc/wire.hh"

namespace iwc::svc
{

/** Engine sizing knobs. */
struct EngineOptions
{
    /** Worker threads. 0 = one per hardware thread. */
    unsigned workers = 0;
    /** Submission queues (fairness granularity). */
    unsigned queues = 4;
    /** Admission bound per queue; a full queue replies Busy. */
    std::size_t maxQueueDepth = 1024;
    /** Result-cache capacity in entries; 0 disables caching. */
    std::size_t cacheEntries = 4096;
    /** Largest accepted RunRequest::scale (memory guard). */
    unsigned maxScale = 64;
    /**
     * When non-empty, every executed FunctionalTrace job also
     * persists its mask trace as a chunked container
     * (<captureDir>/<workload>-s<scale>-<key>.iwct, see
     * src/tracestream) — the daemon's request stream doubles as a
     * regression corpus. Injected after admission/dedup on the
     * worker's copy of the request, so cache identity is untouched:
     * a cache hit means an earlier execution already captured the
     * identical trace.
     */
    std::string captureDir;
};

/** Outcome delivered to a submitter. */
struct Reply
{
    Status status = Status::InternalError;
    /** Serialized RunResult (wire::encodeRunResult) when Ok. */
    ResultBytes result;
    /** Human-readable detail for non-Ok statuses. */
    std::string message;
};

using ReplyFn = std::function<void(const Reply &)>;

/** See file comment. */
class Engine
{
  public:
    explicit Engine(EngineOptions options = {});
    ~Engine();

    /** Spawns the worker pool. Submissions before start() queue up
     *  (useful for deterministic tests). */
    void start();

    /**
     * Graceful drain: rejects new submissions, completes every
     * queued and in-flight job (delivering all replies), joins the
     * workers. Idempotent.
     */
    void stop();

    bool stopping() const;

    /**
     * Submits one request. @p client selects the fairness queue
     * (client mod queues). @p done is invoked exactly once, from
     * this call (rejections, cache hits) or from a worker thread
     * (executions, coalesced joins).
     */
    void submit(const run::RunRequest &request, std::uint64_t client,
                ReplyFn done);

    /** Synchronous submit (blocks until the reply; requires start()
     *  unless the reply is immediate). */
    Reply call(const run::RunRequest &request, std::uint64_t client = 0);

    /** Live counters (hit/miss/coalesce/reject; obs stats path). */
    obs::ServiceStats stats() const { return counters_.snapshot(); }

    /** Counter snapshot in wire form (includes cache occupancy). */
    StatsSnapshot wireStats() const;

    const ResultCache &cache() const { return cache_; }

    unsigned workers() const { return workerCount_; }
    unsigned queues() const
    {
        return static_cast<unsigned>(queues_.size());
    }

  private:
    struct Job
    {
        run::RunRequest request;
        run::CacheKey key;
        std::vector<ReplyFn> waiters;
        /** Submission time of each waiter (latency histogram). */
        std::vector<std::chrono::steady_clock::time_point> waiterStarts;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const run::CacheKey &key) const
        {
            return static_cast<std::size_t>(key.hash());
        }
    };

    /** Pre-admission validation; Ok means executeRun cannot fatal()
     *  on the request's account. */
    Status validate(const run::RunRequest &request,
                    std::string &message) const;

    void workerLoop();

    EngineOptions options_;
    unsigned workerCount_ = 1;
    ResultCache cache_;
    obs::ServiceCounters counters_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::deque<std::shared_ptr<Job>>> queues_;
    std::unordered_map<run::CacheKey, std::shared_ptr<Job>, KeyHash>
        inflight_;
    std::size_t queuedJobs_ = 0; ///< jobs in queues_ (not yet popped)
    unsigned rrNext_ = 0;        ///< round-robin scan start
    bool started_ = false;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace iwc::svc

#endif // IWC_SVC_ENGINE_HH
