#include "svc/engine.hh"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "common/logging.hh"
#include "compaction/shared_plan_table.hh"
#include "func/predecode_cache.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace iwc::svc
{

namespace
{

std::uint64_t
elapsedUs(std::chrono::steady_clock::time_point start)
{
    const auto d = std::chrono::steady_clock::now() - start;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count());
}

} // namespace

Engine::Engine(EngineOptions options) : options_(options),
    cache_(options.cacheEntries)
{
    if (options_.queues == 0)
        options_.queues = 1;
    if (options_.maxQueueDepth == 0)
        options_.maxQueueDepth = 1;
    queues_.resize(options_.queues);
    workerCount_ = options_.workers;
    if (workerCount_ == 0) {
        workerCount_ = std::thread::hardware_concurrency();
        if (workerCount_ == 0)
            workerCount_ = 1;
    }
}

Engine::~Engine()
{
    stop();
}

void
Engine::start()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (started_ || stopping_)
        return;
    started_ = true;
    workers_.reserve(workerCount_);
    for (unsigned i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
Engine::stop()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    // Jobs queued before start() with no workers to drain them would
    // deadlock the join; run them on this thread instead.
    if (workers_.empty())
        workerLoop();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

bool
Engine::stopping() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stopping_;
}

Status
Engine::validate(const run::RunRequest &request,
                 std::string &message) const
{
    if (request.trace) {
        message = "event-trace capture is not servable: the result "
                  "would be the event stream, which is unique to an "
                  "execution (run locally via run::executeRun)";
        return Status::Unsupported;
    }
    if (request.kind == run::JobKind::FileTrace) {
        message = "file-trace replay is not servable: the daemon "
                  "will not read arbitrary server-side paths on a "
                  "client's behalf (run locally via "
                  "run::executeRun or tools/iwc_trace)";
        return Status::Unsupported;
    }
    if (!request.captureTo.empty()) {
        message = "client-chosen capture paths are not servable "
                  "(the daemon's capture_dir= option persists traces "
                  "under an operator-chosen directory instead)";
        return Status::Unsupported;
    }
    if (request.kind == run::JobKind::SyntheticTrace) {
        for (const trace::SyntheticProfile &p :
             trace::paperTraceProfiles())
            if (p.name == request.traceProfile)
                return Status::Ok;
        message = "unknown synthetic trace profile '" +
                  request.traceProfile + "'";
        return Status::BadRequest;
    }
    if (request.scale == 0 || request.scale > options_.maxScale) {
        message = "scale " + std::to_string(request.scale) +
                  " outside [1, " + std::to_string(options_.maxScale) +
                  "]";
        return Status::BadRequest;
    }
    if (request.factory) {
        if (request.cacheTag.empty()) {
            message =
                "factory request without a cacheTag: the service "
                "cannot key an opaque workload builder, and silently "
                "re-simulating would defeat the result cache; set "
                "RunRequest::cacheTag to a stable identity";
            return Status::UntaggedFactory;
        }
    } else {
        bool known = false;
        for (const workloads::Entry &e : workloads::registry())
            if (request.workload == e.name) {
                known = true;
                break;
            }
        if (!known) {
            message = "unknown workload '" + request.workload + "'";
            return Status::BadRequest;
        }
    }
    const gpu::GpuConfig &c = request.config;
    if (c.numEus == 0 || c.eu.numThreads == 0 || c.eu.issueWidth == 0 ||
        c.eu.arbitrationPeriod == 0 || c.mem.dcLinesPerCycle == 0) {
        message = "degenerate machine configuration (zero-sized "
                  "resource)";
        return Status::BadRequest;
    }
    return Status::Ok;
}

void
Engine::submit(const run::RunRequest &request, std::uint64_t client,
               ReplyFn done)
{
    const auto start = std::chrono::steady_clock::now();
    counters_.submitted.fetch_add(1, std::memory_order_relaxed);

    Reply immediate;
    {
        std::string message;
        const Status status = validate(request, message);
        if (status != Status::Ok) {
            switch (status) {
              case Status::Busy:
                counters_.rejectedBusy.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              case Status::UntaggedFactory:
                counters_.rejectedUntagged.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              default:
                counters_.rejectedBad.fetch_add(
                    1, std::memory_order_relaxed);
                break;
            }
            counters_.completed.fetch_add(1, std::memory_order_relaxed);
            counters_.latency.record(elapsedUs(start));
            immediate.status = status;
            immediate.message = std::move(message);
            done(immediate);
            return;
        }
    }

    const std::optional<run::CacheKey> key = run::cacheKeyFor(request);
    panic_if(!key, "validated request has no cache key");

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) {
            counters_.rejectedShutdown.fetch_add(
                1, std::memory_order_relaxed);
            counters_.completed.fetch_add(1, std::memory_order_relaxed);
            counters_.latency.record(elapsedUs(start));
            immediate.status = Status::ShuttingDown;
            immediate.message = "service is draining";
            lock.unlock();
            done(immediate);
            return;
        }

        // Result cache (under the engine lock so a hit cannot race a
        // concurrent completion's insert-then-erase-inflight window).
        if (ResultBytes bytes = cache_.get(*key)) {
            counters_.cacheHits.fetch_add(1, std::memory_order_relaxed);
            counters_.completed.fetch_add(1, std::memory_order_relaxed);
            counters_.latency.record(elapsedUs(start));
            immediate.status = Status::Ok;
            immediate.result = std::move(bytes);
            lock.unlock();
            done(immediate);
            return;
        }

        // In-flight dedup: join an identical pending job.
        if (const auto it = inflight_.find(*key);
            it != inflight_.end()) {
            counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
            it->second->waiters.push_back(std::move(done));
            it->second->waiterStarts.push_back(start);
            return;
        }

        // Admission control on the client's submission queue.
        auto &queue = queues_[client % queues_.size()];
        if (queue.size() >= options_.maxQueueDepth) {
            counters_.rejectedBusy.fetch_add(
                1, std::memory_order_relaxed);
            counters_.completed.fetch_add(1, std::memory_order_relaxed);
            counters_.latency.record(elapsedUs(start));
            immediate.status = Status::Busy;
            immediate.message = "submission queue full (depth " +
                                std::to_string(queue.size()) +
                                "); retry with backoff";
            lock.unlock();
            done(immediate);
            return;
        }

        counters_.cacheMisses.fetch_add(1, std::memory_order_relaxed);
        auto job = std::make_shared<Job>();
        job->request = request;
        job->key = *key;
        job->waiters.push_back(std::move(done));
        job->waiterStarts.push_back(start);
        inflight_.emplace(*key, job);
        queue.push_back(std::move(job));
        ++queuedJobs_;
    }
    cv_.notify_one();
}

Reply
Engine::call(const run::RunRequest &request, std::uint64_t client)
{
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    Reply out;
    submit(request, client, [&](const Reply &reply) {
        const std::lock_guard<std::mutex> lock(m);
        out = reply;
        ready = true;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return ready; });
    return out;
}

StatsSnapshot
Engine::wireStats() const
{
    const obs::ServiceStats s = counters_.snapshot();
    StatsSnapshot out;
    out.submitted = s.submitted;
    out.completed = s.completed;
    out.executed = s.executed;
    out.cacheHits = s.cacheHits;
    out.cacheMisses = s.cacheMisses;
    out.coalesced = s.coalesced;
    out.rejectedBusy = s.rejectedBusy;
    out.rejectedUntagged = s.rejectedUntagged;
    out.rejectedBad = s.rejectedBad;
    out.rejectedShutdown = s.rejectedShutdown;
    out.cacheEntries = cache_.size();
    out.cacheEvictions = cache_.evictions();
    out.latencySamples = s.latencySamples;
    out.latencyP50Us = s.latencyP50Us;
    out.latencyP95Us = s.latencyP95Us;
    out.latencyP99Us = s.latencyP99Us;
    const auto &plans = compaction::SharedPlanTable::instance();
    out.sharedPlanHits = plans.hits();
    out.sharedPlanMisses = plans.misses();
    const auto &predecode = func::PredecodeCache::instance();
    out.predecodeHits = predecode.hits();
    out.predecodeMisses = predecode.misses();
    return out;
}

void
Engine::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return queuedJobs_ > 0 || stopping_;
            });
            if (queuedJobs_ == 0) {
                if (stopping_)
                    return; // drained
                continue;
            }
            // Round-robin across the submission queues: each pop
            // starts scanning one queue past the previous winner, so
            // a deep queue cannot monopolize the pool.
            const unsigned n = static_cast<unsigned>(queues_.size());
            for (unsigned i = 0; i < n; ++i) {
                const unsigned q = (rrNext_ + i) % n;
                if (queues_[q].empty())
                    continue;
                job = std::move(queues_[q].front());
                queues_[q].pop_front();
                rrNext_ = q + 1;
                break;
            }
            --queuedJobs_;
        }
        panic_if(!job, "worker woke with queued jobs but found none");

        Reply reply;
        try {
            run::RunRequest request = job->request;
            if (!options_.captureDir.empty() &&
                request.kind == run::JobKind::FunctionalTrace) {
                // Side-effect only: the key (computed pre-capture)
                // and the reply bytes are identical with or without
                // capture, so caching and dedup stay sound.
                char key_hex[17];
                std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                              static_cast<unsigned long long>(
                                  job->key.hash()));
                const std::string label = request.factory
                    ? request.cacheTag
                    : request.workload;
                request.captureTo = options_.captureDir + "/" + label +
                                    "-s" +
                                    std::to_string(request.scale) +
                                    "-" + key_hex + ".iwct";
            }
            const run::RunResult result = run::executeRun(request);
            reply.status = Status::Ok;
            reply.result = std::make_shared<const std::string>(
                encodeRunResult(result));
        } catch (const std::exception &e) {
            reply.status = Status::InternalError;
            reply.message = e.what();
        } catch (...) {
            reply.status = Status::InternalError;
            reply.message = "unknown execution failure";
        }

        std::vector<ReplyFn> waiters;
        std::vector<std::chrono::steady_clock::time_point> starts;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (reply.status == Status::Ok)
                cache_.put(job->key, reply.result);
            inflight_.erase(job->key);
            waiters = std::move(job->waiters);
            starts = std::move(job->waiterStarts);
        }
        counters_.executed.fetch_add(1, std::memory_order_relaxed);
        counters_.completed.fetch_add(waiters.size(),
                                      std::memory_order_relaxed);
        for (const auto &t0 : starts)
            counters_.latency.record(elapsedUs(t0));
        for (const ReplyFn &done : waiters)
            done(reply);
    }
}

} // namespace iwc::svc
