/**
 * @file
 * Blocking client for the simulation daemon. One Client wraps one
 * connection and is meant to be driven by one thread (loadtest and
 * sweep clients open one Client per thread); it supports both simple
 * synchronous round trips (call) and explicit pipelining
 * (sendSubmit / recvReply) for keeping many requests in flight.
 */

#ifndef IWC_SVC_CLIENT_HH
#define IWC_SVC_CLIENT_HH

#include <cstdint>
#include <string>

#include "svc/wire.hh"

namespace iwc::svc
{

/** A decoded daemon reply. */
struct ClientReply
{
    std::uint64_t reqId = 0;
    Status status = Status::InternalError;
    /** Serialized RunResult exactly as the daemon sent it (byte-
     *  comparable against wire::encodeRunResult of a local run). */
    std::string raw;
    /** Decoded form of @ref raw (valid when status == Ok). */
    run::RunResult result;
    std::string message;
};

/** See file comment. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connects to @p socket_path. With @p wait_ms > 0, retries while
     * the socket is absent or refusing (a daemon still starting up)
     * until the budget runs out.
     */
    bool connect(const std::string &socket_path, int wait_ms = 0);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Synchronous submit: one request, wait for its reply. */
    bool call(const run::RunRequest &request, ClientReply &out);

    // --- Pipelining -----------------------------------------------------

    /** Sends a Submit frame tagged @p req_id without waiting. */
    bool sendSubmit(const run::RunRequest &request, std::uint64_t req_id);

    /** Receives the next Result/Error frame (any req_id). */
    bool recvReply(ClientReply &out);

    // --- Control --------------------------------------------------------

    /** Round-trips a Ping. */
    bool ping();

    /** Fetches the daemon's service counters. */
    bool stats(StatsSnapshot &out);

    /** Asks the daemon to drain and exit (acknowledged before the
     *  drain begins). */
    bool shutdownDaemon();

  private:
    int fd_ = -1;
    std::uint64_t nextId_ = 1; ///< call() request ids
};

} // namespace iwc::svc

#endif // IWC_SVC_CLIENT_HH
