/**
 * @file
 * Bounded LRU cache from run::CacheKey to serialized RunResult
 * bytes. Storing the encoded bytes (not the RunResult) makes the
 * bit-identity guarantee structural: a cache hit replays exactly the
 * frame the first execution produced, and sharing is a shared_ptr
 * copy, so a hit costs no allocation proportional to the result.
 *
 * Thread-safe; all methods take an internal mutex. The lock is never
 * held across anything slower than a map operation, so contention is
 * invisible next to even the cheapest simulation.
 */

#ifndef IWC_SVC_CACHE_HH
#define IWC_SVC_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "run/run.hh"

namespace iwc::svc
{

/** Shared immutable result bytes (see file comment). */
using ResultBytes = std::shared_ptr<const std::string>;

/** See file comment. */
class ResultCache
{
  public:
    /** @param max_entries bound on resident results; 0 disables. */
    explicit ResultCache(std::size_t max_entries)
        : maxEntries_(max_entries)
    {
    }

    /** Looks up @p key, refreshing recency. Null on miss. */
    ResultBytes
    get(const run::CacheKey &key)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->bytes;
    }

    /** Inserts (or refreshes) @p key, evicting the LRU tail. */
    void
    put(const run::CacheKey &key, ResultBytes bytes)
    {
        if (maxEntries_ == 0)
            return;
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->bytes = std::move(bytes);
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        lru_.push_front(Entry{key, std::move(bytes)});
        map_.emplace(key, lru_.begin());
        if (map_.size() > maxEntries_) {
            map_.erase(lru_.back().key);
            lru_.pop_back();
            ++evictions_;
        }
    }

    std::size_t
    size() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

    std::uint64_t
    hits() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }

    std::uint64_t
    misses() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return misses_;
    }

    std::uint64_t
    evictions() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return evictions_;
    }

  private:
    struct Entry
    {
        run::CacheKey key;
        ResultBytes bytes;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const run::CacheKey &key) const
        {
            return static_cast<std::size_t>(key.hash());
        }
    };

    const std::size_t maxEntries_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<run::CacheKey, std::list<Entry>::iterator, KeyHash>
        map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace iwc::svc

#endif // IWC_SVC_CACHE_HH
