/**
 * @file
 * The simulation daemon: a Unix-domain stream server wrapping
 * svc::Engine. One reader thread per connection decodes frames and
 * feeds the engine; replies are written back from whichever engine
 * thread completes them, serialized per connection, and matched to
 * submissions by the client-chosen request id (clients pipeline
 * freely; replies may arrive out of order).
 *
 * Lifecycle: start() binds the socket (cleaning up a stale one left
 * by a crashed daemon — detected by a refused probe connect) and
 * begins accepting. requestStop() is async-signal-safe (one write()
 * on a self-pipe), so SIGINT/SIGTERM handlers can trigger a graceful
 * drain: stop accepting, let the engine finish every queued and
 * in-flight job (new submissions are refused with ShuttingDown),
 * deliver all replies, then close connections and unlink the socket.
 */

#ifndef IWC_SVC_DAEMON_HH
#define IWC_SVC_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/engine.hh"

namespace iwc::svc
{

/** Daemon knobs. */
struct DaemonOptions
{
    /** Filesystem path of the Unix-domain socket. */
    std::string socketPath;
    EngineOptions engine;
    /** Per-frame payload ceiling for incoming frames. */
    std::size_t maxFrameBytes = kMaxFrameBytes;
};

/** See file comment. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    /** Binds, listens, starts the engine and the accept loop.
     *  fatal() on an unusable socket path or a live daemon. */
    void start();

    /** Triggers a graceful stop; safe from signal handlers and from
     *  connection threads. Returns immediately. */
    void requestStop();

    /** Blocks until requestStop(), then performs the full drain. */
    void serveUntilStopped();

    /** The drain itself (see file comment). Idempotent. */
    void stop();

    Engine &engine() { return engine_; }
    const std::string &socketPath() const { return options_.socketPath; }

  private:
    /**
     * One client connection. The reader thread is detached; the
     * object is kept alive by shared_ptrs from the reader and from
     * every in-flight reply callback. The fd is closed exactly once,
     * by whichever of {reader-at-EOF, last pending reply, stop()}
     * comes last — until then the descriptor number stays reserved
     * so a late reply can never write into a recycled fd.
     */
    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::mutex writeMutex; ///< one reply frame at a time
        std::atomic<int> pending{0}; ///< replies not yet written
        std::atomic<bool> eof{false}; ///< reader loop has exited

        /** Unblocks reader/writer syscalls without releasing the fd. */
        void shutdownIo();
        void closeFd(); ///< idempotent
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void sendReply(const std::shared_ptr<Connection> &conn,
                   std::uint64_t req_id, const Reply &reply);

    /** Removes a dead socket file; fatal() if a daemon answers. */
    void cleanStaleSocket();

    DaemonOptions options_;
    Engine engine_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopRequested_{false};
    bool started_ = false;
    bool stopped_ = false;
    std::thread acceptThread_;
    std::mutex connsMutex_;
    std::condition_variable connsCv_;
    std::vector<std::shared_ptr<Connection>> conns_; ///< live only
    std::size_t activeReaders_ = 0;
    std::uint64_t nextClientId_ = 0;
};

} // namespace iwc::svc

#endif // IWC_SVC_DAEMON_HH
