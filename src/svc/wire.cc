#include "svc/wire.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "gpu/gpu_config.hh"

namespace iwc::svc
{

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok:              return "ok";
      case Status::Busy:            return "busy";
      case Status::BadRequest:      return "bad-request";
      case Status::UntaggedFactory: return "untagged-factory";
      case Status::ShuttingDown:    return "shutting-down";
      case Status::Unsupported:     return "unsupported";
      case Status::InternalError:   return "internal-error";
    }
    return "?";
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

bool
WireReader::take(std::size_t n)
{
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t
WireReader::u8()
{
    if (!take(1))
        return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t
WireReader::u32()
{
    if (!take(4))
        return 0;
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (i * 8);
    pos_ += 4;
    return v;
}

std::uint64_t
WireReader::u64()
{
    if (!take(8))
        return 0;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (i * 8);
    pos_ += 8;
    return v;
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t len = u32();
    if (!take(len))
        return {};
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
}

// --- Submit -------------------------------------------------------------

namespace
{

constexpr std::uint8_t kFlagCheckOutput = 1u << 0;
constexpr std::uint8_t kFlagLint = 1u << 1;
constexpr std::uint8_t kFlagTrace = 1u << 2;
constexpr std::uint8_t kFlagMeld = 1u << 3;

} // namespace

std::string
encodeSubmit(const SubmitMsg &msg)
{
    const run::RunRequest &r = msg.request;
    fatal_if(static_cast<bool>(r.factory),
             "factory requests cannot cross the wire: a workload "
             "factory is an opaque closure (submit in-process via "
             "svc::Engine, or use a registry workload)");
    WireWriter w;
    w.u64(msg.reqId);
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.u8(static_cast<std::uint8_t>(r.backend));
    w.u32(r.scale);
    std::uint8_t flags = 0;
    if (r.checkOutput)
        flags |= kFlagCheckOutput;
    if (r.lint)
        flags |= kFlagLint;
    if (r.trace)
        flags |= kFlagTrace;
    if (r.meld)
        flags |= kFlagMeld;
    w.u8(flags);
    w.u8(r.compareModes);
    w.u64(r.traceCapacity);
    w.str(r.workload);
    w.str(r.traceProfile);
    w.str(r.cacheTag);
    w.str(r.tracePath);
    w.u32(r.traceJobs);
    w.str(r.captureTo);
    w.str(gpu::encodeCanonical(r.config));
    return w.take();
}

bool
decodeSubmit(std::string_view payload, SubmitMsg &out)
{
    WireReader r(payload);
    out = SubmitMsg{};
    out.reqId = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(run::JobKind::TimingCompare))
        return false;
    out.request.kind = static_cast<run::JobKind>(kind);
    const std::uint8_t backend = r.u8();
    if (backend > static_cast<std::uint8_t>(func::BackendKind::Vector))
        return false;
    out.request.backend = static_cast<func::BackendKind>(backend);
    out.request.scale = r.u32();
    const std::uint8_t flags = r.u8();
    out.request.checkOutput = flags & kFlagCheckOutput;
    out.request.lint = flags & kFlagLint;
    out.request.trace = flags & kFlagTrace;
    out.request.meld = flags & kFlagMeld;
    out.request.compareModes = r.u8();
    out.request.traceCapacity = r.u64();
    out.request.workload = r.str();
    out.request.traceProfile = r.str();
    out.request.cacheTag = r.str();
    out.request.tracePath = r.str();
    out.request.traceJobs = r.u32();
    out.request.captureTo = r.str();
    const std::string config = r.str();
    if (!r.done())
        return false;
    return gpu::decodeCanonical(config, out.request.config);
}

// --- RunResult ----------------------------------------------------------

namespace
{

void
encodeEuStats(WireWriter &w, const eu::EuStats &s)
{
    w.u64(s.instructions);
    w.u64(s.aluInstructions);
    w.u64(s.sendInstructions);
    w.u64(s.ctrlInstructions);
    w.u64(s.sumActiveLanes);
    w.u64(s.sumSimdWidth);
    for (const std::uint64_t v : s.euCyclesByMode)
        w.u64(v);
    for (const std::uint64_t v : s.utilBins)
        w.u64(v);
    w.u64(s.memMessages);
    w.u64(s.memLines);
    w.u64(s.slmMessages);
    w.u64(s.sccSwizzledLanes);
    w.u64(s.issueSlotsUsed);
    w.u64(s.threadsRetired);
}

void
decodeEuStats(WireReader &r, eu::EuStats &s)
{
    s.instructions = r.u64();
    s.aluInstructions = r.u64();
    s.sendInstructions = r.u64();
    s.ctrlInstructions = r.u64();
    s.sumActiveLanes = r.u64();
    s.sumSimdWidth = r.u64();
    for (std::uint64_t &v : s.euCyclesByMode)
        v = r.u64();
    for (std::uint64_t &v : s.utilBins)
        v = r.u64();
    s.memMessages = r.u64();
    s.memLines = r.u64();
    s.slmMessages = r.u64();
    s.sccSwizzledLanes = r.u64();
    s.issueSlotsUsed = r.u64();
    s.threadsRetired = r.u64();
}

void
encodeLaunchStats(WireWriter &w, const gpu::LaunchStats &s)
{
    w.u64(s.totalCycles);
    encodeEuStats(w, s.eu);
    w.u64(s.fpuBusyCycles);
    w.u64(s.emBusyCycles);
    w.u64(s.l3Hits);
    w.u64(s.l3Misses);
    w.u64(s.llcHits);
    w.u64(s.llcMisses);
    w.u64(s.dramLines);
    w.u64(s.dcLines);
    w.u64(s.slmAccesses);
    w.f64(s.avgLinesPerMessage);
    w.u64(s.planCacheHits);
    w.u64(s.planCacheMisses);
    w.u64(s.idleCyclesSkipped);
    w.u64(s.idleSkips);
    w.u32(s.workgroups);
    w.u64(s.threads);
}

void
decodeLaunchStats(WireReader &r, gpu::LaunchStats &s)
{
    s.totalCycles = r.u64();
    decodeEuStats(r, s.eu);
    s.fpuBusyCycles = r.u64();
    s.emBusyCycles = r.u64();
    s.l3Hits = r.u64();
    s.l3Misses = r.u64();
    s.llcHits = r.u64();
    s.llcMisses = r.u64();
    s.dramLines = r.u64();
    s.dcLines = r.u64();
    s.slmAccesses = r.u64();
    s.avgLinesPerMessage = r.f64();
    s.planCacheHits = r.u64();
    s.planCacheMisses = r.u64();
    s.idleCyclesSkipped = r.u64();
    s.idleSkips = r.u64();
    s.workgroups = r.u32();
    s.threads = r.u64();
}

void
encodeAnalysis(WireWriter &w, const trace::TraceAnalysis &a)
{
    w.u64(a.records);
    w.u64(a.sumActiveLanes);
    w.u64(a.sumSimdWidth);
    for (const std::uint64_t v : a.euCycles)
        w.u64(v);
    for (const std::uint64_t v : a.utilBins)
        w.u64(v);
    w.u64(a.aluRecords);
    w.u64(a.sccSwizzledLanes);
}

void
decodeAnalysis(WireReader &r, trace::TraceAnalysis &a)
{
    a.records = r.u64();
    a.sumActiveLanes = r.u64();
    a.sumSimdWidth = r.u64();
    for (std::uint64_t &v : a.euCycles)
        v = r.u64();
    for (std::uint64_t &v : a.utilBins)
        v = r.u64();
    a.aluRecords = r.u64();
    a.sccSwizzledLanes = r.u64();
}

} // namespace

std::string
encodeRunResult(const run::RunResult &result)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(result.kind));
    w.str(result.label);
    w.u64(result.kernelDigest);
    w.u8(static_cast<std::uint8_t>(result.checked));
    w.u8(static_cast<std::uint8_t>(result.checkOk));
    encodeLaunchStats(w, result.stats);
    encodeAnalysis(w, result.analysis);
    w.u8(static_cast<std::uint8_t>(result.compare.size()));
    for (const run::RunResult::ModeStats &entry : result.compare) {
        w.u8(static_cast<std::uint8_t>(entry.mode));
        encodeLaunchStats(w, entry.stats);
    }
    return w.take();
}

bool
decodeRunResult(std::string_view payload, run::RunResult &out)
{
    WireReader r(payload);
    out = run::RunResult{};
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(run::JobKind::TimingCompare))
        return false;
    out.kind = static_cast<run::JobKind>(kind);
    out.label = r.str();
    out.kernelDigest = r.u64();
    out.checked = r.u8();
    out.checkOk = r.u8();
    decodeLaunchStats(r, out.stats);
    decodeAnalysis(r, out.analysis);
    const std::uint8_t compare_count = r.u8();
    if (compare_count > compaction::kNumModes)
        return false;
    out.compare.resize(compare_count);
    for (run::RunResult::ModeStats &entry : out.compare) {
        const std::uint8_t mode = r.u8();
        if (mode >= compaction::kNumModes)
            return false;
        entry.mode = static_cast<compaction::Mode>(mode);
        decodeLaunchStats(r, entry.stats);
    }
    return r.done();
}

// --- Error / Stats ------------------------------------------------------

std::string
encodeError(const ErrorMsg &msg)
{
    WireWriter w;
    w.u64(msg.reqId);
    w.u8(static_cast<std::uint8_t>(msg.status));
    w.str(msg.message);
    return w.take();
}

bool
decodeError(std::string_view payload, ErrorMsg &out)
{
    WireReader r(payload);
    out.reqId = r.u64();
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(Status::InternalError))
        return false;
    out.status = static_cast<Status>(status);
    out.message = r.str();
    return r.done();
}

std::string
encodeStats(const StatsSnapshot &stats)
{
    WireWriter w;
    w.u64(stats.submitted);
    w.u64(stats.completed);
    w.u64(stats.executed);
    w.u64(stats.cacheHits);
    w.u64(stats.cacheMisses);
    w.u64(stats.coalesced);
    w.u64(stats.rejectedBusy);
    w.u64(stats.rejectedUntagged);
    w.u64(stats.rejectedBad);
    w.u64(stats.rejectedShutdown);
    w.u64(stats.cacheEntries);
    w.u64(stats.cacheEvictions);
    w.u64(stats.latencySamples);
    w.u64(stats.latencyP50Us);
    w.u64(stats.latencyP95Us);
    w.u64(stats.latencyP99Us);
    w.u64(stats.sharedPlanHits);
    w.u64(stats.sharedPlanMisses);
    w.u64(stats.predecodeHits);
    w.u64(stats.predecodeMisses);
    return w.take();
}

bool
decodeStats(std::string_view payload, StatsSnapshot &out)
{
    WireReader r(payload);
    out.submitted = r.u64();
    out.completed = r.u64();
    out.executed = r.u64();
    out.cacheHits = r.u64();
    out.cacheMisses = r.u64();
    out.coalesced = r.u64();
    out.rejectedBusy = r.u64();
    out.rejectedUntagged = r.u64();
    out.rejectedBad = r.u64();
    out.rejectedShutdown = r.u64();
    out.cacheEntries = r.u64();
    out.cacheEvictions = r.u64();
    out.latencySamples = r.u64();
    out.latencyP50Us = r.u64();
    out.latencyP95Us = r.u64();
    out.latencyP99Us = r.u64();
    out.sharedPlanHits = r.u64();
    out.sharedPlanMisses = r.u64();
    out.predecodeHits = r.u64();
    out.predecodeMisses = r.u64();
    return r.done();
}

// --- Frame I/O ----------------------------------------------------------

namespace
{

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface
        // as EPIPE to this writer, not SIGPIPE to the whole daemon.
        ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data, size); // pipes in tests
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame (or clean EOF at a boundary)
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, MsgType type, std::string_view payload)
{
    char header[5];
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (unsigned i = 0; i < 4; ++i)
        header[i] = static_cast<char>(len >> (i * 8));
    header[4] = static_cast<char>(type);
    if (!writeAll(fd, header, sizeof(header)))
        return false;
    return writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, MsgType &type, std::string &payload,
          std::size_t max_payload)
{
    char header[5];
    if (!readAll(fd, header, sizeof(header)))
        return false;
    std::uint32_t len = 0;
    for (unsigned i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(header[i]))
               << (i * 8);
    if (len > max_payload)
        return false;
    type = static_cast<MsgType>(header[4]);
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

} // namespace iwc::svc
