/**
 * @file
 * Out-of-core trace analysis: replays a container through the same
 * per-policy trace models as trace::analyzeTrace without ever
 * materializing the trace. jobs=1 streams through one TraceCursor
 * with async prefetch; jobs>1 shards the chunk index into contiguous
 * ranges, analyzes each shard on its own thread (own ChunkReader,
 * own PlanCache), and merges the TraceAnalysis partials — an
 * associative integer-sum merge, so the result is bit-identical to
 * the sequential in-memory pass regardless of job count.
 */

#ifndef IWC_TRACESTREAM_ANALYZE_HH
#define IWC_TRACESTREAM_ANALYZE_HH

#include <string>

#include "trace/analyzer.hh"
#include "tracestream/reader.hh"

namespace iwc::tracestream
{

/** Analysis knobs. */
struct StreamAnalyzeOptions
{
    trace::AnalyzerCosts costs{};
    /** Analyzer shards (compute threads). 0 behaves as 1. */
    unsigned jobs = 1;
    /** Prefetch configuration for the jobs<=1 sequential stream. */
    StreamOptions stream{};
};

/** Streams the container at @p path through the trace models. */
trace::TraceAnalysis analyzeTraceStream(
    const std::string &path, const StreamAnalyzeOptions &options = {});

/**
 * Analyzes any trace file: containers stream (out-of-core, honoring
 * options.jobs); legacy flat-binary and text traces load in memory
 * first (they have no chunk structure to shard). This is the path
 * run::RunRequest::fileTrace and the iwc_trace CLI go through.
 */
trace::TraceAnalysis analyzeTraceFile(
    const std::string &path, const StreamAnalyzeOptions &options = {});

} // namespace iwc::tracestream

#endif // IWC_TRACESTREAM_ANALYZE_HH
