#include "tracestream/format.hh"

#include <array>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace iwc::tracestream
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

// Token layout (see format.hh file comment).
constexpr std::uint8_t kRunToken = 0xFF;
constexpr std::uint8_t kWidthBit = 0x01;
constexpr std::uint8_t kElemBit = 0x02;
constexpr std::uint8_t kKindBit = 0x04;
constexpr unsigned kMaskShift = 3;
constexpr std::uint8_t kMaskBits = 0x18;
constexpr std::uint8_t kReservedBits = 0xE0;

enum MaskDelta : std::uint8_t
{
    MaskSame = 0,
    MaskXor8 = 1,
    MaskXor16 = 2,
    MaskFull = 3,
};

/** Chunks reset to this state so each decodes independently. The
 *  width is deliberately invalid: the first record of every chunk is
 *  forced to encode its width explicitly. */
constexpr trace::TraceRecord kInitialState{0, 0, trace::InstrKind::Alu,
                                           0};

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::uint8_t *payload, std::size_t size,
          std::size_t &pos)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        fatal_if(pos >= size, "trace chunk: truncated varint");
        fatal_if(shift >= 64, "trace chunk: varint overflow");
        const std::uint8_t b = payload[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

bool
sameRecord(const trace::TraceRecord &a, const trace::TraceRecord &b)
{
    return a.simdWidth == b.simdWidth && a.elemBytes == b.elemBytes &&
           a.kind == b.kind && a.execMask == b.execMask;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
encodeChunk(const trace::TraceRecord *records, std::size_t count,
            std::vector<std::uint8_t> &out)
{
    trace::TraceRecord prev = kInitialState;
    std::size_t i = 0;
    while (i < count) {
        const trace::TraceRecord &r = records[i];
        if (sameRecord(r, prev)) {
            // Run of identical records (the common case inside a
            // basic block): one token + varint covers the whole run.
            std::size_t run = 1;
            while (i + run < count && sameRecord(records[i + run], prev))
                ++run;
            out.push_back(kRunToken);
            putVarint(out, run);
            i += run;
            continue;
        }

        std::uint8_t token = 0;
        if (r.simdWidth != prev.simdWidth)
            token |= kWidthBit;
        if (r.elemBytes != prev.elemBytes)
            token |= kElemBit;
        if (r.kind != prev.kind)
            token |= kKindBit;
        const LaneMask diff = r.execMask ^ prev.execMask;
        MaskDelta delta = MaskSame;
        if (diff != 0) {
            if (diff <= 0xFF)
                delta = MaskXor8;
            else if (diff <= 0xFFFF)
                delta = MaskXor16;
            else
                delta = MaskFull;
        }
        token |= static_cast<std::uint8_t>(delta << kMaskShift);

        out.push_back(token);
        if (token & kWidthBit)
            out.push_back(r.simdWidth);
        if (token & kElemBit)
            out.push_back(r.elemBytes);
        if (token & kKindBit)
            out.push_back(static_cast<std::uint8_t>(r.kind));
        switch (delta) {
          case MaskSame:
            break;
          case MaskXor8:
            out.push_back(static_cast<std::uint8_t>(diff));
            break;
          case MaskXor16:
            out.push_back(static_cast<std::uint8_t>(diff));
            out.push_back(static_cast<std::uint8_t>(diff >> 8));
            break;
          case MaskFull:
            for (unsigned b = 0; b < 4; ++b)
                out.push_back(
                    static_cast<std::uint8_t>(r.execMask >> (b * 8)));
            break;
        }
        prev = r;
        ++i;
    }
}

void
decodeChunk(const std::uint8_t *payload, std::size_t size,
            std::size_t expect, std::vector<trace::TraceRecord> &out)
{
    out.clear();
    out.reserve(expect);
    trace::TraceRecord prev = kInitialState;
    std::size_t pos = 0;
    while (out.size() < expect) {
        fatal_if(pos >= size, "trace chunk: truncated at record %zu/%zu",
                 out.size(), expect);
        const std::uint8_t token = payload[pos++];

        if (token == kRunToken) {
            const std::uint64_t run = getVarint(payload, size, pos);
            fatal_if(run == 0, "trace chunk: zero-length run");
            fatal_if(run > expect - out.size(),
                     "trace chunk: run of %llu overflows the %zu-record "
                     "chunk",
                     static_cast<unsigned long long>(run),
                     expect - out.size());
            // A run can only repeat an already-decoded record, so
            // prev has passed validation.
            fatal_if(out.empty(), "trace chunk: run with no prior record");
            out.insert(out.end(), static_cast<std::size_t>(run), prev);
            continue;
        }

        fatal_if((token & kReservedBits) != 0,
                 "trace chunk: bad token byte 0x%02x at offset %zu",
                 token, pos - 1);
        trace::TraceRecord r = prev;
        const auto need = [&](std::size_t n) {
            fatal_if(size - pos < n, "trace chunk: truncated field");
        };
        if (token & kWidthBit) {
            need(1);
            r.simdWidth = payload[pos++];
        }
        if (token & kElemBit) {
            need(1);
            r.elemBytes = payload[pos++];
        }
        if (token & kKindBit) {
            need(1);
            const std::uint8_t k = payload[pos++];
            fatal_if(
                k > static_cast<std::uint8_t>(trace::InstrKind::Ctrl),
                "trace chunk: bad instruction kind %u", k);
            r.kind = static_cast<trace::InstrKind>(k);
        }
        switch ((token & kMaskBits) >> kMaskShift) {
          case MaskSame:
            break;
          case MaskXor8:
            need(1);
            r.execMask ^= payload[pos++];
            break;
          case MaskXor16:
            need(2);
            r.execMask ^= static_cast<LaneMask>(payload[pos]) |
                          static_cast<LaneMask>(payload[pos + 1]) << 8;
            pos += 2;
            break;
          case MaskFull: {
            need(4);
            LaneMask m = 0;
            for (unsigned b = 0; b < 4; ++b)
                m |= static_cast<LaneMask>(payload[pos + b]) << (b * 8);
            r.execMask = m;
            pos += 4;
            break;
          }
        }
        trace::validateTraceRecord(r, out.size());
        out.push_back(r);
        prev = r;
    }
    fatal_if(pos != size,
             "trace chunk: %zu trailing bytes after %zu records",
             size - pos, expect);
}

} // namespace iwc::tracestream
