/**
 * @file
 * Streaming container writer: appends records one at a time, holding
 * only the current chunk in memory, so Device::launchFunctional can
 * capture a billion-instruction trace straight to disk with bounded
 * RSS. finish() seals the container (flushes the partial chunk,
 * writes the index and footer); the destructor finishes automatically
 * but swallows nothing — failures are fatal either way.
 */

#ifndef IWC_TRACESTREAM_WRITER_HH
#define IWC_TRACESTREAM_WRITER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "tracestream/format.hh"

namespace iwc::tracestream
{

/** Writer knobs. */
struct WriterOptions
{
    /** Trace name stored in the header (workload name by convention). */
    std::string name;
    /** Records per chunk; the unit of seek, CRC, and shard work. */
    std::uint32_t chunkRecords = kDefaultChunkRecords;
};

/** See file comment. */
class ChunkedTraceWriter
{
  public:
    ChunkedTraceWriter(const std::string &path, WriterOptions options = {});
    ~ChunkedTraceWriter();

    ChunkedTraceWriter(const ChunkedTraceWriter &) = delete;
    ChunkedTraceWriter &operator=(const ChunkedTraceWriter &) = delete;

    /** Validates and buffers one record, flushing a full chunk. */
    void append(const trace::TraceRecord &r);

    /** Flushes the tail chunk, writes index + footer, closes the
     *  file. Idempotent; called by the destructor if omitted. */
    void finish();

    std::uint64_t recordsWritten() const { return totalRecords_; }
    std::uint64_t chunksWritten() const
    {
        return index_.size();
    }
    /** Encoded payload bytes so far (compression diagnostics). */
    std::uint64_t codedBytes() const { return codedBytes_; }

  private:
    void flushChunk();

    std::string path_;
    WriterOptions options_;
    std::FILE *file_ = nullptr;
    std::vector<trace::TraceRecord> pending_;
    std::vector<std::uint8_t> coded_;
    std::vector<ChunkIndexEntry> index_;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t codedBytes_ = 0;
    std::uint64_t offset_ = 0;
    bool finished_ = false;
};

/**
 * Observer adapter for Device::launchFunctional: every executed
 * instruction becomes one appended record. The caller still owns the
 * writer and must finish() it after the launch returns.
 */
gpu::InstrObserver captureObserver(ChunkedTraceWriter &writer);

/** One-shot convenience: writes an in-memory trace as a container. */
void writeContainerFile(const std::string &path,
                        const trace::MaskTrace &trace,
                        std::uint32_t chunk_records =
                            kDefaultChunkRecords);

/** True if the file at @p path starts with the container magic. */
bool isContainerFile(const std::string &path);

} // namespace iwc::tracestream

#endif // IWC_TRACESTREAM_WRITER_HH
