/**
 * @file
 * Streaming container reader. Two layers:
 *
 *  - ChunkReader: positioned reads of single chunks (own file handle,
 *    so one per thread) with CRC verification and full decode
 *    validation — the random-access primitive the sharded analyzer
 *    uses.
 *
 *  - TraceCursor: sequential record stream over a chunk range with an
 *    async prefetch pipeline — N I/O threads read + CRC-check +
 *    decompress chunks ahead of the consumer through a bounded ring
 *    of chunk buffers (the blaze-style I/O-workers-feeding-compute
 *    overlap from the ROADMAP), so peak RSS is ring-bounded no matter
 *    the trace size. ioThreads=0 degrades to synchronous in-thread
 *    decode, which is what each shard of the parallel analyzer wants.
 */

#ifndef IWC_TRACESTREAM_READER_HH
#define IWC_TRACESTREAM_READER_HH

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tracestream/format.hh"

namespace iwc::tracestream
{

/**
 * Opens and validates a container: header magic/version, footer
 * magic, index CRC, and index-entry consistency (contiguous record
 * ranges, counts within bounds, offsets inside the file). Dies with
 * a message on any mismatch.
 */
ContainerInfo readContainerInfo(const std::string &path);

/** See file comment. */
class ChunkReader
{
  public:
    /** @p info must outlive the reader (it is not copied). */
    ChunkReader(const std::string &path, const ContainerInfo &info);
    ~ChunkReader();

    ChunkReader(const ChunkReader &) = delete;
    ChunkReader &operator=(const ChunkReader &) = delete;

    /** Reads, CRC-checks, and decodes chunk @p index into @p out. */
    void read(std::size_t index, std::vector<trace::TraceRecord> &out);

  private:
    std::string path_;
    const ContainerInfo &info_;
    std::FILE *file_ = nullptr;
    std::vector<std::uint8_t> coded_; ///< reused payload buffer
};

/** Cursor / prefetch knobs. */
struct StreamOptions
{
    /** Prefetch I/O threads; 0 = synchronous in-consumer decode. */
    unsigned ioThreads = 2;
    /** Bounded ring of decoded chunk buffers (the RSS bound: about
     *  ringChunks x chunkRecords x sizeof(TraceRecord) bytes). */
    unsigned ringChunks = 8;
};

/** See file comment. */
class TraceCursor
{
  public:
    /** Streams chunks [chunkBegin, min(chunkEnd, chunkCount)). */
    explicit TraceCursor(const std::string &path,
                         StreamOptions options = {},
                         std::uint64_t chunk_begin = 0,
                         std::uint64_t chunk_end = ~std::uint64_t{0});
    ~TraceCursor();

    TraceCursor(const TraceCursor &) = delete;
    TraceCursor &operator=(const TraceCursor &) = delete;

    const ContainerInfo &info() const { return info_; }

    /**
     * The next decoded chunk, or nullptr at end of range. The pointer
     * stays valid until the next nextChunk() call. Chunks arrive in
     * file order regardless of which I/O thread decoded them.
     */
    const std::vector<trace::TraceRecord> *nextChunk();

    /** Record-at-a-time convenience over nextChunk(). */
    bool
    next(trace::TraceRecord &r)
    {
        while (recordPos_ >= currentChunk_.size()) {
            const std::vector<trace::TraceRecord> *chunk = nextChunk();
            if (chunk == nullptr)
                return false;
            recordPos_ = 0;
        }
        r = currentChunk_[recordPos_++];
        return true;
    }

  private:
    struct Slot
    {
        std::vector<trace::TraceRecord> records;
        std::uint64_t seq = 0;
        bool ready = false;
    };

    void ioLoop();

    std::string path_;
    ContainerInfo info_;
    StreamOptions options_;
    std::uint64_t begin_ = 0;
    std::uint64_t end_ = 0;

    // Synchronous mode.
    std::unique_ptr<ChunkReader> syncReader_;

    // Prefetch mode.
    std::mutex mutex_;
    std::condition_variable producerCv_;
    std::condition_variable consumerCv_;
    std::vector<Slot> ring_;
    std::uint64_t nextFetch_ = 0;
    std::uint64_t nextConsume_ = 0;
    bool stop_ = false;
    std::vector<std::thread> ioThreads_;

    std::vector<trace::TraceRecord> currentChunk_;
    std::size_t recordPos_ = 0;
};

/** One-shot convenience: materializes a whole container in memory
 *  (convert tooling and tests; defeats the point for huge traces). */
trace::MaskTrace readContainerFile(const std::string &path);

} // namespace iwc::tracestream

#endif // IWC_TRACESTREAM_READER_HH
