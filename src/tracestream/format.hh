/**
 * @file
 * The .iwct chunked trace container: an out-of-core sibling of the
 * flat binary format in trace/trace_io.hh. Records are grouped into
 * fixed-size chunks; each chunk is delta/RLE-compressed independently
 * (consecutive records usually repeat simdWidth/elemBytes/kind and
 * masks change rarely inside basic blocks) and carries its own CRC32,
 * so chunks can be decoded in parallel and corruption is localized. A
 * footer chunk index gives O(1) seek-to-chunk, which is what the
 * sharded analyzer and the prefetching cursor build on.
 *
 * Byte layout (all integers little-endian; see docs/trace_pipeline.md):
 *
 *   header   "IWCC" u32=version u32=flags u32=nameLen name[nameLen]
 *   chunk*   u32=recordCount u32=rawBytes u32=codedBytes u32=crc32
 *            payload[codedBytes]
 *   index    { u64=fileOffset u64=firstRecord u32=recordCount
 *              u32=codedBytes }  x chunkCount
 *   footer   u64=totalRecords u64=indexOffset u32=chunkCount
 *            u32=indexCrc32 "IWCE"
 *
 * The footer is fixed-size and sits at EOF, so a reader opens the
 * container with two seeks: one for the footer, one for the index.
 *
 * Chunk payload encoding: each record is one token byte plus the
 * fields that changed relative to the previous record in the same
 * chunk (chunks reset to a fixed initial state so they decode
 * independently):
 *
 *   token 0xFF          run: varint count of repeats of prev record
 *   else bit0           simdWidth follows (u8)
 *        bit1           elemBytes follows (u8)
 *        bit2           kind follows (u8)
 *        bits3-4        execMask delta: 0 unchanged, 1 XOR-u8,
 *                       2 XOR-u16, 3 full u32
 *        bits5-7        must be zero (decoder validation)
 */

#ifndef IWC_TRACESTREAM_FORMAT_HH
#define IWC_TRACESTREAM_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace iwc::tracestream
{

constexpr char kContainerMagic[4] = {'I', 'W', 'C', 'C'};
constexpr char kFooterMagic[4] = {'I', 'W', 'C', 'E'};
constexpr std::uint32_t kContainerVersion = 1;

/** Default records per chunk: 64K records decode to 512 KB, small
 *  enough that a handful of in-flight chunks stay cache-friendly,
 *  large enough to amortize per-chunk header and seek costs. */
constexpr std::uint32_t kDefaultChunkRecords = 1u << 16;

/** Hard cap on records per chunk (and thus on any single decode
 *  allocation): a corrupt header cannot demand a huge buffer. */
constexpr std::uint32_t kMaxChunkRecords = 1u << 22;

/** On-disk per-chunk header (serialized field by field, not memcpy). */
struct ChunkHeader
{
    std::uint32_t recordCount = 0;
    std::uint32_t rawBytes = 0;   ///< decoded payload bytes
    std::uint32_t codedBytes = 0; ///< encoded payload bytes on disk
    std::uint32_t crc32 = 0;      ///< CRC-32 of the encoded payload
};

constexpr std::size_t kChunkHeaderBytes = 16;
constexpr std::size_t kFooterBytes = 8 + 8 + 4 + 4 + 4;
constexpr std::size_t kIndexEntryBytes = 8 + 8 + 4 + 4;

/** One footer-index row: everything needed to read chunk i alone. */
struct ChunkIndexEntry
{
    std::uint64_t fileOffset = 0;  ///< of the chunk header
    std::uint64_t firstRecord = 0; ///< global index of first record
    std::uint32_t recordCount = 0;
    std::uint32_t codedBytes = 0;
};

/** Parsed header + footer of an open container. */
struct ContainerInfo
{
    std::string name;
    std::uint64_t totalRecords = 0;
    std::vector<ChunkIndexEntry> chunks;
};

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), incremental. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/**
 * Appends the delta/RLE encoding of @p records to @p out. Encoding
 * state resets at the call boundary, so one call == one chunk
 * payload. Records must already satisfy validateTraceRecord.
 */
void encodeChunk(const trace::TraceRecord *records, std::size_t count,
                 std::vector<std::uint8_t> &out);

/**
 * Decodes exactly @p expect records from one chunk payload into
 * @p out (cleared first). Dies with a message on any malformed
 * token, field, or length mismatch — a CRC-valid chunk that fails
 * here is a writer bug, a CRC-invalid one never gets here.
 */
void decodeChunk(const std::uint8_t *payload, std::size_t size,
                 std::size_t expect, std::vector<trace::TraceRecord> &out);

} // namespace iwc::tracestream

#endif // IWC_TRACESTREAM_FORMAT_HH
