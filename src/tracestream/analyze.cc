#include "tracestream/analyze.hh"

#include <fstream>
#include <string_view>
#include <thread>

#include "common/logging.hh"
#include "trace/trace_io.hh"
#include "tracestream/writer.hh"

namespace iwc::tracestream
{

namespace
{

/** Sequential stream with prefetch overlap (the jobs<=1 path). */
trace::TraceAnalysis
analyzeSequential(const std::string &path,
                  const StreamAnalyzeOptions &options)
{
    TraceCursor cursor(path, options.stream);
    trace::TraceAnalyzer analyzer(options.costs);
    const std::vector<trace::TraceRecord> *chunk;
    while ((chunk = cursor.nextChunk()) != nullptr)
        for (const trace::TraceRecord &r : *chunk)
            analyzer.add(r);
    return analyzer.result();
}

} // namespace

trace::TraceAnalysis
analyzeTraceStream(const std::string &path,
                   const StreamAnalyzeOptions &options)
{
    unsigned jobs = options.jobs == 0 ? 1 : options.jobs;
    if (jobs == 1)
        return analyzeSequential(path, options);

    const ContainerInfo info = readContainerInfo(path);
    const std::uint64_t chunks = info.chunks.size();
    if (chunks == 0)
        return {};
    if (jobs > chunks)
        jobs = static_cast<unsigned>(chunks);

    // Contiguous chunk ranges, remainder spread over the low shards.
    // Each shard does its own synchronous I/O + decode + analysis;
    // with one shard per core the disk and the plan caches stay busy
    // without a separate I/O pool.
    std::vector<trace::TraceAnalysis> partials(jobs);
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    const std::uint64_t base = chunks / jobs;
    const std::uint64_t extra = chunks % jobs;
    std::uint64_t begin = 0;
    for (unsigned j = 0; j < jobs; ++j) {
        const std::uint64_t count = base + (j < extra ? 1 : 0);
        const std::uint64_t end = begin + count;
        threads.emplace_back([&, j, begin, end] {
            StreamOptions sync;
            sync.ioThreads = 0;
            TraceCursor cursor(path, sync, begin, end);
            trace::TraceAnalyzer analyzer(options.costs);
            const std::vector<trace::TraceRecord> *chunk;
            while ((chunk = cursor.nextChunk()) != nullptr)
                for (const trace::TraceRecord &r : *chunk)
                    analyzer.add(r);
            partials[j] = analyzer.result();
        });
        begin = end;
    }
    for (std::thread &t : threads)
        t.join();

    trace::TraceAnalysis merged;
    for (const trace::TraceAnalysis &partial : partials)
        merged.merge(partial);
    return merged;
}

trace::TraceAnalysis
analyzeTraceFile(const std::string &path,
                 const StreamAnalyzeOptions &options)
{
    if (isContainerFile(path))
        return analyzeTraceStream(path, options);

    // Legacy formats: flat binary (sniffed by magic) or text.
    std::ifstream probe(path, std::ios::binary);
    fatal_if(!probe, "cannot open %s", path.c_str());
    char magic[4] = {};
    probe.read(magic, 4);
    probe.close();
    trace::MaskTrace loaded;
    if (std::string_view(magic, 4) == "IWCT") {
        loaded = trace::readBinaryFile(path);
    } else {
        std::ifstream is(path);
        fatal_if(!is, "cannot open %s", path.c_str());
        loaded = trace::readText(is);
    }
    return trace::analyzeTrace(loaded, options.costs);
}

} // namespace iwc::tracestream
