#include "tracestream/writer.hh"

#include <cstring>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace iwc::tracestream
{

namespace
{

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

} // namespace

ChunkedTraceWriter::ChunkedTraceWriter(const std::string &path,
                                       WriterOptions options)
    : path_(path), options_(std::move(options))
{
    fatal_if(options_.chunkRecords == 0 ||
                 options_.chunkRecords > kMaxChunkRecords,
             "chunk size %u outside [1, %u]", options_.chunkRecords,
             kMaxChunkRecords);
    fatal_if(options_.name.size() > 4096,
             "trace name length %zu exceeds the 4096-byte cap",
             options_.name.size());
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(file_ == nullptr, "cannot open %s for writing",
             path.c_str());
    pending_.reserve(options_.chunkRecords);

    std::vector<std::uint8_t> header;
    header.insert(header.end(), kContainerMagic, kContainerMagic + 4);
    putU32(header, kContainerVersion);
    putU32(header, 0); // flags, reserved
    putU32(header, static_cast<std::uint32_t>(options_.name.size()));
    header.insert(header.end(), options_.name.begin(),
                  options_.name.end());
    fatal_if(std::fwrite(header.data(), 1, header.size(), file_) !=
                 header.size(),
             "short write to %s", path_.c_str());
    offset_ = header.size();
}

ChunkedTraceWriter::~ChunkedTraceWriter()
{
    finish();
}

void
ChunkedTraceWriter::append(const trace::TraceRecord &r)
{
    fatal_if(finished_, "append to a finished trace container");
    trace::validateTraceRecord(r, totalRecords_);
    pending_.push_back(r);
    ++totalRecords_;
    if (pending_.size() >= options_.chunkRecords)
        flushChunk();
}

void
ChunkedTraceWriter::flushChunk()
{
    if (pending_.empty())
        return;

    coded_.clear();
    encodeChunk(pending_.data(), pending_.size(), coded_);

    ChunkIndexEntry entry;
    entry.fileOffset = offset_;
    entry.firstRecord = totalRecords_ - pending_.size();
    entry.recordCount = static_cast<std::uint32_t>(pending_.size());
    entry.codedBytes = static_cast<std::uint32_t>(coded_.size());

    std::vector<std::uint8_t> header;
    putU32(header, entry.recordCount);
    putU32(header, static_cast<std::uint32_t>(pending_.size() *
                                              sizeof(trace::TraceRecord)));
    putU32(header, entry.codedBytes);
    putU32(header, crc32(coded_.data(), coded_.size()));
    fatal_if(std::fwrite(header.data(), 1, header.size(), file_) !=
                     header.size() ||
                 std::fwrite(coded_.data(), 1, coded_.size(), file_) !=
                     coded_.size(),
             "short write to %s", path_.c_str());

    offset_ += header.size() + coded_.size();
    codedBytes_ += coded_.size();
    index_.push_back(entry);
    pending_.clear();
}

void
ChunkedTraceWriter::finish()
{
    if (finished_)
        return;
    flushChunk();

    std::vector<std::uint8_t> tail;
    for (const ChunkIndexEntry &e : index_) {
        putU64(tail, e.fileOffset);
        putU64(tail, e.firstRecord);
        putU32(tail, e.recordCount);
        putU32(tail, e.codedBytes);
    }
    const std::uint32_t index_crc = crc32(tail.data(), tail.size());
    const std::uint64_t index_offset = offset_;
    putU64(tail, totalRecords_);
    putU64(tail, index_offset);
    putU32(tail, static_cast<std::uint32_t>(index_.size()));
    putU32(tail, index_crc);
    tail.insert(tail.end(), kFooterMagic, kFooterMagic + 4);
    fatal_if(std::fwrite(tail.data(), 1, tail.size(), file_) !=
                 tail.size(),
             "short write to %s", path_.c_str());

    fatal_if(std::fclose(file_) != 0, "cannot close %s", path_.c_str());
    file_ = nullptr;
    finished_ = true;
}

gpu::InstrObserver
captureObserver(ChunkedTraceWriter &writer)
{
    return [&writer](const isa::Instruction &in, LaneMask exec_mask) {
        writer.append(trace::recordOf(in, exec_mask));
    };
}

void
writeContainerFile(const std::string &path,
                   const trace::MaskTrace &trace,
                   std::uint32_t chunk_records)
{
    WriterOptions options;
    options.name = trace.name;
    options.chunkRecords = chunk_records;
    ChunkedTraceWriter writer(path, std::move(options));
    for (const trace::TraceRecord &r : trace.records)
        writer.append(r);
    writer.finish();
}

bool
isContainerFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char magic[4] = {};
    const bool got = std::fread(magic, 1, 4, f) == 4;
    std::fclose(f);
    return got && std::memcmp(magic, kContainerMagic, 4) == 0;
}

} // namespace iwc::tracestream
