#include "tracestream/reader.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace iwc::tracestream
{

namespace
{

/** Matches the writer's kMaxNameLen policy in trace_io. */
constexpr std::uint32_t kMaxNameLen = 4096;

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (i * 8);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (i * 8);
    return v;
}

void
readAt(std::FILE *f, const std::string &path, std::uint64_t offset,
       void *out, std::size_t size)
{
    fatal_if(std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0,
             "cannot seek in %s", path.c_str());
    fatal_if(std::fread(out, 1, size, f) != size,
             "truncated trace container %s", path.c_str());
}

std::uint64_t
fileSize(std::FILE *f, const std::string &path)
{
    fatal_if(std::fseek(f, 0, SEEK_END) != 0, "cannot seek in %s",
             path.c_str());
    const long size = std::ftell(f);
    fatal_if(size < 0, "cannot tell size of %s", path.c_str());
    return static_cast<std::uint64_t>(size);
}

} // namespace

ContainerInfo
readContainerInfo(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(f == nullptr, "cannot open %s", path.c_str());
    const std::uint64_t size = fileSize(f, path);

    // Header: magic, version, flags, name.
    std::uint8_t head[16];
    fatal_if(size < sizeof(head) + kFooterBytes,
             "%s is too small to be a trace container", path.c_str());
    readAt(f, path, 0, head, sizeof(head));
    fatal_if(std::memcmp(head, kContainerMagic, 4) != 0,
             "%s is not an IWC trace container", path.c_str());
    const std::uint32_t version = getU32(head + 4);
    fatal_if(version != kContainerVersion,
             "unsupported trace container version %u in %s", version,
             path.c_str());
    const std::uint32_t name_len = getU32(head + 12);
    fatal_if(name_len > kMaxNameLen,
             "trace name length %u exceeds the %u-byte cap "
             "(corrupt header?)",
             name_len, kMaxNameLen);
    fatal_if(16ull + name_len + kFooterBytes > size,
             "truncated trace container %s", path.c_str());

    ContainerInfo info;
    info.name.resize(name_len);
    if (name_len > 0)
        readAt(f, path, 16, info.name.data(), name_len);

    // Footer: totalRecords, indexOffset, chunkCount, indexCrc, magic.
    std::uint8_t foot[kFooterBytes];
    readAt(f, path, size - kFooterBytes, foot, sizeof(foot));
    fatal_if(std::memcmp(foot + kFooterBytes - 4, kFooterMagic, 4) != 0,
             "%s: missing container footer (truncated write?)",
             path.c_str());
    info.totalRecords = getU64(foot);
    const std::uint64_t index_offset = getU64(foot + 8);
    const std::uint32_t chunk_count = getU32(foot + 16);
    const std::uint32_t index_crc = getU32(foot + 20);

    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(chunk_count) * kIndexEntryBytes;
    fatal_if(index_offset + index_bytes + kFooterBytes != size,
             "%s: chunk index does not fit the file (corrupt footer)",
             path.c_str());

    std::vector<std::uint8_t> raw(index_bytes);
    if (index_bytes > 0)
        readAt(f, path, index_offset, raw.data(), raw.size());
    std::fclose(f);
    fatal_if(crc32(raw.data(), raw.size()) != index_crc,
             "%s: chunk index CRC mismatch", path.c_str());

    info.chunks.resize(chunk_count);
    std::uint64_t expect_record = 0;
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
        const std::uint8_t *p = raw.data() + i * kIndexEntryBytes;
        ChunkIndexEntry &e = info.chunks[i];
        e.fileOffset = getU64(p);
        e.firstRecord = getU64(p + 8);
        e.recordCount = getU32(p + 16);
        e.codedBytes = getU32(p + 20);
        fatal_if(e.recordCount == 0 || e.recordCount > kMaxChunkRecords,
                 "%s: chunk %u holds %u records (expected 1..%u)",
                 path.c_str(), i, e.recordCount, kMaxChunkRecords);
        fatal_if(e.firstRecord != expect_record,
                 "%s: chunk %u starts at record %llu, expected %llu",
                 path.c_str(), i,
                 static_cast<unsigned long long>(e.firstRecord),
                 static_cast<unsigned long long>(expect_record));
        fatal_if(e.fileOffset + kChunkHeaderBytes + e.codedBytes >
                     index_offset,
                 "%s: chunk %u overlaps the index (corrupt offsets)",
                 path.c_str(), i);
        expect_record += e.recordCount;
    }
    fatal_if(expect_record != info.totalRecords,
             "%s: index covers %llu records but the footer promises "
             "%llu",
             path.c_str(),
             static_cast<unsigned long long>(expect_record),
             static_cast<unsigned long long>(info.totalRecords));
    return info;
}

ChunkReader::ChunkReader(const std::string &path,
                         const ContainerInfo &info)
    : path_(path), info_(info)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(file_ == nullptr, "cannot open %s", path.c_str());
}

ChunkReader::~ChunkReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
ChunkReader::read(std::size_t index,
                  std::vector<trace::TraceRecord> &out)
{
    panic_if(index >= info_.chunks.size(),
             "chunk index %zu out of range", index);
    const ChunkIndexEntry &e = info_.chunks[index];

    std::uint8_t head[kChunkHeaderBytes];
    readAt(file_, path_, e.fileOffset, head, sizeof(head));
    const std::uint32_t record_count = getU32(head);
    const std::uint32_t raw_bytes = getU32(head + 4);
    const std::uint32_t coded_bytes = getU32(head + 8);
    const std::uint32_t crc = getU32(head + 12);
    fatal_if(record_count != e.recordCount ||
                 coded_bytes != e.codedBytes,
             "%s: chunk %zu header disagrees with the index "
             "(corrupt chunk)",
             path_.c_str(), index);
    fatal_if(raw_bytes != record_count * sizeof(trace::TraceRecord),
             "%s: chunk %zu raw size %u does not match %u records",
             path_.c_str(), index, raw_bytes, record_count);

    coded_.resize(coded_bytes);
    readAt(file_, path_, e.fileOffset + kChunkHeaderBytes,
           coded_.data(), coded_.size());
    fatal_if(crc32(coded_.data(), coded_.size()) != crc,
             "%s: chunk %zu payload CRC mismatch (corrupt chunk)",
             path_.c_str(), index);

    decodeChunk(coded_.data(), coded_.size(), record_count, out);
}

TraceCursor::TraceCursor(const std::string &path, StreamOptions options,
                         std::uint64_t chunk_begin,
                         std::uint64_t chunk_end)
    : path_(path), info_(readContainerInfo(path)), options_(options)
{
    const std::uint64_t count = info_.chunks.size();
    begin_ = std::min(chunk_begin, count);
    end_ = std::min(chunk_end, count);
    if (end_ < begin_)
        end_ = begin_;
    nextFetch_ = begin_;
    nextConsume_ = begin_;

    if (options_.ioThreads == 0) {
        syncReader_ = std::make_unique<ChunkReader>(path_, info_);
        return;
    }
    if (options_.ringChunks == 0)
        options_.ringChunks = 1;
    // More threads than ring slots just park on a full ring.
    options_.ioThreads =
        std::min(options_.ioThreads, options_.ringChunks);
    ring_.resize(options_.ringChunks);
    ioThreads_.reserve(options_.ioThreads);
    for (unsigned i = 0; i < options_.ioThreads; ++i)
        ioThreads_.emplace_back([this] { ioLoop(); });
}

TraceCursor::~TraceCursor()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    producerCv_.notify_all();
    consumerCv_.notify_all();
    for (std::thread &t : ioThreads_)
        t.join();
}

void
TraceCursor::ioLoop()
{
    // Each I/O worker owns a file handle; decode happens here, off
    // the consumer's thread, which is the whole point. The handle is
    // opened lazily on the first claimed chunk so a worker with
    // nothing to fetch (empty range, more workers than chunks) never
    // races the caller for the file.
    std::unique_ptr<ChunkReader> reader;
    std::vector<trace::TraceRecord> local;
    for (;;) {
        std::uint64_t seq;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stop_ || nextFetch_ >= end_)
                return;
            seq = nextFetch_++;
        }
        if (reader == nullptr)
            reader = std::make_unique<ChunkReader>(path_, info_);
        reader->read(static_cast<std::size_t>(seq), local);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            Slot &slot = ring_[seq % ring_.size()];
            // The slot is free once the consumer has passed every
            // earlier chunk mapping to it (bounded reorder window).
            producerCv_.wait(lock, [&] {
                return stop_ ||
                       (!slot.ready &&
                        seq < nextConsume_ + ring_.size());
            });
            if (stop_)
                return;
            slot.records.swap(local);
            slot.seq = seq;
            slot.ready = true;
        }
        consumerCv_.notify_one();
    }
}

const std::vector<trace::TraceRecord> *
TraceCursor::nextChunk()
{
    if (nextConsume_ >= end_)
        return nullptr;

    if (syncReader_ != nullptr) {
        syncReader_->read(static_cast<std::size_t>(nextConsume_),
                          currentChunk_);
        ++nextConsume_;
        recordPos_ = 0;
        return &currentChunk_;
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        Slot &slot = ring_[nextConsume_ % ring_.size()];
        consumerCv_.wait(lock, [&] {
            return slot.ready && slot.seq == nextConsume_;
        });
        currentChunk_.swap(slot.records);
        slot.ready = false;
        ++nextConsume_;
    }
    producerCv_.notify_all();
    recordPos_ = 0;
    return &currentChunk_;
}

trace::MaskTrace
readContainerFile(const std::string &path)
{
    TraceCursor cursor(path);
    trace::MaskTrace trace;
    trace.name = cursor.info().name;
    trace.reserve(cursor.info().totalRecords);
    const std::vector<trace::TraceRecord> *chunk;
    while ((chunk = cursor.nextChunk()) != nullptr)
        trace.records.insert(trace.records.end(), chunk->begin(),
                             chunk->end());
    return trace;
}

} // namespace iwc::tracestream
