#include "lint/verifier.hh"

#include <array>
#include <vector>

#include "common/logging.hh"
#include "func/predecode.hh"
#include "isa/builder.hh"

namespace iwc::lint
{

using isa::DataType;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::PredCtrl;
using isa::SendOp;

namespace
{

/** EU flag register count (f0/f1, as in ThreadState). */
constexpr unsigned kNumFlags = 2;

bool
legalSimdWidth(unsigned w)
{
    return w == 1 || w == 4 || w == 8 || w == 16 || w == 32;
}

/** ALU/EM source arity; how many of src0..src2 the interpreter reads. */
unsigned
numAluSrcs(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Rndd:
      case Opcode::Frc:
      case Opcode::Inv:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp2:
      case Opcode::Log2:
        return 1;
      case Opcode::Mad:
        return 3;
      default:
        return 2;
    }
}

// --- Pass: SIMD widths, flag indices, condition modifiers -------------

void
checkWidth(const KernelView &view, std::uint32_t ip,
           const Instruction &in, Report &report)
{
    const auto sip = static_cast<std::int32_t>(ip);
    if (!legalSimdWidth(in.simdWidth)) {
        report.add(Check::Width, Severity::Error, sip,
                   "illegal SIMD width %u", in.simdWidth);
    } else if (in.simdWidth > view.simdWidth) {
        report.add(Check::Width, Severity::Error, sip,
                   "SIMD%u instruction in a SIMD%u kernel",
                   in.simdWidth, view.simdWidth);
    }
    // Out-of-range flag fields are errors even when the instruction
    // never reads them: predecode rejects them unconditionally.
    if (in.predFlag >= kNumFlags) {
        report.add(Check::Width, Severity::Error, sip,
                   "predicate flag f%u out of range", in.predFlag);
    }
    if (in.condFlag >= kNumFlags) {
        report.add(Check::Width, Severity::Error, sip,
                   "condition flag f%u out of range", in.condFlag);
    }
    if (in.op == Opcode::Cmp && in.condMod == isa::CondMod::None) {
        report.add(Check::Width, Severity::Error, sip,
                   "cmp without condition modifier");
    }
    if (in.op != Opcode::Cmp && in.condMod != isa::CondMod::None) {
        report.add(Check::Width, Severity::Warning, sip,
                   "condition modifier on %s is ignored",
                   isa::opcodeName(in.op));
    }
}

// --- Pass: operand regions and arity ----------------------------------

void
checkOperandRegion(std::uint32_t ip, const Instruction &in,
                   const Operand &op, const char *which, Report &report)
{
    if (!op.isGrf())
        return;
    const unsigned elems = op.scalar ? 1 : in.simdWidth;
    const unsigned begin = op.grfByteOffset();
    const unsigned end = begin + elems * isa::dataTypeSize(op.type);
    if (end > kGrfRegCount * kGrfRegBytes) {
        report.add(Check::Region, Severity::Error,
                   static_cast<std::int32_t>(ip),
                   "%s region r%u [%u, %u) overruns the GRF", which,
                   op.reg, begin, end);
    }
}

void
checkRegion(std::uint32_t ip, const Instruction &in, Report &report)
{
    const auto sip = static_cast<std::int32_t>(ip);
    if (in.dst.isImm()) {
        report.add(Check::Region, Severity::Error, sip,
                   "immediate destination");
    }
    checkOperandRegion(ip, in, in.dst, "dst", report);
    checkOperandRegion(ip, in, in.src0, "src0", report);
    checkOperandRegion(ip, in, in.src1, "src1", report);
    checkOperandRegion(ip, in, in.src2, "src2", report);

    if (isa::isControlFlow(in.op)) {
        if (!in.dst.isNull() || !in.src0.isNull() || !in.src1.isNull() ||
            !in.src2.isNull()) {
            report.add(Check::Region, Severity::Warning, sip,
                       "%s ignores its operands",
                       isa::opcodeName(in.op));
        }
        return;
    }
    if (in.op == Opcode::Send)
        return; // the send pass owns operand shape

    const unsigned arity = numAluSrcs(in.op);
    const Operand *srcs[3] = {&in.src0, &in.src1, &in.src2};
    const char *names[3] = {"src0", "src1", "src2"};
    for (unsigned i = 0; i < 3; ++i) {
        if (i < arity && srcs[i]->isNull()) {
            report.add(Check::Region, Severity::Error, sip,
                       "%s reads %s but it is null",
                       isa::opcodeName(in.op), names[i]);
        } else if (i >= arity && !srcs[i]->isNull()) {
            report.add(Check::Region, Severity::Warning, sip,
                       "%s does not read %s", isa::opcodeName(in.op),
                       names[i]);
        }
    }
    if (in.dst.isNull() && in.op != Opcode::Cmp) {
        report.add(Check::Region, Severity::Warning, sip,
                   "%s result is discarded (null dst)",
                   isa::opcodeName(in.op));
    }
}

// --- Pass: Send descriptor validation ---------------------------------

void
checkSend(const KernelView &view, std::uint32_t ip,
          const Instruction &in, Report &report)
{
    if (in.op != Opcode::Send)
        return;
    const auto sip = static_cast<std::int32_t>(ip);
    const SendOp sop = in.send.op;
    const unsigned send_bytes = isa::dataTypeSize(in.send.type);

    if (sop == SendOp::Barrier || sop == SendOp::Fence) {
        if (!in.dst.isNull() || !in.src0.isNull() || !in.src1.isNull()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s takes no operands", isa::sendOpName(sop));
        }
        return;
    }

    // Every memory message carries addresses in src0.
    if (in.src0.isNull()) {
        report.add(Check::BadSend, Severity::Error, sip,
                   "%s has no address operand (src0)",
                   isa::sendOpName(sop));
    } else {
        const bool block =
            sop == SendOp::BlockLoad || sop == SendOp::BlockStore;
        if (block) {
            if (in.src0.isGrf() && !in.src0.scalar) {
                report.add(Check::BadSend, Severity::Warning, sip,
                           "%s address should be scalar (only element "
                           "0 is read)", isa::sendOpName(sop));
            }
        } else if (!in.src0.isGrf()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s per-channel addresses must live in the GRF",
                       isa::sendOpName(sop));
        }
        if (in.src0.isGrf() &&
            isa::dataTypeSize(in.src0.type) != 4) {
            report.add(Check::BadSend, Severity::Warning, sip,
                       "address operand is %s, expected a 32-bit type",
                       isa::dataTypeName(in.src0.type));
        }
    }

    if (isa::isSlmSend(sop) && view.slmBytes == 0) {
        report.add(Check::BadSend, Severity::Error, sip,
                   "%s but the kernel declares no SLM",
                   isa::sendOpName(sop));
    }

    switch (sop) {
      case SendOp::GatherLoad:
      case SendOp::SlmGatherLoad:
        if (!in.dst.isGrf()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s needs a GRF destination",
                       isa::sendOpName(sop));
        } else if (isa::dataTypeSize(in.dst.type) != send_bytes) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s moves %u-byte elements into a %u-byte dst",
                       isa::sendOpName(sop), send_bytes,
                       isa::dataTypeSize(in.dst.type));
        }
        break;
      case SendOp::ScatterStore:
      case SendOp::SlmScatterStore:
        if (!in.src1.isGrf()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s needs GRF store data in src1",
                       isa::sendOpName(sop));
        } else if (isa::dataTypeSize(in.src1.type) != send_bytes) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "%s stores %u-byte elements from a %u-byte src1",
                       isa::sendOpName(sop), send_bytes,
                       isa::dataTypeSize(in.src1.type));
        }
        if (!in.dst.isNull()) {
            report.add(Check::BadSend, Severity::Warning, sip,
                       "%s writes nothing back (dst is ignored)",
                       isa::sendOpName(sop));
        }
        break;
      case SendOp::SlmAtomicAdd:
        if (in.src1.isNull()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "atomic add has no addend operand (src1)");
        }
        break;
      case SendOp::BlockLoad:
      case SendOp::BlockStore: {
        if (in.send.numRegs == 0) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "block message moves zero registers");
        }
        const Operand &data =
            sop == SendOp::BlockLoad ? in.dst : in.src1;
        const char *what =
            sop == SendOp::BlockLoad ? "destination" : "source";
        if (!data.isGrf()) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "block %s must be a GRF register", what);
        } else if (data.reg + in.send.numRegs > kGrfRegCount) {
            report.add(Check::BadSend, Severity::Error, sip,
                       "block %s r%u..r%u overruns the GRF", what,
                       data.reg, data.reg + in.send.numRegs - 1);
        }
        break;
      }
      default:
        break;
    }
}

// --- Pass: def-before-use dataflow ------------------------------------

/**
 * Per-register definedness. "Partial" means defined for some channels
 * or elements only: predicated or scalar writes, and writes that
 * happened on only one path into a control-flow join, never promote a
 * register past Partial.
 */
enum class DefState : std::uint8_t
{
    Undef,
    Partial,
    Def,
};

/**
 * One half of a complementary predicated write pair: a full-width
 * write under (flag, sense) leaves its target Partial, but remembers
 * the predicate so the opposite-sense write of the same width can
 * upgrade the target to Def — together the two writes cover every
 * channel. The melder (src/xform) emits exactly this shape when it
 * if-converts a diamond, and without the refinement every melded
 * kernel would drown in partial-read warnings.
 */
struct PendingPred
{
    std::int8_t flag = -1; ///< predicate flag index, -1 = no pending
    isa::PredCtrl ctrl = PredCtrl::None;
    std::uint8_t width = 0;

    bool operator==(const PendingPred &) const = default;
};

struct FlowState
{
    std::array<DefState, kGrfRegCount> reg{};
    std::array<DefState, kNumFlags> flag{};
    /** Pending complementary-write predicate per reg / flag target. */
    std::array<PendingPred, kGrfRegCount> pend{};
    std::array<PendingPred, kNumFlags> flagPend{};

    bool operator==(const FlowState &) const = default;
};

/** Join at control-flow merges: agree, or drop to Partial. */
DefState
mergeState(DefState a, DefState b)
{
    return a == b ? a : DefState::Partial;
}

/** Pendings must agree on both paths into a join to survive it. */
bool
mergePending(PendingPred &into, const PendingPred &from)
{
    if (into == from || into.flag < 0)
        return false;
    into = from.flag < 0 ? from : PendingPred{};
    return true;
}

bool
mergeInto(FlowState &into, const FlowState &from)
{
    bool changed = false;
    for (unsigned r = 0; r < kGrfRegCount; ++r) {
        const DefState m = mergeState(into.reg[r], from.reg[r]);
        changed |= m != into.reg[r];
        into.reg[r] = m;
        changed |= mergePending(into.pend[r], from.pend[r]);
    }
    for (unsigned f = 0; f < kNumFlags; ++f) {
        const DefState m = mergeState(into.flag[f], from.flag[f]);
        changed |= m != into.flag[f];
        into.flag[f] = m;
        changed |= mergePending(into.flagPend[f], from.flagPend[f]);
    }
    return changed;
}

isa::PredCtrl
oppositeSense(isa::PredCtrl ctrl)
{
    return ctrl == PredCtrl::Normal ? PredCtrl::Inverted
                                    : PredCtrl::Normal;
}

/** The dataflow engine for the def-before-use pass. */
class DefUse
{
  public:
    DefUse(const KernelView &view, const Cfg &cfg,
           const VerifyOptions &options)
        : view_(view), cfg_(cfg), options_(options)
    {
    }

    void
    run(Report &report)
    {
        const std::uint32_t n = view_.size;
        in_.assign(n, FlowState{});
        hasIn_.assign(n, false);

        // Entry state: the dispatch payload (r0, the id vectors, one
        // register per argument — everything below firstTempReg) is
        // preloaded; temporaries and flags start undefined.
        FlowState entry;
        const unsigned preloaded =
            view_.firstTempReg > 0 ? view_.firstTempReg : 1;
        for (unsigned r = 0; r < preloaded && r < kGrfRegCount; ++r)
            entry.reg[r] = DefState::Def;
        in_[0] = entry;
        hasIn_[0] = true;

        std::vector<std::uint32_t> work{0};
        while (!work.empty()) {
            const std::uint32_t ip = work.back();
            work.pop_back();
            FlowState out = in_[ip];
            transfer(ip, out, nullptr);
            for (const std::uint32_t succ : cfg_.succs(ip)) {
                if (!hasIn_[succ]) {
                    in_[succ] = out;
                    hasIn_[succ] = true;
                    work.push_back(succ);
                } else if (mergeInto(in_[succ], out)) {
                    work.push_back(succ);
                }
            }
        }

        // Fixpoint reached: replay each reachable instruction once,
        // reporting against its final input state.
        for (std::uint32_t ip = 0; ip < n; ++ip) {
            if (!hasIn_[ip])
                continue;
            FlowState state = in_[ip];
            transfer(ip, state, &report);
        }
    }

  private:
    void
    readRegs(const Instruction &in, const Operand &op, const char *which,
             std::uint32_t ip, const FlowState &state, Report *report)
    {
        const RegSpan range = operandRegs(op, in.simdWidth);
        if (!range.valid || report == nullptr)
            return;
        for (unsigned r = range.first; r <= range.last; ++r) {
            if (state.reg[r] == DefState::Undef) {
                report->add(Check::UndefRead, Severity::Error,
                            static_cast<std::int32_t>(ip),
                            "%s reads r%u before any definition", which,
                            r);
            } else if (state.reg[r] == DefState::Partial &&
                       options_.warnPartialReads && !op.scalar &&
                       in.predCtrl == PredCtrl::None) {
                report->add(Check::UndefRead, Severity::Warning,
                            static_cast<std::int32_t>(ip),
                            "%s reads r%u, defined only for some "
                            "channels", which, r);
            }
        }
    }

    void
    readFlag(unsigned flag, std::uint32_t ip, const FlowState &state,
             Report *report)
    {
        if (report == nullptr || flag >= kNumFlags)
            return;
        if (state.flag[flag] == DefState::Undef) {
            report->add(Check::UndefRead, Severity::Error,
                        static_cast<std::int32_t>(ip),
                        "f%u read before any cmp defines it", flag);
        }
    }

    void
    writeRegs(const Operand &op, const Instruction &in, FlowState &state)
    {
        const RegSpan range = operandRegs(op, in.simdWidth);
        if (!range.valid)
            return;
        const bool predicated = in.predCtrl != PredCtrl::None;
        if (op.scalar) {
            // A scalar write touches element 0 only, whatever the
            // predicate: never more than Partial, and never half of a
            // complementary pair.
            for (unsigned r = range.first; r <= range.last; ++r) {
                state.reg[r] = mergeState(state.reg[r], DefState::Def);
                state.pend[r] = PendingPred{};
            }
            return;
        }
        if (!predicated) {
            for (unsigned r = range.first; r <= range.last; ++r) {
                state.reg[r] = DefState::Def;
                state.pend[r] = PendingPred{};
            }
            return;
        }
        // Predicated vector write: Partial on its own, Def when it
        // completes a same-width opposite-sense write of the same
        // registers with the predicate untouched in between (see
        // PendingPred).
        const PendingPred complement{static_cast<std::int8_t>(in.predFlag),
                                     oppositeSense(in.predCtrl),
                                     in.simdWidth};
        const PendingPred mine{static_cast<std::int8_t>(in.predFlag),
                               in.predCtrl, in.simdWidth};
        for (unsigned r = range.first; r <= range.last; ++r) {
            if (state.reg[r] == DefState::Def) {
                state.pend[r] = PendingPred{};
            } else if (state.pend[r] == complement) {
                state.reg[r] = DefState::Def;
                state.pend[r] = PendingPred{};
            } else {
                state.reg[r] = mergeState(state.reg[r], DefState::Def);
                state.pend[r] = mine;
            }
        }
    }

    /**
     * Applies instruction @p ip to @p state; with @p report set, also
     * emits UndefRead diagnostics for the reads it performs.
     */
    void
    transfer(std::uint32_t ip, FlowState &state, Report *report)
    {
        const Instruction &in = view_.at(ip);
        const bool predicated = in.predCtrl != PredCtrl::None;

        switch (in.op) {
          case Opcode::If:
          case Opcode::Break:
          case Opcode::Cont:
          case Opcode::LoopEnd:
            if (predicated)
                readFlag(in.predFlag, ip, state, report);
            return;
          case Opcode::Else:
          case Opcode::EndIf:
          case Opcode::LoopBegin:
          case Opcode::Halt:
            return;
          default:
            break;
        }
        if (predicated)
            readFlag(in.predFlag, ip, state, report);

        if (in.op == Opcode::Send) {
            transferSend(ip, in, state, report);
            return;
        }

        const unsigned arity = numAluSrcs(in.op);
        readRegs(in, in.src0, "src0", ip, state, report);
        if (arity >= 2)
            readRegs(in, in.src1, "src1", ip, state, report);
        if (arity >= 3)
            readRegs(in, in.src2, "src2", ip, state, report);
        if (in.op == Opcode::Sel)
            readFlag(in.condFlag, ip, state, report);

        if (in.op == Opcode::Cmp && in.condFlag < kNumFlags) {
            // Only enabled channels update their flag bit, so a
            // predicated or narrower-than-kernel cmp leaves the rest
            // of the flag stale — unless it completes a complementary
            // full-width pair (same rules as register writes).
            DefState &fs = state.flag[in.condFlag];
            PendingPred &fp = state.flagPend[in.condFlag];
            if (in.simdWidth < view_.simdWidth) {
                fs = mergeState(fs, DefState::Def);
                fp = PendingPred{};
            } else if (!predicated) {
                fs = DefState::Def;
                fp = PendingPred{};
            } else {
                const PendingPred complement{
                    static_cast<std::int8_t>(in.predFlag),
                    oppositeSense(in.predCtrl), in.simdWidth};
                if (fs == DefState::Def) {
                    fp = PendingPred{};
                } else if (fp == complement) {
                    fs = DefState::Def;
                    fp = PendingPred{};
                } else {
                    fs = mergeState(fs, DefState::Def);
                    fp = PendingPred{static_cast<std::int8_t>(in.predFlag),
                                     in.predCtrl, in.simdWidth};
                }
            }
            // The flag's value changed: any pending keyed on it can no
            // longer pair with a write that observed the old value.
            for (unsigned r = 0; r < kGrfRegCount; ++r)
                if (state.pend[r].flag == in.condFlag)
                    state.pend[r] = PendingPred{};
            for (unsigned f = 0; f < kNumFlags; ++f)
                if (f != in.condFlag &&
                    state.flagPend[f].flag == in.condFlag)
                    state.flagPend[f] = PendingPred{};
            if (predicated && in.predFlag == in.condFlag)
                state.flagPend[in.condFlag] = PendingPred{};
        }
        writeRegs(in.dst, in, state);
    }

    void
    transferSend(std::uint32_t ip, const Instruction &in,
                 FlowState &state, Report *report)
    {
        switch (in.send.op) {
          case SendOp::Barrier:
          case SendOp::Fence:
            return;
          case SendOp::BlockLoad:
            readRegs(in, in.src0, "address", ip, state, report);
            // A block load fills whole registers regardless of mask.
            if (in.dst.isGrf()) {
                for (unsigned i = 0; i < in.send.numRegs; ++i) {
                    const unsigned r = in.dst.reg + i;
                    if (r < kGrfRegCount) {
                        state.reg[r] = DefState::Def;
                        state.pend[r] = PendingPred{};
                    }
                }
            }
            return;
          case SendOp::BlockStore:
            readRegs(in, in.src0, "address", ip, state, report);
            if (in.src1.isGrf() && report != nullptr) {
                for (unsigned i = 0; i < in.send.numRegs; ++i) {
                    const unsigned r = in.src1.reg + i;
                    if (r < kGrfRegCount &&
                        state.reg[r] == DefState::Undef) {
                        report->add(Check::UndefRead, Severity::Error,
                                    static_cast<std::int32_t>(ip),
                                    "block store reads r%u before any "
                                    "definition", r);
                    }
                }
            }
            return;
          case SendOp::GatherLoad:
          case SendOp::SlmGatherLoad:
            readRegs(in, in.src0, "address", ip, state, report);
            writeRegs(in.dst, in, state);
            return;
          case SendOp::ScatterStore:
          case SendOp::SlmScatterStore:
            readRegs(in, in.src0, "address", ip, state, report);
            readRegs(in, in.src1, "data", ip, state, report);
            return;
          case SendOp::SlmAtomicAdd:
            readRegs(in, in.src0, "address", ip, state, report);
            readRegs(in, in.src1, "addend", ip, state, report);
            writeRegs(in.dst, in, state);
            return;
        }
    }

    const KernelView &view_;
    const Cfg &cfg_;
    const VerifyOptions &options_;
    std::vector<FlowState> in_;
    std::vector<bool> hasIn_;
};

// --- Pass: scoreboard self-hazard -------------------------------------

/**
 * A Send whose writeback claims a register its own payload reads would
 * race that payload in hardware (the message engine drains the payload
 * asynchronously while the writeback lands). Detected over predecode's
 * flattened dependence lists: the claim registers are appended last, so
 * the leading depCount - claimCount entries are exactly the payload.
 */
void
checkSelfHazard(const KernelView &view, Report &report)
{
    const func::DecodedKernel decoded(view.instrs, view.size);
    for (std::uint32_t ip = 0; ip < view.size; ++ip) {
        const func::DecodedInstr &d = decoded.at(ip);
        if (d.op != Opcode::Send || d.claimCount == 0)
            continue;
        const std::uint8_t *payload = decoded.depPool() + d.depOff;
        const unsigned payload_count = d.depCount - d.claimCount;
        const std::uint8_t *claims = decoded.depPool() + d.claimOff;
        for (unsigned i = 0; i < payload_count; ++i) {
            bool hit = false;
            for (unsigned j = 0; j < d.claimCount && !hit; ++j)
                hit = payload[i] == claims[j];
            if (hit) {
                report.add(Check::SelfHazard, Severity::Error,
                           static_cast<std::int32_t>(ip),
                           "send payload register r%u is claimed by "
                           "its own writeback", payload[i]);
            }
        }
    }
}

} // namespace

Report
verify(const KernelView &view, const VerifyOptions &options)
{
    Report report;
    report.kernel = view.name;

    if (!legalSimdWidth(view.simdWidth)) {
        report.add(Check::Width, Severity::Error, -1,
                   "illegal kernel SIMD width %u", view.simdWidth);
    }

    const Cfg cfg = Cfg::build(view, report);
    for (std::uint32_t ip = 0; ip < view.size; ++ip) {
        const Instruction &in = view.at(ip);
        checkWidth(view, ip, in, report);
        checkRegion(ip, in, report);
        checkSend(view, ip, in, report);
    }

    // The dataflow passes assume the per-instruction invariants the
    // earlier passes establish (in-range regions and targets, legal
    // widths); skip them the moment anything is structurally wrong.
    if (cfg.structureOk() && !report.hasErrors()) {
        DefUse(view, cfg, options).run(report);
        checkSelfHazard(view, report);
    }
    if (options.warnUnreachable)
        cfg.reportUnreachable(report);
    return report;
}

Report
verify(const isa::Kernel &kernel, const VerifyOptions &options)
{
    return verify(KernelView::of(kernel), options);
}

void
verifyOrDie(const isa::Kernel &kernel)
{
    const Report report = verify(kernel);
    if (!report.clean())
        fatal("kernel fails verification:\n%s",
              renderText(report, &kernel).c_str());
}

void
installBuildVerifier()
{
    isa::KernelBuilder::setBuildHook(&verifyOrDie);
}

} // namespace iwc::lint
