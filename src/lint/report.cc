#include "lint/report.hh"

#include <cstdarg>
#include <cstdio>

#include "isa/disasm.hh"
#include "isa/kernel.hh"

namespace iwc::lint
{

const char *
checkName(Check check)
{
    switch (check) {
      case Check::Structure:   return "structure";
      case Check::UndefRead:   return "undef-read";
      case Check::Width:       return "width";
      case Check::Region:      return "region";
      case Check::BadSend:     return "bad-send";
      case Check::SelfHazard:  return "self-hazard";
      case Check::Unreachable: return "unreachable";
      case Check::NumChecks:   break;
    }
    return "?";
}

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

void
Report::add(Check check, Severity severity, std::int32_t ip,
            const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    diags.push_back(Diag{check, severity, ip, buf});
}

std::string
renderText(const Report &report, const isa::Kernel *kernel)
{
    std::string out;
    if (report.clean()) {
        out = report.kernel + ": clean\n";
        return out;
    }
    for (const Diag &d : report.diags) {
        out += report.kernel;
        if (d.ip >= 0)
            out += "@" + std::to_string(d.ip);
        out += ": ";
        out += severityName(d.severity);
        out += " [";
        out += checkName(d.check);
        out += "]: ";
        out += d.message;
        if (kernel && d.ip >= 0 &&
            d.ip < static_cast<std::int32_t>(kernel->size())) {
            out += "\n    ";
            out += isa::instrToString(
                kernel->instr(static_cast<std::uint32_t>(d.ip)));
        }
        out += "\n";
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderJson(const Report &report)
{
    std::string out = "{\"kernel\":\"" + jsonEscape(report.kernel) +
        "\",\"clean\":" + (report.clean() ? "true" : "false") +
        ",\"diagnostics\":[";
    for (std::size_t i = 0; i < report.diags.size(); ++i) {
        const Diag &d = report.diags[i];
        if (i)
            out += ",";
        out += "{\"check\":\"";
        out += checkName(d.check);
        out += "\",\"severity\":\"";
        out += severityName(d.severity);
        out += "\",\"ip\":" + std::to_string(d.ip) + ",\"message\":\"" +
            jsonEscape(d.message) + "\"}";
    }
    out += "]}";
    return out;
}

} // namespace iwc::lint
