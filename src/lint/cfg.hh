/**
 * @file
 * Control-flow graph construction over a kernel's instruction stream.
 * The builder pairs structured control flow (If/Else/EndIf,
 * LoopBegin/LoopEnd with Break/Cont, Halt), rejecting malformed
 * nesting and inconsistent branch targets with ip-level diagnostics,
 * and derives what the later passes consume: per-ip successor edges
 * that mirror the interpreter's transitions, the structured region
 * tree (which instruction sits under which If/Loop), and entry
 * reachability.
 *
 * Everything operates on a KernelView — a borrowed instruction span —
 * rather than an isa::Kernel, because the interesting inputs are
 * exactly the ones Kernel's constructor would fatal() on: the lint
 * tests and the fuzzer feed deliberately malformed streams.
 */

#ifndef IWC_LINT_CFG_HH
#define IWC_LINT_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "lint/report.hh"

namespace iwc::lint
{

/** Borrowed, unvalidated view of a kernel's instruction stream. */
struct KernelView
{
    std::string name;
    unsigned simdWidth = 16;
    const isa::Instruction *instrs = nullptr;
    std::uint32_t size = 0;
    unsigned firstTempReg = 0;
    unsigned slmBytes = 0;
    /** Argument metadata when known (initial-definedness seeding). */
    const std::vector<isa::ArgInfo> *args = nullptr;

    static KernelView of(const isa::Kernel &kernel);

    const isa::Instruction &at(std::uint32_t ip) const
    {
        return instrs[ip];
    }
};

/**
 * GRF registers [first, last] covered by one operand access; invalid
 * when the operand is not in the GRF or overruns the register file.
 */
struct RegSpan
{
    unsigned first = 0;
    unsigned last = 0;
    bool valid = false;
};

RegSpan operandRegs(const isa::Operand &op, unsigned width);

/** One structured control-flow region (an If/Else/EndIf or a loop). */
struct Region
{
    enum class Kind : std::uint8_t { If, Loop };

    Kind kind = Kind::If;
    std::int32_t parent = -1; ///< enclosing region index, -1 = top level
    std::int32_t headIp = -1; ///< ip of If / LoopBegin
    std::int32_t elseIp = -1; ///< ip of Else (If regions only)
    std::int32_t endIp = -1;  ///< ip of EndIf / LoopEnd
    /** Break/Cont instructions targeting this loop (Loop regions). */
    std::vector<std::int32_t> exitIps;
};

/**
 * The verified control-flow graph. Only meaningful when structureOk():
 * a stream with malformed nesting gets diagnostics but no usable
 * edges, and the dataflow passes skip it.
 */
class Cfg
{
  public:
    /**
     * Parses @p view's control structure, appending Structure
     * diagnostics (and target-consistency errors) to @p report.
     */
    static Cfg build(const KernelView &view, Report &report);

    bool structureOk() const { return structureOk_; }
    std::uint32_t size() const { return size_; }

    /** Successor ips of @p ip (0, 1, or 2 entries). */
    const std::vector<std::uint32_t> &succs(std::uint32_t ip) const
    {
        return succs_[ip];
    }

    const std::vector<Region> &regions() const { return regions_; }

    /** Innermost region containing @p ip, -1 for top-level code. */
    std::int32_t regionOf(std::uint32_t ip) const
    {
        return regionOf_[ip];
    }

    /** True if some path from the entry reaches @p ip. */
    bool reachable(std::uint32_t ip) const { return reachable_[ip]; }

    /** Appends an Unreachable warning per unreachable ip range. */
    void reportUnreachable(Report &report) const;

  private:
    bool structureOk_ = false;
    std::uint32_t size_ = 0;
    std::vector<std::vector<std::uint32_t>> succs_;
    std::vector<Region> regions_;
    std::vector<std::int32_t> regionOf_;
    std::vector<bool> reachable_;
};

} // namespace iwc::lint

#endif // IWC_LINT_CFG_HH
