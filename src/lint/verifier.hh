/**
 * @file
 * The static kernel verifier: a pass pipeline over the lint CFG that
 * proves a kernel well-formed before it is ever simulated.
 *
 * Passes, in order:
 *  1. structure   — If/Loop pairing and branch-target consistency
 *                   (Cfg::build); a failure here skips passes 4-6.
 *  2. width       — SIMD width legality (1/4/8/16/32, never wider than
 *                   the kernel), flag register indices, Cmp/condMod
 *                   pairing.
 *  3. region      — operand regions inside the GRF, no immediate or
 *                   multi-register-crossing destinations the datapath
 *                   cannot retire.
 *  4. send        — Send descriptor validation: operand shape per
 *                   SendOp, block register counts, SLM messages
 *                   require declared SLM, load width agreement.
 *  5. def-use     — forward dataflow proving every GRF/flag read is
 *                   preceded by a definition on every path. The
 *                   analysis is per-channel aware through the CFG
 *                   encoding: a write inside an If body only counts
 *                   for paths through the body (exactly the channels
 *                   that executed it), and a predicated or
 *                   narrower-than-kernel write only ever produces a
 *                   partial definition.
 *  6. self-hazard — a Send reading a register its own writeback
 *                   claims (async writeback would race the payload),
 *                   detected over predecode's flattened register
 *                   lists.
 *  7. unreachable — instructions no interpreter path can reach.
 */

#ifndef IWC_LINT_VERIFIER_HH
#define IWC_LINT_VERIFIER_HH

#include "lint/cfg.hh"
#include "lint/report.hh"

namespace iwc::lint
{

/** Pass selection / severity knobs (defaults run everything). */
struct VerifyOptions
{
    /** Report reads of partially-defined registers (Warning). */
    bool warnPartialReads = true;
    /** Report unreachable code (Warning). */
    bool warnUnreachable = true;
};

/** Runs the whole pipeline over a borrowed instruction stream. */
Report verify(const KernelView &view, const VerifyOptions &options = {});

/** Convenience overload for built kernels. */
Report verify(const isa::Kernel &kernel,
              const VerifyOptions &options = {});

/**
 * Lints @p kernel and fatal()s with the rendered report if any
 * diagnostic (error or warning) survives — the opt-in build/run hook.
 */
void verifyOrDie(const isa::Kernel &kernel);

/**
 * Registers verifyOrDie as the KernelBuilder finalize hook, so every
 * subsequently built kernel is verified the moment it is built.
 */
void installBuildVerifier();

} // namespace iwc::lint

#endif // IWC_LINT_VERIFIER_HH
