#include "lint/macro.hh"

#include "func/predecode.hh"
#include "isa/disasm.hh"

namespace iwc::lint
{

MacroReport
analyzeMacroRegions(const isa::Kernel &kernel, const LaunchShape &launch)
{
    MacroReport report;
    report.kernel = kernel.name();
    report.instructionCount = kernel.size();

    const DivergenceReport div = analyzeDivergence(kernel, launch);
    if (!div.valid)
        return report;
    report.valid = true;

    const func::DecodedKernel decoded(kernel);
    for (std::uint32_t ip = 0; ip < decoded.size();) {
        const std::uint32_t len = decoded.at(ip).macroLen;
        if (len <= 1) {
            ++ip;
            continue;
        }
        MacroRegion region;
        region.beginIp = ip;
        region.length = len;
        // No control flow inside a run, so the whole run shares the
        // context of its first instruction.
        region.divergent = div.divergentCtx[ip];
        report.regions.push_back(region);
        ip += len;
    }
    return report;
}

std::string
renderMacroReport(const MacroReport &report, const isa::Kernel *kernel)
{
    std::string out = report.kernel + ": ";
    if (!report.valid) {
        out += "not analyzable (kernel fails verification)\n";
        return out;
    }
    out += std::to_string(report.regions.size()) +
        " macro-steppable region(s), " +
        std::to_string(report.coveredInstructions()) + "/" +
        std::to_string(report.instructionCount) +
        " static instructions (" +
        std::to_string(
               static_cast<unsigned>(report.coverage() * 100 + 0.5)) +
        "%)\n";
    for (const MacroRegion &r : report.regions) {
        out += "  @" + std::to_string(r.beginIp) + "+" +
            std::to_string(r.length) + ": ";
        out += r.divergent ? "divergent-ctx" : "uniform-ctx ";
        if (kernel != nullptr && r.beginIp < kernel->size()) {
            out += "  ";
            out += isa::instrToString(kernel->instr(r.beginIp));
            out += " ...";
        }
        out += "\n";
    }
    return out;
}

} // namespace iwc::lint
