#include "lint/divergence.hh"

#include <array>

#include "compaction/cycle_plan.hh"
#include "compaction/mask_info.hh"
#include "isa/disasm.hh"

namespace iwc::lint
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::PredCtrl;
using isa::SendOp;

namespace
{

/** Lattice values: uniform (all channels equal) / varying. */
constexpr std::uint8_t kUniform = 0;
constexpr std::uint8_t kVarying = 1;

constexpr unsigned kNumFlags = 2;

/** Group-support enumeration limit: beyond this, fall back to G. */
constexpr unsigned kMaxEnumGroups = 8;

struct VState
{
    std::array<std::uint8_t, kGrfRegCount> reg{};
    std::array<std::uint8_t, kNumFlags> flag{};

    bool operator==(const VState &) const = default;
};

bool
mergeInto(VState &into, const VState &from)
{
    bool changed = false;
    for (unsigned r = 0; r < kGrfRegCount; ++r) {
        const std::uint8_t m = into.reg[r] | from.reg[r];
        changed |= m != into.reg[r];
        into.reg[r] = m;
    }
    for (unsigned f = 0; f < kNumFlags; ++f) {
        const std::uint8_t m = into.flag[f] | from.flag[f];
        changed |= m != into.flag[f];
        into.flag[f] = m;
    }
    return changed;
}

/** ALU/EM source arity (mirrors the interpreter's reads). */
unsigned
numAluSrcs(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Rndd:
      case Opcode::Frc:
      case Opcode::Inv:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp2:
      case Opcode::Log2:
        return 1;
      case Opcode::Mad:
        return 3;
      default:
        return 2;
    }
}

/**
 * Value a source operand contributes. Immediates are uniform, and so
 * are scalar reads: broadcasting element 0 gives every channel the
 * same value regardless of how the register was produced.
 */
std::uint8_t
srcVal(const VState &state, const Operand &op, unsigned width)
{
    if (!op.isGrf() || op.scalar)
        return kUniform;
    const RegSpan span = operandRegs(op, width);
    if (!span.valid)
        return kVarying;
    std::uint8_t v = kUniform;
    for (unsigned r = span.first; r <= span.last; ++r)
        v |= state.reg[r];
    return v;
}

/** The value dataflow plus the region-divergence outer iteration. */
class Analyzer
{
  public:
    Analyzer(const KernelView &view, const Cfg &cfg)
        : view_(view), cfg_(cfg),
          regionDiv_(cfg.regions().size(), false)
    {
    }

    void
    run()
    {
        // Region divergence feeds the transfer function (writes under
        // divergent flow taint their destination) and itself depends
        // on the flag values the dataflow computes, so iterate the
        // pair to a joint fixpoint. Divergence only ever grows, so
        // this terminates within |regions| + 1 rounds.
        for (;;) {
            flow();
            if (!recomputeRegionDivergence())
                break;
        }
    }

    bool
    branchDivergent(std::uint32_t ip) const
    {
        const Instruction &in = view_.at(ip);
        if (in.predCtrl == PredCtrl::None || !hasIn_[ip])
            return false;
        return in_[ip].flag[in.predFlag % kNumFlags] == kVarying;
    }

    /** Divergent control-flow context of one instruction. */
    bool
    ctxDivergent(std::uint32_t ip) const
    {
        const std::int32_t region = cfg_.regionOf(ip);
        return region >= 0 && regionDiv_[static_cast<unsigned>(region)];
    }

    /** Context or predication makes any submask reachable here. */
    bool
    anyMaskReachable(std::uint32_t ip) const
    {
        if (ctxDivergent(ip))
            return true;
        const Instruction &in = view_.at(ip);
        return in.predCtrl != PredCtrl::None && hasIn_[ip] &&
            in_[ip].flag[in.predFlag % kNumFlags] == kVarying;
    }

  private:
    void
    flow()
    {
        const std::uint32_t n = view_.size;
        in_.assign(n, VState{});
        hasIn_.assign(n, false);

        // Entry: the id vectors are per-channel by construction;
        // r0 and the argument registers hold broadcast scalars.
        VState entry;
        const unsigned id_regs =
            (view_.simdWidth * 4 + kGrfRegBytes - 1) / kGrfRegBytes;
        for (unsigned r = 1; r < 1 + 2 * id_regs && r < kGrfRegCount;
             ++r)
            entry.reg[r] = kVarying;
        in_[0] = entry;
        hasIn_[0] = true;

        std::vector<std::uint32_t> work{0};
        while (!work.empty()) {
            const std::uint32_t ip = work.back();
            work.pop_back();
            VState out = in_[ip];
            transfer(ip, out);
            for (const std::uint32_t succ : cfg_.succs(ip)) {
                if (!hasIn_[succ]) {
                    in_[succ] = out;
                    hasIn_[succ] = true;
                    work.push_back(succ);
                } else if (mergeInto(in_[succ], out)) {
                    work.push_back(succ);
                }
            }
        }
    }

    void
    transfer(std::uint32_t ip, VState &state) const
    {
        const Instruction &in = view_.at(ip);
        if (isa::isControlFlow(in.op))
            return;
        if (in.op == Opcode::Send) {
            transferSend(ip, in, state);
            return;
        }

        const unsigned arity = numAluSrcs(in.op);
        std::uint8_t v = srcVal(state, in.src0, in.simdWidth);
        if (arity >= 2)
            v |= srcVal(state, in.src1, in.simdWidth);
        if (arity >= 3)
            v |= srcVal(state, in.src2, in.simdWidth);
        if (in.op == Opcode::Sel)
            v |= state.flag[in.condFlag % kNumFlags];

        const bool predicated = in.predCtrl != PredCtrl::None;
        const std::uint8_t pred_v =
            predicated ? state.flag[in.predFlag % kNumFlags] : kUniform;
        // Writes that touch only part of the destination's channels
        // leave the rest stale and can never prove it uniform: scalar
        // or narrower-than-kernel writes mix elements outright;
        // divergent context or a varying predicate mixes old and new
        // per channel; a uniform predicate keeps either all-old or
        // all-new, so it joins the two.
        const bool elementwise_partial =
            in.dst.scalar || in.simdWidth < view_.simdWidth;
        const bool ctx_div = ctxDivergent(ip);

        if (in.op == Opcode::Cmp) {
            const unsigned f = in.condFlag % kNumFlags;
            if (elementwise_partial || ctx_div || pred_v == kVarying)
                state.flag[f] = kVarying;
            else if (predicated)
                state.flag[f] |= v;
            else
                state.flag[f] = v;
            return; // cmp writes no GRF destination
        }

        const RegSpan span = operandRegs(in.dst, in.simdWidth);
        if (!span.valid)
            return;
        for (unsigned r = span.first; r <= span.last; ++r) {
            if (elementwise_partial || ctx_div || pred_v == kVarying)
                state.reg[r] = kVarying;
            else if (predicated)
                state.reg[r] |= v;
            else
                state.reg[r] = v;
        }
    }

    void
    transferSend(std::uint32_t ip, const Instruction &in,
                 VState &state) const
    {
        (void)ip;
        switch (in.send.op) {
          case SendOp::GatherLoad:
          case SendOp::SlmGatherLoad:
          case SendOp::SlmAtomicAdd: {
            // Loaded data is opaque: assume per-channel values.
            const RegSpan span = operandRegs(in.dst, in.simdWidth);
            if (span.valid)
                for (unsigned r = span.first; r <= span.last; ++r)
                    state.reg[r] = kVarying;
            return;
          }
          case SendOp::BlockLoad:
            if (in.dst.isGrf()) {
                for (unsigned i = 0; i < in.send.numRegs; ++i) {
                    const unsigned r = in.dst.reg + i;
                    if (r < kGrfRegCount)
                        state.reg[r] = kVarying;
                }
            }
            return;
          default:
            return; // stores, barrier, fence: no GRF writes
        }
    }

    bool
    recomputeRegionDivergence()
    {
        bool changed = false;
        const std::vector<Region> &regions = cfg_.regions();
        // Regions are recorded in open order, so parents precede
        // children and one forward sweep inherits correctly.
        for (unsigned i = 0; i < regions.size(); ++i) {
            const Region &region = regions[i];
            bool div = region.parent >= 0 &&
                regionDiv_[static_cast<unsigned>(region.parent)];
            if (region.kind == Region::Kind::If) {
                div = div ||
                    branchDivergent(
                        static_cast<std::uint32_t>(region.headIp));
            } else {
                div = div ||
                    branchDivergent(
                        static_cast<std::uint32_t>(region.endIp));
                for (const std::int32_t exit_ip : region.exitIps) {
                    div = div ||
                        branchDivergent(
                            static_cast<std::uint32_t>(exit_ip));
                }
            }
            changed |= div && !regionDiv_[i];
            regionDiv_[i] = regionDiv_[i] || div;
        }
        return changed;
    }

    const KernelView &view_;
    const Cfg &cfg_;
    std::vector<bool> regionDiv_;
    std::vector<VState> in_;
    std::vector<bool> hasIn_;
};

/** Can this launch ever dispatch a subgroup with a partial mask? */
bool
launchHasTails(const LaunchShape &launch, unsigned simd_width)
{
    if (launch.globalSize == 0 || launch.localSize == 0)
        return true; // unknown launch: assume the worst
    return launch.localSize % simd_width != 0 ||
        launch.globalSize % launch.localSize != 0;
}

/** Max IvbOpt-vs-mode savings over a set of candidate masks. */
void
maxSavings(const Instruction &in, const std::vector<LaneMask> &masks,
           unsigned &save_bcc, unsigned &save_scc)
{
    const auto eb = static_cast<std::uint8_t>(isa::execElemBytes(in));
    save_bcc = 0;
    save_scc = 0;
    for (const LaneMask mask : masks) {
        const compaction::ExecShape shape{in.simdWidth, eb, mask};
        const unsigned ivb =
            compaction::planCycleCount(compaction::Mode::IvbOpt, shape);
        const unsigned bcc =
            compaction::planCycleCount(compaction::Mode::Bcc, shape);
        const unsigned scc =
            compaction::planCycleCount(compaction::Mode::Scc, shape);
        if (ivb > bcc && ivb - bcc > save_bcc)
            save_bcc = ivb - bcc;
        if (ivb > scc && ivb - scc > save_scc)
            save_scc = ivb - scc;
    }
}

} // namespace

DivergenceReport
analyzeDivergence(const KernelView &view, const LaunchShape &launch)
{
    DivergenceReport report;
    report.kernel = view.name;

    Report scratch;
    const Cfg cfg = Cfg::build(view, scratch);
    if (!cfg.structureOk())
        return report;
    report.valid = true;

    Analyzer analyzer(view, cfg);
    analyzer.run();

    const std::uint32_t n = view.size;
    report.divergentCtx.assign(n, false);
    report.maxSaveBcc.assign(n, 0);
    report.maxSaveScc.assign(n, 0);

    for (std::uint32_t ip = 0; ip < n; ++ip) {
        const Instruction &in = view.at(ip);
        report.divergentCtx[ip] = analyzer.ctxDivergent(ip);

        if (in.op == Opcode::If || in.op == Opcode::LoopEnd ||
            in.op == Opcode::Break || in.op == Opcode::Cont) {
            report.branches.push_back(
                {ip, in.op, analyzer.branchDivergent(ip)});
        }

        // Control flow and sends cost the same cycles in every mode;
        // only ALU/EM instructions are compressible.
        if (isa::isControlFlow(in.op) || in.op == Opcode::Send)
            continue;

        const auto eb =
            static_cast<std::uint8_t>(isa::execElemBytes(in));
        const unsigned gw = compaction::groupWidth(in.simdWidth, eb);
        const unsigned groups = compaction::numGroups(in.simdWidth, eb);
        std::vector<LaneMask> masks;

        if (analyzer.anyMaskReachable(ip)) {
            if (groups > kMaxEnumGroups) {
                // IvbOpt never exceeds `groups` cycles and BCC/SCC
                // never go negative, so `groups` bounds the savings.
                report.maxSaveBcc[ip] = groups;
                report.maxSaveScc[ip] = groups;
                continue;
            }
            // IvbOpt/BCC cycles depend only on which groups are
            // non-empty, and SCC is minimized at one channel per
            // group — so one representative per group-support set
            // dominates every reachable mask.
            for (unsigned support = 0; support < (1u << groups);
                 ++support) {
                LaneMask mask = 0;
                for (unsigned g = 0; g < groups; ++g)
                    if (support & (1u << g))
                        mask |= LaneMask{1} << (g * gw);
                masks.push_back(mask);
            }
        } else {
            // Uniform context: the dispatcher only ever produces
            // prefix masks, full unless the launch has tails.
            if (launchHasTails(launch, view.simdWidth)) {
                for (unsigned k = 1; k <= in.simdWidth; ++k)
                    masks.push_back(laneMaskForWidth(k));
            } else {
                masks.push_back(laneMaskForWidth(in.simdWidth));
            }
            if (in.predCtrl != PredCtrl::None)
                masks.push_back(0); // uniform all-false predicate
        }
        maxSavings(in, masks, report.maxSaveBcc[ip],
                   report.maxSaveScc[ip]);
    }
    return report;
}

DivergenceReport
analyzeDivergence(const isa::Kernel &kernel, const LaunchShape &launch)
{
    return analyzeDivergence(KernelView::of(kernel), launch);
}

std::string
renderDivergence(const DivergenceReport &report,
                 const isa::Kernel *kernel)
{
    std::string out = report.kernel + ": ";
    if (!report.valid) {
        out += "not analyzable (kernel fails verification)\n";
        return out;
    }
    out += std::to_string(report.branches.size()) + " branches, " +
        std::to_string(report.divergentBranchCount()) + " divergent\n";
    for (const BranchClass &b : report.branches) {
        out += "  @" + std::to_string(b.ip) + ": ";
        out += b.divergent ? "divergent" : "uniform  ";
        if (kernel != nullptr && b.ip < kernel->size()) {
            out += "  ";
            out += isa::instrToString(kernel->instr(b.ip));
        } else {
            out += "  ";
            out += isa::opcodeName(b.op);
        }
        out += "\n";
    }
    unsigned long long bcc = 0, scc = 0;
    for (const unsigned s : report.maxSaveBcc)
        bcc += s;
    for (const unsigned s : report.maxSaveScc)
        scc += s;
    out += "  static savable upper bound (cycles per single pass): "
           "bcc=" + std::to_string(bcc) + " scc=" + std::to_string(scc) +
        "\n";
    return out;
}

} // namespace iwc::lint
