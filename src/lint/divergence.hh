/**
 * @file
 * Static divergence analysis: a uniform/varying value lattice
 * propagated from thread-id provenance through the kernel's dataflow,
 * classifying every structured branch as warp-uniform (all channels
 * always agree, so the EU never splits the mask there) or potentially
 * divergent — and from that, a per-instruction static upper bound on
 * the execution cycles BCC/SCC compaction can ever reclaim relative
 * to the IvbOpt baseline.
 *
 * Sources of varying values: the per-channel global/local id vectors,
 * anything loaded from memory, and partial writes (predicated on a
 * varying flag, or performed under divergent control flow, where
 * inactive channels keep stale data). Scalar (broadcast) operands and
 * immediates are always uniform, whatever register they read.
 *
 * The cycle bound is sound by construction against the simulator:
 *  - In uniform context the execution mask is provably a prefix mask
 *    (the dispatcher builds subgroup masks as laneMaskForWidth(k)),
 *    so the bound maximizes IvbOpt-vs-BCC/SCC savings over prefix
 *    masks — and only when the launch shape can produce tails at all.
 *  - In divergent context any submask is possible; since IvbOpt and
 *    BCC cycle counts depend only on which channel groups are
 *    non-empty and SCC is minimized at one channel per group, the
 *    maximum over all 2^numGroups group-support sets (taken with a
 *    one-channel representative each) dominates every reachable mask.
 * tests/test_lint_divergence.cc cross-checks the bound against
 * measured per-mode cycles on every registered workload.
 */

#ifndef IWC_LINT_DIVERGENCE_HH
#define IWC_LINT_DIVERGENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lint/cfg.hh"

namespace iwc::lint
{

/** Launch geometry, for tail reasoning. Zeroes mean "unknown". */
struct LaunchShape
{
    std::uint64_t globalSize = 0;
    std::uint64_t localSize = 0;
};

/** Classification of one structured branch point. */
struct BranchClass
{
    std::uint32_t ip = 0;
    isa::Opcode op = isa::Opcode::If;
    bool divergent = false;
};

/** Everything the divergence analysis derives about one kernel. */
struct DivergenceReport
{
    std::string kernel;
    /** False when the kernel fails structural verification. */
    bool valid = false;
    /** Every If / LoopEnd / Break / Cont, classified. */
    std::vector<BranchClass> branches;
    /** Per ip: executes under potentially divergent control flow. */
    std::vector<bool> divergentCtx;
    /**
     * Per ip, per execution: max EU cycles BCC (resp. SCC) can save
     * over IvbOpt for any mask this instruction can execute with.
     */
    std::vector<unsigned> maxSaveBcc;
    std::vector<unsigned> maxSaveScc;

    unsigned
    divergentBranchCount() const
    {
        unsigned n = 0;
        for (const BranchClass &b : branches)
            n += b.divergent;
        return n;
    }
};

/**
 * Runs the analysis. The kernel must be structurally valid (verify()
 * reports no errors); otherwise the report comes back with
 * valid == false and no classifications.
 */
DivergenceReport analyzeDivergence(const KernelView &view,
                                   const LaunchShape &launch = {});

DivergenceReport analyzeDivergence(const isa::Kernel &kernel,
                                   const LaunchShape &launch = {});

/** Human-readable rendering of the per-branch classification. */
std::string renderDivergence(const DivergenceReport &report,
                             const isa::Kernel *kernel = nullptr);

} // namespace iwc::lint

#endif // IWC_LINT_DIVERGENCE_HH
