#include "lint/cfg.hh"

#include <algorithm>

namespace iwc::lint
{

using isa::Instruction;
using isa::Opcode;

KernelView
KernelView::of(const isa::Kernel &kernel)
{
    KernelView view;
    view.name = kernel.name();
    view.simdWidth = kernel.simdWidth();
    view.instrs = kernel.instructions().data();
    view.size = kernel.size();
    view.firstTempReg = kernel.firstTempReg();
    view.slmBytes = kernel.slmBytes();
    view.args = &kernel.args();
    return view;
}

RegSpan
operandRegs(const isa::Operand &op, unsigned width)
{
    if (!op.isGrf())
        return {};
    const unsigned elems = op.scalar ? 1 : width;
    const unsigned begin = op.grfByteOffset();
    const unsigned end = begin + elems * isa::dataTypeSize(op.type);
    if (end > kGrfRegCount * kGrfRegBytes)
        return {}; // out of bounds: the region pass reports it
    return {begin / kGrfRegBytes, (end - 1) / kGrfRegBytes, true};
}

namespace
{

/** In-range instruction index? (targets are untrusted input here). */
bool
inRange(std::int32_t t, std::uint32_t n)
{
    return t >= 0 && static_cast<std::uint32_t>(t) < n;
}

struct Frame
{
    Region::Kind kind;
    std::int32_t regionIdx;
};

} // namespace

Cfg
Cfg::build(const KernelView &view, Report &report)
{
    Cfg cfg;
    const std::uint32_t n = view.size;
    cfg.size_ = n;

    if (n == 0) {
        report.add(Check::Structure, Severity::Error, -1,
                   "empty instruction stream");
        return cfg;
    }
    if (view.at(n - 1).op != Opcode::Halt) {
        report.add(Check::Structure, Severity::Error,
                   static_cast<std::int32_t>(n - 1),
                   "kernel does not end in halt");
    }

    const std::size_t before = report.diags.size();
    cfg.regionOf_.assign(n, -1);

    // One forward scan pairing the structured opcodes, mirroring the
    // builder's frame stack. Each pairing also cross-checks the branch
    // targets the builder should have patched.
    std::vector<Frame> stack;
    for (std::uint32_t ip = 0; ip < n; ++ip) {
        const Instruction &in = view.at(ip);
        const auto sip = static_cast<std::int32_t>(ip);
        cfg.regionOf_[ip] =
            stack.empty() ? -1 : stack.back().regionIdx;

        switch (in.op) {
          case Opcode::If: {
            Region region;
            region.kind = Region::Kind::If;
            region.parent = stack.empty() ? -1 : stack.back().regionIdx;
            region.headIp = sip;
            const auto idx =
                static_cast<std::int32_t>(cfg.regions_.size());
            cfg.regions_.push_back(region);
            stack.push_back({Region::Kind::If, idx});
            break;
          }
          case Opcode::Else: {
            if (stack.empty() ||
                stack.back().kind != Region::Kind::If) {
                report.add(Check::Structure, Severity::Error, sip,
                           "else without matching if");
                break;
            }
            Region &region = cfg.regions_[stack.back().regionIdx];
            if (region.elseIp >= 0) {
                report.add(Check::Structure, Severity::Error, sip,
                           "duplicate else for if at ip %d",
                           region.headIp);
                break;
            }
            region.elseIp = sip;
            break;
          }
          case Opcode::EndIf: {
            if (stack.empty() ||
                stack.back().kind != Region::Kind::If) {
                report.add(Check::Structure, Severity::Error, sip,
                           "endif without matching if");
                break;
            }
            Region &region = cfg.regions_[stack.back().regionIdx];
            region.endIp = sip;
            stack.pop_back();

            const Instruction &if_in =
                view.at(static_cast<std::uint32_t>(region.headIp));
            const std::int32_t want0 =
                region.elseIp >= 0 ? region.elseIp : sip;
            if (if_in.target0 != want0) {
                report.add(Check::Structure, Severity::Error,
                           region.headIp,
                           "if target0 is %d, expected %d",
                           if_in.target0, want0);
            }
            if (if_in.target1 != sip) {
                report.add(Check::Structure, Severity::Error,
                           region.headIp,
                           "if target1 is %d, expected endif at %d",
                           if_in.target1, sip);
            }
            if (region.elseIp >= 0) {
                const Instruction &else_in =
                    view.at(static_cast<std::uint32_t>(region.elseIp));
                if (else_in.target0 != sip) {
                    report.add(Check::Structure, Severity::Error,
                               region.elseIp,
                               "else target0 is %d, expected endif "
                               "at %d", else_in.target0, sip);
                }
            }
            break;
          }
          case Opcode::LoopBegin: {
            Region region;
            region.kind = Region::Kind::Loop;
            region.parent = stack.empty() ? -1 : stack.back().regionIdx;
            region.headIp = sip;
            const auto idx =
                static_cast<std::int32_t>(cfg.regions_.size());
            cfg.regions_.push_back(region);
            stack.push_back({Region::Kind::Loop, idx});
            break;
          }
          case Opcode::Break:
          case Opcode::Cont: {
            // Break/Cont may sit under nested ifs; find the loop.
            std::int32_t loop = -1;
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->kind == Region::Kind::Loop) {
                    loop = it->regionIdx;
                    break;
                }
            }
            if (loop < 0) {
                report.add(Check::Structure, Severity::Error, sip,
                           "%s outside any loop",
                           isa::opcodeName(in.op));
                break;
            }
            cfg.regions_[loop].exitIps.push_back(sip);
            break;
          }
          case Opcode::LoopEnd: {
            if (stack.empty() ||
                stack.back().kind != Region::Kind::Loop) {
                report.add(Check::Structure, Severity::Error, sip,
                           "loop end without matching loop begin");
                break;
            }
            Region &region = cfg.regions_[stack.back().regionIdx];
            region.endIp = sip;
            stack.pop_back();

            if (in.target0 != region.headIp + 1) {
                report.add(Check::Structure, Severity::Error, sip,
                           "loop end target0 is %d, expected body "
                           "start at %d", in.target0,
                           region.headIp + 1);
            }
            for (const std::int32_t exit_ip : region.exitIps) {
                const Instruction &exit_in =
                    view.at(static_cast<std::uint32_t>(exit_ip));
                if (exit_in.target0 != sip) {
                    report.add(Check::Structure, Severity::Error,
                               exit_ip,
                               "%s target0 is %d, expected loop end "
                               "at %d",
                               isa::opcodeName(exit_in.op),
                               exit_in.target0, sip);
                }
            }
            break;
          }
          default:
            break;
        }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const Region &region = cfg.regions_[it->regionIdx];
        report.add(Check::Structure, Severity::Error, region.headIp,
                   "unclosed %s",
                   region.kind == Region::Kind::If ? "if" : "loop");
    }

    // Range-check every branch target independently of the pairing, so
    // a wild target cannot crash the passes that follow the edges.
    for (std::uint32_t ip = 0; ip < n; ++ip) {
        const Instruction &in = view.at(ip);
        const auto sip = static_cast<std::int32_t>(ip);
        const bool needs0 = in.op == Opcode::If ||
            in.op == Opcode::Else || in.op == Opcode::Break ||
            in.op == Opcode::Cont || in.op == Opcode::LoopEnd;
        if (needs0 && !inRange(in.target0, n)) {
            report.add(Check::Structure, Severity::Error, sip,
                       "%s target0 %d out of range",
                       isa::opcodeName(in.op), in.target0);
        }
        if (in.op == Opcode::If && !inRange(in.target1, n)) {
            report.add(Check::Structure, Severity::Error, sip,
                       "if target1 %d out of range", in.target1);
        }
    }

    cfg.structureOk_ = report.diags.size() == before;
    if (!cfg.structureOk_)
        return cfg;

    // Successor edges, mirroring Interpreter::step's transitions.
    cfg.succs_.assign(n, {});
    for (std::uint32_t ip = 0; ip < n; ++ip) {
        const Instruction &in = view.at(ip);
        auto &succs = cfg.succs_[ip];
        const auto t0 = static_cast<std::uint32_t>(in.target0);
        switch (in.op) {
          case Opcode::If: {
            // An If jumps (to the else, or to the endif when there is
            // no else) exactly when its mask comes up empty — which
            // makes the else mask full, so the Else's own jump to the
            // endif cannot follow. Landing the jump edge on the else
            // *body* rather than the Else instruction excludes that
            // mask-infeasible both-arms-skipped path, which would
            // otherwise demote joins of registers defined in both arms
            // to partially-defined.
            const std::uint32_t jump =
                view.at(t0).op == Opcode::Else ? t0 + 1 : t0;
            succs.push_back(ip + 1);
            if (jump != ip + 1)
                succs.push_back(jump);
            break;
          }
          case Opcode::Else:
          case Opcode::Break:
          case Opcode::Cont:
            succs.push_back(ip + 1);
            if (t0 != ip + 1)
                succs.push_back(t0);
            break;
          case Opcode::LoopEnd:
            succs.push_back(t0); // back edge (channels continuing)
            succs.push_back(ip + 1);
            break;
          case Opcode::Halt:
            break;
          default:
            succs.push_back(ip + 1);
            break;
        }
    }

    cfg.reachable_.assign(n, false);
    std::vector<std::uint32_t> work{0};
    cfg.reachable_[0] = true;
    while (!work.empty()) {
        const std::uint32_t ip = work.back();
        work.pop_back();
        for (const std::uint32_t succ : cfg.succs_[ip]) {
            if (succ < n && !cfg.reachable_[succ]) {
                cfg.reachable_[succ] = true;
                work.push_back(succ);
            }
        }
    }
    return cfg;
}

void
Cfg::reportUnreachable(Report &report) const
{
    if (!structureOk_)
        return;
    for (std::uint32_t ip = 0; ip < size_; ++ip) {
        if (reachable_[ip])
            continue;
        std::uint32_t end = ip;
        while (end + 1 < size_ && !reachable_[end + 1])
            ++end;
        if (end == ip) {
            report.add(Check::Unreachable, Severity::Warning,
                       static_cast<std::int32_t>(ip),
                       "unreachable instruction");
        } else {
            report.add(Check::Unreachable, Severity::Warning,
                       static_cast<std::int32_t>(ip),
                       "unreachable instructions [%u, %u]", ip, end);
        }
        ip = end;
    }
}

} // namespace iwc::lint
