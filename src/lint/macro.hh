/**
 * @file
 * Macro-steppable-region report: marries the predecoder's mask-stable
 * run discovery (DecodedInstr::macroLen — straight-line ALU/cmp runs
 * whose execution mask provably cannot change mid-run) with the
 * divergence lattice (lint/divergence.hh), which tells us whether each
 * run executes in uniform or potentially divergent control-flow
 * context. Uniform regions macro-step with a full subgroup mask;
 * divergent ones still macro-step safely (the mask is stable within
 * the run either way) but with whatever submask the enclosing branch
 * left active. The report is what `iwc_lint macro=1` prints, and what
 * the vector backend's batching actually exploits at run time.
 */

#ifndef IWC_LINT_MACRO_HH
#define IWC_LINT_MACRO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lint/divergence.hh"

namespace iwc::lint
{

/** One mask-stable straight-line run of ALU/cmp instructions. */
struct MacroRegion
{
    std::uint32_t beginIp = 0;
    std::uint32_t length = 0; ///< instructions in the run (>= 2)
    /** Runs under potentially divergent control flow (lattice). */
    bool divergent = false;
};

/** Everything the macro-region analysis derives about one kernel. */
struct MacroReport
{
    std::string kernel;
    /** False when the kernel fails structural verification. */
    bool valid = false;
    std::uint32_t instructionCount = 0;
    /** Regions of length >= 2, in program order, non-overlapping. */
    std::vector<MacroRegion> regions;

    /** Static instructions inside some macro-steppable region. */
    std::uint32_t
    coveredInstructions() const
    {
        std::uint32_t n = 0;
        for (const MacroRegion &r : regions)
            n += r.length;
        return n;
    }

    double
    coverage() const
    {
        return instructionCount
            ? static_cast<double>(coveredInstructions()) /
                instructionCount
            : 0.0;
    }
};

/**
 * Runs the analysis: predecodes the kernel for run discovery and the
 * divergence lattice for context classification. Returns valid ==
 * false (no regions) when the kernel fails structural verification.
 */
MacroReport analyzeMacroRegions(const isa::Kernel &kernel,
                                const LaunchShape &launch = {});

/** Human-readable rendering of the per-region report. */
std::string renderMacroReport(const MacroReport &report,
                              const isa::Kernel *kernel = nullptr);

} // namespace iwc::lint

#endif // IWC_LINT_MACRO_HH
