/**
 * @file
 * Diagnostic container for the static kernel verifier: every check
 * emits ip-anchored Diag records into a Report instead of calling
 * fatal(), so one lint run can surface every defect of a kernel at
 * once and tools/tests can assert on exact diagnostics.
 */

#ifndef IWC_LINT_REPORT_HH
#define IWC_LINT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace iwc::isa
{
class Kernel;
}

namespace iwc::lint
{

/** The distinct verifier checks (one enumerator per diagnostic kind). */
enum class Check : std::uint8_t
{
    Structure,   ///< malformed If/Loop nesting or inconsistent targets
    UndefRead,   ///< GRF or flag register read before any definition
    Width,       ///< illegal/oversized SIMD width, bad flag index
    Region,      ///< operand region outside the GRF, immediate dst
    BadSend,     ///< inconsistent Send descriptor / operands
    SelfHazard,  ///< send reads a register its own writeback claims
    Unreachable, ///< code no execution path reaches
    NumChecks,
};

constexpr unsigned kNumChecks = static_cast<unsigned>(Check::NumChecks);

const char *checkName(Check check);

/** Diagnostic weight: errors make a kernel unfit to simulate. */
enum class Severity : std::uint8_t
{
    Error,
    Warning,
};

const char *severityName(Severity severity);

/** One diagnostic, anchored to the instruction that provoked it. */
struct Diag
{
    Check check = Check::Structure;
    Severity severity = Severity::Error;
    std::int32_t ip = -1; ///< instruction index, -1 = whole kernel
    std::string message;
};

/** Everything one verifier run found about one kernel. */
struct Report
{
    std::string kernel;
    std::vector<Diag> diags;

    bool clean() const { return diags.empty(); }

    bool
    hasErrors() const
    {
        for (const Diag &d : diags)
            if (d.severity == Severity::Error)
                return true;
        return false;
    }

    unsigned
    count(Check check) const
    {
        unsigned n = 0;
        for (const Diag &d : diags)
            if (d.check == check)
                ++n;
        return n;
    }

    /** Appends a printf-formatted diagnostic. */
    void add(Check check, Severity severity, std::int32_t ip,
             const char *fmt, ...)
        __attribute__((format(printf, 5, 6)));
};

/**
 * Human-readable rendering, one line per diagnostic; when @p kernel is
 * given each line carries the disassembly of the offending instruction.
 */
std::string renderText(const Report &report,
                       const isa::Kernel *kernel = nullptr);

/** Machine-readable rendering (a JSON object, diagnostics as array). */
std::string renderJson(const Report &report);

/**
 * Escapes @p s for embedding inside a JSON string literal: quotes,
 * backslashes, and every control character below 0x20. Shared by all
 * machine-readable render paths (lint reports, meld reports, tools)
 * so kernel and check names containing quotes or backslashes always
 * round-trip through a JSON parser.
 */
std::string jsonEscape(const std::string &s);

} // namespace iwc::lint

#endif // IWC_LINT_REPORT_HH
