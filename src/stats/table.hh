/**
 * @file
 * Plain-text and CSV table rendering used by the benchmark harnesses to
 * print paper-style tables and figure data series.
 */

#ifndef IWC_STATS_TABLE_HH
#define IWC_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace iwc::stats
{

/**
 * Simple row/column table. All cells are strings; numeric helpers
 * format with a fixed precision. Rendered either as an aligned
 * plain-text table or as CSV.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Starts a new row; subsequent cell() calls append to it. */
    Table &row();

    Table &cell(const std::string &text);
    Table &cell(const char *text);
    Table &cell(double value, int precision = 2);
    Table &cellPct(double fraction, int precision = 1);
    Table &cell(std::uint64_t value);
    Table &cell(std::int64_t value);
    Table &cell(int value);
    Table &cell(unsigned value);

    /** Aligned plain-text rendering with a header separator. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** CSV rendering (no title). */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }
    const std::vector<std::string> &rowCells(size_t i) const
    {
        return rows_.at(i);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a fraction as a percentage string such as "12.3%". */
std::string formatPct(double fraction, int precision = 1);

} // namespace iwc::stats

#endif // IWC_STATS_TABLE_HH
