#include "stats/stats.hh"

#include "common/logging.hh"

namespace iwc::stats
{

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.bins_.size() != bins_.size(),
             "merging histograms with different bin counts");
    for (size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    total_ += other.total_;
}

void
Group::setScalar(const std::string &key, double value)
{
    scalars_[key] = value;
}

double
Group::getScalar(const std::string &key) const
{
    const auto it = scalars_.find(key);
    panic_if(it == scalars_.end(), "stat %s.%s not found", name_.c_str(),
             key.c_str());
    return it->second;
}

bool
Group::hasScalar(const std::string &key) const
{
    return scalars_.count(key) != 0;
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[key, value] : scalars_)
        os << name_ << '.' << key << ' ' << value << '\n';
}

} // namespace iwc::stats
