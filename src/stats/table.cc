#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace iwc::stats
{

namespace
{

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace

std::string
formatPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panic_if(rows_.empty(), "cell() before row()");
    panic_if(rows_.back().size() >= headers_.size(),
             "too many cells in table row");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cellPct(double fraction, int precision)
{
    return cell(formatPct(fraction, precision));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(unsigned value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title.empty())
        os << "== " << title << " ==\n";

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << "  ";
            os << text;
            os << std::string(widths[c] - text.size(), ' ');
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (const size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            if (c)
                os << ',';
            if (c < cells.size())
                os << cells[c];
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace iwc::stats
