/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * fixed-bin histograms collected into groups that can be dumped or
 * merged. Loosely modelled on gem5's stats framework, but minimal.
 */

#ifndef IWC_STATS_STATS_HH
#define IWC_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace iwc::stats
{

/** Monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    void merge(const Counter &other) { value_ += other.value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of sampled values. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
    }

    void
    merge(const Average &other)
    {
        sum_ += other.sum_;
        count_ += other.count_;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram over integer values [0, bins). Out-of-range samples clamp
 * to the last bin.
 */
class Histogram
{
  public:
    explicit Histogram(unsigned bins = 1) : bins_(bins, 0) {}

    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        const auto idx = v < bins_.size() ? v : bins_.size() - 1;
        bins_[idx] += weight;
        total_ += weight;
    }

    std::uint64_t bin(unsigned i) const { return bins_.at(i); }
    unsigned numBins() const { return static_cast<unsigned>(bins_.size()); }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bin @p i (0 if no samples). */
    double
    fraction(unsigned i) const
    {
        return total_ ? static_cast<double>(bins_.at(i)) / total_ : 0.0;
    }

    void
    reset()
    {
        for (auto &b : bins_)
            b = 0;
        total_ = 0;
    }

    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of scalar values for dumping; experiments register
 * the quantities they measured and the group renders them.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void setScalar(const std::string &key, double value);
    double getScalar(const std::string &key) const;
    bool hasScalar(const std::string &key) const;

    /** Writes "name.key value" lines, sorted by key. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &scalars() const { return scalars_; }

  private:
    std::string name_;
    std::map<std::string, double> scalars_;
};

} // namespace iwc::stats

#endif // IWC_STATS_STATS_HH
