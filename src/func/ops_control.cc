#include "func/ops_control.hh"

#include "common/logging.hh"

namespace iwc::func::ops
{

std::uint32_t
stepControl(const DecodedInstr &d, ThreadState &t, LaneMask pred,
            LaneMask exec, std::uint32_t ip)
{
    std::uint32_t next_ip = ip + 1;

    switch (d.cls) {
      case ExecClass::If: {
        const LaneMask cur = t.activeMask();
        const LaneMask taken = cur & pred & d.widthMask;
        CfFrame frame;
        frame.kind = CfFrame::Kind::If;
        frame.savedMask = cur;
        frame.elseMask = cur & ~taken;
        t.pushFrame(frame);
        t.setActiveMask(taken);
        if (taken == 0)
            next_ip = d.target0;
        break;
      }
      case ExecClass::Else: {
        CfFrame &frame = t.topFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "else without if");
        t.setActiveMask(frame.elseMask);
        frame.elseMask = 0;
        if (t.activeMask() == 0)
            next_ip = d.target0;
        break;
      }
      case ExecClass::EndIf: {
        const CfFrame frame = t.popFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "endif without if");
        // Channels parked by break/cont of the enclosing loop while
        // inside this if must stay parked.
        t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        break;
      }
      case ExecClass::LoopBegin: {
        CfFrame frame;
        frame.kind = CfFrame::Kind::Loop;
        frame.savedMask = t.activeMask();
        t.pushFrame(frame);
        break;
      }
      case ExecClass::Break: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "break outside loop");
        loop->breakMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        // Jump to the loop end only when structurally safe: every
        // channel gone and no intervening if frames to unwind.
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = d.target0;
        break;
      }
      case ExecClass::Cont: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "cont outside loop");
        loop->contMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = d.target0;
        break;
      }
      case ExecClass::LoopEnd: {
        CfFrame &loop = t.topFrame();
        panic_if(loop.kind != CfFrame::Kind::Loop, "while without loop");
        // Channels parked by cont rejoin for the trip test.
        const LaneMask candidates = t.activeMask() | loop.contMask;
        loop.contMask = 0;
        const LaneMask continuing = candidates & pred & d.widthMask;
        if (continuing != 0) {
            t.setActiveMask(continuing);
            next_ip = d.target0;
        } else {
            const CfFrame frame = t.popFrame();
            t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        }
        break;
      }
      case ExecClass::Halt:
        t.halt();
        break;
      default:
        panic("control-flow execution of %s", isa::opcodeName(d.op));
    }

    return next_ip;
}

} // namespace iwc::func::ops
