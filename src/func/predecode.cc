#include "func/predecode.hh"

#include <bit>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::func
{

using isa::DataType;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;

namespace
{

/** The immediate as readF() would see it, modifiers applied. */
double
immAsDouble(const Operand &op)
{
    const std::uint64_t bits = op.imm;
    double v = 0;
    switch (op.type) {
      case DataType::F:
        v = std::bit_cast<float>(static_cast<std::uint32_t>(bits));
        break;
      case DataType::DF:
        v = std::bit_cast<double>(bits);
        break;
      case DataType::UW:
        v = static_cast<double>(static_cast<std::uint16_t>(bits));
        break;
      case DataType::W:
        v = static_cast<double>(static_cast<std::int16_t>(bits));
        break;
      case DataType::UD:
        v = static_cast<double>(static_cast<std::uint32_t>(bits));
        break;
      case DataType::D:
        v = static_cast<double>(static_cast<std::int32_t>(bits));
        break;
      case DataType::UQ:
        v = static_cast<double>(bits);
        break;
      case DataType::Q:
        v = static_cast<double>(static_cast<std::int64_t>(bits));
        break;
    }
    if (op.absolute)
        v = std::fabs(v);
    if (op.negate)
        v = -v;
    return v;
}

/** The immediate as readI() would see it, modifiers applied. */
std::int64_t
immAsInt(const Operand &op)
{
    const std::uint64_t bits = op.imm;
    std::int64_t v = 0;
    switch (op.type) {
      case DataType::F:
        v = static_cast<std::int64_t>(
            std::bit_cast<float>(static_cast<std::uint32_t>(bits)));
        break;
      case DataType::DF:
        v = static_cast<std::int64_t>(std::bit_cast<double>(bits));
        break;
      case DataType::UW:
        v = static_cast<std::uint16_t>(bits);
        break;
      case DataType::W:
        v = static_cast<std::int16_t>(bits);
        break;
      case DataType::UD:
        v = static_cast<std::uint32_t>(bits);
        break;
      case DataType::D:
        v = static_cast<std::int32_t>(bits);
        break;
      case DataType::UQ:
      case DataType::Q:
        v = static_cast<std::int64_t>(bits);
        break;
    }
    if (op.absolute)
        v = v < 0 ? -v : v;
    if (op.negate)
        v = -v;
    return v;
}

DecodedOperand
decodeOperand(const Operand &op, unsigned simd_width)
{
    DecodedOperand d;
    d.type = op.type;
    d.elemBytes = static_cast<std::uint8_t>(isa::dataTypeSize(op.type));
    d.isImm = op.isImm();
    d.isNull = op.isNull();
    d.negate = op.negate;
    d.absolute = op.absolute;
    if (d.isImm) {
        d.immBits = op.imm;
        d.immF = immAsDouble(op);
        d.immI = immAsInt(op);
        return d;
    }
    d.baseOff = op.grfByteOffset();
    d.stride = op.scalar ? 0 : d.elemBytes;
    // Bounds were checked per element access before predecode; check
    // the whole region once here so the hot path can go unchecked.
    // Null operands carry no region: a well-formed instruction never
    // reads one, and writes to them are discarded before addressing.
    if (!d.isNull) {
        const unsigned end =
            d.baseOff + (simd_width - 1) * d.stride + d.elemBytes;
        panic_if(end > kGrfRegCount * kGrfRegBytes,
                 "operand region [%u, %u) exceeds the GRF", d.baseOff,
                 end);
    }
    return d;
}

ExecClass
classOf(const Instruction &in)
{
    const bool float_domain = isa::isFloatType(in.src0.type);
    switch (in.op) {
      case Opcode::If:        return ExecClass::If;
      case Opcode::Else:      return ExecClass::Else;
      case Opcode::EndIf:     return ExecClass::EndIf;
      case Opcode::LoopBegin: return ExecClass::LoopBegin;
      case Opcode::LoopEnd:   return ExecClass::LoopEnd;
      case Opcode::Break:     return ExecClass::Break;
      case Opcode::Cont:      return ExecClass::Cont;
      case Opcode::Halt:      return ExecClass::Halt;
      case Opcode::Cmp:
        return float_domain ? ExecClass::CmpFloat : ExecClass::CmpInt;
      case Opcode::Send:      return ExecClass::Send;
      default:
        return float_domain ? ExecClass::AluFloat : ExecClass::AluInt;
    }
}

/**
 * GRF registers covered by one operand — must mirror
 * Scoreboard::forEachReg so decoded dependence lists gate issue on
 * exactly the registers the instruction-walking scoreboard would.
 */
void
appendRegs(const Operand &op, unsigned simd_width,
           std::vector<std::uint8_t> &pool)
{
    if (!op.isGrf())
        return;
    const unsigned elems = op.scalar ? 1 : simd_width;
    const unsigned first = op.grfByteOffset();
    const unsigned last = first + elems * isa::dataTypeSize(op.type) - 1;
    for (unsigned r = first / kGrfRegBytes; r <= last / kGrfRegBytes;
         ++r) {
        panic_if(r >= kGrfRegCount, "operand register out of range");
        pool.push_back(static_cast<std::uint8_t>(r));
    }
}

/** Registers claimed by the instruction's writeback (dst side). */
void
appendDstRegs(const Instruction &in, std::vector<std::uint8_t> &pool)
{
    if (in.op == Opcode::Send && in.send.op == isa::SendOp::BlockLoad) {
        for (unsigned r = 0; r < in.send.numRegs; ++r) {
            panic_if(in.dst.reg + r >= kGrfRegCount,
                     "block load register out of range");
            pool.push_back(static_cast<std::uint8_t>(in.dst.reg + r));
        }
        return;
    }
    appendRegs(in.dst, in.simdWidth, pool);
}

} // namespace

DecodedKernel::DecodedKernel(const isa::Kernel &kernel)
    : DecodedKernel(kernel.instructions().data(), kernel.size())
{
}

DecodedKernel::DecodedKernel(const isa::Instruction *instrs,
                             std::uint32_t size)
{
    instrs_.reserve(size);
    for (std::uint32_t ip = 0; ip < size; ++ip) {
        const Instruction &in = instrs[ip];
        DecodedInstr d;
        d.instr = &in;
        d.cls = classOf(in);
        d.op = in.op;
        d.simdWidth = in.simdWidth;
        d.predCtrl = in.predCtrl;
        d.predFlag = in.predFlag;
        d.condFlag = in.condFlag;
        d.condMod = in.condMod;
        d.dstIsF = in.dst.type == DataType::F;
        d.dstIsFloat = isa::isFloatType(in.dst.type);
        d.widthMask = in.widthMask();
        d.target0 = static_cast<std::uint32_t>(in.target0);
        d.target1 = static_cast<std::uint32_t>(in.target1);
        d.sendOp = in.send.op;
        d.sendElemBytes =
            static_cast<std::uint8_t>(isa::dataTypeSize(in.send.type));
        d.execBytes =
            static_cast<std::uint8_t>(isa::execElemBytes(in));
        d.dst = decodeOperand(in.dst, in.simdWidth);
        d.src0 = decodeOperand(in.src0, in.simdWidth);
        d.src1 = decodeOperand(in.src1, in.simdWidth);
        d.src2 = decodeOperand(in.src2, in.simdWidth);
        panic_if(d.predFlag >= 2 || d.condFlag >= 2,
                 "flag register out of range at ip %u", ip);
        panic_if(in.op == Opcode::Send &&
                     (d.sendOp == isa::SendOp::GatherLoad ||
                      d.sendOp == isa::SendOp::SlmGatherLoad) &&
                     d.dst.elemBytes != d.sendElemBytes,
                 "load destination type width mismatch");

        // Issue-gating registers: sources (plus block-store payload)
        // and the destination (in-order WAW), as in
        // Scoreboard::readyCycle.
        d.depOff = static_cast<std::uint32_t>(depPool_.size());
        appendRegs(in.src0, in.simdWidth, depPool_);
        appendRegs(in.src1, in.simdWidth, depPool_);
        appendRegs(in.src2, in.simdWidth, depPool_);
        if (in.op == Opcode::Send &&
            in.send.op == isa::SendOp::BlockStore) {
            for (unsigned r = 0; r < in.send.numRegs; ++r) {
                panic_if(in.src1.reg + r >= kGrfRegCount,
                         "block store register out of range");
                depPool_.push_back(
                    static_cast<std::uint8_t>(in.src1.reg + r));
            }
        }
        appendDstRegs(in, depPool_);
        panic_if(depPool_.size() - d.depOff > 255,
                 "dependence list overflows at ip %u", ip);
        d.depCount =
            static_cast<std::uint8_t>(depPool_.size() - d.depOff);

        d.claimOff = static_cast<std::uint32_t>(depPool_.size());
        appendDstRegs(in, depPool_);
        d.claimCount =
            static_cast<std::uint8_t>(depPool_.size() - d.claimOff);

        if (in.predCtrl != isa::PredCtrl::None)
            d.flagDepMask |= std::uint8_t{1} << (in.predFlag & 1);
        if (in.op == Opcode::Sel)
            d.flagDepMask |= std::uint8_t{1} << (in.condFlag & 1);
        if (in.op == Opcode::Cmp)
            d.claimFlag = static_cast<std::int8_t>(in.condFlag & 1);

        instrs_.push_back(d);
    }

    computeMacroRuns();
}

void
DecodedKernel::computeMacroRuns()
{
    const auto in_run = [](ExecClass cls) {
        return cls == ExecClass::AluFloat || cls == ExecClass::AluInt ||
            cls == ExecClass::CmpFloat || cls == ExecClass::CmpInt;
    };

    // O(n * run length): kernels are short and this runs once at bind.
    const auto size = static_cast<std::uint32_t>(instrs_.size());
    for (std::uint32_t ip = 0; ip < size; ++ip) {
        if (!in_run(instrs_[ip].cls))
            continue;
        std::uint8_t written = 0; // flags written by cmps in the run
        std::uint32_t end = ip;
        while (end < size && end - ip < 0xffff) {
            const DecodedInstr &d = instrs_[end];
            if (!in_run(d.cls))
                break;
            // A predication mask must be run invariant: reject
            // instructions predicated on a flag a cmp in the run has
            // already (re)written.
            if (d.predCtrl != isa::PredCtrl::None &&
                (written >> (d.predFlag & 1)) & 1) {
                break;
            }
            if (d.claimFlag >= 0)
                written |= std::uint8_t{1} << d.claimFlag;
            ++end;
        }
        instrs_[ip].macroLen = static_cast<std::uint16_t>(end - ip);
    }
}

} // namespace iwc::func
