/**
 * @file
 * Functional memory: the flat global address space shared by the whole
 * GPU (paged and sparse, so large address ranges cost nothing until
 * touched) plus the per-workgroup shared local memory.
 */

#ifndef IWC_FUNC_MEMORY_HH
#define IWC_FUNC_MEMORY_HH

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace iwc::func
{

/**
 * Sparse, paged global memory with a bump allocator for device
 * buffers. Address 0 is never handed out so it can serve as a null
 * buffer handle.
 */
class GlobalMemory
{
  public:
    static constexpr unsigned kPageBytes = 4096;

    /** Allocates @p bytes with cache-line alignment; returns base. */
    Addr allocate(std::uint64_t bytes,
                  std::uint64_t align = kCacheLineBytes);

    void read(Addr addr, void *out, std::uint64_t bytes) const;
    void write(Addr addr, const void *in, std::uint64_t bytes);

    template <typename T>
    T
    load(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Total bytes handed out by the allocator. */
    std::uint64_t allocatedBytes() const { return nextFree_ - kPageBytes; }

    /**
     * Stable digest of every resident byte (pages walked in address
     * order, each prefixed by its page number). Two memories that
     * answer every read identically — including never-touched pages,
     * which read as zero — produce equal digests, so this is the
     * "final memory state" half of the melder's differential gate.
     */
    std::uint64_t digest() const;

  private:
    using Page = std::vector<std::uint8_t>;

    const Page *findPage(std::uint64_t page_num) const;
    Page &touchPage(std::uint64_t page_num);

    std::unordered_map<std::uint64_t, Page> pages_;
    Addr nextFree_ = kPageBytes; // skip page 0 => address 0 stays null

    /**
     * Last page touched, fronting the hash lookup: per-lane gathers
     * walk the same page, so nearly every access hits. Mapped values
     * in an unordered_map are node-stable, so the pointer survives
     * later insertions.
     */
    mutable std::uint64_t cachedPageNum_ = ~std::uint64_t{0};
    mutable Page *cachedPage_ = nullptr;
};

/** Per-workgroup shared local memory (flat, byte addressed). */
class SlmMemory
{
  public:
    explicit SlmMemory(unsigned bytes) : data_(bytes, 0) {}

    void read(Addr addr, void *out, std::uint64_t bytes) const;
    void write(Addr addr, const void *in, std::uint64_t bytes);

    template <typename T>
    T
    load(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    unsigned size() const { return static_cast<unsigned>(data_.size()); }

  private:
    std::vector<std::uint8_t> data_;
};

} // namespace iwc::func

#endif // IWC_FUNC_MEMORY_HH
