#include "func/ops_send.hh"

#include <bit>

#include "common/logging.hh"
#include "func/exec_ops.hh"
#include "func/step_result.hh"

namespace iwc::func::ops
{

using isa::Instruction;
using isa::SendOp;

void
execSend(const DecodedInstr &d, ThreadState &t, LaneMask exec,
         StepResult &result, GlobalMemory &gmem, SlmMemory *slm,
         const isa::Kernel &kernel)
{
    const unsigned elem_bytes = d.sendElemBytes;

    switch (d.sendOp) {
      case SendOp::Barrier:
        result.isBarrier = true;
        return;
      case SendOp::Fence:
        return; // functional memory is always coherent
      default:
        break;
    }

    MemAccess &mem = result.mem;
    result.hasMem = true;
    mem.op = d.sendOp;
    mem.elemBytes = elem_bytes;
    mem.mask = exec;

    if (d.sendOp == SendOp::BlockLoad || d.sendOp == SendOp::BlockStore) {
        const Instruction &in = *d.instr;
        mem.isBlock = true;
        mem.blockAddr = static_cast<std::uint32_t>(readI(d.src0, t, 0));
        mem.blockBytes = in.send.numRegs * kGrfRegBytes;
        std::uint8_t buf[kGrfRegBytes * 8];
        panic_if(mem.blockBytes > sizeof(buf), "block message too large");
        if (d.sendOp == SendOp::BlockLoad) {
            gmem.read(mem.blockAddr, buf, mem.blockBytes);
            t.writeGrfBytes(in.dst.reg * kGrfRegBytes, buf,
                            mem.blockBytes);
        } else {
            t.readGrfBytes(in.src1.reg * kGrfRegBytes, buf,
                           mem.blockBytes);
            gmem.write(mem.blockAddr, buf, mem.blockBytes);
        }
        return;
    }
    mem.isBlock = false;

    const bool is_slm = isa::isSlmSend(d.sendOp);
    panic_if(is_slm && slm == nullptr,
             "kernel %s uses SLM but none is bound",
             kernel.name().c_str());

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        const Addr addr =
            static_cast<std::uint32_t>(readI(d.src0, t, ch));
        mem.addrs[ch] = addr;

        std::uint64_t bits = 0;
        switch (d.sendOp) {
          case SendOp::GatherLoad:
            gmem.read(addr, &bits, elem_bytes);
            writeRawElement(d.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::ScatterStore:
            bits = rawElement(d.src1, t, ch);
            gmem.write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmGatherLoad:
            slm->read(addr, &bits, elem_bytes);
            writeRawElement(d.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::SlmScatterStore:
            bits = rawElement(d.src1, t, ch);
            slm->write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmAtomicAdd: {
            const auto old = slm->load<std::int32_t>(addr);
            const auto addend =
                static_cast<std::int32_t>(readI(d.src1, t, ch));
            slm->store<std::int32_t>(addr, old + addend);
            writeI(d.dst, t, ch, old);
            break;
          }
          default:
            panic("unhandled send op");
        }
    }
}

} // namespace iwc::func::ops
