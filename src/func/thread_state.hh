/**
 * @file
 * Architectural state of one EU thread: the 128 x 256b general
 * register file, two flag registers, the channel-mask stack that
 * implements structured control flow, and the instruction pointer.
 */

#ifndef IWC_FUNC_THREAD_STATE_HH
#define IWC_FUNC_THREAD_STATE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace iwc::func
{

/** One entry of the channel-mask stack. */
struct CfFrame
{
    enum class Kind : std::uint8_t { If, Loop };

    Kind kind = Kind::If;
    LaneMask savedMask = 0; ///< active channels when the frame was pushed
    LaneMask elseMask = 0;  ///< If: channels pending for the else path
    LaneMask contMask = 0;  ///< Loop: channels parked by `cont`
    LaneMask breakMask = 0; ///< Loop: channels that left via `break`
};

/** Architectural state of one EU thread. */
class ThreadState
{
  public:
    ThreadState() { reset(laneMaskForWidth(16)); }

    /** Re-initializes the thread with the given dispatch mask. */
    void
    reset(LaneMask dispatch_mask)
    {
        grf_.assign(kGrfRegCount * kGrfRegBytes, 0);
        flags_[0] = 0;
        flags_[1] = 0;
        cfStack_.clear();
        dispatchMask_ = dispatch_mask;
        activeMask_ = dispatch_mask;
        ip_ = 0;
        halted_ = false;
    }

    // --- GRF access ---
    template <typename T>
    T
    readGrf(unsigned byte_offset) const
    {
        panic_if(byte_offset + sizeof(T) > grf_.size(),
                 "GRF read at %u out of range", byte_offset);
        T v;
        std::memcpy(&v, grf_.data() + byte_offset, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeGrf(unsigned byte_offset, const T &v)
    {
        panic_if(byte_offset + sizeof(T) > grf_.size(),
                 "GRF write at %u out of range", byte_offset);
        std::memcpy(grf_.data() + byte_offset, &v, sizeof(T));
    }

    void
    writeGrfBytes(unsigned byte_offset, const void *src, unsigned bytes)
    {
        panic_if(byte_offset + bytes > grf_.size(),
                 "GRF write at %u out of range", byte_offset);
        std::memcpy(grf_.data() + byte_offset, src, bytes);
    }

    void
    readGrfBytes(unsigned byte_offset, void *dst, unsigned bytes) const
    {
        panic_if(byte_offset + bytes > grf_.size(),
                 "GRF read at %u out of range", byte_offset);
        std::memcpy(dst, grf_.data() + byte_offset, bytes);
    }

    /**
     * Raw GRF bytes for accesses whose bounds were already validated
     * (the predecoder checks each operand's whole region at bind time).
     */
    const std::uint8_t *grfData() const { return grf_.data(); }
    std::uint8_t *grfData() { return grf_.data(); }

    // --- Flags ---
    std::uint32_t
    flag(unsigned idx) const
    {
        panic_if(idx >= 2, "flag register %u out of range", idx);
        return flags_[idx];
    }

    void
    setFlag(unsigned idx, std::uint32_t value)
    {
        panic_if(idx >= 2, "flag register %u out of range", idx);
        flags_[idx] = value;
    }

    // --- Control flow ---
    LaneMask dispatchMask() const { return dispatchMask_; }
    LaneMask activeMask() const { return activeMask_; }
    void setActiveMask(LaneMask m) { activeMask_ = m; }

    void pushFrame(const CfFrame &f) { cfStack_.push_back(f); }

    CfFrame &
    topFrame()
    {
        panic_if(cfStack_.empty(), "control-flow stack underflow");
        return cfStack_.back();
    }

    CfFrame
    popFrame()
    {
        panic_if(cfStack_.empty(), "control-flow stack underflow");
        const CfFrame f = cfStack_.back();
        cfStack_.pop_back();
        return f;
    }

    bool cfEmpty() const { return cfStack_.empty(); }
    unsigned cfDepth() const
    {
        return static_cast<unsigned>(cfStack_.size());
    }

    /**
     * Innermost enclosing loop frame, or nullptr. Break and Cont park
     * channels here; EndIf must keep them parked when it restores its
     * saved mask.
     */
    CfFrame *
    innermostLoop()
    {
        for (auto it = cfStack_.rbegin(); it != cfStack_.rend(); ++it)
            if (it->kind == CfFrame::Kind::Loop)
                return &*it;
        return nullptr;
    }

    /** Channels currently parked by break/cont of the innermost loop. */
    LaneMask
    loopOffMask()
    {
        const CfFrame *loop = innermostLoop();
        return loop ? (loop->breakMask | loop->contMask) : 0;
    }

    // --- Instruction pointer ---
    std::uint32_t ip() const { return ip_; }
    void setIp(std::uint32_t ip) { ip_ = ip; }

    bool halted() const { return halted_; }
    void halt() { halted_ = true; }

  private:
    std::vector<std::uint8_t> grf_;
    std::uint32_t flags_[2];
    std::vector<CfFrame> cfStack_;
    LaneMask dispatchMask_ = 0;
    LaneMask activeMask_ = 0;
    std::uint32_t ip_ = 0;
    bool halted_ = false;
};

} // namespace iwc::func

#endif // IWC_FUNC_THREAD_STATE_HH
