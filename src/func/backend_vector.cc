#include "func/backend_vector.hh"

#include <bit>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "func/exec_ops.hh"
#include "func/ops_alu.hh"

namespace iwc::func
{

using isa::CondMod;
using isa::DataType;
using isa::Opcode;

const VecKernelTable &
activeVecKernels()
{
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        return avx2VecKernels();
#endif
    return hostVecKernels();
}

const char *
activeVecKernelIsa()
{
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        return "avx2";
#endif
#if defined(__ARM_NEON)
    return "neon";
#else
    return "generic";
#endif
}

namespace
{

/** Half-open byte ranges [aOff, aOff+aLen) and [bOff, bOff+bLen). */
bool
rangesOverlap(std::uint32_t a_off, std::uint32_t a_len,
              std::uint32_t b_off, std::uint32_t b_len)
{
    return a_off < b_off + b_len && b_off < a_off + a_len;
}

/** Operand sign class for sign-sensitive integer ops. */
enum class IntClass
{
    Any,      ///< op is congruent mod 2^32; extension never matters
    Signed,   ///< operands compare as sign-extended values
    Unsigned, ///< operands compare as zero-extended values
};

/**
 * Detects the common sign class of two integer operands. Fails on
 * D/UD mixes (64-bit extended comparisons diverge from 32-bit lanes),
 * on non-dword GRF operands, and when both are immediates (nothing to
 * anchor the class; such constant ops stay on the scalar path).
 */
bool
commonSignClass(const DecodedOperand &x, const DecodedOperand &y,
                IntClass &cls)
{
    bool saw_s = false;
    bool saw_u = false;
    for (const DecodedOperand *op : {&x, &y}) {
        if (op->isImm)
            continue;
        if (op->isNull)
            return false;
        if (op->type == DataType::D)
            saw_s = true;
        else if (op->type == DataType::UD)
            saw_u = true;
        else
            return false;
    }
    if (saw_s == saw_u) // mixed, or both immediate
        return false;
    cls = saw_s ? IntClass::Signed : IntClass::Unsigned;
    return true;
}

std::uint8_t
floatCmpOf(CondMod m)
{
    switch (m) {
      case CondMod::Eq: return kCFEq;
      case CondMod::Ne: return kCFNe;
      case CondMod::Lt: return kCFLt;
      case CondMod::Le: return kCFLe;
      case CondMod::Gt: return kCFGt;
      case CondMod::Ge: return kCFGe;
      case CondMod::None: break;
    }
    return 0xff;
}

std::uint8_t
intCmpOf(CondMod m, bool is_signed)
{
    switch (m) {
      case CondMod::Eq: return kCIEq;
      case CondMod::Ne: return kCINe;
      case CondMod::Lt: return is_signed ? kCILtS : kCILtU;
      case CondMod::Le: return is_signed ? kCILeS : kCILeU;
      case CondMod::Gt: return is_signed ? kCIGtS : kCIGtU;
      case CondMod::Ge: return is_signed ? kCIGeS : kCIGeU;
      case CondMod::None: break;
    }
    return 0xff;
}

} // namespace

VectorBackend::VectorBackend(const isa::Kernel &kernel,
                             GlobalMemory &gmem)
    : ExecBackend(kernel, gmem), table_(&activeVecKernels())
{
    buildPlan();
}

void
VectorBackend::buildPlan()
{
    plan_.resize(decoded_.size());

    const auto addImm = [&](std::uint32_t bits) -> std::uint16_t {
        panic_if(immPool_.size() >
                     std::numeric_limits<std::uint16_t>::max(),
                 "immediate pool overflow");
        std::array<std::uint32_t, kMaxSimdWidth> lanes;
        lanes.fill(bits);
        immPool_.push_back(lanes);
        return static_cast<std::uint16_t>(immPool_.size() - 1);
    };

    // Plans a float source. Grf sources must be contiguous (or
    // broadcast) dword F; immediates must survive the f32 roundtrip
    // exactly. When a destination span is given, sources read in
    // 8-lane chunks must either not overlap it or coincide with it
    // exactly (same lane reads its own slot, as in the scalar loop);
    // sources staged through scratch are read before any store.
    const auto planFSrc = [&](const DecodedOperand &op, unsigned n,
                              const DecodedOperand *dst,
                              VecSrc &out) -> bool {
        if (op.isImm) {
            const float f = static_cast<float>(op.immF);
            if (static_cast<double>(f) != op.immF)
                return false; // not representable (or NaN): stay scalar
            out.kind = VecSrc::Kind::SplatImm;
            out.immSlot = addImm(std::bit_cast<std::uint32_t>(f));
            return true;
        }
        if (op.isNull || op.type != DataType::F)
            return false;
        const std::uint32_t am = op.absolute ? 0x7fffffffu : ~0u;
        const std::uint32_t xm = op.negate ? 0x80000000u : 0u;
        if (op.stride == 0) {
            if (dst && rangesOverlap(op.baseOff, 4, dst->baseOff, 4 * n))
                return false; // lane writes feed later lane reads
            out.kind = VecSrc::Kind::SplatGrf;
            out.baseOff = op.baseOff;
            out.andMask = am;
            out.xorMask = xm;
            return true;
        }
        if (op.stride != 4)
            return false;
        if (op.negate || op.absolute) {
            out.kind = VecSrc::Kind::Copy;
            out.baseOff = op.baseOff;
            out.andMask = am;
            out.xorMask = xm;
            return true;
        }
        if (dst && op.baseOff != dst->baseOff &&
            rangesOverlap(op.baseOff, 4 * n, dst->baseOff, 4 * n)) {
            return false;
        }
        out.kind = VecSrc::Kind::Direct;
        out.baseOff = op.baseOff;
        return true;
    };

    // Plans an integer source under a sign class. Only dword D/UD
    // lanes without source modifiers; immediates must fit the class
    // (any value is fine for congruent ops, since only its low 32
    // bits can reach a dword result).
    const auto planISrc = [&](const DecodedOperand &op, unsigned n,
                              const DecodedOperand *dst, IntClass cls,
                              VecSrc &out) -> bool {
        if (op.isImm) {
            if (cls == IntClass::Signed &&
                (op.immI < std::numeric_limits<std::int32_t>::min() ||
                 op.immI > std::numeric_limits<std::int32_t>::max())) {
                return false;
            }
            if (cls == IntClass::Unsigned &&
                (op.immI < 0 ||
                 op.immI > std::numeric_limits<std::uint32_t>::max())) {
                return false;
            }
            out.kind = VecSrc::Kind::SplatImm;
            out.immSlot = addImm(static_cast<std::uint32_t>(op.immI));
            return true;
        }
        if (op.isNull || op.negate || op.absolute)
            return false;
        if (op.type != DataType::D && op.type != DataType::UD)
            return false;
        if (cls == IntClass::Signed && op.type != DataType::D)
            return false;
        if (cls == IntClass::Unsigned && op.type != DataType::UD)
            return false;
        if (op.stride == 0) {
            if (dst && rangesOverlap(op.baseOff, 4, dst->baseOff, 4 * n))
                return false;
            out.kind = VecSrc::Kind::SplatGrf;
            out.baseOff = op.baseOff;
            out.andMask = ~0u;
            out.xorMask = 0;
            return true;
        }
        if (op.stride != 4)
            return false;
        if (dst && op.baseOff != dst->baseOff &&
            rangesOverlap(op.baseOff, 4 * n, dst->baseOff, 4 * n)) {
            return false;
        }
        out.kind = VecSrc::Kind::Direct;
        out.baseOff = op.baseOff;
        return true;
    };

    const auto dstOk = [](const DecodedInstr &d, bool want_float) {
        const DecodedOperand &dst = d.dst;
        if (dst.isNull || dst.isImm)
            return false;
        if (dst.stride != 4 || dst.elemBytes != 4)
            return false;
        return want_float ? d.dstIsF : !d.dstIsFloat;
    };

    for (std::uint32_t ip = 0; ip < decoded_.size(); ++ip) {
        const DecodedInstr &d = decoded_.at(ip);
        VecPlan p;
        const unsigned n = d.simdWidth;
        // Lane kernels work in whole 8-lane chunks; narrower widths
        // would read and write past the operand spans.
        if (n < 8 || n % 8 != 0) {
            plan_[ip] = p;
            continue;
        }

        switch (d.cls) {
          case ExecClass::AluFloat: {
            if (!dstOk(d, true))
                break;
            std::uint8_t k = kVecNone;
            unsigned nsrc = 0;
            bool flag_sel = false;
            switch (d.op) {
              case Opcode::Mov:   k = kFMov;   nsrc = 1; break;
              case Opcode::Add:   k = kFAdd;   nsrc = 2; break;
              case Opcode::Sub:   k = kFSub;   nsrc = 2; break;
              case Opcode::Mul:   k = kFMul;   nsrc = 2; break;
              case Opcode::Mad:   k = kFMad;   nsrc = 3; break;
              case Opcode::Min:   k = kFMin;   nsrc = 2; break;
              case Opcode::Max:   k = kFMax;   nsrc = 2; break;
              case Opcode::Avg:   k = kFAvg;   nsrc = 2; break;
              case Opcode::Sel:
                k = kFSel;
                nsrc = 2;
                flag_sel = true;
                break;
              case Opcode::Rndd:  k = kFRndd;  nsrc = 1; break;
              case Opcode::Frc:   k = kFFrc;   nsrc = 1; break;
              case Opcode::Inv:   k = kFInv;   nsrc = 1; break;
              case Opcode::Div:   k = kFDiv;   nsrc = 2; break;
              case Opcode::Sqrt:  k = kFSqrt;  nsrc = 1; break;
              case Opcode::Rsqrt: k = kFRsqrt; nsrc = 1; break;
              default: // transcendentals et al: libm stays scalar
                break;
            }
            if (k == kVecNone)
                break;
            if (!planFSrc(d.src0, n, &d.dst, p.a))
                break;
            if (nsrc >= 2 && !planFSrc(d.src1, n, &d.dst, p.b))
                break;
            if (nsrc >= 3 && !planFSrc(d.src2, n, &d.dst, p.c))
                break;
            if (flag_sel) {
                p.c.kind = VecSrc::Kind::FlagMask;
                p.c.baseOff = d.condFlag;
            }
            p.alu = k;
            break;
          }

          case ExecClass::AluInt: {
            if (!dstOk(d, false))
                break;
            std::uint8_t k = kVecNone;
            unsigned nsrc = 0;
            bool flag_sel = false;
            IntClass cls = IntClass::Any;
            switch (d.op) {
              case Opcode::Mov: k = kIMov; nsrc = 1; break;
              case Opcode::Add: k = kIAdd; nsrc = 2; break;
              case Opcode::Sub: k = kISub; nsrc = 2; break;
              case Opcode::Mul: k = kIMul; nsrc = 2; break;
              case Opcode::Mad: k = kIMad; nsrc = 3; break;
              case Opcode::And: k = kIAnd; nsrc = 2; break;
              case Opcode::Or:  k = kIOr;  nsrc = 2; break;
              case Opcode::Xor: k = kIXor; nsrc = 2; break;
              case Opcode::Not: k = kINot; nsrc = 1; break;
              case Opcode::Shl: k = kIShl; nsrc = 2; break;
              case Opcode::Shr: k = kIShrL; nsrc = 2; break;
              case Opcode::Asr:
                // Signedness comes from the shifted operand alone;
                // immediates stay scalar (the extension is baked into
                // the 64-bit immI, not recoverable per lane).
                if (d.src0.isImm || d.src0.isNull)
                    break;
                if (d.src0.type == DataType::D)
                    k = kIShrA;
                else if (d.src0.type == DataType::UD)
                    k = kIShrL;
                else
                    break;
                nsrc = 2;
                break;
              case Opcode::Min:
              case Opcode::Max:
                if (!commonSignClass(d.src0, d.src1, cls))
                    break;
                if (d.op == Opcode::Min) {
                    k = cls == IntClass::Signed ? kIMinS : kIMinU;
                } else {
                    k = cls == IntClass::Signed ? kIMaxS : kIMaxU;
                }
                nsrc = 2;
                break;
              case Opcode::Sel:
                k = kISel;
                nsrc = 2;
                flag_sel = true;
                break;
              default: // Avg needs 33 bits, Div traps on 0: scalar
                break;
            }
            if (k == kVecNone)
                break;
            if (!planISrc(d.src0, n, &d.dst, cls, p.a))
                break;
            if (nsrc >= 2 && !planISrc(d.src1, n, &d.dst, cls, p.b))
                break;
            if (nsrc >= 3 && !planISrc(d.src2, n, &d.dst, cls, p.c))
                break;
            if (flag_sel) {
                p.c.kind = VecSrc::Kind::FlagMask;
                p.c.baseOff = d.condFlag;
            }
            p.alu = k;
            break;
          }

          case ExecClass::CmpFloat: {
            if (d.condMod == CondMod::None)
                break;
            VecSrc a, b;
            if (!planFSrc(d.src0, n, nullptr, a) ||
                !planFSrc(d.src1, n, nullptr, b)) {
                break;
            }
            p.a = a;
            p.b = b;
            p.cmp = floatCmpOf(d.condMod);
            break;
          }

          case ExecClass::CmpInt: {
            if (d.condMod == CondMod::None)
                break;
            IntClass cls = IntClass::Any;
            if (!commonSignClass(d.src0, d.src1, cls))
                break;
            VecSrc a, b;
            if (!planISrc(d.src0, n, nullptr, cls, a) ||
                !planISrc(d.src1, n, nullptr, cls, b)) {
                break;
            }
            p.a = a;
            p.b = b;
            p.cmp = intCmpOf(d.condMod, cls == IntClass::Signed);
            break;
          }

          default:
            break;
        }

        if (p.alu != kVecNone || p.cmp != 0xff)
            ++vectorized_;
        plan_[ip] = p;
    }
}

const VecPlan &
VectorBackend::planFor(const DecodedInstr &d) const
{
    const auto ip = static_cast<std::size_t>(&d - &decoded_.at(0));
    return plan_[ip];
}

const void *
VectorBackend::resolveSrc(const VecSrc &s, const ThreadState &t,
                          unsigned n, std::uint32_t *scratch)
{
    switch (s.kind) {
      case VecSrc::Kind::Unused:
        return scratch; // readable garbage; the kernel ignores it
      case VecSrc::Kind::Direct:
        return t.grfData() + s.baseOff;
      case VecSrc::Kind::Copy: {
        const std::uint8_t *src = t.grfData() + s.baseOff;
        for (unsigned i = 0; i < n; ++i) {
            std::uint32_t v;
            std::memcpy(&v, src + 4u * i, 4);
            scratch[i] = (v & s.andMask) ^ s.xorMask;
        }
        return scratch;
      }
      case VecSrc::Kind::SplatImm:
        return immPool_[s.immSlot].data();
      case VecSrc::Kind::SplatGrf: {
        std::uint32_t v;
        std::memcpy(&v, t.grfData() + s.baseOff, 4);
        v = (v & s.andMask) ^ s.xorMask;
        for (unsigned i = 0; i < n; ++i)
            scratch[i] = v;
        return scratch;
      }
      case VecSrc::Kind::FlagMask: {
        const LaneMask f = t.flag(s.baseOff);
        for (unsigned i = 0; i < n; ++i)
            scratch[i] = (f >> i) & 1 ? ~0u : 0u;
        return scratch;
      }
    }
    return scratch;
}

void
VectorBackend::buildWriteMask(LaneMask exec, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        wrMask_[i] = (exec >> i) & 1 ? ~0u : 0u;
}

void
VectorBackend::execAlu(const DecodedInstr &d, ThreadState &t,
                       LaneMask exec)
{
    if (exec == 0)
        return;
    const VecPlan &p = planFor(d);
    if (p.alu == kVecNone) {
        ops::scalarAlu(d, t, exec);
        return;
    }
    const unsigned n = d.simdWidth;
    buildWriteMask(exec, n);
    const void *a = resolveSrc(p.a, t, n, scratch_[0]);
    const void *b = resolveSrc(p.b, t, n, scratch_[1]);
    const void *c = resolveSrc(p.c, t, n, scratch_[2]);
    table_->alu[p.alu](t.grfData() + d.dst.baseOff, a, b, c, wrMask_,
                       n);
}

void
VectorBackend::execCmp(const DecodedInstr &d, ThreadState &t,
                       LaneMask exec)
{
    if (exec == 0)
        return; // flag bits outside exec are preserved: no-op
    const VecPlan &p = planFor(d);
    if (p.cmp == 0xff) {
        ops::scalarCmp(d, t, exec);
        return;
    }
    const unsigned n = d.simdWidth;
    const void *a = resolveSrc(p.a, t, n, scratch_[0]);
    const void *b = resolveSrc(p.b, t, n, scratch_[1]);
    const std::uint32_t cond = table_->cmp[p.cmp](a, b, n);
    const LaneMask old = t.flag(d.condFlag);
    t.setFlag(d.condFlag, (old & ~exec) | (cond & exec));
}

} // namespace iwc::func
