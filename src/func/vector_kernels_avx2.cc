// Lane kernels compiled with -mavx2 (see src/CMakeLists.txt). Only
// reached through runtime dispatch after a cpuid check, so the rest
// of the binary stays runnable on pre-AVX2 hosts.
#if !defined(__AVX2__)
#error "vector_kernels_avx2.cc must be compiled with -mavx2"
#endif
#define IWC_VEC_TABLE_FN avx2VecKernels
#include "func/vector_kernels_impl.hh"
