/**
 * @file
 * Bind-time lowering of a kernel into a flat, cache-friendly decoded
 * form. The interpreter's per-step hot path pays for generality in the
 * isa::Instruction representation: every element read re-derives the
 * operand's byte offset (two switches over DataType), every step
 * re-tests the float/int domain and re-builds the width mask, and
 * every GRF access re-checks bounds. All of that is a pure function of
 * the instruction, so DecodedKernel resolves it once when a kernel is
 * bound: operand offsets and strides, pre-converted immediates with
 * source modifiers applied, an execution-class index that fuses the
 * opcode dispatch with the domain test, resolved branch targets, and a
 * decode-time bounds check that lets the interpreter use unchecked GRF
 * access afterwards. Execution semantics are bit-identical to
 * interpreting the undecoded form (enforced by test_predecode.cc).
 */

#ifndef IWC_FUNC_PREDECODE_HH
#define IWC_FUNC_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/kernel.hh"

namespace iwc::func
{

/** Top-level dispatch class of one instruction in step(). */
enum class ExecClass : std::uint8_t
{
    AluFloat, ///< ALU op whose sources are F/DF
    AluInt,   ///< ALU op whose sources are integer
    CmpFloat,
    CmpInt,
    Send,
    If,
    Else,
    EndIf,
    LoopBegin,
    LoopEnd,
    Break,
    Cont,
    Halt,
};

/** Flat operand: everything element access needs, resolved. */
struct DecodedOperand
{
    std::uint32_t baseOff = 0; ///< GRF byte offset of element 0
    std::uint8_t stride = 0;   ///< bytes between channels (0 = scalar)
    std::uint8_t elemBytes = 4;
    isa::DataType type = isa::DataType::D;
    bool isImm = false;
    bool isNull = true;
    bool negate = false;
    bool absolute = false;
    std::uint64_t immBits = 0; ///< raw immediate bits
    double immF = 0;           ///< immediate as double, modifiers applied
    std::int64_t immI = 0;     ///< immediate as int64, modifiers applied
};

/** Flat decoded instruction the interpreter hot path consumes. */
struct DecodedInstr
{
    const isa::Instruction *instr = nullptr; ///< original (cold paths)
    ExecClass cls = ExecClass::AluInt;
    isa::Opcode op = isa::Opcode::Mov;
    std::uint8_t simdWidth = 16;
    isa::PredCtrl predCtrl = isa::PredCtrl::None;
    std::uint8_t predFlag = 0;
    std::uint8_t condFlag = 0;
    isa::CondMod condMod = isa::CondMod::None;
    bool dstIsF = false;     ///< dst.type == F: round intermediates
    bool dstIsFloat = false; ///< dst is F/DF: int results convert
    LaneMask widthMask = 0;
    std::uint32_t target0 = 0; ///< resolved branch targets
    std::uint32_t target1 = 0;
    isa::SendOp sendOp = isa::SendOp::Fence;
    std::uint8_t sendElemBytes = 4;
    /** isa::execElemBytes(in): element size driving the cycle plan. */
    std::uint8_t execBytes = 4;
    DecodedOperand dst;
    DecodedOperand src0;
    DecodedOperand src1;
    DecodedOperand src2;

    // Scoreboard dependences, resolved at decode time so the issue
    // path scans flat register lists instead of re-walking operands
    // (see DecodedKernel::depPool). depOff/depCount list every GRF
    // register the instruction reads or WAW-checks; claimOff/
    // claimCount list the registers its writeback claims.
    std::uint32_t depOff = 0;
    std::uint32_t claimOff = 0;
    std::uint8_t depCount = 0;
    std::uint8_t claimCount = 0;
    /** Bit f set: issue waits on flag register f (pred / Sel). */
    std::uint8_t flagDepMask = 0;
    /** Flag register the instruction writes (Cmp), or -1. */
    std::int8_t claimFlag = -1;

    /**
     * Length of the longest mask-stable straight-line run starting
     * here: consecutive ALU/cmp instructions (no control flow, sends,
     * barriers or halts) where no instruction is predicated on a flag
     * a cmp earlier in the run writes. Within such a run the active
     * mask and every predication mask are loop invariant, so a
     * backend may execute the whole run per dispatch (stepMacro).
     * Always >= 1 for ALU/cmp instructions; 1 means no run.
     */
    std::uint16_t macroLen = 1;
};

/** The decoded form of a whole kernel. */
class DecodedKernel
{
  public:
    explicit DecodedKernel(const isa::Kernel &kernel);

    /**
     * Decodes a borrowed instruction span that never went through
     * Kernel validation (the lint passes decode raw streams to reuse
     * the dependence lists). The span must outlive the decoded form.
     */
    DecodedKernel(const isa::Instruction *instrs, std::uint32_t size);

    const DecodedInstr &
    at(std::uint32_t ip) const
    {
        return instrs_[ip];
    }

    /** Backing store for the instructions' register dependence lists. */
    const std::uint8_t *depPool() const { return depPool_.data(); }

    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(instrs_.size());
    }

  private:
    void computeMacroRuns();

    std::vector<DecodedInstr> instrs_;
    std::vector<std::uint8_t> depPool_;
};

} // namespace iwc::func

#endif // IWC_FUNC_PREDECODE_HH
