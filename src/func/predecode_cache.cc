#include "func/predecode_cache.hh"

namespace iwc::func
{

PredecodeCache &
PredecodeCache::instance()
{
    static PredecodeCache cache;
    return cache;
}

std::shared_ptr<const PredecodedKernel>
PredecodeCache::get(const isa::Kernel &kernel)
{
    const std::uint64_t digest = kernel.digest();
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(digest);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Decode outside the lock: predecode is the expensive part, and
    // concurrent first sightings of the same kernel are rare (the
    // loser's identical entry just replaces the winner's).
    auto entry = std::make_shared<const PredecodedKernel>(kernel);
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= kMaxEntries)
        entries_.clear();
    entries_[digest] = entry;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return entry;
}

std::size_t
PredecodeCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
PredecodeCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

} // namespace iwc::func
