/**
 * @file
 * Pluggable execution backends for the functional model. A backend
 * steps one predecoded instruction for all active channels against a
 * ThreadState. Control flow and sends are inherently scalar and are
 * shared by every backend (ops_control / ops_send); backends differ
 * only in how they execute the data-parallel ALU and compare
 * families:
 *
 *  - ScalarBackend runs the channel-at-a-time reference semantics
 *    (ops_alu) and serves as the differential oracle.
 *  - VectorBackend (backend_vector.hh) maps channels onto host SIMD
 *    lanes where that is provably bit-identical, falling back to the
 *    shared scalar units otherwise.
 *
 * Backends also implement macro-stepping: where the predecode pass
 * proved a straight-line run of ALU/cmp instructions keeps the
 * channel mask stable (DecodedInstr::macroLen), stepMacro() executes
 * the whole run per dispatch without per-instruction StepResult
 * bookkeeping.
 */

#ifndef IWC_FUNC_EXEC_BACKEND_HH
#define IWC_FUNC_EXEC_BACKEND_HH

#include <memory>
#include <string_view>

#include "func/memory.hh"
#include "func/predecode.hh"
#include "func/predecode_cache.hh"
#include "func/step_result.hh"
#include "func/thread_state.hh"
#include "isa/kernel.hh"

namespace iwc::func
{

/** Which execution backend runs the data-parallel op families. */
enum class BackendKind
{
    Auto,   ///< environment override, else the vectorized backend
    Scalar, ///< channel-at-a-time reference semantics (the oracle)
    Vector, ///< host-SIMD fast paths with per-instruction fallback
};

/** Short stable name ("auto", "scalar", "vector"). */
const char *backendKindName(BackendKind kind);

/** Parses a backend name; returns false on unknown input. */
bool parseBackendKind(std::string_view name, BackendKind &out);

/**
 * Resolves a requested backend to a concrete one: an explicit request
 * wins, then the IWC_BACKEND environment variable, then Vector (whose
 * fast paths are gated per instruction, so it is always safe).
 */
BackendKind resolveBackendKind(BackendKind requested);

/**
 * Executes kernel instructions against a ThreadState. Stateless apart
 * from the bound kernel and memories, so one backend serves many
 * threads. The step() scaffold (mask computation, dispatch, control
 * flow, sends) is common; subclasses plug in the ALU/cmp executors.
 */
class ExecBackend
{
  public:
    ExecBackend(const isa::Kernel &kernel, GlobalMemory &gmem);
    virtual ~ExecBackend();

    ExecBackend(const ExecBackend &) = delete;
    ExecBackend &operator=(const ExecBackend &) = delete;

    /** Binds the SLM segment of the thread's workgroup (may be null). */
    void setSlm(SlmMemory *slm) { slm_ = slm; }

    /**
     * Executes the instruction at the thread's ip and advances control
     * flow. Must not be called on a halted thread. The out-param form
     * lets issue loops reuse one StepResult buffer: every field it
     * reports is (re)written, but mem.addrs slots of inactive lanes
     * keep whatever the previous step left there.
     */
    void step(ThreadState &t, StepResult &result);

    /**
     * Executes the whole mask-stable run starting at the thread's ip
     * in one dispatch, if predecode proved one (macroLen > 1), and
     * returns the number of instructions executed; returns 0 if there
     * is no run, in which case the caller must use step(). Runs never
     * contain sends, barriers, control flow or halts, so there is no
     * StepResult; only callers that do not observe per-instruction
     * results may use this.
     */
    unsigned stepMacro(ThreadState &t);

    /** Computes the execution mask the instruction would get. */
    LaneMask execMaskFor(const isa::Instruction &in,
                         const ThreadState &t) const;

    /**
     * The bound kernel. This is the predecode cache's shared copy of
     * the kernel passed at construction (value-identical; the decoded
     * form's instruction pointers point into it).
     */
    const isa::Kernel &kernel() const { return kernel_; }

    /** The bind-time decoded form (operand spans, dependence lists). */
    const DecodedKernel &decoded() const { return decoded_; }

    /** Backend name for stats and diagnostics ("scalar", "vector"). */
    virtual const char *name() const = 0;

  protected:
    /** Executes one ALU instruction for the channels in @p exec. */
    virtual void execAlu(const DecodedInstr &d, ThreadState &t,
                         LaneMask exec) = 0;
    /** Executes one compare, updating flag bits for @p exec. */
    virtual void execCmp(const DecodedInstr &d, ThreadState &t,
                         LaneMask exec) = 0;

    /** Shared predecode entry; keeps kernel_/decoded_ alive. */
    std::shared_ptr<const PredecodedKernel> pre_;
    const isa::Kernel &kernel_;
    const DecodedKernel &decoded_;
    GlobalMemory &gmem_;
    SlmMemory *slm_ = nullptr;
};

/**
 * Channel-at-a-time reference backend. This is the bit-for-bit oracle
 * the vectorized backend is differentially tested against; its op
 * semantics live in ops_alu so both backends share one definition.
 */
class ScalarBackend final : public ExecBackend
{
  public:
    using ExecBackend::ExecBackend;

    const char *name() const override { return "scalar"; }

  protected:
    void execAlu(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) override;
    void execCmp(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) override;
};

/** Creates the backend for @p kind (resolving Auto) bound to a kernel. */
std::unique_ptr<ExecBackend> makeBackend(BackendKind kind,
                                         const isa::Kernel &kernel,
                                         GlobalMemory &gmem);

} // namespace iwc::func

#endif // IWC_FUNC_EXEC_BACKEND_HH
