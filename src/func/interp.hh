/**
 * @file
 * Functional interpreter for the EU ISA. The interpreter is the single
 * source of execution-mask truth: both the timing model (which calls
 * step() when an instruction issues) and the trace generator consume
 * its StepResult.
 */

#ifndef IWC_FUNC_INTERP_HH
#define IWC_FUNC_INTERP_HH

#include <array>
#include <cstdint>

#include "func/memory.hh"
#include "func/predecode.hh"
#include "func/thread_state.hh"
#include "isa/kernel.hh"

namespace iwc::func
{

/** Memory behaviour of one executed Send, for the timing model. */
struct MemAccess
{
    isa::SendOp op = isa::SendOp::Fence;
    unsigned elemBytes = 4;
    LaneMask mask = 0;             ///< channels that accessed memory
    std::array<Addr, kMaxSimdWidth> addrs{}; ///< per-channel byte addrs
    bool isBlock = false;
    Addr blockAddr = 0;
    unsigned blockBytes = 0;
};

/** Everything the caller learns from executing one instruction. */
struct StepResult
{
    const isa::Instruction *instr = nullptr;
    std::uint32_t ip = 0;      ///< ip the instruction was fetched from
    LaneMask execMask = 0;     ///< final computed execution mask
    bool isBarrier = false;    ///< thread must wait at a WG barrier
    bool isHalt = false;       ///< thread terminated
    bool hasMem = false;       ///< mem contains a valid access
    MemAccess mem;
};

/**
 * Executes kernel instructions against a ThreadState. Stateless apart
 * from the bound kernel and memories, so one interpreter serves many
 * threads.
 */
class Interpreter
{
  public:
    Interpreter(const isa::Kernel &kernel, GlobalMemory &gmem);

    /** Binds the SLM segment of the thread's workgroup (may be null). */
    void setSlm(SlmMemory *slm) { slm_ = slm; }

    /**
     * Executes the instruction at the thread's ip and advances control
     * flow. Must not be called on a halted thread. The out-param form
     * lets issue loops reuse one StepResult buffer: every field it
     * reports is (re)written, but mem.addrs slots of inactive lanes
     * keep whatever the previous step left there.
     */
    void step(ThreadState &t, StepResult &result);

    StepResult
    step(ThreadState &t)
    {
        StepResult result;
        step(t, result);
        return result;
    }

    /** Computes the execution mask the instruction at ip would get. */
    LaneMask execMaskFor(const isa::Instruction &in,
                         const ThreadState &t) const;

    const isa::Kernel &kernel() const { return kernel_; }

    /** The bind-time decoded form (operand spans, dependence lists). */
    const DecodedKernel &decoded() const { return decoded_; }

  private:
    void execAlu(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) const;
    void execCmp(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) const;
    void execSend(const DecodedInstr &d, ThreadState &t, LaneMask exec,
                  StepResult &result);

    const isa::Kernel &kernel_;
    DecodedKernel decoded_;
    GlobalMemory &gmem_;
    SlmMemory *slm_ = nullptr;
};

} // namespace iwc::func

#endif // IWC_FUNC_INTERP_HH
