/**
 * @file
 * Functional interpreter for the EU ISA. The interpreter is the single
 * source of execution-mask truth: both the timing model (which calls
 * step() when an instruction issues) and the trace generator consume
 * its StepResult. It is a thin facade over a pluggable execution
 * backend (exec_backend.hh): the scalar oracle or the host-SIMD
 * vectorized backend, selected per launch.
 */

#ifndef IWC_FUNC_INTERP_HH
#define IWC_FUNC_INTERP_HH

#include <memory>

#include "func/exec_backend.hh"
#include "func/memory.hh"
#include "func/predecode.hh"
#include "func/step_result.hh"
#include "func/thread_state.hh"
#include "isa/kernel.hh"

namespace iwc::func
{

/**
 * Executes kernel instructions against a ThreadState. Stateless apart
 * from the bound kernel and memories, so one interpreter serves many
 * threads. All semantics live in the owned backend; see
 * exec_backend.hh for the dispatch scaffold and backend contract.
 */
class Interpreter
{
  public:
    Interpreter(const isa::Kernel &kernel, GlobalMemory &gmem,
                BackendKind backend = BackendKind::Auto)
        : backend_(makeBackend(backend, kernel, gmem))
    {
    }

    /** Binds the SLM segment of the thread's workgroup (may be null). */
    void setSlm(SlmMemory *slm) { backend_->setSlm(slm); }

    /**
     * Executes the instruction at the thread's ip and advances control
     * flow. Must not be called on a halted thread. The out-param form
     * lets issue loops reuse one StepResult buffer: every field it
     * reports is (re)written, but mem.addrs slots of inactive lanes
     * keep whatever the previous step left there.
     */
    void step(ThreadState &t, StepResult &result)
    {
        backend_->step(t, result);
    }

    StepResult
    step(ThreadState &t)
    {
        StepResult result;
        step(t, result);
        return result;
    }

    /**
     * Executes the whole mask-stable run at the thread's ip in one
     * dispatch (see ExecBackend::stepMacro); returns the instruction
     * count, or 0 if there is no run and the caller must step().
     * Only valid when no per-instruction StepResult is observed.
     */
    unsigned stepMacro(ThreadState &t) { return backend_->stepMacro(t); }

    /** Computes the execution mask the instruction at ip would get. */
    LaneMask
    execMaskFor(const isa::Instruction &in, const ThreadState &t) const
    {
        return backend_->execMaskFor(in, t);
    }

    const isa::Kernel &kernel() const { return backend_->kernel(); }

    /** The bind-time decoded form (operand spans, dependence lists). */
    const DecodedKernel &decoded() const { return backend_->decoded(); }

    /** Name of the backend actually executing ("scalar", "vector"). */
    const char *backendName() const { return backend_->name(); }

  private:
    std::unique_ptr<ExecBackend> backend_;
};

} // namespace iwc::func

#endif // IWC_FUNC_INTERP_HH
