/**
 * @file
 * Process-wide predecode cache. DecodedKernel is a pure function of
 * the kernel bytes, yet before this cache every ExecBackend (one per
 * EU per launch, six per launch, and one per functional run) redid the
 * full predecode pass. The cache keys on Kernel::digest() — the same
 * stable 64-bit digest the service result cache uses — and hands out
 * shared immutable entries, so SweepRunner jobs, iwc_simd daemon
 * workers, and multi-mode compare runs decode each distinct kernel
 * once per process. Entries own a copy of the kernel because
 * DecodedInstr::instr points into the source kernel's instruction
 * storage; tying both lifetimes into one shared entry keeps those
 * pointers valid for as long as any backend holds the entry.
 *
 * Hit/miss counters are process totals for observability (the daemon
 * stats frame, perf tooling, tests); they never feed back into
 * per-run LaunchStats, which must stay a pure function of the request.
 */

#ifndef IWC_FUNC_PREDECODE_CACHE_HH
#define IWC_FUNC_PREDECODE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "func/predecode.hh"
#include "isa/kernel.hh"

namespace iwc::func
{

/** One immutable shared predecode result (see file comment). */
struct PredecodedKernel
{
    explicit PredecodedKernel(const isa::Kernel &k)
        : kernel(k), decoded(kernel)
    {
    }

    isa::Kernel kernel; ///< owned copy the decoded form points into
    DecodedKernel decoded;
};

/** Process-wide digest-keyed cache of predecode results. */
class PredecodeCache
{
  public:
    /** The process-wide instance every backend shares. */
    static PredecodeCache &instance();

    /**
     * Returns the shared predecode entry for @p kernel, decoding it
     * on first sight. Thread-safe; the returned entry is immutable
     * and outlives the cache slot (callers hold shared ownership).
     */
    std::shared_ptr<const PredecodedKernel> get(const isa::Kernel &kernel);

    std::uint64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Number of currently cached kernels. */
    std::size_t size() const;

    /** Drops every entry (tests; in-use entries stay alive). */
    void clear();

  private:
    /**
     * Bound on resident entries: far above any real corpus (42
     * workloads x melded variants), so eviction only guards runaway
     * synthetic kernel generators. On overflow the map is dropped
     * wholesale — in-flight users keep their shared entries alive and
     * the hot set simply re-decodes once.
     */
    static constexpr std::size_t kMaxEntries = 1024;

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const PredecodedKernel>>
        entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace iwc::func

#endif // IWC_FUNC_PREDECODE_CACHE_HH
