#include "func/ops_alu.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "func/exec_ops.hh"

namespace iwc::func::ops
{

using isa::CondMod;
using isa::Opcode;

namespace
{

/**
 * Raw element bits of a float operand for move-class ops (Mov/Sel
 * between same-typed float operands). Source modifiers are sign-bit
 * operations here, never a NaN-quieting trip through the FPU, so the
 * result is a pure bit pattern both backends reproduce exactly.
 * Returns false when the operand needs the arithmetic path instead
 * (type conversion, or a NaN immediate).
 */
bool
rawMoveBits(const DecodedOperand &op, const ThreadState &t, unsigned ch,
            const DecodedOperand &dst, std::uint64_t &bits)
{
    if (op.isImm) {
        // Non-NaN immediates round-trip exactly through the f32/f64
        // value; NaN immediates take the (canonicalizing) value path.
        if (std::isnan(op.immF))
            return false;
        if (dst.type == isa::DataType::F)
            bits = std::bit_cast<std::uint32_t>(
                static_cast<float>(op.immF));
        else
            bits = std::bit_cast<std::uint64_t>(op.immF);
        return true;
    }
    if (op.type != dst.type)
        return false;
    bits = rawElement(op, t, ch);
    const std::uint64_t sign = op.elemBytes == 8
        ? 0x8000000000000000ull
        : 0x80000000ull;
    if (op.absolute)
        bits &= sign - 1;
    if (op.negate)
        bits ^= sign;
    return true;
}

/** True when every source of a Mov/Sel supports the raw bit path. */
bool
isRawMove(const DecodedInstr &d)
{
    if (d.dst.type != isa::DataType::F &&
        d.dst.type != isa::DataType::DF) {
        return false;
    }
    const auto srcOk = [&](const DecodedOperand &op) {
        return op.isImm ? !std::isnan(op.immF) : op.type == d.dst.type;
    };
    if (d.op == Opcode::Mov)
        return srcOk(d.src0);
    return srcOk(d.src0) && srcOk(d.src1);
}

} // namespace

void
scalarAlu(const DecodedInstr &d, ThreadState &t, LaneMask exec)
{
    if (d.cls == ExecClass::AluFloat) {
        // Mov and Sel between same-typed float operands move raw
        // bits: NaN payloads survive untouched, exactly like the
        // vectorized lane kernels (pinned ISA semantics).
        if ((d.op == Opcode::Mov || d.op == Opcode::Sel) &&
            isRawMove(d)) {
            for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
                const auto ch =
                    static_cast<unsigned>(std::countr_zero(rem));
                const bool take = d.op == Opcode::Mov ||
                    ((t.flag(d.condFlag) >> ch) & 1);
                std::uint64_t bits = 0;
                rawMoveBits(take ? d.src0 : d.src1, t, ch, d.dst,
                            bits);
                std::uint8_t *p = t.grfData() + d.dst.baseOff +
                    ch * d.dst.stride;
                if (d.dst.elemBytes == 8) {
                    std::memcpy(p, &bits, 8);
                } else {
                    const auto v = static_cast<std::uint32_t>(bits);
                    std::memcpy(p, &v, 4);
                }
            }
            return;
        }
        for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
            const auto ch =
                static_cast<unsigned>(std::countr_zero(rem));
            const double a = readF(d.src0, t, ch);
            double r = 0;
            switch (d.op) {
              case Opcode::Mov:  r = a; break;
              case Opcode::Add:  r = a + readF(d.src1, t, ch); break;
              case Opcode::Sub:  r = a - readF(d.src1, t, ch); break;
              case Opcode::Mul:  r = a * readF(d.src1, t, ch); break;
              case Opcode::Mad:
                r = a * readF(d.src1, t, ch) + readF(d.src2, t, ch);
                break;
              case Opcode::Min: {
                // Pinned select semantics (not libm fmin, whose tie
                // and NaN ordering varies by implementation): a wins
                // below b or when b is NaN; ties take b. A NaN result
                // (both operands NaN) canonicalizes below.
                const double b2 = readF(d.src1, t, ch);
                r = (a < b2 || std::isnan(b2)) ? a : b2;
                break;
              }
              case Opcode::Max: {
                const double b2 = readF(d.src1, t, ch);
                r = (a > b2 || std::isnan(b2)) ? a : b2;
                break;
              }
              case Opcode::Avg:
                r = (a + readF(d.src1, t, ch)) * 0.5;
                break;
              case Opcode::Sel: {
                const bool take = (t.flag(d.condFlag) >> ch) & 1;
                r = take ? a : readF(d.src1, t, ch);
                break;
              }
              case Opcode::Rndd: r = std::floor(a); break;
              case Opcode::Frc:  r = a - std::floor(a); break;
              case Opcode::Inv:  r = 1.0 / a; break;
              case Opcode::Div:  r = a / readF(d.src1, t, ch); break;
              case Opcode::Sqrt: r = std::sqrt(a); break;
              case Opcode::Rsqrt: r = 1.0 / std::sqrt(a); break;
              case Opcode::Sin:  r = std::sin(a); break;
              case Opcode::Cos:  r = std::cos(a); break;
              case Opcode::Exp2: r = std::exp2(a); break;
              case Opcode::Log2: r = std::log2(a); break;
              case Opcode::Pow:
                r = std::pow(a, readF(d.src1, t, ch));
                break;
              default:
                panic("float-domain execution of %s",
                      isa::opcodeName(d.op));
            }
            // NaN results canonicalize to the default quiet NaN:
            // payload propagation through arithmetic is not pinnable
            // (compilers may commute operands, and hardware NaN
            // selection rules differ), so no payload ever survives.
            if (std::isnan(r))
                r = std::numeric_limits<double>::quiet_NaN();
            // Single-precision ops round intermediates to float.
            if (d.dstIsF)
                r = static_cast<float>(r);
            writeF(d.dst, t, ch, r);
        }
        return;
    }

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        const std::int64_t a = readI(d.src0, t, ch);
        std::int64_t r = 0;
        switch (d.op) {
          case Opcode::Mov:  r = a; break;
          case Opcode::Add:  r = a + readI(d.src1, t, ch); break;
          case Opcode::Sub:  r = a - readI(d.src1, t, ch); break;
          case Opcode::Mul:  r = a * readI(d.src1, t, ch); break;
          case Opcode::Mad:
            r = a * readI(d.src1, t, ch) + readI(d.src2, t, ch);
            break;
          case Opcode::Min:
            r = std::min(a, readI(d.src1, t, ch));
            break;
          case Opcode::Max:
            r = std::max(a, readI(d.src1, t, ch));
            break;
          case Opcode::Avg:
            r = (a + readI(d.src1, t, ch) + 1) >> 1;
            break;
          case Opcode::And:
            r = a & readI(d.src1, t, ch);
            break;
          case Opcode::Or:
            r = a | readI(d.src1, t, ch);
            break;
          case Opcode::Xor:
            r = a ^ readI(d.src1, t, ch);
            break;
          case Opcode::Not:
            r = ~a;
            break;
          case Opcode::Shl:
            r = a << (readI(d.src1, t, ch) & 63);
            break;
          case Opcode::Shr:
            r = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a & 0xffffffffull) >>
                (readI(d.src1, t, ch) & 63));
            break;
          case Opcode::Asr:
            r = a >> (readI(d.src1, t, ch) & 63);
            break;
          case Opcode::Sel: {
            const bool take = (t.flag(d.condFlag) >> ch) & 1;
            r = take ? a : readI(d.src1, t, ch);
            break;
          }
          case Opcode::Div: {
            const std::int64_t b = readI(d.src1, t, ch);
            r = b == 0 ? 0 : a / b;
            break;
          }
          default:
            panic("int-domain execution of %s", isa::opcodeName(d.op));
        }
        // Float destinations convert; integers truncate on write.
        if (d.dstIsFloat)
            writeF(d.dst, t, ch, static_cast<double>(r));
        else
            writeI(d.dst, t, ch, r);
    }
}

void
scalarCmp(const DecodedInstr &d, ThreadState &t, LaneMask exec)
{
    const bool float_domain = d.cls == ExecClass::CmpFloat;
    LaneMask result = 0;

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        bool cond = false;
        if (float_domain) {
            const double a = readF(d.src0, t, ch);
            const double b = readF(d.src1, t, ch);
            switch (d.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        } else {
            const std::int64_t a = readI(d.src0, t, ch);
            const std::int64_t b = readI(d.src1, t, ch);
            switch (d.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        }
        if (cond)
            result |= LaneMask{1} << ch;
    }

    // Only enabled channels update their flag bit.
    const LaneMask old = t.flag(d.condFlag);
    t.setFlag(d.condFlag, (old & ~exec) | result);
}

} // namespace iwc::func::ops
