/**
 * @file
 * The send op family: gather/scatter and block memory messages, SLM
 * accesses and atomics, barriers and fences. Sends touch simulated
 * memory one channel at a time (the memory system models coalescing
 * separately), so every execution backend shares this one unit.
 */

#ifndef IWC_FUNC_OPS_SEND_HH
#define IWC_FUNC_OPS_SEND_HH

#include "func/memory.hh"
#include "func/predecode.hh"
#include "func/thread_state.hh"
#include "isa/kernel.hh"

namespace iwc::func
{
struct StepResult;
}

namespace iwc::func::ops
{

/**
 * Executes one Send instruction against global memory @p gmem and the
 * thread's SLM segment @p slm (may be null for kernels without SLM).
 * Fills @p result with the memory behaviour the timing model needs.
 * @p kernel provides diagnostics context only.
 */
void execSend(const DecodedInstr &d, ThreadState &t, LaneMask exec,
              StepResult &result, GlobalMemory &gmem, SlmMemory *slm,
              const isa::Kernel &kernel);

} // namespace iwc::func::ops

#endif // IWC_FUNC_OPS_SEND_HH
