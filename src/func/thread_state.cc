// ThreadState is header-only; this translation unit anchors the header
// into the library so every module sees identical inlined definitions.
#include "func/thread_state.hh"
