/**
 * @file
 * The structured-control-flow op family: If/Else/EndIf, loops with
 * Break/Cont, and Halt, operating on the thread's channel-mask stack.
 * Control flow is inherently scalar (it manipulates masks, not
 * channel data), so every execution backend shares this one unit.
 */

#ifndef IWC_FUNC_OPS_CONTROL_HH
#define IWC_FUNC_OPS_CONTROL_HH

#include <cstdint>

#include "func/predecode.hh"
#include "func/thread_state.hh"

namespace iwc::func::ops
{

/**
 * Executes one control-flow instruction (d.cls is one of If..Halt)
 * at @p ip and returns the next instruction pointer. @p pred are the
 * instruction's predication bits and @p exec its final execution
 * mask; Halt is reported by the caller via d.cls, not here.
 */
std::uint32_t stepControl(const DecodedInstr &d, ThreadState &t,
                          LaneMask pred, LaneMask exec,
                          std::uint32_t ip);

} // namespace iwc::func::ops

#endif // IWC_FUNC_OPS_CONTROL_HH
