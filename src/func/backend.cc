#include "func/exec_backend.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "func/backend_vector.hh"
#include "func/exec_ops.hh"
#include "func/ops_alu.hh"
#include "func/ops_control.hh"
#include "func/ops_send.hh"

namespace iwc::func
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Auto:   return "auto";
      case BackendKind::Scalar: return "scalar";
      case BackendKind::Vector: return "vector";
    }
    return "?";
}

bool
parseBackendKind(std::string_view name, BackendKind &out)
{
    if (name == "auto") {
        out = BackendKind::Auto;
    } else if (name == "scalar") {
        out = BackendKind::Scalar;
    } else if (name == "vector") {
        out = BackendKind::Vector;
    } else {
        return false;
    }
    return true;
}

BackendKind
resolveBackendKind(BackendKind requested)
{
    if (requested != BackendKind::Auto)
        return requested;
    if (const char *env = std::getenv("IWC_BACKEND")) {
        BackendKind kind;
        if (!parseBackendKind(env, kind))
            warn("ignoring unknown IWC_BACKEND value '%s'", env);
        else if (kind != BackendKind::Auto)
            return kind;
    }
    return BackendKind::Vector;
}

ExecBackend::ExecBackend(const isa::Kernel &kernel, GlobalMemory &gmem)
    : pre_(PredecodeCache::instance().get(kernel)), kernel_(pre_->kernel),
      decoded_(pre_->decoded), gmem_(gmem)
{
}

ExecBackend::~ExecBackend() = default;

LaneMask
ExecBackend::execMaskFor(const isa::Instruction &in,
                         const ThreadState &t) const
{
    return t.activeMask() &
        ops::predBits(in.predCtrl, in.predFlag, t) & in.widthMask();
}

void
ExecBackend::step(ThreadState &t, StepResult &result)
{
    panic_if(t.halted(), "stepping a halted thread");
    const std::uint32_t ip = t.ip();
    panic_if(ip >= kernel_.size(), "ip %u out of range", ip);
    const DecodedInstr &d = decoded_.at(ip);

    result.instr = d.instr;
    result.ip = ip;
    result.isBarrier = false;
    result.isHalt = false;
    result.hasMem = false;

    const LaneMask pred = ops::predBits(d.predCtrl, d.predFlag, t);
    const LaneMask exec = t.activeMask() & pred & d.widthMask;
    result.execMask = exec;

    std::uint32_t next_ip = ip + 1;

    switch (d.cls) {
      case ExecClass::AluFloat:
      case ExecClass::AluInt:
        execAlu(d, t, exec);
        break;
      case ExecClass::CmpFloat:
      case ExecClass::CmpInt:
        execCmp(d, t, exec);
        break;
      case ExecClass::Send:
        ops::execSend(d, t, exec, result, gmem_, slm_, kernel_);
        break;
      default:
        next_ip = ops::stepControl(d, t, pred, exec, ip);
        if (d.cls == ExecClass::Halt)
            result.isHalt = true;
        break;
    }

    t.setIp(next_ip);
}

unsigned
ExecBackend::stepMacro(ThreadState &t)
{
    panic_if(t.halted(), "stepping a halted thread");
    std::uint32_t ip = t.ip();
    panic_if(ip >= kernel_.size(), "ip %u out of range", ip);

    const unsigned len = decoded_.at(ip).macroLen;
    if (len <= 1)
        return 0;

    // No control flow in the run, so the active mask is loop
    // invariant; flags written by cmps inside the run are never read
    // for predication inside it (predecode guarantees this), and Sel
    // reads flags as data in program order, so live state is exact.
    for (unsigned i = 0; i < len; ++i, ++ip) {
        const DecodedInstr &d = decoded_.at(ip);
        const LaneMask pred =
            ops::predBits(d.predCtrl, d.predFlag, t);
        const LaneMask exec = t.activeMask() & pred & d.widthMask;
        if (d.cls == ExecClass::CmpFloat ||
            d.cls == ExecClass::CmpInt) {
            execCmp(d, t, exec);
        } else {
            execAlu(d, t, exec);
        }
    }
    t.setIp(ip);
    return len;
}

void
ScalarBackend::execAlu(const DecodedInstr &d, ThreadState &t,
                       LaneMask exec)
{
    ops::scalarAlu(d, t, exec);
}

void
ScalarBackend::execCmp(const DecodedInstr &d, ThreadState &t,
                       LaneMask exec)
{
    ops::scalarCmp(d, t, exec);
}

std::unique_ptr<ExecBackend>
makeBackend(BackendKind kind, const isa::Kernel &kernel,
            GlobalMemory &gmem)
{
    switch (resolveBackendKind(kind)) {
      case BackendKind::Vector:
        return std::make_unique<VectorBackend>(kernel, gmem);
      default:
        return std::make_unique<ScalarBackend>(kernel, gmem);
    }
}

} // namespace iwc::func
