/**
 * @file
 * Scalar (per-channel) execution of the ALU/mov/cmp op family. These
 * are the reference semantics of the ISA: the ScalarBackend runs them
 * for every instruction, and the VectorBackend falls back to them for
 * every op, operand shape, or element type its host-SIMD fast paths
 * do not cover — so the two backends are bit-identical by
 * construction everywhere the fast paths do not apply, and the fast
 * paths themselves are differentially tested against these units.
 */

#ifndef IWC_FUNC_OPS_ALU_HH
#define IWC_FUNC_OPS_ALU_HH

#include "func/predecode.hh"
#include "func/thread_state.hh"

namespace iwc::func::ops
{

/** Executes one AluFloat/AluInt instruction channel by channel. */
void scalarAlu(const DecodedInstr &d, ThreadState &t, LaneMask exec);

/** Executes one CmpFloat/CmpInt instruction channel by channel. */
void scalarCmp(const DecodedInstr &d, ThreadState &t, LaneMask exec);

} // namespace iwc::func::ops

#endif // IWC_FUNC_OPS_ALU_HH
