/**
 * @file
 * Host-SIMD vectorized execution backend. At bind time it analyzes
 * every ALU/cmp instruction and builds a per-ip plan: either a lane
 * kernel (vector_kernels.hh) plus operand preparation descriptors, or
 * a fallback to the shared scalar units. The plan only admits operand
 * mixes where 32-bit lane arithmetic (integers) or the
 * widen-to-double pipeline (floats) is provably bit-identical to the
 * scalar oracle; everything else — sends, control flow, rare ops,
 * narrow/wide types, sign-hazardous mixes, overlapping operand
 * regions — takes the oracle path, so the backend is always safe to
 * select.
 */

#ifndef IWC_FUNC_BACKEND_VECTOR_HH
#define IWC_FUNC_BACKEND_VECTOR_HH

#include <array>
#include <vector>

#include "func/exec_backend.hh"
#include "func/vector_kernels.hh"

namespace iwc::func
{

/** How one source operand is materialized for a lane kernel. */
struct VecSrc
{
    enum class Kind : std::uint8_t
    {
        Unused,   ///< kernel ignores this slot
        Direct,   ///< contiguous GRF span, used in place
        Copy,     ///< GRF span copied to scratch with bit modifiers
        SplatImm, ///< plan-time constant, pre-splatted in immPool
        SplatGrf, ///< GRF scalar broadcast, splatted at exec time
        FlagMask, ///< flag register expanded to a 0/~0 lane mask
    };

    Kind kind = Kind::Unused;
    std::uint32_t baseOff = 0;   ///< GRF byte offset / flag index
    std::uint32_t andMask = ~0u; ///< float |abs| modifier bit mask
    std::uint32_t xorMask = 0;   ///< float negate modifier bit mask
    std::uint16_t immSlot = 0;   ///< SplatImm: index into immPool
};

/** Bind-time plan for one instruction. */
struct VecPlan
{
    std::uint8_t alu = kVecNone;  ///< VecAluOp; kVecNone = fallback
    std::uint8_t cmp = 0xff;      ///< VecCmpOp; 0xff = fallback
    VecSrc a, b, c;
};

class VectorBackend final : public ExecBackend
{
  public:
    VectorBackend(const isa::Kernel &kernel, GlobalMemory &gmem);

    const char *name() const override { return "vector"; }

    /** Number of instructions with a lane-kernel fast path (stats). */
    unsigned vectorizedCount() const { return vectorized_; }

  protected:
    void execAlu(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) override;
    void execCmp(const DecodedInstr &d, ThreadState &t,
                 LaneMask exec) override;

  private:
    void buildPlan();
    const VecPlan &planFor(const DecodedInstr &d) const;
    const void *resolveSrc(const VecSrc &s, const ThreadState &t,
                           unsigned n, std::uint32_t *scratch);
    void buildWriteMask(LaneMask exec, unsigned n);

    const VecKernelTable *table_;
    std::vector<VecPlan> plan_;
    std::vector<std::array<std::uint32_t, kMaxSimdWidth>> immPool_;
    unsigned vectorized_ = 0;
    // Per-step staging buffers; a backend instance is used by one
    // simulation thread at a time (like the GRF it mutates).
    alignas(32) std::uint32_t scratch_[3][kMaxSimdWidth];
    alignas(32) std::uint32_t wrMask_[kMaxSimdWidth];
};

} // namespace iwc::func

#endif // IWC_FUNC_BACKEND_VECTOR_HH
