// Lane kernels compiled with the build's baseline target flags: the
// always-available table (NEON on aarch64, scalar loops elsewhere).
#define IWC_VEC_TABLE_FN hostVecKernels
#include "func/vector_kernels_impl.hh"
