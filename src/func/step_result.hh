/**
 * @file
 * What the caller learns from executing one instruction, independent
 * of which execution backend ran it. Split out of interp.hh so the op
 * family units and the backends can share it without pulling in the
 * interpreter facade.
 */

#ifndef IWC_FUNC_STEP_RESULT_HH
#define IWC_FUNC_STEP_RESULT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"

namespace iwc::func
{

/** Memory behaviour of one executed Send, for the timing model. */
struct MemAccess
{
    isa::SendOp op = isa::SendOp::Fence;
    unsigned elemBytes = 4;
    LaneMask mask = 0;             ///< channels that accessed memory
    std::array<Addr, kMaxSimdWidth> addrs{}; ///< per-channel byte addrs
    bool isBlock = false;
    Addr blockAddr = 0;
    unsigned blockBytes = 0;
};

/** Everything the caller learns from executing one instruction. */
struct StepResult
{
    const isa::Instruction *instr = nullptr;
    std::uint32_t ip = 0;      ///< ip the instruction was fetched from
    LaneMask execMask = 0;     ///< final computed execution mask
    bool isBarrier = false;    ///< thread must wait at a WG barrier
    bool isHalt = false;       ///< thread terminated
    bool hasMem = false;       ///< mem contains a valid access
    MemAccess mem;
};

} // namespace iwc::func

#endif // IWC_FUNC_STEP_RESULT_HH
