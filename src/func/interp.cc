#include "func/interp.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::func
{

using isa::CondMod;
using isa::DataType;
using isa::Instruction;
using isa::Opcode;
using isa::PredCtrl;
using isa::SendOp;

Interpreter::Interpreter(const isa::Kernel &kernel, GlobalMemory &gmem)
    : kernel_(kernel), decoded_(kernel), gmem_(gmem)
{
}

namespace
{

/**
 * Element accessors over predecoded operands. Offsets and strides were
 * resolved and bounds-checked at decode time, so these run straight
 * memcpys (which compile to single loads/stores) on the GRF backing
 * store, with one switch on the element type instead of the old
 * size-then-type cascade.
 */

/** Raw bits of one element of a GRF or immediate operand. */
std::uint64_t
rawElement(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immBits;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.elemBytes) {
      case 2: {
        std::uint16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case 4: {
        std::uint32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      default: {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
    }
}

/** Writes raw bits to one element of a GRF operand (load data path). */
void
writeRawElement(const DecodedOperand &op, ThreadState &t, unsigned ch,
                std::uint64_t bits, unsigned bytes)
{
    std::uint8_t *p = t.grfData() + op.baseOff + ch * bytes;
    switch (bytes) {
      case 2: {
        const auto v = static_cast<std::uint16_t>(bits);
        std::memcpy(p, &v, 2);
        break;
      }
      case 4: {
        const auto v = static_cast<std::uint32_t>(bits);
        std::memcpy(p, &v, 4);
        break;
      }
      default:
        std::memcpy(p, &bits, 8);
        break;
    }
}

double
readF(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immF;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    double v = 0;
    switch (op.type) {
      case DataType::F: {
        float f;
        std::memcpy(&f, p, 4);
        v = f;
        break;
      }
      case DataType::DF:
        std::memcpy(&v, p, 8);
        break;
      case DataType::UW: {
        std::uint16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case DataType::W: {
        std::int16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case DataType::UD: {
        std::uint32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case DataType::D: {
        std::int32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case DataType::UQ: {
        std::uint64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
      case DataType::Q: {
        std::int64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
    }
    if (op.absolute)
        v = std::fabs(v);
    if (op.negate)
        v = -v;
    return v;
}

std::int64_t
readI(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immI;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    std::int64_t v = 0;
    switch (op.type) {
      case DataType::F: {
        float f;
        std::memcpy(&f, p, 4);
        v = static_cast<std::int64_t>(f);
        break;
      }
      case DataType::DF: {
        double d;
        std::memcpy(&d, p, 8);
        v = static_cast<std::int64_t>(d);
        break;
      }
      case DataType::UW: {
        std::uint16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case DataType::W: {
        std::int16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case DataType::UD: {
        std::uint32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case DataType::D: {
        std::int32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case DataType::UQ:
      case DataType::Q: {
        std::uint64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<std::int64_t>(x);
        break;
      }
    }
    if (op.absolute)
        v = v < 0 ? -v : v;
    if (op.negate)
        v = -v;
    return v;
}

void writeI(const DecodedOperand &op, ThreadState &t, unsigned ch,
            std::int64_t v);

void
writeF(const DecodedOperand &op, ThreadState &t, unsigned ch, double v)
{
    if (op.isNull)
        return;
    std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.type) {
      case DataType::F: {
        const auto f = static_cast<float>(v);
        std::memcpy(p, &f, 4);
        break;
      }
      case DataType::DF:
        std::memcpy(p, &v, 8);
        break;
      default:
        // Float-to-integer conversion truncates toward zero.
        writeI(op, t, ch, static_cast<std::int64_t>(v));
        break;
    }
}

void
writeI(const DecodedOperand &op, ThreadState &t, unsigned ch,
       std::int64_t v)
{
    if (op.isNull)
        return;
    std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.type) {
      case DataType::F: {
        const auto f = static_cast<float>(v);
        std::memcpy(p, &f, 4);
        break;
      }
      case DataType::DF: {
        const auto d = static_cast<double>(v);
        std::memcpy(p, &d, 8);
        break;
      }
      case DataType::UW:
      case DataType::W: {
        const auto x = static_cast<std::uint16_t>(v);
        std::memcpy(p, &x, 2);
        break;
      }
      case DataType::UD:
      case DataType::D: {
        const auto x = static_cast<std::uint32_t>(v);
        std::memcpy(p, &x, 4);
        break;
      }
      case DataType::UQ:
      case DataType::Q: {
        const auto x = static_cast<std::uint64_t>(v);
        std::memcpy(p, &x, 8);
        break;
      }
    }
}

LaneMask
predBits(PredCtrl ctrl, unsigned flag, const ThreadState &t)
{
    switch (ctrl) {
      case PredCtrl::None:
        return ~LaneMask{0};
      case PredCtrl::Normal:
        return t.flag(flag);
      case PredCtrl::Inverted:
        return ~t.flag(flag);
    }
    return ~LaneMask{0};
}

} // namespace

LaneMask
Interpreter::execMaskFor(const Instruction &in, const ThreadState &t) const
{
    return t.activeMask() & predBits(in.predCtrl, in.predFlag, t) &
        in.widthMask();
}

void
Interpreter::execAlu(const DecodedInstr &d, ThreadState &t,
                     LaneMask exec) const
{
    if (d.cls == ExecClass::AluFloat) {
        for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
            const auto ch =
                static_cast<unsigned>(std::countr_zero(rem));
            const double a = readF(d.src0, t, ch);
            double r = 0;
            switch (d.op) {
              case Opcode::Mov:  r = a; break;
              case Opcode::Add:  r = a + readF(d.src1, t, ch); break;
              case Opcode::Sub:  r = a - readF(d.src1, t, ch); break;
              case Opcode::Mul:  r = a * readF(d.src1, t, ch); break;
              case Opcode::Mad:
                r = a * readF(d.src1, t, ch) + readF(d.src2, t, ch);
                break;
              case Opcode::Min:
                r = std::fmin(a, readF(d.src1, t, ch));
                break;
              case Opcode::Max:
                r = std::fmax(a, readF(d.src1, t, ch));
                break;
              case Opcode::Avg:
                r = (a + readF(d.src1, t, ch)) * 0.5;
                break;
              case Opcode::Sel: {
                const bool take = (t.flag(d.condFlag) >> ch) & 1;
                r = take ? a : readF(d.src1, t, ch);
                break;
              }
              case Opcode::Rndd: r = std::floor(a); break;
              case Opcode::Frc:  r = a - std::floor(a); break;
              case Opcode::Inv:  r = 1.0 / a; break;
              case Opcode::Div:  r = a / readF(d.src1, t, ch); break;
              case Opcode::Sqrt: r = std::sqrt(a); break;
              case Opcode::Rsqrt: r = 1.0 / std::sqrt(a); break;
              case Opcode::Sin:  r = std::sin(a); break;
              case Opcode::Cos:  r = std::cos(a); break;
              case Opcode::Exp2: r = std::exp2(a); break;
              case Opcode::Log2: r = std::log2(a); break;
              case Opcode::Pow:
                r = std::pow(a, readF(d.src1, t, ch));
                break;
              default:
                panic("float-domain execution of %s",
                      isa::opcodeName(d.op));
            }
            // Single-precision ops round intermediates to float.
            if (d.dstIsF)
                r = static_cast<float>(r);
            writeF(d.dst, t, ch, r);
        }
        return;
    }

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        const std::int64_t a = readI(d.src0, t, ch);
        std::int64_t r = 0;
        switch (d.op) {
          case Opcode::Mov:  r = a; break;
          case Opcode::Add:  r = a + readI(d.src1, t, ch); break;
          case Opcode::Sub:  r = a - readI(d.src1, t, ch); break;
          case Opcode::Mul:  r = a * readI(d.src1, t, ch); break;
          case Opcode::Mad:
            r = a * readI(d.src1, t, ch) + readI(d.src2, t, ch);
            break;
          case Opcode::Min:
            r = std::min(a, readI(d.src1, t, ch));
            break;
          case Opcode::Max:
            r = std::max(a, readI(d.src1, t, ch));
            break;
          case Opcode::Avg:
            r = (a + readI(d.src1, t, ch) + 1) >> 1;
            break;
          case Opcode::And:
            r = a & readI(d.src1, t, ch);
            break;
          case Opcode::Or:
            r = a | readI(d.src1, t, ch);
            break;
          case Opcode::Xor:
            r = a ^ readI(d.src1, t, ch);
            break;
          case Opcode::Not:
            r = ~a;
            break;
          case Opcode::Shl:
            r = a << (readI(d.src1, t, ch) & 63);
            break;
          case Opcode::Shr:
            r = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a & 0xffffffffull) >>
                (readI(d.src1, t, ch) & 63));
            break;
          case Opcode::Asr:
            r = a >> (readI(d.src1, t, ch) & 63);
            break;
          case Opcode::Sel: {
            const bool take = (t.flag(d.condFlag) >> ch) & 1;
            r = take ? a : readI(d.src1, t, ch);
            break;
          }
          case Opcode::Div: {
            const std::int64_t b = readI(d.src1, t, ch);
            r = b == 0 ? 0 : a / b;
            break;
          }
          default:
            panic("int-domain execution of %s", isa::opcodeName(d.op));
        }
        // Float destinations convert; integers truncate on write.
        if (d.dstIsFloat)
            writeF(d.dst, t, ch, static_cast<double>(r));
        else
            writeI(d.dst, t, ch, r);
    }
}

void
Interpreter::execCmp(const DecodedInstr &d, ThreadState &t,
                     LaneMask exec) const
{
    const bool float_domain = d.cls == ExecClass::CmpFloat;
    LaneMask result = 0;

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        bool cond = false;
        if (float_domain) {
            const double a = readF(d.src0, t, ch);
            const double b = readF(d.src1, t, ch);
            switch (d.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        } else {
            const std::int64_t a = readI(d.src0, t, ch);
            const std::int64_t b = readI(d.src1, t, ch);
            switch (d.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        }
        if (cond)
            result |= LaneMask{1} << ch;
    }

    // Only enabled channels update their flag bit.
    const LaneMask old = t.flag(d.condFlag);
    t.setFlag(d.condFlag, (old & ~exec) | result);
}

void
Interpreter::execSend(const DecodedInstr &d, ThreadState &t,
                      LaneMask exec, StepResult &result)
{
    const unsigned elem_bytes = d.sendElemBytes;

    switch (d.sendOp) {
      case SendOp::Barrier:
        result.isBarrier = true;
        return;
      case SendOp::Fence:
        return; // functional memory is always coherent
      default:
        break;
    }

    MemAccess &mem = result.mem;
    result.hasMem = true;
    mem.op = d.sendOp;
    mem.elemBytes = elem_bytes;
    mem.mask = exec;

    if (d.sendOp == SendOp::BlockLoad || d.sendOp == SendOp::BlockStore) {
        const Instruction &in = *d.instr;
        mem.isBlock = true;
        mem.blockAddr = static_cast<std::uint32_t>(readI(d.src0, t, 0));
        mem.blockBytes = in.send.numRegs * kGrfRegBytes;
        std::uint8_t buf[kGrfRegBytes * 8];
        panic_if(mem.blockBytes > sizeof(buf), "block message too large");
        if (d.sendOp == SendOp::BlockLoad) {
            gmem_.read(mem.blockAddr, buf, mem.blockBytes);
            t.writeGrfBytes(in.dst.reg * kGrfRegBytes, buf,
                            mem.blockBytes);
        } else {
            t.readGrfBytes(in.src1.reg * kGrfRegBytes, buf,
                           mem.blockBytes);
            gmem_.write(mem.blockAddr, buf, mem.blockBytes);
        }
        return;
    }
    mem.isBlock = false;

    const bool is_slm = isa::isSlmSend(d.sendOp);
    panic_if(is_slm && slm_ == nullptr,
             "kernel %s uses SLM but none is bound",
             kernel_.name().c_str());

    for (LaneMask rem = exec; rem != 0; rem &= rem - 1) {
        const auto ch = static_cast<unsigned>(std::countr_zero(rem));
        const Addr addr =
            static_cast<std::uint32_t>(readI(d.src0, t, ch));
        mem.addrs[ch] = addr;

        std::uint64_t bits = 0;
        switch (d.sendOp) {
          case SendOp::GatherLoad:
            gmem_.read(addr, &bits, elem_bytes);
            writeRawElement(d.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::ScatterStore:
            bits = rawElement(d.src1, t, ch);
            gmem_.write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmGatherLoad:
            slm_->read(addr, &bits, elem_bytes);
            writeRawElement(d.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::SlmScatterStore:
            bits = rawElement(d.src1, t, ch);
            slm_->write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmAtomicAdd: {
            const auto old = slm_->load<std::int32_t>(addr);
            const auto addend =
                static_cast<std::int32_t>(readI(d.src1, t, ch));
            slm_->store<std::int32_t>(addr, old + addend);
            writeI(d.dst, t, ch, old);
            break;
          }
          default:
            panic("unhandled send op");
        }
    }
}

void
Interpreter::step(ThreadState &t, StepResult &result)
{
    panic_if(t.halted(), "stepping a halted thread");
    const std::uint32_t ip = t.ip();
    panic_if(ip >= kernel_.size(), "ip %u out of range", ip);
    const DecodedInstr &d = decoded_.at(ip);

    result.instr = d.instr;
    result.ip = ip;
    result.isBarrier = false;
    result.isHalt = false;
    result.hasMem = false;

    const LaneMask pred = predBits(d.predCtrl, d.predFlag, t);
    const LaneMask exec = t.activeMask() & pred & d.widthMask;
    result.execMask = exec;

    std::uint32_t next_ip = ip + 1;

    switch (d.cls) {
      case ExecClass::If: {
        const LaneMask cur = t.activeMask();
        const LaneMask taken = cur & pred & d.widthMask;
        CfFrame frame;
        frame.kind = CfFrame::Kind::If;
        frame.savedMask = cur;
        frame.elseMask = cur & ~taken;
        t.pushFrame(frame);
        t.setActiveMask(taken);
        if (taken == 0)
            next_ip = d.target0;
        break;
      }
      case ExecClass::Else: {
        CfFrame &frame = t.topFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "else without if");
        t.setActiveMask(frame.elseMask);
        frame.elseMask = 0;
        if (t.activeMask() == 0)
            next_ip = d.target0;
        break;
      }
      case ExecClass::EndIf: {
        const CfFrame frame = t.popFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "endif without if");
        // Channels parked by break/cont of the enclosing loop while
        // inside this if must stay parked.
        t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        break;
      }
      case ExecClass::LoopBegin: {
        CfFrame frame;
        frame.kind = CfFrame::Kind::Loop;
        frame.savedMask = t.activeMask();
        t.pushFrame(frame);
        break;
      }
      case ExecClass::Break: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "break outside loop");
        loop->breakMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        // Jump to the loop end only when structurally safe: every
        // channel gone and no intervening if frames to unwind.
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = d.target0;
        break;
      }
      case ExecClass::Cont: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "cont outside loop");
        loop->contMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = d.target0;
        break;
      }
      case ExecClass::LoopEnd: {
        CfFrame &loop = t.topFrame();
        panic_if(loop.kind != CfFrame::Kind::Loop, "while without loop");
        // Channels parked by cont rejoin for the trip test.
        const LaneMask candidates = t.activeMask() | loop.contMask;
        loop.contMask = 0;
        const LaneMask continuing = candidates & pred & d.widthMask;
        if (continuing != 0) {
            t.setActiveMask(continuing);
            next_ip = d.target0;
        } else {
            const CfFrame frame = t.popFrame();
            t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        }
        break;
      }
      case ExecClass::Halt:
        t.halt();
        result.isHalt = true;
        break;
      case ExecClass::CmpFloat:
      case ExecClass::CmpInt:
        execCmp(d, t, exec);
        break;
      case ExecClass::Send:
        execSend(d, t, exec, result);
        break;
      case ExecClass::AluFloat:
      case ExecClass::AluInt:
        execAlu(d, t, exec);
        break;
    }

    t.setIp(next_ip);
}

} // namespace iwc::func
