#include "func/interp.hh"

#include <bit>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::func
{

using isa::CondMod;
using isa::DataType;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::PredCtrl;
using isa::RegFile;
using isa::SendOp;

Interpreter::Interpreter(const isa::Kernel &kernel, GlobalMemory &gmem)
    : kernel_(kernel), gmem_(gmem)
{
}

namespace
{

/** Raw bits of one element of a GRF or immediate operand. */
std::uint64_t
rawElement(const Operand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm())
        return op.imm;
    const unsigned elem = op.scalar ? 0 : ch;
    const unsigned off =
        op.grfByteOffset() + elem * isa::dataTypeSize(op.type);
    switch (isa::dataTypeSize(op.type)) {
      case 2:
        return t.readGrf<std::uint16_t>(off);
      case 4:
        return t.readGrf<std::uint32_t>(off);
      case 8:
        return t.readGrf<std::uint64_t>(off);
    }
    panic("bad operand element size");
}

/** Writes raw bits to one element of a GRF operand (load data path). */
void
writeRawElement(const Operand &op, ThreadState &t, unsigned ch,
                std::uint64_t bits, unsigned bytes)
{
    panic_if(isa::dataTypeSize(op.type) != bytes,
             "load destination type width mismatch");
    const unsigned off = op.grfByteOffset() + ch * bytes;
    switch (bytes) {
      case 2:
        t.writeGrf(off, static_cast<std::uint16_t>(bits));
        break;
      case 4:
        t.writeGrf(off, static_cast<std::uint32_t>(bits));
        break;
      case 8:
        t.writeGrf(off, bits);
        break;
      default:
        panic("bad load element size");
    }
}

} // namespace

double
Interpreter::readF(const Operand &op, const ThreadState &t,
                   unsigned ch) const
{
    const std::uint64_t bits = rawElement(op, t, ch);
    double v = 0;
    switch (op.type) {
      case DataType::F:
        v = std::bit_cast<float>(static_cast<std::uint32_t>(bits));
        break;
      case DataType::DF:
        v = std::bit_cast<double>(bits);
        break;
      case DataType::UW:
        v = static_cast<double>(static_cast<std::uint16_t>(bits));
        break;
      case DataType::W:
        v = static_cast<double>(static_cast<std::int16_t>(bits));
        break;
      case DataType::UD:
        v = static_cast<double>(static_cast<std::uint32_t>(bits));
        break;
      case DataType::D:
        v = static_cast<double>(static_cast<std::int32_t>(bits));
        break;
      case DataType::UQ:
        v = static_cast<double>(bits);
        break;
      case DataType::Q:
        v = static_cast<double>(static_cast<std::int64_t>(bits));
        break;
    }
    if (op.absolute)
        v = std::fabs(v);
    if (op.negate)
        v = -v;
    return v;
}

std::int64_t
Interpreter::readI(const Operand &op, const ThreadState &t,
                   unsigned ch) const
{
    const std::uint64_t bits = rawElement(op, t, ch);
    std::int64_t v = 0;
    switch (op.type) {
      case DataType::F:
        v = static_cast<std::int64_t>(
            std::bit_cast<float>(static_cast<std::uint32_t>(bits)));
        break;
      case DataType::DF:
        v = static_cast<std::int64_t>(std::bit_cast<double>(bits));
        break;
      case DataType::UW:
        v = static_cast<std::uint16_t>(bits);
        break;
      case DataType::W:
        v = static_cast<std::int16_t>(bits);
        break;
      case DataType::UD:
        v = static_cast<std::uint32_t>(bits);
        break;
      case DataType::D:
        v = static_cast<std::int32_t>(bits);
        break;
      case DataType::UQ:
      case DataType::Q:
        v = static_cast<std::int64_t>(bits);
        break;
    }
    if (op.absolute)
        v = v < 0 ? -v : v;
    if (op.negate)
        v = -v;
    return v;
}

void
Interpreter::writeF(const Operand &op, ThreadState &t, unsigned ch,
                    double v) const
{
    if (op.isNull())
        return;
    const unsigned elem = op.scalar ? 0 : ch;
    const unsigned off =
        op.grfByteOffset() + elem * isa::dataTypeSize(op.type);
    switch (op.type) {
      case DataType::F:
        t.writeGrf(off, static_cast<float>(v));
        break;
      case DataType::DF:
        t.writeGrf(off, v);
        break;
      default:
        // Float-to-integer conversion truncates toward zero.
        writeI(op, t, ch, static_cast<std::int64_t>(v));
        break;
    }
}

void
Interpreter::writeI(const Operand &op, ThreadState &t, unsigned ch,
                    std::int64_t v) const
{
    if (op.isNull())
        return;
    const unsigned elem = op.scalar ? 0 : ch;
    const unsigned off =
        op.grfByteOffset() + elem * isa::dataTypeSize(op.type);
    switch (op.type) {
      case DataType::F:
        t.writeGrf(off, static_cast<float>(v));
        break;
      case DataType::DF:
        t.writeGrf(off, static_cast<double>(v));
        break;
      case DataType::UW:
      case DataType::W:
        t.writeGrf(off, static_cast<std::uint16_t>(v));
        break;
      case DataType::UD:
      case DataType::D:
        t.writeGrf(off, static_cast<std::uint32_t>(v));
        break;
      case DataType::UQ:
      case DataType::Q:
        t.writeGrf(off, static_cast<std::uint64_t>(v));
        break;
    }
}

namespace
{

LaneMask
predBits(const Instruction &in, const ThreadState &t)
{
    switch (in.predCtrl) {
      case PredCtrl::None:
        return ~LaneMask{0};
      case PredCtrl::Normal:
        return t.flag(in.predFlag);
      case PredCtrl::Inverted:
        return ~t.flag(in.predFlag);
    }
    return ~LaneMask{0};
}

} // namespace

LaneMask
Interpreter::execMaskFor(const Instruction &in, const ThreadState &t) const
{
    return t.activeMask() & predBits(in, t) & in.widthMask();
}

void
Interpreter::execAlu(const Instruction &in, ThreadState &t,
                     LaneMask exec) const
{
    const bool float_domain = isa::isFloatType(in.src0.type);

    for (unsigned ch = 0; ch < in.simdWidth; ++ch) {
        if (!(exec & (LaneMask{1} << ch)))
            continue;

        if (float_domain) {
            const double a = readF(in.src0, t, ch);
            double r = 0;
            switch (in.op) {
              case Opcode::Mov:  r = a; break;
              case Opcode::Add:  r = a + readF(in.src1, t, ch); break;
              case Opcode::Sub:  r = a - readF(in.src1, t, ch); break;
              case Opcode::Mul:  r = a * readF(in.src1, t, ch); break;
              case Opcode::Mad:
                r = a * readF(in.src1, t, ch) + readF(in.src2, t, ch);
                break;
              case Opcode::Min:
                r = std::fmin(a, readF(in.src1, t, ch));
                break;
              case Opcode::Max:
                r = std::fmax(a, readF(in.src1, t, ch));
                break;
              case Opcode::Avg:
                r = (a + readF(in.src1, t, ch)) * 0.5;
                break;
              case Opcode::Sel: {
                const bool take =
                    (t.flag(in.condFlag) >> ch) & 1;
                r = take ? a : readF(in.src1, t, ch);
                break;
              }
              case Opcode::Rndd: r = std::floor(a); break;
              case Opcode::Frc:  r = a - std::floor(a); break;
              case Opcode::Inv:  r = 1.0 / a; break;
              case Opcode::Div:  r = a / readF(in.src1, t, ch); break;
              case Opcode::Sqrt: r = std::sqrt(a); break;
              case Opcode::Rsqrt: r = 1.0 / std::sqrt(a); break;
              case Opcode::Sin:  r = std::sin(a); break;
              case Opcode::Cos:  r = std::cos(a); break;
              case Opcode::Exp2: r = std::exp2(a); break;
              case Opcode::Log2: r = std::log2(a); break;
              case Opcode::Pow:
                r = std::pow(a, readF(in.src1, t, ch));
                break;
              default:
                panic("float-domain execution of %s",
                      isa::opcodeName(in.op));
            }
            // Single-precision ops round intermediates to float.
            if (in.dst.type == DataType::F)
                r = static_cast<float>(r);
            writeF(in.dst, t, ch, r);
        } else {
            const std::int64_t a = readI(in.src0, t, ch);
            std::int64_t r = 0;
            switch (in.op) {
              case Opcode::Mov:  r = a; break;
              case Opcode::Add:  r = a + readI(in.src1, t, ch); break;
              case Opcode::Sub:  r = a - readI(in.src1, t, ch); break;
              case Opcode::Mul:  r = a * readI(in.src1, t, ch); break;
              case Opcode::Mad:
                r = a * readI(in.src1, t, ch) + readI(in.src2, t, ch);
                break;
              case Opcode::Min:
                r = std::min(a, readI(in.src1, t, ch));
                break;
              case Opcode::Max:
                r = std::max(a, readI(in.src1, t, ch));
                break;
              case Opcode::Avg:
                r = (a + readI(in.src1, t, ch) + 1) >> 1;
                break;
              case Opcode::And:
                r = a & readI(in.src1, t, ch);
                break;
              case Opcode::Or:
                r = a | readI(in.src1, t, ch);
                break;
              case Opcode::Xor:
                r = a ^ readI(in.src1, t, ch);
                break;
              case Opcode::Not:
                r = ~a;
                break;
              case Opcode::Shl:
                r = a << (readI(in.src1, t, ch) & 63);
                break;
              case Opcode::Shr:
                r = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(
                        a & 0xffffffffull) >>
                    (readI(in.src1, t, ch) & 63));
                break;
              case Opcode::Asr:
                r = a >> (readI(in.src1, t, ch) & 63);
                break;
              case Opcode::Sel: {
                const bool take = (t.flag(in.condFlag) >> ch) & 1;
                r = take ? a : readI(in.src1, t, ch);
                break;
              }
              case Opcode::Div: {
                const std::int64_t b = readI(in.src1, t, ch);
                r = b == 0 ? 0 : a / b;
                break;
              }
              default:
                panic("int-domain execution of %s",
                      isa::opcodeName(in.op));
            }
            // Float destinations convert; integers truncate on write.
            if (isa::isFloatType(in.dst.type))
                writeF(in.dst, t, ch, static_cast<double>(r));
            else
                writeI(in.dst, t, ch, r);
        }
    }
}

void
Interpreter::execCmp(const Instruction &in, ThreadState &t,
                     LaneMask exec) const
{
    const bool float_domain = isa::isFloatType(in.src0.type);
    LaneMask result = 0;

    for (unsigned ch = 0; ch < in.simdWidth; ++ch) {
        if (!(exec & (LaneMask{1} << ch)))
            continue;
        bool cond = false;
        if (float_domain) {
            const double a = readF(in.src0, t, ch);
            const double b = readF(in.src1, t, ch);
            switch (in.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        } else {
            const std::int64_t a = readI(in.src0, t, ch);
            const std::int64_t b = readI(in.src1, t, ch);
            switch (in.condMod) {
              case CondMod::Eq: cond = a == b; break;
              case CondMod::Ne: cond = a != b; break;
              case CondMod::Lt: cond = a < b; break;
              case CondMod::Le: cond = a <= b; break;
              case CondMod::Gt: cond = a > b; break;
              case CondMod::Ge: cond = a >= b; break;
              case CondMod::None: panic("cmp without condition");
            }
        }
        if (cond)
            result |= LaneMask{1} << ch;
    }

    // Only enabled channels update their flag bit.
    const LaneMask old = t.flag(in.condFlag);
    t.setFlag(in.condFlag, (old & ~exec) | result);
}

void
Interpreter::execSend(const Instruction &in, ThreadState &t,
                      LaneMask exec, StepResult &result)
{
    const isa::SendDesc &send = in.send;
    const unsigned elem_bytes = isa::dataTypeSize(send.type);

    switch (send.op) {
      case SendOp::Barrier:
        result.isBarrier = true;
        return;
      case SendOp::Fence:
        return; // functional memory is always coherent
      default:
        break;
    }

    MemAccess &mem = result.mem;
    result.hasMem = true;
    mem.op = send.op;
    mem.elemBytes = elem_bytes;
    mem.mask = exec;

    if (send.op == SendOp::BlockLoad || send.op == SendOp::BlockStore) {
        mem.isBlock = true;
        mem.blockAddr = static_cast<std::uint32_t>(readI(in.src0, t, 0));
        mem.blockBytes = send.numRegs * kGrfRegBytes;
        std::uint8_t buf[kGrfRegBytes * 8];
        panic_if(mem.blockBytes > sizeof(buf), "block message too large");
        if (send.op == SendOp::BlockLoad) {
            gmem_.read(mem.blockAddr, buf, mem.blockBytes);
            t.writeGrfBytes(in.dst.reg * kGrfRegBytes, buf,
                            mem.blockBytes);
        } else {
            t.readGrfBytes(in.src1.reg * kGrfRegBytes, buf,
                           mem.blockBytes);
            gmem_.write(mem.blockAddr, buf, mem.blockBytes);
        }
        return;
    }

    const bool is_slm = isa::isSlmSend(send.op);
    panic_if(is_slm && slm_ == nullptr,
             "kernel %s uses SLM but none is bound",
             kernel_.name().c_str());

    for (unsigned ch = 0; ch < in.simdWidth; ++ch) {
        if (!(exec & (LaneMask{1} << ch)))
            continue;
        const Addr addr =
            static_cast<std::uint32_t>(readI(in.src0, t, ch));
        mem.addrs[ch] = addr;

        std::uint64_t bits = 0;
        switch (send.op) {
          case SendOp::GatherLoad:
            gmem_.read(addr, &bits, elem_bytes);
            writeRawElement(in.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::ScatterStore:
            bits = rawElement(in.src1, t, ch);
            gmem_.write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmGatherLoad:
            slm_->read(addr, &bits, elem_bytes);
            writeRawElement(in.dst, t, ch, bits, elem_bytes);
            break;
          case SendOp::SlmScatterStore:
            bits = rawElement(in.src1, t, ch);
            slm_->write(addr, &bits, elem_bytes);
            break;
          case SendOp::SlmAtomicAdd: {
            const auto old = slm_->load<std::int32_t>(addr);
            const auto addend =
                static_cast<std::int32_t>(readI(in.src1, t, ch));
            slm_->store<std::int32_t>(addr, old + addend);
            writeI(in.dst, t, ch, old);
            break;
          }
          default:
            panic("unhandled send op");
        }
    }
}

StepResult
Interpreter::step(ThreadState &t)
{
    panic_if(t.halted(), "stepping a halted thread");
    const std::uint32_t ip = t.ip();
    panic_if(ip >= kernel_.size(), "ip %u out of range", ip);
    const Instruction &in = kernel_.instr(ip);

    StepResult result;
    result.instr = &in;
    result.ip = ip;

    const LaneMask pred = predBits(in, t);
    const LaneMask exec = t.activeMask() & pred & in.widthMask();
    result.execMask = exec;

    std::uint32_t next_ip = ip + 1;

    switch (in.op) {
      case Opcode::If: {
        const LaneMask cur = t.activeMask();
        const LaneMask taken = cur & pred & in.widthMask();
        CfFrame frame;
        frame.kind = CfFrame::Kind::If;
        frame.savedMask = cur;
        frame.elseMask = cur & ~taken;
        t.pushFrame(frame);
        t.setActiveMask(taken);
        if (taken == 0)
            next_ip = static_cast<std::uint32_t>(in.target0);
        break;
      }
      case Opcode::Else: {
        CfFrame &frame = t.topFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "else without if");
        t.setActiveMask(frame.elseMask);
        frame.elseMask = 0;
        if (t.activeMask() == 0)
            next_ip = static_cast<std::uint32_t>(in.target0);
        break;
      }
      case Opcode::EndIf: {
        const CfFrame frame = t.popFrame();
        panic_if(frame.kind != CfFrame::Kind::If, "endif without if");
        // Channels parked by break/cont of the enclosing loop while
        // inside this if must stay parked.
        t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        break;
      }
      case Opcode::LoopBegin: {
        CfFrame frame;
        frame.kind = CfFrame::Kind::Loop;
        frame.savedMask = t.activeMask();
        t.pushFrame(frame);
        break;
      }
      case Opcode::Break: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "break outside loop");
        loop->breakMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        // Jump to the loop end only when structurally safe: every
        // channel gone and no intervening if frames to unwind.
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = static_cast<std::uint32_t>(in.target0);
        break;
      }
      case Opcode::Cont: {
        CfFrame *loop = t.innermostLoop();
        panic_if(loop == nullptr, "cont outside loop");
        loop->contMask |= exec;
        t.setActiveMask(t.activeMask() & ~exec);
        if (t.activeMask() == 0 && &t.topFrame() == loop)
            next_ip = static_cast<std::uint32_t>(in.target0);
        break;
      }
      case Opcode::LoopEnd: {
        CfFrame &loop = t.topFrame();
        panic_if(loop.kind != CfFrame::Kind::Loop, "while without loop");
        // Channels parked by cont rejoin for the trip test.
        const LaneMask candidates = t.activeMask() | loop.contMask;
        loop.contMask = 0;
        const LaneMask continuing = candidates & pred & in.widthMask();
        if (continuing != 0) {
            t.setActiveMask(continuing);
            next_ip = static_cast<std::uint32_t>(in.target0);
        } else {
            const CfFrame frame = t.popFrame();
            t.setActiveMask(frame.savedMask & ~t.loopOffMask());
        }
        break;
      }
      case Opcode::Halt:
        t.halt();
        result.isHalt = true;
        break;
      case Opcode::Cmp:
        execCmp(in, t, exec);
        break;
      case Opcode::Send:
        execSend(in, t, exec, result);
        break;
      default:
        execAlu(in, t, exec);
        break;
    }

    t.setIp(next_ip);
    return result;
}

} // namespace iwc::func
