/**
 * @file
 * Lane-kernel definitions, included by exactly one .cc per target ISA
 * with IWC_VEC_TABLE_FN set to the table accessor to define (see
 * vector_kernels.hh). Everything except the accessor lives in an
 * anonymous namespace: the same source compiles to different code per
 * TU (simd_ops.hh picks intrinsics from the target macros), so none
 * of it may have external linkage.
 */

#ifndef IWC_VEC_TABLE_FN
#error "define IWC_VEC_TABLE_FN before including vector_kernels_impl.hh"
#endif

#include <cstdint>

#include "common/simd_ops.hh"
#include "func/vector_kernels.hh"

namespace iwc::func
{
namespace
{

using simd::V4D;
using simd::V8;

inline const std::uint8_t *
bytes(const void *p)
{
    return static_cast<const std::uint8_t *>(p);
}

/** Masked store of one 8-lane chunk at element index i. */
inline void
blendStore(void *dst, unsigned i, V8 res, const std::uint32_t *wr)
{
    auto *p = static_cast<std::uint8_t *>(dst) + 4u * i;
    const V8 old = simd::v8load(p);
    simd::v8store(p, simd::v8blend(old, res, simd::v8load(wr + i)));
}

/**
 * Unary float kernel: per-4-double op F applied to widened lanes.
 * Results canonicalize NaN before narrowing (v4dcanon) — pinned ISA
 * semantics, matching the scalar oracle.
 */
template <typename F>
inline void
fmap1(void *dst, const void *a, const std::uint32_t *wr, unsigned n,
      F op)
{
    for (unsigned i = 0; i < n; i += 8) {
        const V8 av = simd::v8load(bytes(a) + 4u * i);
        blendStore(dst, i,
                   simd::v8narrow(
                       simd::v4dcanon(op(simd::v4dwidenlo(av))),
                       simd::v4dcanon(op(simd::v4dwidenhi(av)))),
                   wr);
    }
}

/** Binary float kernel; NaN results canonicalized, see fmap1. */
template <typename F>
inline void
fmap2(void *dst, const void *a, const void *b, const std::uint32_t *wr,
      unsigned n, F op)
{
    for (unsigned i = 0; i < n; i += 8) {
        const V8 av = simd::v8load(bytes(a) + 4u * i);
        const V8 bv = simd::v8load(bytes(b) + 4u * i);
        blendStore(dst, i,
                   simd::v8narrow(simd::v4dcanon(op(
                                      simd::v4dwidenlo(av),
                                      simd::v4dwidenlo(bv))),
                                  simd::v4dcanon(op(
                                      simd::v4dwidenhi(av),
                                      simd::v4dwidenhi(bv)))),
                   wr);
    }
}

/** Ternary float kernel (mad); NaN results canonicalized. */
template <typename F>
inline void
fmap3(void *dst, const void *a, const void *b, const void *c,
      const std::uint32_t *wr, unsigned n, F op)
{
    for (unsigned i = 0; i < n; i += 8) {
        const V8 av = simd::v8load(bytes(a) + 4u * i);
        const V8 bv = simd::v8load(bytes(b) + 4u * i);
        const V8 cv = simd::v8load(bytes(c) + 4u * i);
        blendStore(dst, i,
                   simd::v8narrow(simd::v4dcanon(op(
                                      simd::v4dwidenlo(av),
                                      simd::v4dwidenlo(bv),
                                      simd::v4dwidenlo(cv))),
                                  simd::v4dcanon(op(
                                      simd::v4dwidenhi(av),
                                      simd::v4dwidenhi(bv),
                                      simd::v4dwidenhi(cv)))),
                   wr);
    }
}

/** Unary integer kernel. */
template <typename F>
inline void
imap1(void *dst, const void *a, const std::uint32_t *wr, unsigned n,
      F op)
{
    for (unsigned i = 0; i < n; i += 8)
        blendStore(dst, i, op(simd::v8load(bytes(a) + 4u * i)), wr);
}

/** Binary integer kernel. */
template <typename F>
inline void
imap2(void *dst, const void *a, const void *b, const std::uint32_t *wr,
      unsigned n, F op)
{
    for (unsigned i = 0; i < n; i += 8) {
        blendStore(dst, i,
                   op(simd::v8load(bytes(a) + 4u * i),
                      simd::v8load(bytes(b) + 4u * i)),
                   wr);
    }
}

/** Ternary integer kernel. */
template <typename F>
inline void
imap3(void *dst, const void *a, const void *b, const void *c,
      const std::uint32_t *wr, unsigned n, F op)
{
    for (unsigned i = 0; i < n; i += 8) {
        blendStore(dst, i,
                   op(simd::v8load(bytes(a) + 4u * i),
                      simd::v8load(bytes(b) + 4u * i),
                      simd::v8load(bytes(c) + 4u * i)),
                   wr);
    }
}

/** Float compare kernel: predicate P over widened lanes to bits. */
template <typename P>
inline std::uint32_t
fcmp(const void *a, const void *b, unsigned n, P pred)
{
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < n; i += 8) {
        const V8 av = simd::v8load(bytes(a) + 4u * i);
        const V8 bv = simd::v8load(bytes(b) + 4u * i);
        const std::uint32_t lo =
            simd::v4dmsb(pred(simd::v4dwidenlo(av),
                              simd::v4dwidenlo(bv)));
        const std::uint32_t hi =
            simd::v4dmsb(pred(simd::v4dwidenhi(av),
                              simd::v4dwidenhi(bv)));
        bits |= (lo | (hi << 4)) << i;
    }
    return bits;
}

/** Integer compare kernel: P yields a 0/~0 lane mask. */
template <typename P>
inline std::uint32_t
icmp(const void *a, const void *b, unsigned n, P pred)
{
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < n; i += 8) {
        bits |= simd::v8msb(pred(simd::v8load(bytes(a) + 4u * i),
                                 simd::v8load(bytes(b) + 4u * i)))
            << i;
    }
    return bits;
}

// ------------------------------------------------------ ALU kernels

void
opFMov(void *d, const void *a, const void *, const void *,
       const std::uint32_t *wr, unsigned n)
{
    // Float mov is a raw bit copy (pinned semantics; the planner's
    // source stage already applied any sign-bit modifiers). NaN
    // payloads — signalling or not — survive untouched, exactly like
    // the scalar oracle's raw move path.
    for (unsigned i = 0; i < n; i += 8)
        blendStore(d, i, simd::v8load(bytes(a) + 4u * i), wr);
}

void
opFAdd(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n, [](V4D x, V4D y) { return simd::v4dadd(x, y); });
}

void
opFSub(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n, [](V4D x, V4D y) { return simd::v4dsub(x, y); });
}

void
opFMul(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n, [](V4D x, V4D y) { return simd::v4dmul(x, y); });
}

void
opFMad(void *d, const void *a, const void *b, const void *c,
       const std::uint32_t *wr, unsigned n)
{
    fmap3(d, a, b, c, wr, n, [](V4D x, V4D y, V4D z) {
        return simd::v4dmad(x, y, z);
    });
}

void
opFMin(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n,
          [](V4D x, V4D y) { return simd::v4dfmin(x, y); });
}

void
opFMax(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n,
          [](V4D x, V4D y) { return simd::v4dfmax(x, y); });
}

void
opFAvg(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n, [](V4D x, V4D y) {
        return simd::v4dmul(simd::v4dadd(x, y), simd::v4dsplat(0.5));
    });
}

void
opFSel(void *d, const void *a, const void *b, const void *c,
       const std::uint32_t *wr, unsigned n)
{
    // Raw select in the f32 bit domain (pinned semantics, like
    // opFMov): the chosen operand's bits are stored verbatim.
    for (unsigned i = 0; i < n; i += 8) {
        blendStore(d, i,
                   simd::v8blend(simd::v8load(bytes(b) + 4u * i),
                                 simd::v8load(bytes(a) + 4u * i),
                                 simd::v8load(bytes(c) + 4u * i)),
                   wr);
    }
}

void
opFRndd(void *d, const void *a, const void *, const void *,
        const std::uint32_t *wr, unsigned n)
{
    fmap1(d, a, wr, n, [](V4D x) { return simd::v4dfloor(x); });
}

void
opFFrc(void *d, const void *a, const void *, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap1(d, a, wr, n,
          [](V4D x) { return simd::v4dsub(x, simd::v4dfloor(x)); });
}

void
opFInv(void *d, const void *a, const void *, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap1(d, a, wr, n,
          [](V4D x) { return simd::v4ddiv(simd::v4dsplat(1.0), x); });
}

void
opFDiv(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    fmap2(d, a, b, wr, n, [](V4D x, V4D y) { return simd::v4ddiv(x, y); });
}

void
opFSqrt(void *d, const void *a, const void *, const void *,
        const std::uint32_t *wr, unsigned n)
{
    fmap1(d, a, wr, n, [](V4D x) { return simd::v4dsqrt(x); });
}

void
opFRsqrt(void *d, const void *a, const void *, const void *,
         const std::uint32_t *wr, unsigned n)
{
    fmap1(d, a, wr, n, [](V4D x) {
        return simd::v4ddiv(simd::v4dsplat(1.0), simd::v4dsqrt(x));
    });
}

void
opIMov(void *d, const void *a, const void *, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap1(d, a, wr, n, [](V8 x) { return x; });
}

void
opIAdd(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8add(x, y); });
}

void
opISub(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8sub(x, y); });
}

void
opIMul(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8mul(x, y); });
}

void
opIMad(void *d, const void *a, const void *b, const void *c,
       const std::uint32_t *wr, unsigned n)
{
    imap3(d, a, b, c, wr, n, [](V8 x, V8 y, V8 z) {
        return simd::v8add(simd::v8mul(x, y), z);
    });
}

void
opIAnd(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8and(x, y); });
}

void
opIOr(void *d, const void *a, const void *b, const void *,
      const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8or(x, y); });
}

void
opIXor(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8xor(x, y); });
}

void
opINot(void *d, const void *a, const void *, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap1(d, a, wr, n, [](V8 x) { return simd::v8not(x); });
}

void
opIShl(void *d, const void *a, const void *b, const void *,
       const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8shl(x, y); });
}

void
opIShrL(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8shrl(x, y); });
}

void
opIShrA(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8shra(x, y); });
}

void
opIMinS(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8mins(x, y); });
}

void
opIMinU(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8minu(x, y); });
}

void
opIMaxS(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8maxs(x, y); });
}

void
opIMaxU(void *d, const void *a, const void *b, const void *,
        const std::uint32_t *wr, unsigned n)
{
    imap2(d, a, b, wr, n, [](V8 x, V8 y) { return simd::v8maxu(x, y); });
}

void
opISel(void *d, const void *a, const void *b, const void *c,
       const std::uint32_t *wr, unsigned n)
{
    imap3(d, a, b, c, wr, n, [](V8 x, V8 y, V8 m) {
        return simd::v8blend(y, x, m);
    });
}

// -------------------------------------------------- compare kernels

std::uint32_t
cmpFEq(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4deq(x, y); });
}

std::uint32_t
cmpFNe(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4dne(x, y); });
}

std::uint32_t
cmpFLt(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4dlt(x, y); });
}

std::uint32_t
cmpFLe(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4dle(x, y); });
}

std::uint32_t
cmpFGt(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4dgt(x, y); });
}

std::uint32_t
cmpFGe(const void *a, const void *b, unsigned n)
{
    return fcmp(a, b, n,
                [](V4D x, V4D y) { return simd::v4dge(x, y); });
}

std::uint32_t
cmpIEq(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n,
                [](V8 x, V8 y) { return simd::v8eq(x, y); });
}

std::uint32_t
cmpINe(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n, [](V8 x, V8 y) {
        return simd::v8not(simd::v8eq(x, y));
    });
}

std::uint32_t
cmpILtS(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n,
                [](V8 x, V8 y) { return simd::v8gts(y, x); });
}

std::uint32_t
cmpILeS(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n, [](V8 x, V8 y) {
        return simd::v8not(simd::v8gts(x, y));
    });
}

std::uint32_t
cmpIGtS(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n,
                [](V8 x, V8 y) { return simd::v8gts(x, y); });
}

std::uint32_t
cmpIGeS(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n, [](V8 x, V8 y) {
        return simd::v8not(simd::v8gts(y, x));
    });
}

std::uint32_t
cmpILtU(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n,
                [](V8 x, V8 y) { return simd::v8gtu(y, x); });
}

std::uint32_t
cmpILeU(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n, [](V8 x, V8 y) {
        return simd::v8not(simd::v8gtu(x, y));
    });
}

std::uint32_t
cmpIGtU(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n,
                [](V8 x, V8 y) { return simd::v8gtu(x, y); });
}

std::uint32_t
cmpIGeU(const void *a, const void *b, unsigned n)
{
    return icmp(a, b, n, [](V8 x, V8 y) {
        return simd::v8not(simd::v8gtu(y, x));
    });
}

} // namespace

const VecKernelTable &
IWC_VEC_TABLE_FN()
{
    static const VecKernelTable table = [] {
        VecKernelTable t{};
        t.alu[kFMov] = opFMov;
        t.alu[kFAdd] = opFAdd;
        t.alu[kFSub] = opFSub;
        t.alu[kFMul] = opFMul;
        t.alu[kFMad] = opFMad;
        t.alu[kFMin] = opFMin;
        t.alu[kFMax] = opFMax;
        t.alu[kFAvg] = opFAvg;
        t.alu[kFSel] = opFSel;
        t.alu[kFRndd] = opFRndd;
        t.alu[kFFrc] = opFFrc;
        t.alu[kFInv] = opFInv;
        t.alu[kFDiv] = opFDiv;
        t.alu[kFSqrt] = opFSqrt;
        t.alu[kFRsqrt] = opFRsqrt;
        t.alu[kIMov] = opIMov;
        t.alu[kIAdd] = opIAdd;
        t.alu[kISub] = opISub;
        t.alu[kIMul] = opIMul;
        t.alu[kIMad] = opIMad;
        t.alu[kIAnd] = opIAnd;
        t.alu[kIOr] = opIOr;
        t.alu[kIXor] = opIXor;
        t.alu[kINot] = opINot;
        t.alu[kIShl] = opIShl;
        t.alu[kIShrL] = opIShrL;
        t.alu[kIShrA] = opIShrA;
        t.alu[kIMinS] = opIMinS;
        t.alu[kIMinU] = opIMinU;
        t.alu[kIMaxS] = opIMaxS;
        t.alu[kIMaxU] = opIMaxU;
        t.alu[kISel] = opISel;
        t.cmp[kCFEq] = cmpFEq;
        t.cmp[kCFNe] = cmpFNe;
        t.cmp[kCFLt] = cmpFLt;
        t.cmp[kCFLe] = cmpFLe;
        t.cmp[kCFGt] = cmpFGt;
        t.cmp[kCFGe] = cmpFGe;
        t.cmp[kCIEq] = cmpIEq;
        t.cmp[kCINe] = cmpINe;
        t.cmp[kCILtS] = cmpILtS;
        t.cmp[kCILeS] = cmpILeS;
        t.cmp[kCIGtS] = cmpIGtS;
        t.cmp[kCIGeS] = cmpIGeS;
        t.cmp[kCILtU] = cmpILtU;
        t.cmp[kCILeU] = cmpILeU;
        t.cmp[kCIGtU] = cmpIGtU;
        t.cmp[kCIGeU] = cmpIGeU;
        return t;
    }();
    return table;
}

} // namespace iwc::func
