#include "func/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/bitutil.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace iwc::func
{

Addr
GlobalMemory::allocate(std::uint64_t bytes, std::uint64_t align)
{
    panic_if(!isPow2(align), "allocation alignment must be a power of 2");
    nextFree_ = alignUp(nextFree_, align);
    const Addr base = nextFree_;
    nextFree_ += bytes == 0 ? align : bytes;
    return base;
}

const GlobalMemory::Page *
GlobalMemory::findPage(std::uint64_t page_num) const
{
    if (page_num == cachedPageNum_)
        return cachedPage_;
    const auto it = pages_.find(page_num);
    if (it == pages_.end())
        return nullptr; // don't cache misses: a write may create it
    cachedPageNum_ = page_num;
    // Caching is logically const; GlobalMemory objects are never
    // const-qualified storage, so the cast is safe.
    cachedPage_ = const_cast<Page *>(&it->second);
    return cachedPage_;
}

GlobalMemory::Page &
GlobalMemory::touchPage(std::uint64_t page_num)
{
    if (page_num == cachedPageNum_ && cachedPage_ != nullptr)
        return *cachedPage_;
    Page &page = pages_[page_num];
    if (page.empty())
        page.assign(kPageBytes, 0);
    cachedPageNum_ = page_num;
    cachedPage_ = &page;
    return page;
}

void
GlobalMemory::read(Addr addr, void *out, std::uint64_t bytes) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (bytes > 0) {
        const std::uint64_t page_num = addr / kPageBytes;
        const std::uint64_t offset = addr % kPageBytes;
        const std::uint64_t chunk = std::min(bytes, kPageBytes - offset);
        const Page *page = findPage(page_num);
        if (page)
            std::memcpy(dst, page->data() + offset, chunk);
        else
            std::memset(dst, 0, chunk); // untouched memory reads zero
        dst += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
GlobalMemory::write(Addr addr, const void *in, std::uint64_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (bytes > 0) {
        const std::uint64_t page_num = addr / kPageBytes;
        const std::uint64_t offset = addr % kPageBytes;
        const std::uint64_t chunk = std::min(bytes, kPageBytes - offset);
        Page &page = touchPage(page_num);
        std::memcpy(page.data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

std::uint64_t
GlobalMemory::digest() const
{
    // All-zero pages are indistinguishable from untouched ones to any
    // reader, so skip them: the digest depends only on observable
    // contents, not on which addresses happened to be written.
    std::vector<std::uint64_t> nums;
    nums.reserve(pages_.size());
    for (const auto &[num, page] : pages_) {
        const bool all_zero = std::all_of(
            page.begin(), page.end(),
            [](std::uint8_t b) { return b == 0; });
        if (!all_zero)
            nums.push_back(num);
    }
    std::sort(nums.begin(), nums.end());

    Fnv64 h;
    for (const std::uint64_t num : nums) {
        h.add(num);
        h.addBytes(pages_.at(num).data(), pages_.at(num).size());
    }
    return h.value();
}

void
SlmMemory::read(Addr addr, void *out, std::uint64_t bytes) const
{
    panic_if(addr + bytes > data_.size(),
             "SLM read [%llu, %llu) out of range (size %zu)",
             static_cast<unsigned long long>(addr),
             static_cast<unsigned long long>(addr + bytes), data_.size());
    std::memcpy(out, data_.data() + addr, bytes);
}

void
SlmMemory::write(Addr addr, const void *in, std::uint64_t bytes)
{
    panic_if(addr + bytes > data_.size(),
             "SLM write [%llu, %llu) out of range (size %zu)",
             static_cast<unsigned long long>(addr),
             static_cast<unsigned long long>(addr + bytes), data_.size());
    std::memcpy(data_.data() + addr, in, bytes);
}

} // namespace iwc::func
