/**
 * @file
 * Element accessors over predecoded operands, shared by every
 * execution backend (see exec_backend.hh). Offsets and strides were
 * resolved and bounds-checked at decode time, so these run straight
 * memcpys (which compile to single loads/stores) on the GRF backing
 * store, with one switch on the element type instead of the old
 * size-then-type cascade.
 */

#ifndef IWC_FUNC_EXEC_OPS_HH
#define IWC_FUNC_EXEC_OPS_HH

#include <cmath>
#include <cstdint>
#include <cstring>

#include "func/predecode.hh"
#include "func/thread_state.hh"

namespace iwc::func::ops
{

/** Raw bits of one element of a GRF or immediate operand. */
inline std::uint64_t
rawElement(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immBits;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.elemBytes) {
      case 2: {
        std::uint16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case 4: {
        std::uint32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      default: {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
    }
}

/** Writes raw bits to one element of a GRF operand (load data path). */
inline void
writeRawElement(const DecodedOperand &op, ThreadState &t, unsigned ch,
                std::uint64_t bits, unsigned bytes)
{
    std::uint8_t *p = t.grfData() + op.baseOff + ch * bytes;
    switch (bytes) {
      case 2: {
        const auto v = static_cast<std::uint16_t>(bits);
        std::memcpy(p, &v, 2);
        break;
      }
      case 4: {
        const auto v = static_cast<std::uint32_t>(bits);
        std::memcpy(p, &v, 4);
        break;
      }
      default:
        std::memcpy(p, &bits, 8);
        break;
    }
}

inline double
readF(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immF;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    double v = 0;
    switch (op.type) {
      case isa::DataType::F: {
        float f;
        std::memcpy(&f, p, 4);
        v = f;
        break;
      }
      case isa::DataType::DF:
        std::memcpy(&v, p, 8);
        break;
      case isa::DataType::UW: {
        std::uint16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case isa::DataType::W: {
        std::int16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case isa::DataType::UD: {
        std::uint32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case isa::DataType::D: {
        std::int32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case isa::DataType::UQ: {
        std::uint64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
      case isa::DataType::Q: {
        std::int64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
    }
    if (op.absolute)
        v = std::fabs(v);
    if (op.negate)
        v = -v;
    return v;
}

inline std::int64_t
readI(const DecodedOperand &op, const ThreadState &t, unsigned ch)
{
    if (op.isImm)
        return op.immI;
    const std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    std::int64_t v = 0;
    switch (op.type) {
      case isa::DataType::F: {
        float f;
        std::memcpy(&f, p, 4);
        v = static_cast<std::int64_t>(f);
        break;
      }
      case isa::DataType::DF: {
        double d;
        std::memcpy(&d, p, 8);
        v = static_cast<std::int64_t>(d);
        break;
      }
      case isa::DataType::UW: {
        std::uint16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case isa::DataType::W: {
        std::int16_t x;
        std::memcpy(&x, p, 2);
        v = x;
        break;
      }
      case isa::DataType::UD: {
        std::uint32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case isa::DataType::D: {
        std::int32_t x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case isa::DataType::UQ:
      case isa::DataType::Q: {
        std::uint64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<std::int64_t>(x);
        break;
      }
    }
    if (op.absolute)
        v = v < 0 ? -v : v;
    if (op.negate)
        v = -v;
    return v;
}

inline void writeI(const DecodedOperand &op, ThreadState &t, unsigned ch,
                   std::int64_t v);

inline void
writeF(const DecodedOperand &op, ThreadState &t, unsigned ch, double v)
{
    if (op.isNull)
        return;
    std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.type) {
      case isa::DataType::F: {
        const auto f = static_cast<float>(v);
        std::memcpy(p, &f, 4);
        break;
      }
      case isa::DataType::DF:
        std::memcpy(p, &v, 8);
        break;
      default:
        // Float-to-integer conversion truncates toward zero.
        writeI(op, t, ch, static_cast<std::int64_t>(v));
        break;
    }
}

inline void
writeI(const DecodedOperand &op, ThreadState &t, unsigned ch,
       std::int64_t v)
{
    if (op.isNull)
        return;
    std::uint8_t *p = t.grfData() + op.baseOff + ch * op.stride;
    switch (op.type) {
      case isa::DataType::F: {
        const auto f = static_cast<float>(v);
        std::memcpy(p, &f, 4);
        break;
      }
      case isa::DataType::DF: {
        const auto d = static_cast<double>(v);
        std::memcpy(p, &d, 8);
        break;
      }
      case isa::DataType::UW:
      case isa::DataType::W: {
        const auto x = static_cast<std::uint16_t>(v);
        std::memcpy(p, &x, 2);
        break;
      }
      case isa::DataType::UD:
      case isa::DataType::D: {
        const auto x = static_cast<std::uint32_t>(v);
        std::memcpy(p, &x, 4);
        break;
      }
      case isa::DataType::UQ:
      case isa::DataType::Q: {
        const auto x = static_cast<std::uint64_t>(v);
        std::memcpy(p, &x, 8);
        break;
      }
    }
}

/** Channels enabled by the instruction's predication control. */
inline LaneMask
predBits(isa::PredCtrl ctrl, unsigned flag, const ThreadState &t)
{
    switch (ctrl) {
      case isa::PredCtrl::None:
        return ~LaneMask{0};
      case isa::PredCtrl::Normal:
        return t.flag(flag);
      case isa::PredCtrl::Inverted:
        return ~t.flag(flag);
    }
    return ~LaneMask{0};
}

} // namespace iwc::func::ops

#endif // IWC_FUNC_EXEC_OPS_HH
