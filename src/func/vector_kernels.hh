/**
 * @file
 * Lane-kernel tables for the vectorized execution backend. A lane
 * kernel executes one op for n channels laid out contiguously as
 * 32-bit elements (f32 bit patterns or integers), writing only the
 * lanes whose entry in the write-mask array is all-ones. Compare
 * kernels return the condition as a lane bitmask instead of writing.
 *
 * The kernel implementations (vector_kernels_impl.hh) are compiled
 * once per target ISA: vector_kernels_host.cc with the build's
 * baseline flags and, on x86-64, vector_kernels_avx2.cc with -mavx2.
 * Each TU produces its own table of internal-linkage kernels; the
 * backend picks a table at runtime from CPU features, so the binary
 * stays runnable on hosts without AVX2.
 */

#ifndef IWC_FUNC_VECTOR_KERNELS_HH
#define IWC_FUNC_VECTOR_KERNELS_HH

#include <cstdint>

namespace iwc::func
{

/**
 * ALU lane-kernel index. Float kernels widen f32 lanes to double,
 * compute, and round back, matching the scalar oracle bit for bit;
 * integer kernels are restricted by the backend's plan to operand
 * mixes where 32-bit lane arithmetic is congruent with the oracle's
 * 64-bit extended arithmetic.
 */
enum VecAluOp : std::uint8_t
{
    kVecNone = 0, ///< no fast path: fall back to the scalar unit
    // Float domain (operands a, b, c are f32 bit patterns).
    kFMov,  ///< a, through the f64 roundtrip (quiets sNaNs)
    kFAdd, kFSub, kFMul,
    kFMad,  ///< a * b + c, product rounded before the add
    kFMin, kFMax, ///< std::fmin / std::fmax NaN semantics
    kFAvg,  ///< (a + b) * 0.5
    kFSel,  ///< c is a 0/~0 select mask: c ? a : b, then roundtrip
    kFRndd, kFFrc, kFInv, kFDiv, kFSqrt, kFRsqrt,
    // Integer domain (operands are 32-bit lanes).
    kIMov, kIAdd, kISub, kIMul,
    kIMad,  ///< a * b + c mod 2^32
    kIAnd, kIOr, kIXor, kINot,
    kIShl,  ///< shift count masked to [0, 63]; >= 32 yields zero
    kIShrL, ///< logical right shift, same count handling
    kIShrA, ///< arithmetic right shift; counts >= 32 fill with sign
    kIMinS, kIMinU, kIMaxS, kIMaxU,
    kISel,  ///< c is a 0/~0 select mask: c ? a : b
    kNumVecAlu,
};

/** Compare lane-kernel index (result is a condition bitmask). */
enum VecCmpOp : std::uint8_t
{
    // Float domain: quiet comparisons, NaN => false (Ne: true).
    kCFEq, kCFNe, kCFLt, kCFLe, kCFGt, kCFGe,
    // Integer domain: Eq/Ne are sign-agnostic; ordering kernels come
    // in signed and unsigned variants.
    kCIEq, kCINe,
    kCILtS, kCILeS, kCIGtS, kCIGeS,
    kCILtU, kCILeU, kCIGtU, kCIGeU,
    kNumVecCmp,
};

/**
 * dst/a/b/c point at n contiguous 32-bit elements (c may be a select
 * mask); wr is the per-lane write mask (0 or ~0); n is a multiple
 * of 8. Lanes with wr zero keep their previous dst value.
 */
using VecAluFn = void (*)(void *dst, const void *a, const void *b,
                          const void *c, const std::uint32_t *wr,
                          unsigned n);

/** Returns the condition bitmask over n lanes (bit i = lane i). */
using VecCmpFn = std::uint32_t (*)(const void *a, const void *b,
                                   unsigned n);

struct VecKernelTable
{
    VecAluFn alu[kNumVecAlu];
    VecCmpFn cmp[kNumVecCmp];
};

/** Table built with the build's baseline flags (always safe). */
const VecKernelTable &hostVecKernels();

#if defined(__x86_64__)
/** Table built with -mavx2; only dispatch to it after a cpuid check. */
const VecKernelTable &avx2VecKernels();
#endif

/** The table for this machine, picked once from runtime CPU features. */
const VecKernelTable &activeVecKernels();

/** Name of the active table's ISA: "avx2", "neon" or "generic". */
const char *activeVecKernelIsa();

} // namespace iwc::func

#endif // IWC_FUNC_VECTOR_KERNELS_HH
