/**
 * @file
 * Additional Table 1 workloads: bitonic sort and fast Walsh-Hadamard
 * transform (barrier/SLM-heavy with half-masked steps), a Gaussian
 * elimination step (region divergence below the pivot), and a simple
 * 3x3 convolution (coherent).
 */

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

Workload
makeBitonicSort(gpu::Device &dev, unsigned scale)
{
    const unsigned local = 64;
    const std::uint64_t n = 1024ull * scale;

    KernelBuilder b("bsort", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    b.requireSlm(local * sizeof(std::int32_t));

    auto slm_addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    b.mul(slm_addr, b.localId(), b.ud(4));
    {
        auto gaddr = b.tmp(DataType::UD);
        b.mad(gaddr, b.globalId(), b.ud(4), in_buf);
        b.gatherLoad(v, gaddr, DataType::D);
    }
    b.slmStore(slm_addr, v, DataType::D);
    b.barrier();

    auto partner = b.tmp(DataType::UD);
    auto paddr = b.tmp(DataType::UD);
    auto a = b.tmp(DataType::D);
    auto p = b.tmp(DataType::D);
    auto lo = b.tmp(DataType::D);
    auto hi = b.tmp(DataType::D);
    auto minv = b.tmp(DataType::D);
    auto maxv = b.tmp(DataType::D);
    auto kbit = b.tmp(DataType::UD);

    // Full bitonic network over the workgroup, statically unrolled.
    for (unsigned k = 2; k <= local; k <<= 1) {
        for (unsigned j = k >> 1; j >= 1; j >>= 1) {
            b.xor_(partner, b.localId(), b.ud(j));
            // Lower index of each pair performs the exchange.
            b.cmp(CondMod::Gt, 0, partner, b.localId());
            b.if_(0);
            {
                b.slmLoad(a, slm_addr, DataType::D);
                b.mul(paddr, partner, b.ud(4));
                b.slmLoad(p, paddr, DataType::D);
                b.min_(minv, a, p);
                b.max_(maxv, a, p);
                // Ascending block iff (lid & k) == 0.
                b.and_(kbit, b.localId(), b.ud(k));
                b.cmp(CondMod::Eq, 1, kbit, b.ud(0));
                b.sel(1, lo, minv, maxv);
                b.sel(1, hi, maxv, minv);
                b.slmStore(slm_addr, lo, DataType::D);
                b.slmStore(paddr, hi, DataType::D);
            }
            b.endif_();
            b.barrier();
        }
    }

    b.slmLoad(v, slm_addr, DataType::D);
    {
        auto gaddr = b.tmp(DataType::UD);
        b.mad(gaddr, b.globalId(), b.ud(4), out_buf);
        b.scatterStore(gaddr, v, DataType::D);
    }

    Workload w;
    w.kernel = b.build();
    w.name = "bsort";
    w.description = "bitonic sort within each workgroup";
    w.expectDivergent = true; // half the lanes idle at every step
    w.globalSize = n;
    w.localSize = local;

    Rng rng(201);
    std::vector<std::int32_t> host_in(n);
    for (auto &x : host_in)
        x = static_cast<std::int32_t>(rng.below(100000));
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out)};

    w.check = [dev_out, host_in, n, local](gpu::Device &d) {
        std::vector<std::int32_t> expected = host_in;
        for (std::uint64_t base = 0; base < n; base += local)
            std::sort(expected.begin() + base,
                      expected.begin() + base + local);
        return checkIntBuffer(d, dev_out, expected, "bsort");
    };
    return w;
}

Workload
makeFwht(gpu::Device &dev, unsigned scale)
{
    const unsigned local = 64;
    const std::uint64_t n = 1024ull * scale;

    KernelBuilder b("fwht", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    b.requireSlm(local * sizeof(std::int32_t));

    auto slm_addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::D);
    b.mul(slm_addr, b.localId(), b.ud(4));
    {
        auto gaddr = b.tmp(DataType::UD);
        b.mad(gaddr, b.globalId(), b.ud(4), in_buf);
        b.gatherLoad(v, gaddr, DataType::D);
    }
    b.slmStore(slm_addr, v, DataType::D);
    b.barrier();

    auto hbit = b.tmp(DataType::UD);
    auto baddr = b.tmp(DataType::UD);
    auto partner_idx = b.tmp(DataType::UD);
    auto a = b.tmp(DataType::D);
    auto c = b.tmp(DataType::D);
    auto sum = b.tmp(DataType::D);
    auto diff = b.tmp(DataType::D);
    for (unsigned h = 1; h < local; h <<= 1) {
        // The lane with (lid & h) == 0 owns the butterfly.
        b.and_(hbit, b.localId(), b.ud(h));
        b.cmp(CondMod::Eq, 0, hbit, b.ud(0));
        b.if_(0);
        {
            b.slmLoad(a, slm_addr, DataType::D);
            b.add(partner_idx, b.localId(), b.ud(h));
            b.mul(baddr, partner_idx, b.ud(4));
            b.slmLoad(c, baddr, DataType::D);
            b.add(sum, a, c);
            b.sub(diff, a, c);
            b.slmStore(slm_addr, sum, DataType::D);
            b.slmStore(baddr, diff, DataType::D);
        }
        b.endif_();
        b.barrier();
    }

    b.slmLoad(v, slm_addr, DataType::D);
    {
        auto gaddr = b.tmp(DataType::UD);
        b.mad(gaddr, b.globalId(), b.ud(4), out_buf);
        b.scatterStore(gaddr, v, DataType::D);
    }

    Workload w;
    w.kernel = b.build();
    w.name = "fwht";
    w.description = "fast Walsh-Hadamard transform per workgroup";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = local;

    Rng rng(211);
    std::vector<std::int32_t> host_in(n);
    for (auto &x : host_in)
        x = static_cast<std::int32_t>(rng.range(-50, 50));
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out)};

    w.check = [dev_out, host_in, n, local](gpu::Device &d) {
        std::vector<std::int32_t> expected = host_in;
        for (std::uint64_t base = 0; base < n; base += local) {
            for (unsigned h = 1; h < local; h <<= 1) {
                for (unsigned i = 0; i < local; ++i) {
                    if (i & h)
                        continue;
                    const std::int32_t a = expected[base + i];
                    const std::int32_t c = expected[base + i + h];
                    expected[base + i] = a + c;
                    expected[base + i + h] = a - c;
                }
            }
        }
        return checkIntBuffer(d, dev_out, expected, "fwht");
    };
    return w;
}

Workload
makeGauss(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const unsigned pivot = 5;

    KernelBuilder b("gauss", 16);
    auto mat_buf = b.argBuffer("mat");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");
    auto pivot_arg = b.argU("pivot");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto addr = b.tmp(DataType::UD);
    auto val = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), mat_buf);
    b.gatherLoad(val, addr, DataType::F);

    // Rows below the pivot, columns at or right of it, eliminate;
    // everything else copies through (region divergence).
    b.cmp(CondMod::Gt, 0, row, pivot_arg);
    b.if_(0);
    b.cmp(CondMod::Ge, 0, col, pivot_arg);
    b.if_(0);
    {
        auto idx = b.tmp(DataType::UD);
        auto a_ik = b.tmp(DataType::F);
        auto a_kk = b.tmp(DataType::F);
        auto a_kj = b.tmp(DataType::F);
        auto factor = b.tmp(DataType::F);
        b.mad(idx, row, dim_arg, pivot_arg);
        b.mad(addr, idx, b.ud(4), mat_buf);
        b.gatherLoad(a_ik, addr, DataType::F);
        b.mad(idx, pivot_arg, dim_arg, pivot_arg);
        b.mad(addr, idx, b.ud(4), mat_buf);
        b.gatherLoad(a_kk, addr, DataType::F);
        b.mad(idx, pivot_arg, dim_arg, col);
        b.mad(addr, idx, b.ud(4), mat_buf);
        b.gatherLoad(a_kj, addr, DataType::F);
        b.div(factor, a_ik, a_kk);
        b.mul(factor, factor, a_kj);
        b.sub(val, val, factor);
    }
    b.endif_();
    b.endif_();

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, val, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "gauss";
    w.description = "one Gaussian-elimination pivot step";
    // The update region is subgroup-aligned for most rows; measured
    // efficiency sits right at the 95% coherent threshold.
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    Rng rng(221);
    std::vector<float> host_m(n);
    for (auto &x : host_m)
        x = 1.0f + 4.0f * rng.nextFloat();
    const Addr dev_m = dev.uploadVector(host_m);
    const Addr dev_o = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_m), gpu::Arg::buffer(dev_o),
              gpu::Arg::u32(dim), gpu::Arg::u32(pivot)};

    w.check = [dev_o, host_m, dim, n, pivot](gpu::Device &d) {
        std::vector<float> expected(n);
        for (unsigned r = 0; r < dim; ++r) {
            for (unsigned c = 0; c < dim; ++c) {
                const std::size_t i =
                    static_cast<std::size_t>(r) * dim + c;
                float v = host_m[i];
                if (r > pivot && c >= pivot) {
                    const float a_ik = host_m[r * dim + pivot];
                    const float a_kk =
                        host_m[pivot * dim + pivot];
                    const float a_kj = host_m[pivot * dim + c];
                    float factor = static_cast<float>(
                        double(a_ik) / double(a_kk));
                    factor = static_cast<float>(
                        double(factor) * double(a_kj));
                    v = static_cast<float>(double(v) -
                                           double(factor));
                }
                expected[i] = v;
            }
        }
        return checkFloatBuffer(d, dev_o, expected, "gauss", 1e-3);
    };
    return w;
}

Workload
makeSimpleConvolution(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 4096ull * scale;
    const unsigned taps = 5;
    const float weights[taps] = {0.0625f, 0.25f, 0.375f, 0.25f,
                                 0.0625f};

    KernelBuilder b("scnv", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    auto n_arg = b.argU("n");

    auto acc = b.tmp(DataType::F);
    auto idx = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::F);
    auto gid_d = b.tmp(DataType::D);
    auto n_m1 = b.tmp(DataType::D);
    b.mov(gid_d, b.globalId());
    b.mov(n_m1, n_arg);
    b.sub(n_m1, n_m1, b.d(1));
    b.mov(acc, b.f(0.0f));

    for (unsigned t = 0; t < taps; ++t) {
        b.add(idx, gid_d, b.d(static_cast<std::int32_t>(t) - 2));
        b.max_(idx, idx, b.d(0));
        b.min_(idx, idx, n_m1);
        b.mad(addr, idx, b.ud(4), in_buf);
        b.gatherLoad(v, addr, DataType::F);
        b.mad(acc, v, b.f(weights[t]), acc);
    }
    storeGlobal(b, out_buf, b.globalId(), acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "scnv";
    w.description = "5-tap separable convolution";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    Rng rng(231);
    std::vector<float> host_in(n);
    for (auto &x : host_in)
        x = rng.nextFloat();
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(static_cast<std::uint32_t>(n))};

    w.check = [dev_out, host_in, n, weights](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            double acc = 0;
            for (int t = 0; t < 5; ++t) {
                std::int64_t idx =
                    static_cast<std::int64_t>(i) + t - 2;
                idx = std::clamp<std::int64_t>(
                    idx, 0, static_cast<std::int64_t>(n) - 1);
                acc = static_cast<float>(
                    double(host_in[idx]) * double(weights[t]) + acc);
            }
            expected[i] = static_cast<float>(acc);
        }
        return checkFloatBuffer(d, dev_out, expected, "scnv", 1e-3);
    };
    return w;
}

} // namespace iwc::workloads
