/**
 * @file
 * Linear-algebra workloads (the coherent backbone of Table 1):
 * vector add, dot product (SLM tree reduction), matrix-vector and
 * matrix-matrix multiply, transpose, an 8-point DCT, and a workgroup
 * scan.
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

std::vector<float>
randomFloats(std::uint64_t n, std::uint64_t seed, float lo = -1.0f,
             float hi = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.nextFloat();
    return v;
}

} // namespace

Workload
makeVectorAdd(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 8192ull * scale;

    KernelBuilder b("va", 16);
    auto a_buf = b.argBuffer("a");
    auto b_buf = b.argBuffer("b");
    auto c_buf = b.argBuffer("c");

    auto x = loadGlobal(b, a_buf, b.globalId(), DataType::F);
    auto y = loadGlobal(b, b_buf, b.globalId(), DataType::F);
    auto sum = b.tmp(DataType::F);
    b.add(sum, x, y);
    storeGlobal(b, c_buf, b.globalId(), sum, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "va";
    w.description = "vector addition";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_a = randomFloats(n, 11);
    const auto host_b = randomFloats(n, 12);
    const Addr dev_a = dev.uploadVector(host_a);
    const Addr dev_b = dev.uploadVector(host_b);
    const Addr dev_c = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_a), gpu::Arg::buffer(dev_b),
              gpu::Arg::buffer(dev_c)};

    w.check = [dev_c, host_a, host_b, n](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t i = 0; i < n; ++i)
            expected[i] = host_a[i] + host_b[i];
        return checkFloatBuffer(d, dev_c, expected, "va");
    };
    return w;
}

Workload
makeDotProduct(gpu::Device &dev, unsigned scale)
{
    const unsigned local = 64;
    const std::uint64_t n = 4096ull * scale;
    const unsigned num_wgs = static_cast<unsigned>(n / local);

    KernelBuilder b("dp", 16);
    auto a_buf = b.argBuffer("a");
    auto b_buf = b.argBuffer("b");
    auto partial = b.argBuffer("partials");
    b.requireSlm(local * sizeof(float));

    // prod = a[gid] * b[gid], staged into SLM at lid.
    auto x = loadGlobal(b, a_buf, b.globalId(), DataType::F);
    auto y = loadGlobal(b, b_buf, b.globalId(), DataType::F);
    auto prod = b.tmp(DataType::F);
    b.mul(prod, x, y);

    auto slm_addr = b.tmp(DataType::UD);
    b.mul(slm_addr, b.localId(), b.ud(4));
    b.slmStore(slm_addr, prod, DataType::F);
    b.barrier();

    // Tree reduction: stride halves each step; lanes with
    // lid >= stride sit idle (classic reduction divergence).
    auto stride = b.tmp(DataType::UD);
    auto other = b.tmp(DataType::F);
    auto mine = b.tmp(DataType::F);
    auto other_addr = b.tmp(DataType::UD);
    b.mov(stride, b.ud(local / 2));
    b.loop_();
    b.cmp(CondMod::Lt, 0, b.localId(), stride);
    b.if_(0);
    b.slmLoad(mine, slm_addr, DataType::F);
    b.mad(other_addr, stride, b.ud(4), slm_addr);
    b.slmLoad(other, other_addr, DataType::F);
    b.add(mine, mine, other);
    b.slmStore(slm_addr, mine, DataType::F);
    b.endif_();
    b.barrier();
    b.shr(stride, stride, b.ud(1));
    b.cmp(CondMod::Gt, 1, stride, b.ud(0));
    b.endLoop(1);

    // Thread 0 lane 0 publishes the workgroup partial sum.
    b.cmp(CondMod::Eq, 0, b.localId(), b.ud(0));
    b.if_(0);
    auto total = b.tmp(DataType::F);
    b.slmLoad(total, slm_addr, DataType::F);
    auto out_addr = b.tmp(DataType::UD);
    b.mad(out_addr, b.groupId(), b.ud(4), partial);
    b.scatterStore(out_addr, total, DataType::F);
    b.endif_();

    Workload w;
    w.kernel = b.build();
    w.name = "dp";
    w.description = "dot product with SLM tree reduction";
    // The log-step reduction masks off half the lanes per step.
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = local;

    const auto host_a = randomFloats(n, 21);
    const auto host_b = randomFloats(n, 22);
    const Addr dev_a = dev.uploadVector(host_a);
    const Addr dev_b = dev.uploadVector(host_b);
    const Addr dev_p = dev.allocBuffer(num_wgs * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_a), gpu::Arg::buffer(dev_b),
              gpu::Arg::buffer(dev_p)};

    w.check = [dev_p, host_a, host_b, num_wgs, local](gpu::Device &d) {
        std::vector<float> expected(num_wgs);
        for (unsigned wg = 0; wg < num_wgs; ++wg) {
            // Mirror the tree reduction order for float fidelity.
            std::vector<double> vals(local);
            for (unsigned i = 0; i < local; ++i) {
                const std::uint64_t gi =
                    static_cast<std::uint64_t>(wg) * local + i;
                vals[i] = static_cast<float>(
                    double(host_a[gi]) * double(host_b[gi]));
            }
            for (unsigned s = local / 2; s > 0; s >>= 1)
                for (unsigned i = 0; i < s; ++i)
                    vals[i] = static_cast<float>(vals[i] + vals[i + s]);
            expected[wg] = static_cast<float>(vals[0]);
        }
        return checkFloatBuffer(d, dev_p, expected, "dp", 1e-3);
    };
    return w;
}

Workload
makeMatVecMul(gpu::Device &dev, unsigned scale)
{
    const unsigned cols = 64;
    const std::uint64_t rows = 2048ull * scale;

    KernelBuilder b("mvm", 16);
    auto mat = b.argBuffer("mat");
    auto vec = b.argBuffer("vec");
    auto out = b.argBuffer("out");

    auto acc = b.tmp(DataType::F);
    auto k = b.tmp(DataType::D);
    auto row_base = b.tmp(DataType::UD);
    auto addr = b.tmp(DataType::UD);
    auto vaddr = b.tmp(DataType::UD);
    auto m = b.tmp(DataType::F);
    auto v = b.tmp(DataType::F);

    b.mov(acc, b.f(0.0f));
    b.mov(k, b.d(0));
    b.mul(row_base, b.globalId(), b.ud(cols * 4));
    b.add(row_base, row_base, mat);

    b.loop_();
    b.mad(addr, k, b.ud(4), row_base);
    b.gatherLoad(m, addr, DataType::F);
    b.mad(vaddr, k, b.ud(4), vec);
    b.gatherLoad(v, vaddr, DataType::F);
    b.mad(acc, m, v, acc);
    b.add(k, k, b.d(1));
    b.cmp(CondMod::Lt, 1, k, b.d(cols));
    b.endLoop(1);

    storeGlobal(b, out, b.globalId(), acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "mvm";
    w.description = "matrix-vector multiplication";
    w.expectDivergent = false;
    w.globalSize = rows;
    w.localSize = 64;

    const auto host_m = randomFloats(rows * cols, 31);
    const auto host_v = randomFloats(cols, 32);
    const Addr dev_m = dev.uploadVector(host_m);
    const Addr dev_v = dev.uploadVector(host_v);
    const Addr dev_o = dev.allocBuffer(rows * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_m), gpu::Arg::buffer(dev_v),
              gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, host_m, host_v, rows, cols](gpu::Device &d) {
        std::vector<float> expected(rows);
        for (std::uint64_t r = 0; r < rows; ++r) {
            double acc = 0;
            for (unsigned c = 0; c < cols; ++c)
                acc = static_cast<float>(
                    double(host_m[r * cols + c]) * double(host_v[c]) +
                    acc);
            expected[r] = static_cast<float>(acc);
        }
        return checkFloatBuffer(d, dev_o, expected, "mvm", 1e-3);
    };
    return w;
}

Workload
makeMatMul(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 32 * std::min(scale, 4u); // N x N matrices
    const unsigned k_depth = 32;

    KernelBuilder b("mm", 16);
    auto a_buf = b.argBuffer("a"); // dim x k
    auto b_buf = b.argBuffer("b"); // k x dim
    auto c_buf = b.argBuffer("c"); // dim x dim
    auto dim_arg = b.argU("dim");

    // Work item -> (row, col) of C.
    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    auto tmp = b.tmp(DataType::UD);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto acc = b.tmp(DataType::F);
    auto k = b.tmp(DataType::D);
    auto a_addr = b.tmp(DataType::UD);
    auto b_addr = b.tmp(DataType::UD);
    auto a_val = b.tmp(DataType::F);
    auto b_val = b.tmp(DataType::F);
    auto a_row_base = b.tmp(DataType::UD);
    b.mov(acc, b.f(0.0f));
    b.mov(k, b.d(0));
    b.mul(a_row_base, row, b.ud(k_depth * 4));
    b.add(a_row_base, a_row_base, a_buf);

    b.loop_();
    b.mad(a_addr, k, b.ud(4), a_row_base);
    b.gatherLoad(a_val, a_addr, DataType::F);
    // b[k*dim + col]
    b.mul(b_addr, k, b.ud(1)); // copy k as UD
    b.mul(b_addr, b_addr, dim_arg);
    b.add(b_addr, b_addr, col);
    b.mad(b_addr, b_addr, b.ud(4), b_buf);
    b.gatherLoad(b_val, b_addr, DataType::F);
    b.mad(acc, a_val, b_val, acc);
    b.add(k, k, b.d(1));
    b.cmp(CondMod::Lt, 1, k, b.d(k_depth));
    b.endLoop(1);

    storeGlobal(b, c_buf, b.globalId(), acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "mm";
    w.description = "matrix multiplication";
    w.expectDivergent = false;
    w.globalSize = static_cast<std::uint64_t>(dim) * dim;
    w.localSize = 64;

    const auto host_a = randomFloats(dim * k_depth, 41);
    const auto host_b = randomFloats(k_depth * dim, 42);
    const Addr dev_a = dev.uploadVector(host_a);
    const Addr dev_b = dev.uploadVector(host_b);
    const Addr dev_c =
        dev.allocBuffer(static_cast<std::uint64_t>(dim) * dim *
                        sizeof(float));
    w.args = {gpu::Arg::buffer(dev_a), gpu::Arg::buffer(dev_b),
              gpu::Arg::buffer(dev_c), gpu::Arg::u32(dim)};

    w.check = [dev_c, host_a, host_b, dim, k_depth](gpu::Device &d) {
        std::vector<float> expected(
            static_cast<std::size_t>(dim) * dim);
        for (unsigned r = 0; r < dim; ++r) {
            for (unsigned c = 0; c < dim; ++c) {
                double acc = 0;
                for (unsigned k = 0; k < k_depth; ++k)
                    acc = static_cast<float>(
                        double(host_a[r * k_depth + k]) *
                            double(host_b[k * dim + c]) + acc);
                expected[r * dim + c] = static_cast<float>(acc);
            }
        }
        return checkFloatBuffer(d, dev_c, expected, "mm", 1e-3);
    };
    return w;
}

Workload
makeTranspose(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);

    KernelBuilder b("transpose", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto v = loadGlobal(b, in_buf, b.globalId(), DataType::F);
    auto out_idx = b.tmp(DataType::UD);
    b.mad(out_idx, col, dim_arg, row);
    storeGlobal(b, out_buf, out_idx, v, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "trans";
    w.description = "matrix transpose (column-strided stores)";
    w.expectDivergent = false;
    w.globalSize = static_cast<std::uint64_t>(dim) * dim;
    w.localSize = 64;

    const auto host_in =
        randomFloats(static_cast<std::uint64_t>(dim) * dim, 51);
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(
        static_cast<std::uint64_t>(dim) * dim * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(dim)};

    w.check = [dev_out, host_in, dim](gpu::Device &d) {
        std::vector<float> expected(
            static_cast<std::size_t>(dim) * dim);
        for (unsigned r = 0; r < dim; ++r)
            for (unsigned c = 0; c < dim; ++c)
                expected[c * dim + r] = host_in[r * dim + c];
        return checkFloatBuffer(d, dev_out, expected, "transpose");
    };
    return w;
}

Workload
makeDct8(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t blocks = 1024ull * scale;
    constexpr double kPi = 3.14159265358979323846;

    KernelBuilder b("dct8", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");

    // Each work item computes coefficient (gid % 8) of block (gid / 8)
    // over 8 samples, using the EM pipe's cosine.
    auto block = b.tmp(DataType::UD);
    auto coeff = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.shr(block, b.globalId(), b.ud(3));
    b.shl(tmp, block, b.ud(3));
    b.sub(coeff, b.globalId(), tmp);

    auto coeff_f = b.tmp(DataType::F);
    b.mov(coeff_f, coeff);

    auto acc = b.tmp(DataType::F);
    auto nidx = b.tmp(DataType::D);
    auto nf = b.tmp(DataType::F);
    auto angle = b.tmp(DataType::F);
    auto cosv = b.tmp(DataType::F);
    auto addr = b.tmp(DataType::UD);
    auto sample = b.tmp(DataType::F);
    auto base = b.tmp(DataType::UD);
    b.mov(acc, b.f(0.0f));
    b.mov(nidx, b.d(0));
    b.mul(base, block, b.ud(8 * 4));
    b.add(base, base, in_buf);

    b.loop_();
    b.mad(addr, nidx, b.ud(4), base);
    b.gatherLoad(sample, addr, DataType::F);
    b.mov(nf, nidx);
    // angle = (2n + 1) * k * pi / 16
    b.mad(nf, nf, b.f(2.0f), b.f(1.0f));
    b.mul(angle, nf, coeff_f);
    b.mul(angle, angle, b.f(static_cast<float>(kPi / 16.0)));
    b.cos(cosv, angle);
    b.mad(acc, sample, cosv, acc);
    b.add(nidx, nidx, b.d(1));
    b.cmp(CondMod::Lt, 1, nidx, b.d(8));
    b.endLoop(1);

    b.mul(acc, acc, b.f(0.5f));
    storeGlobal(b, out_buf, b.globalId(), acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "dct8";
    w.description = "8-point DCT per block";
    w.expectDivergent = false;
    w.globalSize = blocks * 8;
    w.localSize = 64;

    const auto host_in = randomFloats(blocks * 8, 61);
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(blocks * 8 * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out)};

    w.check = [dev_out, host_in, blocks](gpu::Device &d) {
        std::vector<float> expected(blocks * 8);
        for (std::uint64_t blk = 0; blk < blocks; ++blk) {
            for (unsigned k = 0; k < 8; ++k) {
                double acc = 0;
                for (unsigned n = 0; n < 8; ++n) {
                    const double nf = static_cast<float>(
                        double(n) * double(2.0f) + double(1.0f));
                    double angle =
                        static_cast<float>(nf * double(float(k)));
                    angle = static_cast<float>(
                        angle *
                        double(static_cast<float>(kPi / 16.0)));
                    const double c =
                        static_cast<float>(std::cos(angle));
                    acc = static_cast<float>(
                        double(host_in[blk * 8 + n]) * c + acc);
                }
                expected[blk * 8 + k] =
                    static_cast<float>(acc * double(0.5f));
            }
        }
        return checkFloatBuffer(d, dev_out, expected, "dct8", 1e-3);
    };
    return w;
}

Workload
makeScanLargeArray(gpu::Device &dev, unsigned scale)
{
    const unsigned local = 64;
    const std::uint64_t n = 4096ull * scale;

    KernelBuilder b("scla", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    b.requireSlm(local * sizeof(std::int32_t));

    // Hillis-Steele inclusive scan within each workgroup.
    auto slm_addr = b.tmp(DataType::UD);
    b.mul(slm_addr, b.localId(), b.ud(4));
    auto v = loadGlobal(b, in_buf, b.globalId(), DataType::D);
    b.slmStore(slm_addr, v, DataType::D);
    b.barrier();

    auto offset = b.tmp(DataType::UD);
    auto other = b.tmp(DataType::D);
    auto mine = b.tmp(DataType::D);
    auto other_addr = b.tmp(DataType::UD);
    auto other_idx = b.tmp(DataType::D);
    b.mov(offset, b.ud(1));
    // Lanes below the offset never store `mine` (both if-blocks share
    // f0), but give it a value on every channel so the store's data
    // operand is fully defined on every path through the loop.
    b.mov(mine, v);

    b.loop_();
    // Lanes with lid >= offset add the value offset slots back.
    b.cmp(CondMod::Ge, 0, b.localId(), offset);
    b.if_(0);
    b.slmLoad(mine, slm_addr, DataType::D);
    b.sub(other_idx, b.localId(), offset);
    b.mad(other_addr, other_idx, b.ud(4), b.ud(0));
    b.slmLoad(other, other_addr, DataType::D);
    b.add(mine, mine, other);
    b.endif_();
    b.barrier();
    b.if_(0);
    b.slmStore(slm_addr, mine, DataType::D);
    b.endif_();
    b.barrier();
    b.shl(offset, offset, b.ud(1));
    b.cmp(CondMod::Lt, 1, offset, b.ud(local));
    b.endLoop(1);

    auto result = b.tmp(DataType::D);
    b.slmLoad(result, slm_addr, DataType::D);
    storeGlobal(b, out_buf, b.globalId(), result, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "scla";
    w.description = "workgroup inclusive scan (Hillis-Steele)";
    w.expectDivergent = true; // half-masked steps at small offsets
    w.globalSize = n;
    w.localSize = local;

    Rng rng(71);
    std::vector<std::int32_t> host_in(n);
    for (auto &x : host_in)
        x = static_cast<std::int32_t>(rng.below(100));
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out)};

    w.check = [dev_out, host_in, n, local](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t base = 0; base < n; base += local) {
            std::int32_t acc = 0;
            for (unsigned i = 0; i < local; ++i) {
                acc += host_in[base + i];
                expected[base + i] = acc;
            }
        }
        return checkIntBuffer(d, dev_out, expected, "scla");
    };
    return w;
}

} // namespace iwc::workloads
