/**
 * @file
 * Workload framework: each workload bundles a kernel, its launch
 * geometry and arguments, and a host-side reference check, mirroring
 * the paper's Table 1 benchmark collection. Factories take a scale
 * knob so tests run small and benches run representative sizes.
 */

#ifndef IWC_WORKLOADS_WORKLOAD_HH
#define IWC_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "isa/builder.hh"
#include "isa/kernel.hh"

namespace iwc::workloads
{

/** A ready-to-launch benchmark instance. */
struct Workload
{
    std::string name;
    std::string description;
    bool expectDivergent = false;
    isa::Kernel kernel;
    std::uint64_t globalSize = 0;
    unsigned localSize = 0;
    std::vector<gpu::Arg> args;
    /** Downloads results and validates against the CPU reference. */
    std::function<bool(gpu::Device &)> check;
};

/** Builds a workload instance against @p dev at problem size @p scale. */
using Factory = Workload (*)(gpu::Device &dev, unsigned scale);

// --- Host-side check helpers -------------------------------------------

/** Relative/absolute float tolerance comparison. */
bool approxEqual(double expected, double actual, double tol = 1e-4);

/** Compares a device float buffer against @p expected. */
bool checkFloatBuffer(gpu::Device &dev, Addr base,
                      const std::vector<float> &expected,
                      const char *what, double tol = 1e-4);

/** Compares a device int32 buffer against @p expected. */
bool checkIntBuffer(gpu::Device &dev, Addr base,
                    const std::vector<std::int32_t> &expected,
                    const char *what);

// --- Kernel construction helpers ---------------------------------------

/**
 * Emits address computation + gather for element @p idx of buffer
 * @p buf. Allocates two temporaries; hoist out of loops.
 */
isa::Reg loadGlobal(isa::KernelBuilder &b, const isa::Operand &buf,
                    const isa::Operand &idx, isa::DataType type);

/** Emits address computation + scatter of @p value to buf[idx]. */
void storeGlobal(isa::KernelBuilder &b, const isa::Operand &buf,
                 const isa::Operand &idx, const isa::Operand &value,
                 isa::DataType type);

} // namespace iwc::workloads

#endif // IWC_WORKLOADS_WORKLOAD_HH
