/**
 * @file
 * The workload registry: every executable benchmark of the suite
 * (this library's stand-in for the paper's Table 1), addressable by
 * name for the bench drivers, tests, and examples.
 */

#ifndef IWC_WORKLOADS_REGISTRY_HH
#define IWC_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace iwc::workloads
{

/** Registry row. */
struct Entry
{
    const char *name;
    const char *description;
    bool expectDivergent;
    Factory factory;
};

/** All registered workloads. */
const std::vector<Entry> &registry();

/** Lookup by name (fatal if unknown). */
const Entry &entryByName(const std::string &name);

/** Instantiates a workload by name. */
Workload make(const std::string &name, gpu::Device &dev,
              unsigned scale = 1);

/** Names of all workloads (optionally filtered by divergence class). */
std::vector<std::string> allNames();
std::vector<std::string> divergentNames();
std::vector<std::string> coherentNames();

// --- Factories (defined in the category source files) -------------------

// micro.cc
Workload makeMicroIfElse(gpu::Device &, unsigned scale);
Workload makeMicroNested(gpu::Device &, unsigned scale);
Workload makeMicroLoopTrip(gpu::Device &, unsigned scale);
/** Parameterized variants for the Fig. 8 / Table 2 sweeps. */
Workload makeMicroIfElsePattern(gpu::Device &, unsigned scale,
                                std::uint32_t pattern);
Workload makeMicroNestedDepth(gpu::Device &, unsigned scale,
                              unsigned depth);
/** If/else micro-kernel with a given compute datatype (ablation). */
Workload makeMicroIfElseTyped(gpu::Device &, unsigned scale,
                              std::uint32_t pattern, isa::DataType type);

// linear_algebra.cc
Workload makeVectorAdd(gpu::Device &, unsigned scale);
Workload makeDotProduct(gpu::Device &, unsigned scale);
Workload makeMatVecMul(gpu::Device &, unsigned scale);
Workload makeMatMul(gpu::Device &, unsigned scale);
Workload makeTranspose(gpu::Device &, unsigned scale);
Workload makeDct8(gpu::Device &, unsigned scale);
Workload makeScanLargeArray(gpu::Device &, unsigned scale);

// finance.cc
Workload makeBlackScholes(gpu::Device &, unsigned scale);
Workload makeBinomialOptions(gpu::Device &, unsigned scale);
Workload makeMonteCarloAsian(gpu::Device &, unsigned scale);
Workload makeUrng(gpu::Device &, unsigned scale);

// rodinia.cc
Workload makeBfs(gpu::Device &, unsigned scale);
Workload makeHotspot(gpu::Device &, unsigned scale);
Workload makeLavaMd(gpu::Device &, unsigned scale);
Workload makeNeedlemanWunsch(gpu::Device &, unsigned scale);
Workload makeParticleFilter(gpu::Device &, unsigned scale);
Workload makePathFinder(gpu::Device &, unsigned scale);
Workload makeKmeans(gpu::Device &, unsigned scale);
Workload makeSrad(gpu::Device &, unsigned scale);

// graph.cc
Workload makeFloydWarshall(gpu::Device &, unsigned scale);
Workload makeBinarySearch(gpu::Device &, unsigned scale);
Workload makeTreeSearch(gpu::Device &, unsigned scale);

// image.cc
Workload makeSobel(gpu::Device &, unsigned scale);
Workload makeBoxFilter(gpu::Device &, unsigned scale);
Workload makeDwtHaar(gpu::Device &, unsigned scale);
Workload makeMandelbrot(gpu::Device &, unsigned scale);

// extra.cc
Workload makeBitonicSort(gpu::Device &, unsigned scale);
Workload makeFwht(gpu::Device &, unsigned scale);
Workload makeGauss(gpu::Device &, unsigned scale);
Workload makeSimpleConvolution(gpu::Device &, unsigned scale);

// raytrace.cc
Workload makeRayTracePrimary(gpu::Device &, unsigned scale,
                             const std::string &scene);
Workload makeRayTraceAo(gpu::Device &, unsigned scale,
                        const std::string &scene, unsigned simd_width);
Workload makeRtPrimaryAlien(gpu::Device &, unsigned scale);
Workload makeRtPrimaryBulldozer(gpu::Device &, unsigned scale);
Workload makeRtPrimaryWindmill(gpu::Device &, unsigned scale);
Workload makeRtAoAlien8(gpu::Device &, unsigned scale);
Workload makeRtAoBulldozer8(gpu::Device &, unsigned scale);
Workload makeRtAoWindmill8(gpu::Device &, unsigned scale);
Workload makeRtAoAlien16(gpu::Device &, unsigned scale);
Workload makeRtAoBulldozer16(gpu::Device &, unsigned scale);
Workload makeRtAoWindmill16(gpu::Device &, unsigned scale);

} // namespace iwc::workloads

#endif // IWC_WORKLOADS_REGISTRY_HH
