/**
 * @file
 * Graph and search workloads: a Floyd-Warshall relaxation step
 * (coherent, memory heavy), binary search with early exit, and
 * binary-tree search with variable descent depth (both divergent).
 */

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

#include <algorithm>

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

Workload
makeFloydWarshall(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const unsigned k_pivot = 7;

    KernelBuilder b("fw", 16);
    auto dist_buf = b.argBuffer("dist");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");
    auto k_arg = b.argU("k");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto addr = b.tmp(DataType::UD);
    auto d_ij = b.tmp(DataType::D);
    auto d_ik = b.tmp(DataType::D);
    auto d_kj = b.tmp(DataType::D);
    auto idx = b.tmp(DataType::UD);

    b.mad(addr, b.globalId(), b.ud(4), dist_buf);
    b.gatherLoad(d_ij, addr, DataType::D);
    b.mad(idx, row, dim_arg, k_arg);
    b.mad(addr, idx, b.ud(4), dist_buf);
    b.gatherLoad(d_ik, addr, DataType::D);
    b.mad(idx, k_arg, dim_arg, col);
    b.mad(addr, idx, b.ud(4), dist_buf);
    b.gatherLoad(d_kj, addr, DataType::D);

    auto via = b.tmp(DataType::D);
    b.add(via, d_ik, d_kj);
    auto best = b.tmp(DataType::D);
    b.min_(best, d_ij, via);
    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, best, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "fw";
    w.description = "Floyd-Warshall single-pivot relaxation";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    Rng rng(141);
    std::vector<std::int32_t> dist(n);
    for (auto &x : dist)
        x = static_cast<std::int32_t>(rng.below(1000));
    const Addr dev_d = dev.uploadVector(dist);
    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_d), gpu::Arg::buffer(dev_o),
              gpu::Arg::u32(dim), gpu::Arg::u32(k_pivot)};

    w.check = [dev_o, dist, dim, n, k_pivot](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (unsigned r = 0; r < dim; ++r)
            for (unsigned c = 0; c < dim; ++c)
                expected[static_cast<std::size_t>(r) * dim + c] =
                    std::min(dist[static_cast<std::size_t>(r) * dim + c],
                             dist[static_cast<std::size_t>(r) * dim +
                                  k_pivot] +
                                 dist[static_cast<std::size_t>(k_pivot) *
                                          dim + c]);
        return checkIntBuffer(d, dev_o, expected, "fw");
    };
    return w;
}

Workload
makeBinarySearch(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 2048ull * scale;
    const unsigned haystack_size = 4096;

    Rng rng(151);
    std::vector<std::int32_t> haystack(haystack_size);
    std::int32_t v = 0;
    for (auto &x : haystack) {
        v += static_cast<std::int32_t>(rng.below(8) + 1);
        x = v;
    }
    std::vector<std::int32_t> keys(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        keys[i] = rng.chance(0.5)
            ? haystack[rng.below(haystack_size)] // guaranteed hit
            : static_cast<std::int32_t>(rng.below(v + 100));
    }

    KernelBuilder b("bsearch", 16);
    auto hay_buf = b.argBuffer("haystack");
    auto key_buf = b.argBuffer("keys");
    auto out_buf = b.argBuffer("out");

    auto key = loadGlobal(b, key_buf, b.globalId(), DataType::D);
    auto lo = b.tmp(DataType::D);
    auto hi = b.tmp(DataType::D);
    auto mid = b.tmp(DataType::D);
    auto mv = b.tmp(DataType::D);
    auto found = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mov(lo, b.d(0));
    b.mov(hi, b.d(static_cast<std::int32_t>(haystack_size)));
    b.mov(found, b.d(-1));

    b.loop_();
    {
        // mid = (lo + hi) / 2
        b.add(mid, lo, hi);
        b.asr(mid, mid, b.d(1));
        b.mad(addr, mid, b.ud(4), hay_buf);
        b.gatherLoad(mv, addr, DataType::D);

        // Early exit for exact matches (lanes drop out at different
        // iterations -> loop divergence).
        b.cmp(CondMod::Eq, 0, mv, key);
        b.if_(0);
        b.mov(found, mid);
        b.endif_();
        b.breakIf(0);

        b.cmp(CondMod::Lt, 0, mv, key);
        b.if_(0);
        b.add(lo, mid, b.d(1));
        b.else_();
        b.mov(hi, mid);
        b.endif_();

        b.cmp(CondMod::Lt, 1, lo, hi);
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, found, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "bsearch";
    w.description = "binary search with early exit";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_h = dev.uploadVector(haystack);
    const Addr dev_k = dev.uploadVector(keys);
    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_h), gpu::Arg::buffer(dev_k),
              gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, haystack, keys, n, haystack_size](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::int32_t lo = 0;
            std::int32_t hi =
                static_cast<std::int32_t>(haystack_size);
            std::int32_t found = -1;
            while (lo < hi) {
                const std::int32_t mid = (lo + hi) >> 1;
                if (haystack[mid] == keys[i]) {
                    found = mid;
                    break;
                }
                if (haystack[mid] < keys[i])
                    lo = mid + 1;
                else
                    hi = mid;
            }
            expected[i] = found;
        }
        return checkIntBuffer(d, dev_o, expected, "bsearch");
    };
    return w;
}

Workload
makeTreeSearch(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 2048ull * scale;
    const unsigned tree_nodes = 2047; // complete tree, heap layout

    Rng rng(161);
    // Build a BST in heap layout via sorted fill of an inorder walk.
    std::vector<std::int32_t> sorted(tree_nodes);
    std::int32_t acc = 0;
    for (auto &x : sorted) {
        acc += static_cast<std::int32_t>(rng.below(6) + 1);
        x = acc;
    }
    std::vector<std::int32_t> tree(tree_nodes);
    std::function<void(unsigned, unsigned, unsigned)> fill =
        [&](unsigned node, unsigned lo, unsigned hi) {
            if (node >= tree_nodes || lo >= hi)
                return;
            const unsigned mid = (lo + hi) / 2;
            tree[node] = sorted[mid];
            fill(2 * node + 1, lo, mid);
            fill(2 * node + 2, mid + 1, hi);
        };
    fill(0, 0, tree_nodes);

    std::vector<std::int32_t> keys(n);
    for (auto &x : keys)
        x = rng.chance(0.6) ? sorted[rng.below(tree_nodes)]
                            : static_cast<std::int32_t>(
                                  rng.below(acc + 50));

    KernelBuilder b("treesearch", 16);
    auto tree_buf = b.argBuffer("tree");
    auto key_buf = b.argBuffer("keys");
    auto out_buf = b.argBuffer("out");

    auto key = loadGlobal(b, key_buf, b.globalId(), DataType::D);
    auto node = b.tmp(DataType::D);
    auto nv = b.tmp(DataType::D);
    auto found = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    b.mov(node, b.d(0));
    b.mov(found, b.d(0));

    b.loop_();
    {
        b.mad(addr, node, b.ud(4), tree_buf);
        b.gatherLoad(nv, addr, DataType::D);
        b.cmp(CondMod::Eq, 0, nv, key);
        b.if_(0);
        b.mov(found, b.d(1));
        b.endif_();
        b.breakIf(0);
        // Descend: node = 2*node + (key < nv ? 1 : 2)
        b.cmp(CondMod::Lt, 0, key, nv);
        auto one_v = b.tmp(DataType::D);
        auto two_v = b.tmp(DataType::D);
        b.mov(one_v, b.d(1));
        b.mov(two_v, b.d(2));
        auto step = b.tmp(DataType::D);
        b.sel(0, step, one_v, two_v);
        b.mad(node, node, b.d(2), step);
        b.cmp(CondMod::Lt, 1, node,
              b.d(static_cast<std::int32_t>(tree_nodes)));
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, found, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "treesearch";
    w.description = "BST membership with variable descent depth";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_t = dev.uploadVector(tree);
    const Addr dev_k = dev.uploadVector(keys);
    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_t), gpu::Arg::buffer(dev_k),
              gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, tree, keys, n, tree_nodes](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::int32_t node = 0, found = 0;
            while (node < static_cast<std::int32_t>(tree_nodes)) {
                if (tree[node] == keys[i]) {
                    found = 1;
                    break;
                }
                node = node * 2 + (keys[i] < tree[node] ? 1 : 2);
            }
            expected[i] = found;
        }
        return checkIntBuffer(d, dev_o, expected, "treesearch");
    };
    return w;
}

} // namespace iwc::workloads
